// Capacity planning with the simcluster cost model: given a dataset
// shape, how long would each initialization strategy take on an
// m-machine MapReduce cluster, and where does Partition stop scaling?
// (This is the machinery behind the Table 4 reproduction.)
//
//   ./cluster_planning [--n=4800000] [--k=1000] [--d=42]

#include <cmath>
#include <iostream>

#include "eval/args.h"
#include "eval/table.h"
#include "simcluster/cost_model.h"

int main(int argc, char** argv) {
  using namespace kmeansll;
  eval::Args args(argc, argv);
  const int64_t n = args.GetInt("n", 4800000);
  const int64_t k = args.GetInt("k", 1000);
  const int64_t d = args.GetInt("d", 42);

  const auto m = static_cast<int64_t>(std::llround(
      std::sqrt(static_cast<double>(n) / static_cast<double>(k))));
  const auto partition_intermediate = static_cast<int64_t>(
      3.0 * std::sqrt(static_cast<double>(n) * static_cast<double>(k)) *
      std::log(static_cast<double>(k)));
  const auto ll_intermediate = 1 + 5 * 2 * k;  // r=5, ℓ=2k

  std::cout << "workload: n=" << n << " d=" << d << " k=" << k << "\n"
            << "Partition group count m=sqrt(n/k)=" << m
            << ", intermediate sets: Partition "
            << eval::CellInt(partition_intermediate) << " vs k-means|| "
            << eval::CellInt(ll_intermediate) << "\n\n";

  eval::TablePrinter table({"machines", "Random+20 Lloyd (min)",
                            "Partition (min)", "k-means|| l=2k (min)"});
  for (int64_t machines : {10, 50, 100, 500, 1000}) {
    simcluster::ClusterConfig config;
    config.num_machines = machines;
    config.seconds_per_flop = 1.2e-7;  // 2012-Hadoop effective throughput
    config.job_setup_seconds = 30.0;
    simcluster::CostModel model(config);

    auto random_jobs = simcluster::RandomInitProfile(n, d);
    auto lloyd = simcluster::LloydProfile(n, d, k, 20, machines);
    random_jobs.insert(random_jobs.end(), lloyd.begin(), lloyd.end());

    auto partition_jobs =
        simcluster::PartitionProfile(n, d, k, m, partition_intermediate);
    auto ll_jobs = simcluster::KMeansLLProfile(n, d, k, 2.0 * k, 5,
                                               ll_intermediate);

    table.AddRow(
        {eval::CellInt(machines),
         eval::Cell(model.TotalSeconds(random_jobs) / 60.0, 1),
         eval::Cell(model.TotalSeconds(partition_jobs) / 60.0, 1),
         eval::Cell(model.TotalSeconds(ll_jobs) / 60.0, 1)});
  }
  table.Print(std::cout);
  std::cout << "\nNote how Partition's column stops improving once the "
               "machine count\npasses m="
            << m
            << " (its round 1 cannot use more machines than groups), "
               "while\nk-means|| keeps scaling — the paper's §4.2.1 "
               "observation.\n";
  return 0;
}
