// Quickstart: cluster a synthetic dataset with k-means|| seeding, inspect
// the report, save the model, reload it, and classify new points.
//
//   ./quickstart [--k=20] [--n=5000] [--seed=42]

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/kmeans.h"
#include "data/synthetic.h"
#include "eval/args.h"
#include "rng/rng.h"

int main(int argc, char** argv) {
  using namespace kmeansll;
  eval::Args args(argc, argv);
  const int64_t k = args.GetInt("k", 20);
  const int64_t n = args.GetInt("n", 5000);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  // 1. Get some data: a mixture of k Gaussians in 10 dimensions. We draw
  //    extra points and hold them out as a test split for step 5.
  const int64_t holdout = n / 5;
  data::GaussMixtureParams params;
  params.n = n + holdout;
  params.k = k;
  params.dim = 10;
  params.center_stddev = 5.0;
  auto generated = data::GenerateGaussMixture(params, rng::Rng(seed));
  generated.status().Abort("data generation");
  std::vector<int64_t> train_rows(n), test_rows(holdout);
  for (int64_t i = 0; i < n; ++i) train_rows[i] = i;
  for (int64_t i = 0; i < holdout; ++i) test_rows[i] = n + i;
  Dataset data = generated->data.Gather(train_rows);
  Dataset test = generated->data.Gather(test_rows);
  std::cout << "dataset: " << data.n() << " train + " << test.n()
            << " held-out points in R^" << data.dim() << "\n";

  // 2. Configure the estimator: k-means|| seeding (ℓ = 2k, r = 5 — the
  //    paper's recommended setting) followed by Lloyd refinement.
  KMeansConfig config;
  config.k = k;
  config.init = InitMethod::kKMeansParallel;
  config.kmeansll.oversampling = 2.0 * static_cast<double>(k);
  config.kmeansll.rounds = 5;
  config.lloyd.max_iterations = 100;
  config.seed = seed;

  // 3. Fit.
  KMeans model(config);
  auto report = model.Fit(data);
  report.status().Abort("Fit");
  std::cout << "seed cost   : " << report->seed_cost << "\n"
            << "final cost  : " << report->final_cost << "\n"
            << "lloyd iters : " << report->lloyd_iterations
            << (report->lloyd_converged ? " (converged)" : " (capped)")
            << "\n"
            << "init rounds : " << report->init.rounds << ", "
            << report->init.intermediate_centers
            << " intermediate centers\n"
            << "total time  : " << report->total_seconds << " s\n";

  // 4. Persist the model and reload it.
  const std::string path = "/tmp/kmeansll_quickstart.model";
  SaveCenters(report->centers, path).Abort("SaveCenters");
  auto loaded = LoadCenters(path);
  loaded.status().Abort("LoadCenters");
  std::cout << "model round-tripped through " << path << ": "
            << loaded->rows() << " x " << loaded->cols() << "\n";

  // 5. Classify the held-out points drawn from the same mixture.
  Assignment assignment = Predict(*loaded, test);
  std::cout << "predicted " << assignment.cluster.size()
            << " held-out points; mean per-point cost "
            << assignment.cost / static_cast<double>(test.n())
            << " (train: "
            << report->final_cost / static_cast<double>(data.n()) << ")\n";
  std::remove(path.c_str());
  return 0;
}
