// End-to-end serving demo: train out-of-core, persist the model, serve
// it online, and hot-swap a refined model under live traffic.
//
//   1. Stream a synthetic dataset into binary shards (ShardWriter) and
//      train k-means|| + Lloyd over the disk-resident store with a
//      resident window smaller than the data.
//   2. Fit emits a KMLLMODL artifact (config.model_output_path); reload
//      it with data::LoadModel — CRC + consistency validated — and build
//      a serving CenterIndex from it.
//   3. Serve: reader threads push single-point queries through a
//      RequestBatcher against a ModelServer while the main thread runs a
//      RefineLoop (minibatch refinement passes, each published as a new
//      snapshot version). Readers never block on the swaps.
//   4. Verify the served answers: AssignBatch over the final snapshot
//      must be bitwise ComputeAssignment over its centers.
//
//   ./serving_demo [--k=20] [--n=20000] [--readers=4] [--refines=3]

#include <atomic>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "clustering/cost.h"
#include "core/kmeans.h"
#include "data/model_io.h"
#include "data/shard_store.h"
#include "data/synthetic.h"
#include "eval/args.h"
#include "rng/rng.h"
#include "serving/center_index.h"
#include "serving/model_server.h"

int main(int argc, char** argv) {
  using namespace kmeansll;
  eval::Args args(argc, argv);
  const int64_t k = args.GetInt("k", 20);
  const int64_t n = args.GetInt("n", 20000);
  const int64_t readers = args.GetInt("readers", 4);
  const int64_t refines = args.GetInt("refines", 3);

  // --- 1. Data + out-of-core training -----------------------------------
  data::GaussMixtureParams params;
  params.n = n;
  params.k = k;
  params.dim = 64;
  params.center_stddev = 5.0;
  auto generated = data::GenerateGaussMixture(params, rng::Rng(7));
  generated.status().Abort("data generation");
  const Dataset& data = generated->data;

  const std::string manifest = "/tmp/serving_demo.kml";
  const int64_t shards = 8;
  data::ShardWriter::Options sink_options;
  sink_options.rows_per_shard = (n + shards - 1) / shards;
  sink_options.has_labels = data.has_labels();
  auto writer = data::ShardWriter::Open(manifest, data.dim(), sink_options);
  writer.status().Abort("shard writer open");
  {
    InMemorySource ingest = data.AsSource();
    writer->AppendRange(ingest, 0, n).Abort("shard append");
  }
  writer->Finalize().status().Abort("shard finalize");

  data::ShardedDatasetOptions open_options;
  open_options.max_resident_bytes =
      3 * (32 + sink_options.rows_per_shard * (params.dim * 8 + 4));
  auto sharded = data::ShardedDataset::Open(manifest, open_options);
  sharded.status().Abort("shard open");

  const std::string model_path = "/tmp/serving_demo_model.kmm";
  KMeansConfig config;
  config.k = k;
  config.init = InitMethod::kKMeansParallel;
  config.kmeansll.oversampling = 2.0 * static_cast<double>(k);
  config.kmeansll.rounds = 5;
  config.lloyd.max_iterations = 30;
  config.num_threads = 4;
  config.model_output_path = model_path;  // Fit persists the artifact
  auto report = KMeans(config).Fit(*sharded);
  report.status().Abort("out-of-core fit");
  std::cout << "trained: final cost " << report->final_cost << " after "
            << report->lloyd_iterations << " Lloyd iterations; model -> "
            << model_path << "\n";

  // --- 2. Reload the artifact and stand up the server --------------------
  auto artifact = data::LoadModel(model_path);
  artifact.status().Abort("model load");
  std::cout << "loaded model: k=" << artifact->centers.rows() << " d="
            << artifact->centers.cols() << " init="
            << artifact->metadata.init_method << " (CRC validated)\n";
  auto index = serving::CenterIndex::FromModel(*artifact, /*version=*/0);
  index.status().Abort("index build");
  serving::ModelServer server(*index);

  serving::RequestBatcherOptions batch_options;
  batch_options.max_batch = 64;
  batch_options.max_delay_us = 200;
  // Backpressure: bound the admitted backlog so a traffic spike sheds
  // (kUnavailable + retry hint) instead of queueing unboundedly. The
  // reader loop below just drops shed queries; a real frontend would
  // surface the retry hint to its caller.
  batch_options.max_pending = 4 * batch_options.max_batch;
  serving::RequestBatcher batcher(&server, batch_options);

  // --- 3. Serve under refinement -----------------------------------------
  std::atomic<bool> stop{false};
  std::atomic<int64_t> answered{0};
  std::vector<std::thread> serving_threads;
  for (int64_t r = 0; r < readers; ++r) {
    serving_threads.emplace_back([&, r] {
      int64_t i = r * 131;
      while (!stop.load(std::memory_order_relaxed)) {
        const double* query = data.points().Row(i % n);
        (void)batcher.Assign(query);
        answered.fetch_add(1, std::memory_order_relaxed);
        i += readers;
      }
    });
  }

  MiniBatchOptions refine_options;
  refine_options.batch_size = 1024;
  refine_options.iterations = 30;
  for (int64_t pass = 0; pass < refines; ++pass) {
    server.RefineWithMiniBatch(*sharded, refine_options, 1000 + pass)
        .Abort("refine");
    std::cout << "published refined snapshot v"
              << server.published_version() << " (hot swap; readers kept "
              << "serving, " << answered.load() << " queries answered so "
              << "far)\n";
  }
  stop.store(true);
  for (auto& t : serving_threads) t.join();

  serving::RequestBatcher::Stats stats = batcher.stats();
  std::cout << "served " << stats.queries << " queries in "
            << stats.batches << " batched scans (avg batch "
            << (stats.batches == 0
                    ? 0.0
                    : static_cast<double>(stats.batched_points) /
                          static_cast<double>(stats.batches))
            << ", largest " << stats.largest_batch << "; "
            << stats.shed << " shed under backpressure)\n";

  // --- 4. Bitwise check against the training-side evaluator --------------
  auto final_snapshot = server.Acquire();
  Assignment served = final_snapshot->AssignBatch(data);
  Assignment reference = ComputeAssignment(data, final_snapshot->centers());
  const bool identical = served.cluster == reference.cluster &&
                         served.cost == reference.cost;
  std::cout << "final snapshot v" << final_snapshot->version()
            << ": AssignBatch bitwise identical to ComputeAssignment: "
            << (identical ? "yes" : "NO — this is a bug") << "\n";
  std::remove(model_path.c_str());
  return identical ? 0 : 1;
}
