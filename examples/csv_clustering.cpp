// Clustering data from a CSV file: the workflow a downstream user runs on
// their own data. Reads points (optionally standardizing features whose
// scales differ wildly), fits, and writes per-row cluster assignments.
//
//   ./csv_clustering --input=points.csv [--k=10] [--standardize]
//                    [--output=assignments.csv]
//
// Run without --input to see it on a bundled synthetic file.

#include <fstream>
#include <iostream>

#include "core/kmeans.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "data/transform.h"
#include "eval/args.h"
#include "rng/rng.h"

int main(int argc, char** argv) {
  using namespace kmeansll;
  eval::Args args(argc, argv);
  const int64_t k = args.GetInt("k", 10);
  std::string input = args.GetString("input", "");
  const std::string output =
      args.GetString("output", "/tmp/kmeansll_assignments.csv");

  if (input.empty()) {
    // No file supplied: write a demo CSV so the example is runnable.
    input = "/tmp/kmeansll_demo_points.csv";
    auto demo = data::GenerateSpamLike({.n = 2000}, rng::Rng(3));
    demo.status().Abort("demo data");
    data::WriteCsv(demo->data.points(), input).Abort("demo csv");
    std::cout << "(no --input given; wrote demo data to " << input
              << ")\n";
  }

  auto loaded = data::ReadCsv(input, data::CsvOptions());
  loaded.status().Abort("ReadCsv");
  Dataset data = std::move(loaded).ValueOrDie();
  std::cout << "loaded " << data.n() << " points x " << data.dim()
            << " features from " << input << "\n";

  if (args.GetBool("standardize", false)) {
    data::ColumnStats stats = data::ComputeColumnStats(data.points());
    data = Dataset(data::Standardize(data.points(), stats));
    std::cout << "standardized features to zero mean / unit variance\n";
  }

  KMeansConfig config;
  config.k = k;
  config.init = InitMethod::kKMeansParallel;
  config.seed = 42;
  config.lloyd.max_iterations = 100;
  auto report = KMeans(config).Fit(data);
  report.status().Abort("Fit");
  std::cout << "k=" << k << ": final cost " << report->final_cost
            << " after " << report->lloyd_iterations
            << " Lloyd iterations\n";

  // Write "row_index,cluster" pairs.
  std::ofstream out(output);
  out << "row,cluster\n";
  for (size_t i = 0; i < report->assignment.cluster.size(); ++i) {
    out << i << "," << report->assignment.cluster[i] << "\n";
  }
  std::cout << "assignments written to " << output << "\n";
  return 0;
}
