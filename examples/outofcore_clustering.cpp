// Out-of-core clustering: write a dataset as binary shards, reopen it as
// a memory-mapped ShardedDataset whose resident window is smaller than
// the data, and run the full k-means|| + Lloyd pipeline over it — then
// verify the result is bitwise identical to the in-memory run.
//
// This is the paper's actual regime: the data is "too large to fit in
// main memory", k-means|| does its O(log n) passes over partitioned
// disk-resident rows, and only the pinned window plus the model state is
// ever resident.
//
//   ./outofcore_clustering [--k=20] [--n=20000] [--shards=8] [--seed=42]

#include <cstdio>
#include <iostream>
#include <string>

#include "core/kmeans.h"
#include "data/shard_store.h"
#include "data/synthetic.h"
#include "eval/args.h"
#include "rng/rng.h"

int main(int argc, char** argv) {
  using namespace kmeansll;
  eval::Args args(argc, argv);
  const int64_t k = args.GetInt("k", 20);
  const int64_t n = args.GetInt("n", 20000);
  const int64_t shards = args.GetInt("shards", 8);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  // 1. Materialize a dataset once so we have something to shard. In a
  //    real pipeline the shards would be written by the ingest job and
  //    the full dataset would never exist in memory.
  data::GaussMixtureParams params;
  params.n = n;
  params.k = k;
  params.dim = 64;
  params.center_stddev = 5.0;
  auto generated = data::GenerateGaussMixture(params, rng::Rng(seed));
  generated.status().Abort("data generation");
  const Dataset& data = generated->data;

  // 2. Stream it into binary shards through the ShardWriter sink — the
  //    ingest path: rows are appended block by block and cut into
  //    standalone KMLLDATA shard files as they fill, so a real producer
  //    never needs the full dataset in memory. (The one-call
  //    data::WriteShards covers the already-materialized case.)
  const std::string manifest = "/tmp/outofcore_demo.kml";
  const int64_t rows_per_shard = (n + shards - 1) / shards;
  data::ShardWriter::Options sink_options;
  sink_options.rows_per_shard = rows_per_shard;
  sink_options.has_weights = data.has_weights();
  sink_options.has_labels = data.has_labels();
  auto writer =
      data::ShardWriter::Open(manifest, data.dim(), sink_options);
  writer.status().Abort("shard writer open");
  {
    InMemorySource ingest = data.AsSource();
    const int64_t block = 1024;  // simulated ingest granularity
    for (int64_t row = 0; row < n; row += block) {
      writer->AppendRange(ingest, row, std::min(row + block, n))
          .Abort("shard append");
    }
  }
  auto written = writer->Finalize();
  written.status().Abort("shard finalize");
  std::cout << "streamed " << written->shards.size() << " shards for "
            << n << " points in R^" << params.dim << "\n";

  // 3. Reopen out-of-core: a window of ~3 shards means roughly a third
  //    of the data is memory-mapped at any moment; the LRU evicts the
  //    rest as the scans stream by, while the background prefetcher
  //    (on by default) maps and warms each next shard ahead of the scan
  //    cursor so the streaming passes stay compute-bound.
  const int64_t shard_bytes =
      32 + rows_per_shard * params.dim * 8 + rows_per_shard * 4;
  data::ShardedDatasetOptions open_options;
  open_options.max_resident_bytes = 3 * shard_bytes;
  auto sharded = data::ShardedDataset::Open(manifest, open_options);
  sharded.status().Abort("shard open");

  // 4. The full pipeline over the sharded source. Every pass — the
  //    k-means|| rounds, the Lloyd iterations, the final assignment —
  //    streams pinned shard views through the same engine the in-memory
  //    path uses.
  KMeansConfig config;
  config.k = k;
  config.init = InitMethod::kKMeansParallel;
  config.kmeansll.oversampling = 2.0 * static_cast<double>(k);
  config.kmeansll.rounds = 5;
  config.lloyd.max_iterations = 50;
  config.seed = seed;
  config.num_threads = 4;
  KMeans model(config);

  auto report = model.Fit(*sharded);
  report.status().Abort("out-of-core fit");
  std::cout << "out-of-core fit: seed cost " << report->seed_cost
            << " -> final cost " << report->final_cost << " in "
            << report->lloyd_iterations << " Lloyd iterations\n";

  auto stats = sharded->io_stats();
  std::cout << "io: " << stats.maps << " shard maps, " << stats.evictions
            << " evictions, peak resident " << stats.peak_resident_bytes
            << " bytes (window " << open_options.max_resident_bytes
            << ")\n";
  std::cout << "prefetch: " << stats.prefetch_issued << " issued, "
            << stats.prefetch_hits << " hits, " << stats.prefetch_wasted
            << " wasted; scan threads stalled on shard I/O for "
            << stats.stall_nanos / 1000000.0 << " ms total\n";

  // 5. Determinism check: the in-memory run must match bitwise.
  auto in_memory = model.Fit(data);
  in_memory.status().Abort("in-memory fit");
  const bool identical =
      report->centers == in_memory->centers &&
      report->final_cost == in_memory->final_cost &&
      report->assignment.cluster == in_memory->assignment.cluster;
  std::cout << "bitwise identical to in-memory run: "
            << (identical ? "yes" : "NO — this is a bug") << "\n";
  return identical ? 0 : 1;
}
