// Side-by-side comparison of all four initialization methods on one
// dataset — a miniature of the paper's Tables 1/5/6 in a single run.
//
//   ./compare_initializations [--k=50] [--n=10000] [--trials=5]

#include <iostream>
#include <vector>

#include "core/kmeans.h"
#include "data/synthetic.h"
#include "eval/args.h"
#include "eval/table.h"
#include "eval/trials.h"
#include "rng/rng.h"

int main(int argc, char** argv) {
  using namespace kmeansll;
  eval::Args args(argc, argv);
  const int64_t k = args.GetInt("k", 50);
  const int64_t n = args.GetInt("n", 10000);
  const int64_t trials = args.GetInt("trials", 5);

  data::GaussMixtureParams params;
  params.n = n;
  params.k = k;
  params.dim = 15;
  params.center_stddev = 10.0;
  auto generated = data::GenerateGaussMixture(params, rng::Rng(7));
  generated.status().Abort("data generation");
  const Dataset& data = generated->data;

  struct Spec {
    const char* name;
    InitMethod init;
  };
  const std::vector<Spec> specs = {
      {"Random", InitMethod::kRandom},
      {"k-means++", InitMethod::kKMeansPP},
      {"k-means|| (l=2k,r=5)", InitMethod::kKMeansParallel},
      {"Partition", InitMethod::kPartition},
  };

  eval::TablePrinter table({"method", "seed cost", "final cost",
                            "lloyd iters", "intermediate", "seconds"});
  for (const Spec& spec : specs) {
    auto summaries = eval::RunMultiTrials(trials, [&](int64_t t) {
      KMeansConfig config;
      config.k = k;
      config.init = spec.init;
      config.seed = 100 + static_cast<uint64_t>(t);
      config.kmeansll.oversampling = 2.0 * static_cast<double>(k);
      config.kmeansll.rounds = 5;
      config.lloyd.max_iterations = 300;
      auto report = KMeans(config).Fit(data);
      report.status().Abort("Fit");
      return std::vector<double>{
          report->seed_cost, report->final_cost,
          static_cast<double>(report->lloyd_iterations),
          static_cast<double>(report->init.intermediate_centers),
          report->total_seconds};
    });
    table.AddRow({spec.name, eval::Cell(summaries[0].median, 3),
                  eval::Cell(summaries[1].median, 3),
                  eval::Cell(summaries[2].median, 1),
                  eval::CellInt(static_cast<int64_t>(summaries[3].median)),
                  eval::Cell(summaries[4].median, 2)});
  }

  std::cout << "GaussMixture n=" << n << " d=15 k=" << k << ", medians over "
            << trials << " trials\n\n";
  table.Print(std::cout);
  std::cout << "\nReading the table:\n"
               "  * seeded methods land orders of magnitude below Random "
               "on seed cost;\n"
               "  * k-means|| needs only r=5 passes (vs k for k-means++) "
               "and a tiny\n    intermediate set (vs Partition);\n"
               "  * Lloyd converges fastest from k-means|| seeds.\n";
  return 0;
}
