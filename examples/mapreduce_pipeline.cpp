// The paper's §3.5 pipeline end to end on the MapReduce engine: parallel
// k-means|| initialization and parallel Lloyd iterations over dataset
// partitions, with Hadoop-style job counters — and a demonstration that
// the result does not depend on how the data is partitioned.
//
//   ./mapreduce_pipeline [--n=20000] [--k=50] [--partitions=16]

#include <iostream>

#include "core/kmeans.h"
#include "data/synthetic.h"
#include "eval/args.h"
#include "rng/rng.h"

int main(int argc, char** argv) {
  using namespace kmeansll;
  eval::Args args(argc, argv);
  const int64_t n = args.GetInt("n", 20000);
  const int64_t k = args.GetInt("k", 50);
  const int64_t partitions = args.GetInt("partitions", 16);

  data::KddLikeParams params;
  params.n = n;
  auto generated = data::GenerateKddLike(params, rng::Rng(99));
  generated.status().Abort("data generation");
  const Dataset& data = generated->data;
  std::cout << "KDD-like dataset: " << data.n() << " x " << data.dim()
            << ", " << partitions << " partitions ('mappers')\n\n";

  KMeansConfig config;
  config.k = k;
  config.init = InitMethod::kKMeansParallel;
  config.kmeansll.rounds = 5;
  config.seed = 11;
  config.lloyd.max_iterations = 20;
  config.use_mapreduce = true;
  config.num_partitions = partitions;
  config.num_threads = 4;  // engine workers executing map tasks

  auto report = KMeans(config).Fit(data);
  report.status().Abort("Fit");

  std::cout << "seed cost  : " << report->seed_cost << "\n"
            << "final cost : " << report->final_cost << "\n"
            << "lloyd iters: " << report->lloyd_iterations << "\n\n"
            << "MapReduce job counters:\n";
  for (const auto& [name, value] : report->counters.Snapshot()) {
    std::cout << "  " << name << " = " << value << "\n";
  }

  // Partition-count invariance: per-point randomness is hashed from
  // (seed, round, index), so re-running with a different partitioning
  // selects the same candidates and produces the same seed cost.
  KMeansConfig other = config;
  other.num_partitions = 3;
  auto rerun = KMeans(other).Fit(data);
  rerun.status().Abort("rerun");
  std::cout << "\nre-run with 3 partitions instead of " << partitions
            << ": seed cost " << rerun->seed_cost << " (delta "
            << rerun->seed_cost - report->seed_cost << ")\n";
  return 0;
}
