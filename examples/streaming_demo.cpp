// Clustering an unbounded stream with bounded memory: points arrive one
// at a time, blocks are compressed on the fly (k-means#), and the final
// centers come from reclustering the retained coreset — the one-pass
// regime of the streaming-k-means literature the paper builds on.
//
//   ./streaming_demo [--k=20] [--n=50000] [--block=2048]

#include <iostream>
#include <span>

#include "clustering/cost.h"
#include "clustering/coreset.h"
#include "clustering/streaming.h"
#include "core/kmeans.h"
#include "data/synthetic.h"
#include "data/transform.h"
#include "eval/args.h"
#include "rng/rng.h"

int main(int argc, char** argv) {
  using namespace kmeansll;
  eval::Args args(argc, argv);
  const int64_t k = args.GetInt("k", 20);
  const int64_t n = args.GetInt("n", 50000);
  const int64_t block = args.GetInt("block", 2048);

  // The "stream": a shuffled mixture we pretend not to be able to hold.
  data::GaussMixtureParams params;
  params.n = n;
  params.k = k;
  params.dim = 12;
  params.center_stddev = 8.0;
  auto generated = data::GenerateGaussMixture(params, rng::Rng(21));
  generated.status().Abort("data generation");
  Dataset stream = data::ShuffleRows(generated->data, rng::Rng(22));

  StreamingOptions options;
  options.k = k;
  options.dim = stream.dim();
  options.block_size = block;
  options.seed = 23;
  auto clusterer = StreamingKMeans::Create(options);
  clusterer.status().Abort("Create");

  for (int64_t i = 0; i < stream.n(); ++i) {
    clusterer
        ->Add(std::span<const double>(stream.Point(i),
                                      static_cast<size_t>(stream.dim())))
        .Abort("Add");
  }
  std::cout << "streamed " << clusterer->points_seen()
            << " points; retained coreset of " << clusterer->coreset_size()
            << " weighted representatives ("
            << 100.0 * static_cast<double>(clusterer->coreset_size()) /
                   static_cast<double>(n)
            << "% of the stream)\n";

  auto centers = clusterer->Finalize();
  centers.status().Abort("Finalize");
  double streaming_cost = ComputeCost(stream, *centers);

  // Batch reference: the full pipeline with everything in memory.
  KMeansConfig config;
  config.k = k;
  config.seed = 24;
  config.lloyd.max_iterations = 100;
  auto batch = KMeans(config).Fit(stream);
  batch.status().Abort("batch Fit");

  std::cout << "one-pass streaming cost : " << streaming_cost << "\n"
            << "batch k-means|| cost    : " << batch->final_cost << "\n"
            << "streaming/batch ratio   : "
            << streaming_cost / batch->final_cost << "\n\n";

  // Bonus: the reusable-coreset workflow — build once, sweep k cheaply.
  auto coreset = BuildCoreset(stream, 30 * k, rng::Rng(25));
  coreset.status().Abort("BuildCoreset");
  std::cout << "coreset sweep over k (built once, " << coreset->n()
            << " weighted points):\n";
  for (int64_t sweep_k : {k / 2, k, 2 * k}) {
    KMeansConfig sweep;
    sweep.k = sweep_k;
    sweep.seed = 26;
    sweep.lloyd.max_iterations = 50;
    auto model = KMeans(sweep).Fit(*coreset);
    model.status().Abort("coreset Fit");
    std::cout << "  k=" << sweep_k << ": cost on full stream "
              << ComputeCost(stream, model->centers) << "\n";
  }
  return 0;
}
