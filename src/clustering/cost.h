// Clustering cost φ_X(C) = Σ_x w_x · min_c ||x - c||² and full
// point-to-center assignment. These are the primitives shared by every
// initializer, Lloyd's iteration, and the evaluation harness; both have a
// sequential path and a deterministic thread-pool path.
//
// Both accept optional precomputed point norms (RowSquaredNorms of
// data.points(), length n). The norms only feed the expanded kernel and
// are a pure function of the immutable dataset, so callers that evaluate
// several center sets against the same data — Lloyd iterations, the
// best-of-num_runs seeding loop — compute them once and pass them to
// every call instead of paying the O(n·d) norm pass each time. Passing
// null keeps the self-contained behavior (norms derived internally);
// results are bitwise identical either way.

#ifndef KMEANSLL_CLUSTERING_COST_H_
#define KMEANSLL_CLUSTERING_COST_H_

#include "clustering/types.h"
#include "distance/nearest.h"
#include "matrix/dataset.h"
#include "matrix/dataset_view.h"
#include "matrix/matrix.h"
#include "parallel/thread_pool.h"

namespace kmeansll {

/// The reduction behind ComputeCost / ComputeAssignment, over a
/// caller-provided frozen search: one panel scan of `search`'s centers
/// across `data`, folding w_x · d²(x, C) into per-chunk Kahan partials
/// (combined in chunk order) and, when `out_cluster` is non-null (length
/// n, any initial contents), writing each point's nearest-center index.
/// Returns φ_X(C).
///
/// `search` must be frozen (panels packed). Results are bitwise identical
/// to ComputeCost/ComputeAssignment over the same centers at any pool
/// size — that is the point: a serving-layer CenterIndex holds one frozen
/// search for its snapshot's lifetime and calls this with zero per-query
/// packing cost, yet answers exactly like the training-side evaluators
/// (the AssignBatch ≡ ComputeAssignment contract in
/// docs/ARCHITECTURE.md "Serving layer"). `point_norms` (length n) may
/// be null.
double ReduceNearestWithSearch(const DatasetSource& data,
                               const NearestCenterSearch& search,
                               ThreadPool* pool, const double* point_norms,
                               int32_t* out_cluster);

/// φ_X(C); `pool` may be null for sequential execution. Centers must be
/// non-empty and match the data dimension. `point_norms` (length n) may
/// be null.
///
/// The DatasetSource overloads are the primary implementation: they
/// stream pinned row blocks through the frozen-panel engine, so the same
/// reduction serves in-memory datasets and disk-resident shard stores.
/// Results are bitwise identical between the two for the same rows (the
/// per-chunk Kahan chains fold rows in ascending order regardless of how
/// the chunk splits across blocks).
double ComputeCost(const DatasetSource& data, const Matrix& centers,
                   ThreadPool* pool = nullptr,
                   const double* point_norms = nullptr);
double ComputeCost(const Dataset& data, const Matrix& centers,
                   ThreadPool* pool = nullptr,
                   const double* point_norms = nullptr);

/// Nearest-center assignment for every point plus the implied cost.
/// `point_norms` (length n) may be null.
Assignment ComputeAssignment(const DatasetSource& data,
                             const Matrix& centers,
                             ThreadPool* pool = nullptr,
                             const double* point_norms = nullptr);
Assignment ComputeAssignment(const Dataset& data, const Matrix& centers,
                             ThreadPool* pool = nullptr,
                             const double* point_norms = nullptr);

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_COST_H_
