// Clustering cost φ_X(C) = Σ_x w_x · min_c ||x - c||² and full
// point-to-center assignment. These are the primitives shared by every
// initializer, Lloyd's iteration, and the evaluation harness; both have a
// sequential path and a deterministic thread-pool path.

#ifndef KMEANSLL_CLUSTERING_COST_H_
#define KMEANSLL_CLUSTERING_COST_H_

#include "clustering/types.h"
#include "matrix/dataset.h"
#include "matrix/matrix.h"
#include "parallel/thread_pool.h"

namespace kmeansll {

/// φ_X(C); `pool` may be null for sequential execution. Centers must be
/// non-empty and match the data dimension.
double ComputeCost(const Dataset& data, const Matrix& centers,
                   ThreadPool* pool = nullptr);

/// Nearest-center assignment for every point plus the implied cost.
Assignment ComputeAssignment(const Dataset& data, const Matrix& centers,
                             ThreadPool* pool = nullptr);

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_COST_H_
