// k-means|| initialization — Algorithm 2 of the paper, the central
// contribution of "Scalable K-Means++" (Bahmani et al., VLDB 2012).
//
// Instead of k strictly sequential D² draws (k-means++), k-means|| runs r
// rounds; each round samples ~ℓ points simultaneously with probability
// p_x = ℓ·d²(x, C)/φ_X(C), then the O(ℓ·r) chosen candidates are weighted
// by the number of points they attract and reclustered down to k with
// weighted k-means++ (Steps 7–8).
//
// Two sampling modes (paper §5.3):
//  * Bernoulli (Algorithm 2 as stated): each point tossed independently,
//    E[#chosen per round] = ℓ.
//  * Exact-ℓ: exactly ℓ points drawn from the joint D² distribution per
//    round (used for the Figure 5.1 variance-controlled sweeps). We
//    realize it with an Efraimidis–Spirakis weighted reservoir, which is
//    one-pass and partition-mergeable.
//
// Per-point randomness is derived by hashing (seed, round, point index),
// so results are identical for any thread/partition count.

#ifndef KMEANSLL_CLUSTERING_INIT_KMEANSLL_H_
#define KMEANSLL_CLUSTERING_INIT_KMEANSLL_H_

#include <cstdint>
#include <string>

#include "clustering/init_kmeanspp.h"
#include "clustering/types.h"
#include "common/result.h"
#include "matrix/dataset.h"
#include "parallel/thread_pool.h"
#include "rng/rng.h"

namespace kmeansll {

/// How Step 8 reduces the candidate set to k centers.
enum class ReclusterMethod {
  /// Weighted k-means++ seeding only — the paper's choice ("we use
  /// k-means++ for reclustering in Step 8").
  kWeightedKMeansPP,
  /// Weighted k-means++ followed by weighted Lloyd refinement on the
  /// coreset (the Spark MLlib practice); never hurts, costs O(coreset·k).
  kWeightedKMeansPPPlusLloyd,
};

/// Options for k-means||.
struct KMeansLLOptions {
  /// Oversampling factor ℓ. The paper recommends Θ(k) and evaluates
  /// ℓ/k ∈ {0.1, 0.5, 1, 2, 10}; <= 0 selects the default 2k.
  double oversampling = -1.0;
  /// Number of sampling rounds r. The analysis uses O(log ψ); §5
  /// shows r = 5 suffices in practice (the default). Use
  /// kAutoRounds for the ⌈ln ψ⌉ theoretical schedule.
  int64_t rounds = 5;
  /// Sentinel for `rounds`: run ⌈ln ψ⌉ rounds (capped at 40).
  static constexpr int64_t kAutoRounds = -1;
  /// Exact-ℓ joint sampling instead of independent Bernoulli tosses.
  bool exact_ell = false;
  /// Step 8 reduction method. The default refines the weighted k-means++
  /// seed with weighted Lloyd on the coreset: this is what reproduces the
  /// paper's observation that k-means|| seed costs are *lower* than
  /// k-means++ (Tables 1–2), and matches the Spark MLlib realization.
  ReclusterMethod recluster = ReclusterMethod::kWeightedKMeansPPPlusLloyd;
  /// Lloyd iterations on the weighted coreset when reclustering with
  /// kWeightedKMeansPPPlusLloyd.
  int64_t recluster_lloyd_iterations = 30;
  /// Candidate draws per k-means++ step in the reclustering phase.
  KMeansPPOptions recluster_kmeanspp;
  /// When non-empty, the sampling loop writes a KMLLCKPT seeding
  /// checkpoint (candidate set + round potentials — see
  /// data/checkpoint_io.h) atomically at this path every
  /// `checkpoint_every` rounds, and a run finding a valid checkpoint for
  /// the same job resumes the remaining rounds bitwise-identically (the
  /// distance tracker is rebuilt by replaying the stored candidates).
  /// Stale or corrupt checkpoints are ignored; the file is removed when
  /// seeding completes.
  std::string checkpoint_path;
  /// Rounds between checkpoint saves (values < 1 behave as 1).
  int64_t checkpoint_every = 1;
};

/// Runs k-means|| (Algorithm 2). Fails if k <= 0, k > n, or the options
/// are inconsistent. `pool` (may be null) parallelizes the per-round
/// distance scans through the batch engine; the deterministic chunking
/// keeps results bitwise identical at any thread count.
///
/// If after r rounds fewer than k candidates were selected (possible when
/// r·ℓ < k; see Figures 5.2/5.3), the candidate set is returned as-is
/// without reclustering — downstream Lloyd then runs with < k centers,
/// reproducing the degraded-quality regime the paper reports.
Result<InitResult> KMeansLLInit(const Dataset& data, int64_t k,
                                rng::Rng rng,
                                const KMeansLLOptions& options = {},
                                ThreadPool* pool = nullptr);

/// As above over a DatasetSource: every data-wide pass (round updates,
/// sampling scans, the Step 7 weighting) streams pinned row blocks. This
/// is the paper's intended regime — k-means|| over partitioned,
/// disk-resident data — and produces bitwise-identical centers to the
/// in-memory overload for the same rows (tests/shard_store_test.cc).
Result<InitResult> KMeansLLInit(const DatasetSource& data, int64_t k,
                                rng::Rng rng,
                                const KMeansLLOptions& options = {},
                                ThreadPool* pool = nullptr);

namespace internal {

/// Resolves ℓ (<=0 -> 2k) and validates; exposed for the MapReduce driver.
Result<double> ResolveOversampling(double oversampling, int64_t k);

/// Resolves the round count, applying the kAutoRounds schedule given the
/// initial potential ψ.
int64_t ResolveRounds(int64_t rounds, double psi);

/// Step 8: weight the candidates and recluster to k centers. `weights`
/// holds, for each candidate, the total point weight attracted to it.
Result<Matrix> ReclusterCandidates(const Matrix& candidates,
                                   const std::vector<double>& weights,
                                   int64_t k, rng::Rng rng,
                                   const KMeansLLOptions& options,
                                   InitTelemetry* telemetry);

}  // namespace internal
}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_INIT_KMEANSLL_H_
