#include "clustering/init_kmeanspp.h"

#include <cstring>
#include <limits>
#include <vector>

#include "common/math_util.h"
#include "common/timer.h"
#include "distance/batch.h"
#include "distance/l2.h"
#include "distance/nearest.h"
#include "parallel/parallel_for.h"
#include "rng/discrete.h"

namespace kmeansll {

namespace {

/// Draws one index with probability proportional to `weights`; when every
/// weight is zero (all points coincide with chosen centers) falls back to
/// a uniform draw, which adds a duplicate center — the only consistent
/// choice left.
int64_t SampleProportional(const std::vector<double>& weights,
                           rng::Rng& rng) {
  auto sampler = rng::PrefixSumSampler::Build(weights);
  if (sampler.ok()) return sampler->Sample(rng);
  return static_cast<int64_t>(rng.NextBounded(weights.size()));
}

/// Potential after hypothetically adding `candidate` (a 1 × d matrix) to
/// the center set whose per-point distances are in `tracker`. One blocked
/// scan; per-chunk Kahan partials combined in chunk order keep the result
/// bitwise identical at any thread count.
double PotentialWithCandidate(const DatasetSource& data,
                              const MinDistanceTracker& tracker,
                              const Matrix& candidate, ThreadPool* pool) {
  auto map = [&](IndexRange r) {
    const auto len = static_cast<size_t>(r.size());
    std::vector<double> d2(len);
    std::memcpy(d2.data(), tracker.distances2().data() + r.begin,
                len * sizeof(double));
    KahanSum partial;
    ForEachBlock(data, r.begin, r.end, [&](const DatasetView& v) {
      const int64_t off = v.first_row() - r.begin;
      // Plain kernel: against a single center the expanded form saves
      // nothing and would recompute every point norm per candidate. The
      // argmin index is irrelevant here (null).
      BatchNearestMerge(v.points(), IndexRange{0, v.rows()},
                        /*point_norms=*/nullptr, candidate,
                        /*first_center=*/0, /*center_norms=*/nullptr,
                        BatchKernel::kPlain, d2.data() + off,
                        /*best_index=*/nullptr);
      for (int64_t i = 0; i < v.rows(); ++i) {
        partial.Add(v.Weight(i) * d2[static_cast<size_t>(off + i)]);
      }
    });
    return partial;
  };
  auto combine = [](KahanSum a, KahanSum b) {
    a.Merge(b);
    return a;
  };
  const ScanSchedule schedule = MakeScanSchedule(data, data.n(), pool);
  return ParallelReduce<KahanSum>(pool, data.n(), KahanSum(), map, combine,
                                  &schedule)
      .Total();
}

}  // namespace

Result<InitResult> KMeansPPInit(const DatasetSource& data, int64_t k,
                                rng::Rng rng,
                                const KMeansPPOptions& options,
                                ThreadPool* pool) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > data.n()) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds n=" + std::to_string(data.n()));
  }
  if (options.candidates_per_step < 1) {
    return Status::InvalidArgument("candidates_per_step must be >= 1");
  }
  if (!(data.TotalWeight() > 0.0)) {
    return Status::InvalidArgument("total weight must be positive");
  }

  WallTimer timer;
  rng::Rng pick_rng = rng.Fork(rng::StreamPurpose::kInitialCenter);
  rng::Rng step_rng = rng.Fork(rng::StreamPurpose::kRoundSampling);

  InitResult result;
  result.centers = Matrix(data.dim());
  result.centers.ReserveRows(k);

  // Appends global row `row` of the source to the growing center set.
  auto append_point = [&](int64_t row) {
    PinnedBlock pin = data.Pin(row, row + 1);
    result.centers.AppendRow(pin.view().Point(0));
  };

  // Step 1: first center, weight-proportional (uniform when unweighted).
  {
    std::vector<double> w(static_cast<size_t>(data.n()));
    ForEachBlock(data, 0, data.n(), [&](const DatasetView& v) {
      for (int64_t i = 0; i < v.rows(); ++i) {
        w[static_cast<size_t>(v.first_row() + i)] = v.Weight(i);
      }
    });
    int64_t first = SampleProportional(w, pick_rng);
    append_point(first);
  }

  MinDistanceTracker tracker(data, pool);
  tracker.AddCenters(result.centers, 0);
  result.telemetry.data_passes = 1;

  // Steps 2..k: D²-weighted draws.
  Matrix candidate(1, data.dim());
  for (int64_t t = 1; t < k; ++t) {
    std::vector<double> weights = tracker.WeightedContributions();
    int64_t chosen;
    if (options.candidates_per_step == 1) {
      chosen = SampleProportional(weights, step_rng);
    } else {
      chosen = -1;
      double best_potential = std::numeric_limits<double>::infinity();
      for (int64_t c = 0; c < options.candidates_per_step; ++c) {
        int64_t drawn = SampleProportional(weights, step_rng);
        {
          PinnedBlock pin = data.Pin(drawn, drawn + 1);
          std::memcpy(candidate.Row(0), pin.view().Point(0),
                      static_cast<size_t>(data.dim()) * sizeof(double));
        }
        double potential =
            PotentialWithCandidate(data, tracker, candidate, pool);
        if (potential < best_potential) {
          best_potential = potential;
          chosen = drawn;
        }
      }
      result.telemetry.data_passes += options.candidates_per_step;
    }
    append_point(chosen);
    tracker.AddCenters(result.centers, t);
    result.telemetry.data_passes += 1;
    result.telemetry.round_potentials.push_back(tracker.Potential());
  }

  result.telemetry.rounds = k;
  result.telemetry.intermediate_centers = 0;
  result.telemetry.sampling_seconds = timer.ElapsedSeconds();
  return result;
}

Result<InitResult> KMeansPPInit(const Dataset& data, int64_t k, rng::Rng rng,
                                const KMeansPPOptions& options,
                                ThreadPool* pool) {
  InMemorySource source = data.AsSource();
  return KMeansPPInit(source, k, rng, options, pool);
}

}  // namespace kmeansll
