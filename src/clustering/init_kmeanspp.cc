#include "clustering/init_kmeanspp.h"

#include <limits>
#include <vector>

#include "common/math_util.h"
#include "common/timer.h"
#include "distance/l2.h"
#include "distance/nearest.h"
#include "rng/discrete.h"

namespace kmeansll {

namespace {

/// Draws one index with probability proportional to `weights`; when every
/// weight is zero (all points coincide with chosen centers) falls back to
/// a uniform draw, which adds a duplicate center — the only consistent
/// choice left.
int64_t SampleProportional(const std::vector<double>& weights,
                           rng::Rng& rng) {
  auto sampler = rng::PrefixSumSampler::Build(weights);
  if (sampler.ok()) return sampler->Sample(rng);
  return static_cast<int64_t>(rng.NextBounded(weights.size()));
}

/// Potential after hypothetically adding `candidate` to the center set
/// whose per-point distances are in `tracker`.
double PotentialWithCandidate(const Dataset& data,
                              const MinDistanceTracker& tracker,
                              const double* candidate) {
  KahanSum sum;
  for (int64_t i = 0; i < data.n(); ++i) {
    double d2 = SquaredL2(data.Point(i), candidate, data.dim());
    double cur = tracker.Distance2(i);
    sum.Add(data.Weight(i) * (d2 < cur ? d2 : cur));
  }
  return sum.Total();
}

}  // namespace

Result<InitResult> KMeansPPInit(const Dataset& data, int64_t k, rng::Rng rng,
                                const KMeansPPOptions& options) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > data.n()) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds n=" + std::to_string(data.n()));
  }
  if (options.candidates_per_step < 1) {
    return Status::InvalidArgument("candidates_per_step must be >= 1");
  }
  if (!(data.TotalWeight() > 0.0)) {
    return Status::InvalidArgument("total weight must be positive");
  }

  WallTimer timer;
  rng::Rng pick_rng = rng.Fork(rng::StreamPurpose::kInitialCenter);
  rng::Rng step_rng = rng.Fork(rng::StreamPurpose::kRoundSampling);

  InitResult result;
  result.centers = Matrix(data.dim());
  result.centers.ReserveRows(k);

  // Step 1: first center, weight-proportional (uniform when unweighted).
  {
    std::vector<double> w(static_cast<size_t>(data.n()));
    for (int64_t i = 0; i < data.n(); ++i) w[static_cast<size_t>(i)] = data.Weight(i);
    int64_t first = SampleProportional(w, pick_rng);
    result.centers.AppendRow(data.Point(first));
  }

  MinDistanceTracker tracker(data);
  tracker.AddCenters(result.centers, 0);
  result.telemetry.data_passes = 1;

  // Steps 2..k: D²-weighted draws.
  for (int64_t t = 1; t < k; ++t) {
    std::vector<double> weights = tracker.WeightedContributions();
    int64_t chosen;
    if (options.candidates_per_step == 1) {
      chosen = SampleProportional(weights, step_rng);
    } else {
      chosen = -1;
      double best_potential = std::numeric_limits<double>::infinity();
      for (int64_t c = 0; c < options.candidates_per_step; ++c) {
        int64_t candidate = SampleProportional(weights, step_rng);
        double potential =
            PotentialWithCandidate(data, tracker, data.Point(candidate));
        if (potential < best_potential) {
          best_potential = potential;
          chosen = candidate;
        }
      }
      result.telemetry.data_passes += options.candidates_per_step;
    }
    result.centers.AppendRow(data.Point(chosen));
    tracker.AddCenters(result.centers, t);
    result.telemetry.data_passes += 1;
    result.telemetry.round_potentials.push_back(tracker.Potential());
  }

  result.telemetry.rounds = k;
  result.telemetry.intermediate_centers = 0;
  result.telemetry.sampling_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace kmeansll
