// The Partition baseline (paper §4.2.1): the one-pass streaming algorithm
// of Ailon, Jaiswal & Monteleoni (NIPS 2009), built on k-means#.
//
// The input is divided into m equal-sized groups. Each group runs
// k-means#: an over-seeded k-means++ variant that selects 3·ln k points in
// each of k iterations (first batch uniform, later batches D²-weighted).
// Every selected center is weighted by the group points it attracts, and
// vanilla (weighted) k-means++ reclusters the union of the ~3·m·k·ln k
// centers down to k.
//
// With the memory/time-optimal m = sqrt(n/k), the intermediate set has
// expected size 3·sqrt(nk)·ln k — orders of magnitude larger than
// k-means||'s r·ℓ, which is exactly the effect Table 5 measures.

#ifndef KMEANSLL_CLUSTERING_INIT_PARTITION_H_
#define KMEANSLL_CLUSTERING_INIT_PARTITION_H_

#include <cstdint>

#include "clustering/init_kmeanspp.h"
#include "clustering/types.h"
#include "common/result.h"
#include "matrix/dataset.h"
#include "rng/rng.h"

namespace kmeansll {

/// Options for the Partition baseline.
struct PartitionOptions {
  /// Number of groups m; <= 0 selects the paper's optimum round(sqrt(n/k))
  /// (at least 1).
  int64_t num_groups = 0;
  /// Batch size per k-means# iteration; <= 0 selects ceil(3·ln k).
  int64_t batch_size = 0;
  /// k-means# iterations per group; <= 0 selects k.
  int64_t iterations = 0;
};

/// Runs the Partition initializer. Fails if k <= 0 or k > n.
Result<InitResult> PartitionInit(const Dataset& data, int64_t k,
                                 rng::Rng rng,
                                 const PartitionOptions& options = {});

/// As above over a DatasetSource: each group's k-means# pass and
/// weighting scan stream pinned row blocks, so the baseline, too, runs
/// over disk-resident shard stores.
Result<InitResult> PartitionInit(const DatasetSource& data, int64_t k,
                                 rng::Rng rng,
                                 const PartitionOptions& options = {});

namespace internal {

/// Runs k-means# on rows [begin, end) of `data`; returns selected row
/// indices (global). Exposed for unit tests.
std::vector<int64_t> KMeansSharp(const DatasetSource& data, int64_t begin,
                                 int64_t end, int64_t batch,
                                 int64_t iterations, rng::Rng rng);
std::vector<int64_t> KMeansSharp(const Dataset& data, int64_t begin,
                                 int64_t end, int64_t batch,
                                 int64_t iterations, rng::Rng rng);

}  // namespace internal
}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_INIT_PARTITION_H_
