#include "clustering/lloyd_internal.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "data/checkpoint_io.h"
#include "distance/nearest.h"
#include "parallel/parallel_for.h"
#include "rng/rng.h"

namespace kmeansll {
namespace internal {

const double* EnsurePointNorms(const DatasetSource& data,
                               const double* provided,
                               std::vector<double>* storage,
                               ThreadPool* pool, bool* expanded) {
  *expanded = ResolveExpandedKernel(BatchKernel::kAuto, data.dim());
  if (!*expanded) return nullptr;
  if (provided != nullptr) return provided;
  *storage = RowSquaredNorms(data, pool);
  return storage->data();
}

CentroidSums AccumulateCentroids(const DatasetSource& data,
                                 const std::vector<int32_t>& assignment,
                                 int64_t k, ThreadPool* pool) {
  const int64_t d = data.dim();
  auto zero = [k, d]() {
    CentroidSums s;
    s.sums.assign(static_cast<size_t>(k * d), 0.0);
    s.weights.assign(static_cast<size_t>(k), 0.0);
    return s;
  };
  // Rows fold into the per-chunk partials in ascending global order
  // whether the chunk is one in-memory block or several pinned shards, so
  // the sums are bitwise identical either way.
  auto map = [&](IndexRange r) {
    CentroidSums partial = zero();
    ForEachBlock(data, r.begin, r.end, [&](const DatasetView& v) {
      for (int64_t i = 0; i < v.rows(); ++i) {
        const int64_t g = v.first_row() + i;
        auto c = static_cast<int64_t>(assignment[static_cast<size_t>(g)]);
        double w = v.Weight(i);
        const double* point = v.Point(i);
        double* sum = partial.sums.data() + c * d;
        for (int64_t j = 0; j < d; ++j) sum[j] += w * point[j];
        partial.weights[static_cast<size_t>(c)] += w;
      }
    });
    return partial;
  };
  auto combine = [](CentroidSums a, CentroidSums b) {
    for (size_t i = 0; i < a.sums.size(); ++i) a.sums[i] += b.sums[i];
    for (size_t i = 0; i < a.weights.size(); ++i) {
      a.weights[i] += b.weights[i];
    }
    return a;
  };
  const ScanSchedule schedule = MakeScanSchedule(data, data.n(), pool);
  return ParallelReduce<CentroidSums>(pool, data.n(), zero(), map, combine,
                                      &schedule);
}

std::vector<int64_t> CentroidsFromSums(const CentroidSums& totals,
                                       int64_t k, int64_t d,
                                       Matrix* new_centers) {
  *new_centers = Matrix(k, d);
  std::vector<int64_t> empty;
  for (int64_t c = 0; c < k; ++c) {
    double w = totals.weights[static_cast<size_t>(c)];
    double* row = new_centers->Row(c);
    if (w > 0.0) {
      const double* sum = totals.sums.data() + c * d;
      for (int64_t j = 0; j < d; ++j) row[j] = sum[j] / w;
    } else {
      empty.push_back(c);
    }
  }
  return empty;
}

void RepairEmptyClusters(const DatasetSource& data,
                         const Matrix& old_centers,
                         const std::vector<int64_t>& empty,
                         Matrix* new_centers, ThreadPool* pool,
                         const double* point_norms) {
  NearestCenterSearch search(old_centers);
  std::vector<double> d2;
  search.FindAll(data, /*out_index=*/nullptr, &d2, pool, point_norms);
  std::vector<std::pair<double, int64_t>> contributions;
  contributions.reserve(static_cast<size_t>(data.n()));
  ForEachBlock(data, 0, data.n(), [&](const DatasetView& v) {
    for (int64_t i = 0; i < v.rows(); ++i) {
      const int64_t g = v.first_row() + i;
      contributions.emplace_back(v.Weight(i) * d2[static_cast<size_t>(g)],
                                 g);
    }
  });
  std::sort(contributions.begin(), contributions.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  size_t next = 0;
  for (int64_t c : empty) {
    const int64_t source_row = contributions[next].second;
    ++next;
    PinnedBlock pin = data.Pin(source_row, source_row + 1);
    const double* point = pin.view().Point(0);
    double* row = new_centers->Row(c);
    for (int64_t j = 0; j < data.dim(); ++j) row[j] = point[j];
  }
}

double AssignmentCost(const DatasetSource& data, const Matrix& centers,
                      const std::vector<int32_t>& assignment,
                      const double* point_norms,
                      const double* center_norms, bool expanded) {
  const int64_t d = centers.cols();
  std::vector<IndexRange> chunks =
      MakeChunks(data.n(), kDeterministicChunks);
  KahanSum total;
  for (const IndexRange& r : chunks) {
    KahanSum partial;
    ForEachBlock(data, r.begin, r.end, [&](const DatasetView& v) {
      for (int64_t i = 0; i < v.rows(); ++i) {
        const int64_t g = v.first_row() + i;
        auto c = static_cast<int64_t>(assignment[static_cast<size_t>(g)]);
        double d2 = PairDistance2(
            v.Point(i), expanded ? point_norms[g] : 0.0, centers.Row(c),
            expanded ? center_norms[c] : 0.0, d, expanded);
        partial.Add(v.Weight(i) * d2);
      }
    });
    total.Merge(partial);
  }
  return total.Total();
}

LloydCheckpointPlan MakeLloydCheckpointPlan(const DatasetSource& data,
                                            const Matrix& initial_centers,
                                            const LloydOptions& options) {
  LloydCheckpointPlan plan;
  if (options.checkpoint_path.empty()) return plan;
  plan.enabled = true;
  plan.path = options.checkpoint_path;
  plan.every = std::max<int64_t>(1, options.checkpoint_every);
  uint64_t fp = data::HashBytes(
      initial_centers.data(),
      static_cast<size_t>(initial_centers.rows() *
                          initial_centers.cols()) *
          sizeof(double));
  fp = rng::HashCombine(fp, static_cast<uint64_t>(data.n()));
  fp = rng::HashCombine(fp, static_cast<uint64_t>(data.dim()));
  fp = rng::HashCombine(fp,
                        static_cast<uint64_t>(initial_centers.rows()));
  fp = rng::HashCombine(fp,
                        static_cast<uint64_t>(options.max_iterations));
  fp = rng::HashCombine(
      fp, std::bit_cast<uint64_t>(options.relative_tolerance));
  fp = rng::HashCombine(fp, options.track_history ? 1u : 0u);
  plan.fingerprint = fp;
  return plan;
}

bool TryResumeLloyd(const LloydCheckpointPlan& plan, LloydResult* result,
                    Matrix* prev_centers) {
  if (!plan.enabled || !FileExists(plan.path)) return false;
  Result<data::TrainingCheckpoint> loaded =
      data::LoadCheckpoint(plan.path);
  if (!loaded.ok()) {
    KMEANSLL_LOG(Warning) << "ignoring unreadable Lloyd checkpoint at '"
                          << plan.path
                          << "': " << loaded.status().message();
    return false;
  }
  data::TrainingCheckpoint ckpt = std::move(loaded).ValueOrDie();
  if (ckpt.phase != data::TrainingCheckpoint::Phase::kLloyd ||
      ckpt.fingerprint != plan.fingerprint || ckpt.iteration <= 0 ||
      ckpt.prev_centers.rows() != ckpt.centers.rows()) {
    return false;  // a different job's checkpoint: stale, not corrupt
  }
  result->centers = std::move(ckpt.centers);
  result->iterations = ckpt.iteration;
  result->empty_cluster_repairs = ckpt.empty_cluster_repairs;
  result->cost_history = std::move(ckpt.cost_history);
  *prev_centers = std::move(ckpt.prev_centers);
  return true;
}

bool ShouldCheckpoint(const LloydCheckpointPlan& plan, int64_t iter,
                      int64_t max_iterations) {
  return plan.enabled && (iter + 1) % plan.every == 0 &&
         iter + 1 < max_iterations;
}

Status CheckpointLloydIteration(const LloydCheckpointPlan& plan,
                                const Matrix& prev_centers,
                                const LloydResult& result,
                                int64_t* out_retries) {
  data::TrainingCheckpoint ckpt;
  ckpt.phase = data::TrainingCheckpoint::Phase::kLloyd;
  ckpt.fingerprint = plan.fingerprint;
  ckpt.iteration = result.iterations;
  ckpt.centers = result.centers;
  ckpt.prev_centers = prev_centers;
  ckpt.cost_history = result.cost_history;
  ckpt.empty_cluster_repairs = result.empty_cluster_repairs;
  KMEANSLL_RETURN_NOT_OK(data::SaveCheckpoint(ckpt, plan.path, out_retries));
  // Crash tests arm this site nth-call to kill the run at the exact
  // moment a checkpoint became durable.
  return fault::Check("lloyd.kill");
}

void RemoveLloydCheckpoint(const LloydCheckpointPlan& plan) {
  if (plan.enabled) (void)RemoveFileIfExists(plan.path);
}

}  // namespace internal
}  // namespace kmeansll
