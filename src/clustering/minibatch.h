// Mini-batch k-means (Sculley, WWW 2010) — implemented as the extension
// the paper's conclusion points at ("several modifications to the basic
// k-means algorithm… can also be efficiently parallelized"). Pairs
// naturally with k-means|| seeding: initialize with k-means||, then refine
// with cheap stochastic updates instead of full Lloyd passes.

#ifndef KMEANSLL_CLUSTERING_MINIBATCH_H_
#define KMEANSLL_CLUSTERING_MINIBATCH_H_

#include <cstdint>

#include "clustering/types.h"
#include "common/result.h"
#include "matrix/dataset.h"
#include "matrix/matrix.h"
#include "rng/rng.h"

namespace kmeansll {

/// Options for mini-batch refinement.
struct MiniBatchOptions {
  int64_t batch_size = 1024;
  int64_t iterations = 100;
  /// Stop when the max squared center movement in an iteration falls
  /// below this (0 disables early stopping).
  double movement_tolerance = 0.0;
};

/// Outcome of mini-batch k-means.
struct MiniBatchResult {
  Matrix centers;
  double final_cost = 0;       ///< φ on the full dataset, computed once
  int64_t iterations = 0;
  bool converged = false;
};

/// Refines `initial_centers` with per-center-learning-rate stochastic
/// updates on uniformly sampled batches (Sculley's Algorithm 1).
Result<MiniBatchResult> RunMiniBatch(const Dataset& data,
                                     const Matrix& initial_centers,
                                     const MiniBatchOptions& options,
                                     rng::Rng rng);

/// As above over a DatasetSource: each iteration gathers its sampled
/// batch (points + weights) from pinned blocks, so minibatch SGD runs
/// over disk-resident shard stores with the in-memory behavior.
Result<MiniBatchResult> RunMiniBatch(const DatasetSource& data,
                                     const Matrix& initial_centers,
                                     const MiniBatchOptions& options,
                                     rng::Rng rng);

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_MINIBATCH_H_
