#include "clustering/init_random.h"

#include <algorithm>
#include <vector>

#include "common/timer.h"
#include "rng/reservoir.h"

namespace kmeansll {

Result<InitResult> RandomInit(const DatasetSource& data, int64_t k,
                              rng::Rng rng) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > data.n()) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds n=" + std::to_string(data.n()));
  }
  WallTimer timer;
  // Reservoir sampling gives k distinct indices in one pass and works
  // unchanged in a streaming/partitioned setting.
  rng::UniformReservoir reservoir(
      k, rng.Fork(rng::StreamPurpose::kInitialCenter));
  for (int64_t i = 0; i < data.n(); ++i) reservoir.Offer(i);
  std::vector<int64_t> chosen = reservoir.items();
  std::sort(chosen.begin(), chosen.end());

  InitResult result;
  result.centers = GatherPoints(data, chosen);
  result.telemetry.rounds = 0;
  result.telemetry.intermediate_centers = 0;
  result.telemetry.data_passes = 1;
  result.telemetry.sampling_seconds = timer.ElapsedSeconds();
  return result;
}

Result<InitResult> RandomInit(const Dataset& data, int64_t k, rng::Rng rng) {
  InMemorySource source = data.AsSource();
  return RandomInit(source, k, rng);
}

}  // namespace kmeansll
