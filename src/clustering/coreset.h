// Weighted coreset construction via k-means|| oversampling.
//
// Steps 1–7 of Algorithm 2 are exactly a coreset builder: the O(ℓ·r)
// D²-sampled candidates, weighted by the points they attract, form a
// small weighted proxy of the dataset whose k-clustering cost tracks the
// full data's (this is why reclustering the candidates works — Theorem
// 1). This module exposes that machinery directly, so users can build a
// coreset once and run many cheap experiments (different k, repeated
// seedings, hyper-parameter sweeps) against it.

#ifndef KMEANSLL_CLUSTERING_CORESET_H_
#define KMEANSLL_CLUSTERING_CORESET_H_

#include <cstdint>

#include "common/result.h"
#include "matrix/dataset.h"
#include "rng/rng.h"

namespace kmeansll {

/// Options for BuildCoreset.
struct CoresetOptions {
  /// Sampling rounds (more rounds = better-adapted candidates).
  int64_t rounds = 5;
  /// Exact-ℓ joint sampling for a deterministic coreset size.
  bool exact_size = true;
};

/// Builds a weighted coreset of ~`target_size` points. The returned
/// Dataset's weights sum to the input's total weight (every input point
/// hands its weight to its closest representative). Fails if
/// target_size < 1 or target_size > n.
Result<Dataset> BuildCoreset(const Dataset& data, int64_t target_size,
                             rng::Rng rng,
                             const CoresetOptions& options = {});

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_CORESET_H_
