// MapReduce realizations of the paper's algorithms (§3.5).
//
// Each primitive is one MapReduce job over dataset partitions:
//   * cost:    mappers emit partial φ, one reducer sums — "each mapper
//              working on a partition X' can compute φ_X'(C) and the
//              reducer can simply add these values".
//   * sample:  map-only D² selection per partition (Step 4 "each mapper
//              can sample independently").
//   * weights: mappers emit (closest candidate, weight), combiner +
//              reducer sum (Step 7).
//   * Lloyd:   mappers emit (center, (Σwx, Σw)) with a combiner; the
//              reducers produce the new centroids.
//
// Drivers chain these jobs into the full k-means|| initialization and
// Lloyd's iteration. All randomness is hashed per (seed, round, point), so
// outputs are independent of the partition count up to floating-point
// summation order.

#ifndef KMEANSLL_CLUSTERING_MAPREDUCE_KMEANS_H_
#define KMEANSLL_CLUSTERING_MAPREDUCE_KMEANS_H_

#include <cstdint>

#include "clustering/init_kmeansll.h"
#include "clustering/init_partition.h"
#include "clustering/lloyd.h"
#include "clustering/types.h"
#include "common/result.h"
#include "mapreduce/counters.h"
#include "mapreduce/partition.h"
#include "matrix/dataset.h"
#include "parallel/thread_pool.h"
#include "rng/rng.h"

namespace kmeansll {

/// Execution context for the MapReduce drivers.
struct MRContext {
  /// Input splits per job (the "number of mappers").
  int64_t num_partitions = 8;
  /// Worker pool executing map tasks (null = inline).
  ThreadPool* pool = nullptr;
  /// Job counters (optional).
  mapreduce::Counters* counters = nullptr;
  /// Task-attempt budget per map task (see Job::WithTaskAttempts): a
  /// transient task failure is retried up to this many times before the
  /// driver returns its error as a Status. Retried runs are bitwise
  /// identical to fault-free runs (folds stay task-index-ordered).
  int max_task_attempts = 3;
  /// Straggler mitigation (see Job::WithSpeculativeExecution): submit a
  /// speculative duplicate of every map task; first completion wins.
  bool speculative_execution = false;
};

/// φ_X(C) computed as one MapReduce job.
///
/// Every driver below has a DatasetSource overload — the primary
/// implementation: map tasks scan partitions as pinned row-block views,
/// so a partition of a data::ShardedDataset is a shard reference (the
/// task pins the mmap while it scans) instead of a copied sub-dataset.
/// The Dataset overloads wrap the data in an InMemorySource and
/// delegate.
///
/// Every driver is fault-aware: map-task failures are retried under
/// ctx.max_task_attempts and a task that exhausts its budget (or a
/// source that degraded — see DatasetSource::status()) surfaces as the
/// driver's error Status instead of aborting the process.
Result<double> MRComputeCost(const DatasetSource& data,
                             const Matrix& centers, const MRContext& ctx);
Result<double> MRComputeCost(const Dataset& data, const Matrix& centers,
                             const MRContext& ctx);

/// k-means|| (Algorithm 2) with every data-wide step expressed as a
/// MapReduce job; the reclustering of the small candidate set runs on
/// "a single machine" exactly as §3.5 prescribes.
Result<InitResult> MRKMeansLLInit(const DatasetSource& data, int64_t k,
                                  rng::Rng rng,
                                  const KMeansLLOptions& options,
                                  const MRContext& ctx);
Result<InitResult> MRKMeansLLInit(const Dataset& data, int64_t k,
                                  rng::Rng rng,
                                  const KMeansLLOptions& options,
                                  const MRContext& ctx);

/// Lloyd's iteration, one job per iteration.
Result<LloydResult> MRRunLloyd(const DatasetSource& data,
                               const Matrix& initial_centers,
                               const LloydOptions& options,
                               const MRContext& ctx);
Result<LloydResult> MRRunLloyd(const Dataset& data,
                               const Matrix& initial_centers,
                               const LloydOptions& options,
                               const MRContext& ctx);

/// Random initialization as one map-only job: every point gets the hashed
/// key Mix64(seed, index) and the k smallest keys win — an exactly
/// uniform without-replacement sample whose outcome is independent of the
/// partitioning (each mapper only forwards its local top-k).
Result<InitResult> MRRandomInit(const DatasetSource& data, int64_t k,
                                rng::Rng rng, const MRContext& ctx);
Result<InitResult> MRRandomInit(const Dataset& data, int64_t k,
                                rng::Rng rng, const MRContext& ctx);

/// The Partition baseline on the engine: each input split is one of the
/// algorithm's m groups (a map task runs k-means# plus the group-local
/// weighting), and the reducer hands the weighted union to the
/// sequential reclustering — the two-round structure of §4.2.1. Note
/// that ctx.num_partitions doubles as the algorithm parameter m here;
/// pass options.num_groups <= 0 to accept that.
Result<InitResult> MRPartitionInit(const DatasetSource& data, int64_t k,
                                   rng::Rng rng,
                                   const PartitionOptions& options,
                                   const MRContext& ctx);
Result<InitResult> MRPartitionInit(const Dataset& data, int64_t k,
                                   rng::Rng rng,
                                   const PartitionOptions& options,
                                   const MRContext& ctx);

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_MAPREDUCE_KMEANS_H_
