// One-pass streaming k-means (the online realization of the Partition
// baseline, after Ailon et al. 2009 / Guha et al. 2003).
//
// Points arrive one at a time and are buffered into blocks. When a block
// fills, k-means# over-seeds it with ~3·ln k · k centers, every block
// point transfers its weight to its nearest selection, and the raw block
// is discarded — so memory stays O(block + coreset). Finalize() runs
// weighted k-means++ (+ weighted Lloyd) over the retained coreset to
// produce the k final centers.
//
// This complements the batch PartitionInit: same algorithm, but usable
// when the data cannot be materialized (the regime the streaming papers
// target).

#ifndef KMEANSLL_CLUSTERING_STREAMING_H_
#define KMEANSLL_CLUSTERING_STREAMING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "clustering/types.h"
#include "common/result.h"
#include "matrix/dataset.h"
#include "matrix/matrix.h"
#include "rng/rng.h"

namespace kmeansll {

/// Configuration of the streaming clusterer.
struct StreamingOptions {
  int64_t k = 8;             ///< final number of centers
  int64_t dim = 0;           ///< point dimensionality (required)
  int64_t block_size = 4096; ///< points buffered per k-means# block
  /// Per-iteration batch of k-means# (<= 0: ceil(3·ln k)).
  int64_t batch_size = 0;
  /// k-means# iterations per block (<= 0: k).
  int64_t iterations = 0;
  uint64_t seed = 42;
};

/// Accepts a stream of points and produces k centers at the end.
/// Not thread-safe; feed from one thread.
class StreamingKMeans {
 public:
  /// Validates options (k >= 1, dim >= 1, block_size >= k).
  static Result<StreamingKMeans> Create(const StreamingOptions& options);

  /// Adds one point (must have options.dim coordinates) with a positive
  /// weight.
  Status Add(std::span<const double> point, double weight = 1.0);

  /// Feeds every row of a view (the chunk-feed path: a pinned shard or
  /// any other contiguous block streams in without a per-point call from
  /// the caller). Unweighted views add weight 1.0 per row.
  Status AddBlock(const DatasetView& block);

  /// Streams an entire DatasetSource through the clusterer block by
  /// block in row order — the out-of-core ingest path: only one pinned
  /// shard plus the coreset is resident at a time.
  Status AddSource(const DatasetSource& source);

  /// Flushes any buffered points and reclusters the coreset into k
  /// centers. May be called once; fails if fewer than k points were seen.
  Result<Matrix> Finalize();

  /// Points seen so far.
  int64_t points_seen() const { return points_seen_; }
  /// Weighted representatives currently retained.
  int64_t coreset_size() const { return coreset_points_.rows(); }
  /// Currently buffered (not yet compressed) points.
  int64_t buffered() const { return block_points_.rows(); }

 private:
  explicit StreamingKMeans(const StreamingOptions& options);

  /// Runs k-means# on the buffered block and folds it into the coreset.
  void CompressBlock();

  StreamingOptions options_;
  int64_t resolved_batch_ = 0;
  int64_t resolved_iterations_ = 0;
  int64_t points_seen_ = 0;
  int64_t blocks_compressed_ = 0;
  Matrix block_points_;
  std::vector<double> block_weights_;
  Matrix coreset_points_;
  std::vector<double> coreset_weights_;
  rng::Rng rng_;
  bool finalized_ = false;
};

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_STREAMING_H_
