#include "clustering/init_partition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <cstring>

#include "clustering/init_kmeansll.h"
#include "common/timer.h"
#include "distance/batch.h"
#include "distance/l2.h"
#include "distance/nearest.h"
#include "rng/discrete.h"

namespace kmeansll {

namespace internal {

std::vector<int64_t> KMeansSharp(const DatasetSource& data, int64_t begin,
                                 int64_t end, int64_t batch,
                                 int64_t iterations, rng::Rng rng) {
  KMEANSLL_CHECK(begin >= 0 && begin < end && end <= data.n());
  const int64_t group_size = end - begin;
  const int64_t dim = data.dim();
  rng::Rng gen = rng.Fork(rng::StreamPurpose::kPartitionGroup,
                          static_cast<uint64_t>(begin));

  std::vector<int64_t> selected;
  std::vector<bool> is_selected(static_cast<size_t>(group_size), false);
  // d²(x, C) restricted to this group's points.
  std::vector<double> min_d2(static_cast<size_t>(group_size),
                             std::numeric_limits<double>::infinity());

  // Batch-engine state: group-point norms are computed once and reused for
  // every center update (each center IS a group point, so its norm is the
  // cached one); the argmin indices are not needed here.
  const bool expanded = dim >= kExpandedKernelMinDim;
  std::vector<double> group_norms;
  if (expanded) {
    group_norms.resize(static_cast<size_t>(group_size));
    ForEachBlock(data, begin, end, [&](const DatasetView& v) {
      for (int64_t b = 0; b < v.rows(); ++b) {
        group_norms[static_cast<size_t>(v.first_row() + b - begin)] =
            SquaredNorm(v.Point(b), dim);
      }
    });
  }
  Matrix center_m(1, dim);

  auto add_center = [&](int64_t local) {
    if (is_selected[static_cast<size_t>(local)]) return;
    is_selected[static_cast<size_t>(local)] = true;
    selected.push_back(begin + local);
    {
      PinnedBlock pin = data.Pin(begin + local, begin + local + 1);
      std::memcpy(center_m.Row(0), pin.view().Point(0),
                  static_cast<size_t>(dim) * sizeof(double));
    }
    const double cnorm =
        expanded ? group_norms[static_cast<size_t>(local)] : 0.0;
    ForEachBlock(data, begin, end, [&](const DatasetView& v) {
      const int64_t off = v.first_row() - begin;
      BatchNearestMerge(v.points(), IndexRange{0, v.rows()},
                        expanded ? group_norms.data() + off : nullptr,
                        center_m,
                        /*first_center=*/0, expanded ? &cnorm : nullptr,
                        expanded ? BatchKernel::kExpanded
                                 : BatchKernel::kPlain,
                        min_d2.data() + off, /*best_index=*/nullptr);
    });
  };

  // Iteration 1: `batch` uniform draws (with replacement, dupes dropped).
  for (int64_t b = 0; b < batch && b < group_size; ++b) {
    add_center(static_cast<int64_t>(gen.NextBounded(group_size)));
  }

  // Iterations 2..iterations: `batch` independent D² draws each.
  std::vector<double> weights(static_cast<size_t>(group_size));
  for (int64_t it = 1; it < iterations; ++it) {
    if (static_cast<int64_t>(selected.size()) >= group_size) break;
    ForEachBlock(data, begin, end, [&](const DatasetView& v) {
      for (int64_t b = 0; b < v.rows(); ++b) {
        const int64_t local = v.first_row() + b - begin;
        weights[static_cast<size_t>(local)] =
            v.Weight(b) * min_d2[static_cast<size_t>(local)];
      }
    });
    auto sampler = rng::PrefixSumSampler::Build(weights);
    if (!sampler.ok()) break;  // all group points already selected
    for (int64_t b = 0; b < batch; ++b) {
      add_center(sampler->Sample(gen));
    }
  }
  return selected;
}

std::vector<int64_t> KMeansSharp(const Dataset& data, int64_t begin,
                                 int64_t end, int64_t batch,
                                 int64_t iterations, rng::Rng rng) {
  InMemorySource source = data.AsSource();
  return KMeansSharp(source, begin, end, batch, iterations, rng);
}

}  // namespace internal

Result<InitResult> PartitionInit(const DatasetSource& data, int64_t k,
                                 rng::Rng rng,
                                 const PartitionOptions& options) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > data.n()) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds n=" + std::to_string(data.n()));
  }

  WallTimer timer;
  const int64_t n = data.n();
  int64_t m = options.num_groups;
  if (m <= 0) {
    m = static_cast<int64_t>(std::llround(
        std::sqrt(static_cast<double>(n) / static_cast<double>(k))));
    m = std::max<int64_t>(m, 1);
  }
  m = std::min<int64_t>(m, n);  // at least one point per group

  int64_t batch = options.batch_size;
  if (batch <= 0) {
    batch = static_cast<int64_t>(
        std::ceil(3.0 * std::log(std::max<double>(2.0, static_cast<double>(k)))));
  }
  int64_t iterations = options.iterations > 0 ? options.iterations : k;

  // Phase 1 (parallelizable across groups): k-means# per group, followed
  // by the group-local weighting pass — each group's points are assigned
  // to the nearest center selected within that group, exactly as the
  // streaming algorithm does (the group is the machine's whole world).
  std::vector<int64_t> all_selected;
  std::vector<double> weights;
  // Near-equal contiguous groups (the same split Dataset::SplitRanges
  // produces), each processed as a streamed row range of the source.
  const int64_t base_size = n / m;
  const int64_t extra = n % m;
  int64_t begin = 0;
  for (int64_t g = 0; g < m; ++g) {
    const int64_t end = begin + base_size + (g < extra ? 1 : 0);
    if (begin >= end) {
      begin = end;
      continue;
    }
    std::vector<int64_t> group_selected =
        internal::KMeansSharp(data, begin, end, batch, iterations, rng);
    KMEANSLL_CHECK(!group_selected.empty());
    Matrix group_centers = GatherPoints(data, group_selected);
    NearestCenterSearch search(group_centers);
    std::vector<int32_t> nearest(static_cast<size_t>(end - begin));
    std::vector<double> nearest_d2(static_cast<size_t>(end - begin));
    search.FindRange(data, IndexRange{begin, end}, nullptr,
                     nearest.data(), nearest_d2.data());
    std::vector<double> group_weights(group_selected.size(), 0.0);
    ForEachBlock(data, begin, end, [&](const DatasetView& v) {
      for (int64_t b = 0; b < v.rows(); ++b) {
        group_weights[static_cast<size_t>(nearest[static_cast<size_t>(
            v.first_row() + b - begin)])] += v.Weight(b);
      }
    });
    all_selected.insert(all_selected.end(), group_selected.begin(),
                        group_selected.end());
    weights.insert(weights.end(), group_weights.begin(),
                   group_weights.end());
    begin = end;
  }
  KMEANSLL_CHECK(!all_selected.empty());

  InitResult result;
  result.telemetry.rounds = 2;  // two parallel rounds (paper §4.2.1)
  result.telemetry.intermediate_centers =
      static_cast<int64_t>(all_selected.size());
  // Per-group scans ≈ k-means# iterations plus the weighting scan.
  result.telemetry.data_passes = iterations + 1;

  Matrix candidates = GatherPoints(data, all_selected);
  result.telemetry.sampling_seconds = timer.ElapsedSeconds();

  // Phase 2 (sequential): vanilla weighted k-means++ on the union.
  if (candidates.rows() <= k) {
    result.centers = std::move(candidates);
    return result;
  }
  KMeansLLOptions recluster_options;  // defaults: pure weighted k-means++
  KMEANSLL_ASSIGN_OR_RETURN(
      result.centers,
      internal::ReclusterCandidates(candidates, weights, k, rng,
                                    recluster_options, &result.telemetry));
  return result;
}

Result<InitResult> PartitionInit(const Dataset& data, int64_t k,
                                 rng::Rng rng,
                                 const PartitionOptions& options) {
  InMemorySource source = data.AsSource();
  return PartitionInit(source, k, rng, options);
}

}  // namespace kmeansll
