// Shared machinery of the Lloyd variants (standard / Hamerly / Elkan).
//
// The three iterations must stay bitwise-interchangeable: same centroid
// accumulation chain (fixed kDeterministicChunks replication, partials
// combined in chunk order), same empty-cluster repair policy, same
// distance arithmetic (the batch engine's — see distance/batch.h). This
// header holds the pieces they share so the equivalence is enforced by
// construction instead of by three hand-synchronized copies.

#ifndef KMEANSLL_CLUSTERING_LLOYD_INTERNAL_H_
#define KMEANSLL_CLUSTERING_LLOYD_INTERNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clustering/lloyd.h"
#include "common/result.h"
#include "distance/batch.h"
#include "distance/l2.h"
#include "matrix/dataset.h"
#include "matrix/dataset_view.h"
#include "matrix/matrix.h"
#include "parallel/thread_pool.h"

namespace kmeansll {
namespace internal {

/// One exact squared distance with the engine's accumulation chain:
/// the expanded (clamped) formulation when `expanded`, else the plain
/// chain. This is what the accelerated variants' bound-tightening probes
/// use so a probed distance is bitwise the value a batched scan would
/// have produced for the same pair. Norms must come from
/// SquaredNorm/RowSquaredNorms (ignored for the plain chain).
inline double PairDistance2(const double* x, double x_norm2,
                            const double* c, double c_norm2, int64_t d,
                            bool expanded) {
  if (expanded) {
    return SquaredL2Expanded(x_norm2, c_norm2, PairDotProduct(x, c, d));
  }
  return PairSquaredL2(x, c, d);
}

/// Resolves the engine's kAuto kernel for `data` into *expanded and
/// ensures point norms exist when the expanded kernel will run: returns
/// `provided` when non-null, else fills `storage` with
/// RowSquaredNorms(data.points(), pool) and returns its data. Returns
/// null under the plain kernel (the kernels never read norms there).
/// One definition of the bootstrap every Lloyd runner shares, so the
/// crossover rule cannot drift from the engine's dispatch.
const double* EnsurePointNorms(const DatasetSource& data,
                               const double* provided,
                               std::vector<double>* storage,
                               ThreadPool* pool, bool* expanded);

/// Weighted per-cluster coordinate sums and weights for the centroid
/// update.
struct CentroidSums {
  std::vector<double> sums;     ///< k × d weighted coordinate sums
  std::vector<double> weights;  ///< k weighted counts
};

/// Accumulates the centroid sums for `assignment` over the fixed
/// deterministic chunk grid; per-chunk partials are merged in chunk
/// order, so the result is bitwise identical sequentially (pool = null)
/// and at any pool size.
CentroidSums AccumulateCentroids(const DatasetSource& data,
                                 const std::vector<int32_t>& assignment,
                                 int64_t k, ThreadPool* pool);

/// Divides the sums into `new_centers` (resized to k × d) and returns the
/// indices of clusters with zero total weight (their rows are left
/// zeroed; see RepairEmptyClusters).
std::vector<int64_t> CentroidsFromSums(const CentroidSums& totals,
                                       int64_t k, int64_t d,
                                       Matrix* new_centers);

/// The deterministic empty-cluster repair shared by every variant: each
/// empty cluster receives the point with the largest current (weighted)
/// cost contribution under `old_centers`, claiming indices in order of
/// decreasing contribution (ties by ascending point index) so no point
/// is reused. Contributions come from one blocked batch scan; `pool` and
/// `point_norms` (length n, may be null) are threaded through to it.
void RepairEmptyClusters(const DatasetSource& data,
                         const Matrix& old_centers,
                         const std::vector<int64_t>& empty,
                         Matrix* new_centers, ThreadPool* pool = nullptr,
                         const double* point_norms = nullptr);

/// Weighted cost Σ_x w_x · d²(x, c_{assignment(x)}) replicating
/// ComputeAssignment's reduction bitwise: per-pair engine chains, Kahan
/// partials over the fixed chunk grid, merged in chunk order. When
/// `assignment` maps every point to its engine-argmin center this equals
/// ComputeAssignment(...).cost exactly; the accelerated variants use it
/// to keep their cost history bitwise-aligned with standard Lloyd's.
/// `expanded` selects the chain (pass the search's kernel choice);
/// point/center norms are only read when expanded.
double AssignmentCost(const DatasetSource& data, const Matrix& centers,
                      const std::vector<int32_t>& assignment,
                      const double* point_norms,
                      const double* center_norms, bool expanded);

/// Checkpoint/resume plumbing shared by the three Lloyd runners (see
/// data/checkpoint_io.h for the artifact and docs/ARCHITECTURE.md
/// "Fault tolerance" for the protocol).
struct LloydCheckpointPlan {
  bool enabled = false;
  std::string path;
  int64_t every = 1;
  uint64_t fingerprint = 0;
};

/// Builds the plan from the options (enabled iff checkpoint_path is
/// non-empty). The fingerprint binds a checkpoint to the job — n, d, the
/// exact initial-center bytes, and the convergence knobs — but NOT to
/// the Lloyd variant: all variants walk the same center trajectory, so a
/// checkpoint written by one resumes under any other.
LloydCheckpointPlan MakeLloydCheckpointPlan(const DatasetSource& data,
                                            const Matrix& initial_centers,
                                            const LloydOptions& options);

/// Attempts to resume from plan.path. On a valid Lloyd checkpoint with a
/// matching fingerprint: fills `result` (centers, iterations, repairs,
/// cost history), returns the centers that entered the checkpointed
/// iteration in *prev_centers (the runner recomputes the previous
/// assignment against them), and returns true. A missing, stale, or
/// corrupt checkpoint returns false — the run starts from scratch
/// (corruption is logged, never trusted).
bool TryResumeLloyd(const LloydCheckpointPlan& plan, LloydResult* result,
                    Matrix* prev_centers);

/// True when iteration `iter` (0-based) should checkpoint under `plan`:
/// every plan.every iterations, skipping the run's final iteration
/// (whose state the returned result already carries).
bool ShouldCheckpoint(const LloydCheckpointPlan& plan, int64_t iter,
                      int64_t max_iterations);

/// Atomically persists the end-of-iteration state. `prev_centers` are
/// the centers that entered the iteration. Also hosts the "lloyd.kill"
/// fault site so crash tests can kill the run exactly after a durable
/// checkpoint. `*out_retries` (optional) accumulates transient write
/// retries — the runners feed LloydResult::checkpoint_write_retries.
Status CheckpointLloydIteration(const LloydCheckpointPlan& plan,
                                const Matrix& prev_centers,
                                const LloydResult& result,
                                int64_t* out_retries = nullptr);

/// Removes a completed run's checkpoint (best-effort).
void RemoveLloydCheckpoint(const LloydCheckpointPlan& plan);

}  // namespace internal
}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_LLOYD_INTERNAL_H_
