#include "clustering/cost.h"

#include <limits>
#include <vector>

#include "common/math_util.h"
#include "distance/batch.h"
#include "distance/nearest.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

/// Rows within a chunk are visited block by block in ascending order, so
/// the accumulation chain — and hence the result — is bitwise independent
/// of how the source splits rows into blocks.
double ReduceNearestWithSearch(const DatasetSource& data,
                               const NearestCenterSearch& search,
                               ThreadPool* pool, const double* point_norms,
                               int32_t* out_cluster) {
  KMEANSLL_CHECK_GT(search.num_centers(), 0);
  KMEANSLL_CHECK(search.frozen());
  // Shard-aware execution over an out-of-core source: workers take
  // chunks from disjoint shard spans and hint each span's next shard
  // ahead of its cursor. Timing only — the fold below stays in chunk
  // order, so the result is bitwise the unscheduled one.
  const ScanSchedule schedule = MakeScanSchedule(data, data.n(), pool);
  auto map = [&](IndexRange r) {
    KahanSum partial;
    ForEachBlock(data, r.begin, r.end, [&](const DatasetView& v) {
      const int64_t first = v.first_row();
      std::vector<double> d2(static_cast<size_t>(v.rows()));
      search.FindRange(
          v.points(), IndexRange{0, v.rows()},
          point_norms == nullptr ? nullptr : point_norms + first,
          out_cluster == nullptr ? nullptr : out_cluster + first,
          d2.data());
      for (int64_t i = 0; i < v.rows(); ++i) {
        partial.Add(v.Weight(i) * d2[static_cast<size_t>(i)]);
      }
    });
    return partial;
  };
  auto combine = [](KahanSum a, KahanSum b) {
    a.Merge(b);
    return a;
  };
  KahanSum total = ParallelReduce<KahanSum>(pool, data.n(), KahanSum(), map,
                                            combine, &schedule);
  return total.Total();
}

namespace {

/// ComputeCost / ComputeAssignment build and freeze a search of their own
/// — one packing per call, shared by every chunk below.
double NearestReduce(const DatasetSource& data, const Matrix& centers,
                     ThreadPool* pool, const double* point_norms,
                     int32_t* out_cluster) {
  KMEANSLL_CHECK_GT(centers.rows(), 0);
  KMEANSLL_CHECK_EQ(centers.cols(), data.dim());
  NearestCenterSearch search(centers);
  search.Freeze();
  return ReduceNearestWithSearch(data, search, pool, point_norms,
                                 out_cluster);
}

}  // namespace

double ComputeCost(const DatasetSource& data, const Matrix& centers,
                   ThreadPool* pool, const double* point_norms) {
  return NearestReduce(data, centers, pool, point_norms,
                       /*out_cluster=*/nullptr);
}

double ComputeCost(const Dataset& data, const Matrix& centers,
                   ThreadPool* pool, const double* point_norms) {
  InMemorySource source = data.AsSource();
  return ComputeCost(source, centers, pool, point_norms);
}

Assignment ComputeAssignment(const DatasetSource& data,
                             const Matrix& centers, ThreadPool* pool,
                             const double* point_norms) {
  Assignment out;
  out.cluster.assign(static_cast<size_t>(data.n()), -1);
  out.cost = NearestReduce(data, centers, pool, point_norms,
                           out.cluster.data());
  return out;
}

Assignment ComputeAssignment(const Dataset& data, const Matrix& centers,
                             ThreadPool* pool, const double* point_norms) {
  InMemorySource source = data.AsSource();
  return ComputeAssignment(source, centers, pool, point_norms);
}

}  // namespace kmeansll
