#include "clustering/cost.h"

#include <limits>
#include <vector>

#include "common/math_util.h"
#include "distance/batch.h"
#include "distance/nearest.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

double ComputeCost(const Dataset& data, const Matrix& centers,
                   ThreadPool* pool, const double* point_norms) {
  KMEANSLL_CHECK_GT(centers.rows(), 0);
  KMEANSLL_CHECK_EQ(centers.cols(), data.dim());
  NearestCenterSearch search(centers);
  // Pack the center panels once up front: the chunks below (and the pool
  // workers running them) all scan the same frozen snapshot.
  search.Freeze();
  auto map = [&](IndexRange r) {
    std::vector<double> d2(static_cast<size_t>(r.size()));
    search.FindRange(data.points(), r,
                     point_norms == nullptr ? nullptr
                                            : point_norms + r.begin,
                     /*out_index=*/nullptr, d2.data());
    KahanSum partial;
    for (int64_t i = r.begin; i < r.end; ++i) {
      partial.Add(data.Weight(i) * d2[static_cast<size_t>(i - r.begin)]);
    }
    return partial;
  };
  auto combine = [](KahanSum a, KahanSum b) {
    a.Merge(b);
    return a;
  };
  KahanSum total = ParallelReduce<KahanSum>(pool, data.n(), KahanSum(), map,
                                            combine);
  return total.Total();
}

Assignment ComputeAssignment(const Dataset& data, const Matrix& centers,
                             ThreadPool* pool, const double* point_norms) {
  KMEANSLL_CHECK_GT(centers.rows(), 0);
  KMEANSLL_CHECK_EQ(centers.cols(), data.dim());
  NearestCenterSearch search(centers);
  search.Freeze();
  Assignment out;
  out.cluster.assign(static_cast<size_t>(data.n()), -1);

  auto map = [&](IndexRange r) {
    std::vector<double> d2(static_cast<size_t>(r.size()));
    search.FindRange(data.points(), r,
                     point_norms == nullptr ? nullptr
                                            : point_norms + r.begin,
                     out.cluster.data() + r.begin, d2.data());
    KahanSum partial;
    for (int64_t i = r.begin; i < r.end; ++i) {
      partial.Add(data.Weight(i) * d2[static_cast<size_t>(i - r.begin)]);
    }
    return partial;
  };
  auto combine = [](KahanSum a, KahanSum b) {
    a.Merge(b);
    return a;
  };
  KahanSum total = ParallelReduce<KahanSum>(pool, data.n(), KahanSum(), map,
                                            combine);
  out.cost = total.Total();
  return out;
}

}  // namespace kmeansll
