#include "clustering/coreset.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "distance/nearest.h"
#include "rng/reservoir.h"
#include "rng/splitmix64.h"

namespace kmeansll {

Result<Dataset> BuildCoreset(const Dataset& data, int64_t target_size,
                             rng::Rng rng, const CoresetOptions& options) {
  if (target_size < 1) {
    return Status::InvalidArgument("target_size must be >= 1");
  }
  if (target_size > data.n()) {
    return Status::InvalidArgument(
        "target_size " + std::to_string(target_size) + " exceeds n=" +
        std::to_string(data.n()));
  }
  if (options.rounds < 1) {
    return Status::InvalidArgument("rounds must be >= 1");
  }

  const int64_t rounds = options.rounds;
  // Per-round quota; the initial uniformly chosen point takes one slot.
  const double ell =
      static_cast<double>(target_size - 1) / static_cast<double>(rounds);
  const auto ell_int = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(std::ceil(ell))));

  rng::Rng init_rng = rng.Fork(rng::StreamPurpose::kInitialCenter);
  Matrix candidates(data.dim());
  candidates.AppendRow(
      data.Point(static_cast<int64_t>(init_rng.NextBounded(data.n()))));

  MinDistanceTracker tracker(data);
  tracker.AddCenters(candidates, 0);

  for (int64_t round = 0; round < rounds; ++round) {
    if (candidates.rows() >= target_size) break;
    const double phi = tracker.Potential();
    if (!(phi > 0.0)) break;
    const int64_t remaining = target_size - candidates.rows();
    const int64_t quota = std::min<int64_t>(
        remaining, options.exact_size ? ell_int : ell_int);
    const uint64_t round_seed = rng::HashCombine(
        rng.Fork(rng::StreamPurpose::kRoundSampling, round).root_key(),
        static_cast<uint64_t>(round));

    std::vector<int64_t> chosen;
    if (options.exact_size) {
      rng::WeightedReservoir reservoir(
          quota, rng.Fork(rng::StreamPurpose::kRoundSampling, round));
      for (int64_t i = 0; i < data.n(); ++i) {
        double w = data.Weight(i) * tracker.Distance2(i);
        if (!(w > 0.0)) continue;
        double u = rng::UniformAtIndex(round_seed, static_cast<uint64_t>(i));
        while (u <= 0.0) {
          u = rng::UniformAtIndex(round_seed ^ 0x5bf0,
                                  static_cast<uint64_t>(i));
        }
        reservoir.OfferWithUniform(i, w, u);
      }
      chosen = reservoir.Items();
      std::sort(chosen.begin(), chosen.end());
    } else {
      double scaled_ell = static_cast<double>(quota);
      for (int64_t i = 0; i < data.n(); ++i) {
        double p = scaled_ell * data.Weight(i) * tracker.Distance2(i) / phi;
        if (p <= 0.0) continue;
        if (rng::UniformAtIndex(round_seed, static_cast<uint64_t>(i)) < p) {
          chosen.push_back(i);
        }
      }
    }
    int64_t previous = candidates.rows();
    for (int64_t i : chosen) candidates.AppendRow(data.Point(i));
    tracker.AddCenters(candidates, previous);
  }

  // Step 7: transfer every point's weight to its closest representative.
  std::vector<double> weights(static_cast<size_t>(candidates.rows()), 0.0);
  for (int64_t i = 0; i < data.n(); ++i) {
    weights[static_cast<size_t>(tracker.ClosestCenter(i))] +=
        data.Weight(i);
  }
  return Dataset::WithWeights(std::move(candidates), std::move(weights));
}

}  // namespace kmeansll
