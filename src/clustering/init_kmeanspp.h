// k-means++ initialization (Arthur & Vassilvitskii 2007) — Algorithm 1 of
// the paper, generalized to weighted datasets.
//
// The weighted form is what Step 8 of k-means|| requires: "recluster the
// weighted points in C into k clusters" using "any provable approximation
// algorithm (such as k-means++)". With unit weights it is exactly
// Algorithm 1.

#ifndef KMEANSLL_CLUSTERING_INIT_KMEANSPP_H_
#define KMEANSLL_CLUSTERING_INIT_KMEANSPP_H_

#include <cstdint>

#include "clustering/types.h"
#include "common/result.h"
#include "matrix/dataset.h"
#include "parallel/thread_pool.h"
#include "rng/rng.h"

namespace kmeansll {

/// Options for k-means++.
struct KMeansPPOptions {
  /// Number of candidate draws per step; the best (largest potential
  /// reduction) candidate is kept. 1 reproduces Algorithm 1 exactly;
  /// greedy variants (scikit-learn uses 2 + log k) are an extension
  /// ablated in bench/bm_init.
  int64_t candidates_per_step = 1;
};

/// Runs k-means++ on `data` (weights respected: the first center is drawn
/// w-proportionally and subsequent draws use w·d² probabilities). Fails if
/// k <= 0, k > n, or the total weight is zero. `pool` (may be null)
/// parallelizes the per-step distance scans; results are bitwise
/// identical at any thread count.
Result<InitResult> KMeansPPInit(const Dataset& data, int64_t k, rng::Rng rng,
                                const KMeansPPOptions& options = {},
                                ThreadPool* pool = nullptr);

/// As above over a DatasetSource: the D² sampling passes stream pinned
/// row blocks, so the seeder runs unchanged — and bitwise identically —
/// over disk-resident shard stores.
Result<InitResult> KMeansPPInit(const DatasetSource& data, int64_t k,
                                rng::Rng rng,
                                const KMeansPPOptions& options = {},
                                ThreadPool* pool = nullptr);

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_INIT_KMEANSPP_H_
