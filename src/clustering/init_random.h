// Random initialization: k distinct points chosen uniformly at random —
// the paper's `Random` baseline (§4.2) and the classical Forgy seeding.

#ifndef KMEANSLL_CLUSTERING_INIT_RANDOM_H_
#define KMEANSLL_CLUSTERING_INIT_RANDOM_H_

#include <cstdint>

#include "clustering/types.h"
#include "common/result.h"
#include "matrix/dataset.h"
#include "rng/rng.h"

namespace kmeansll {

/// Selects k distinct rows uniformly at random (weights ignored: the
/// baseline in the paper is plain uniform row sampling). Fails if
/// k <= 0 or k > n.
Result<InitResult> RandomInit(const Dataset& data, int64_t k, rng::Rng rng);

/// As above over a DatasetSource (the selection touches no point data
/// until the final gather, which pins each shard at most once).
Result<InitResult> RandomInit(const DatasetSource& data, int64_t k,
                              rng::Rng rng);

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_INIT_RANDOM_H_
