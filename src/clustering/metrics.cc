#include "clustering/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/macros.h"
#include "distance/l2.h"
#include "distance/nearest.h"

namespace kmeansll {

namespace {

/// Contingency counts over (cluster, label) for non-negative labels.
struct Contingency {
  std::map<std::pair<int32_t, int32_t>, int64_t> joint;
  std::map<int32_t, int64_t> by_cluster;
  std::map<int32_t, int64_t> by_label;
  int64_t total = 0;
};

Contingency BuildContingency(const std::vector<int32_t>& assignment,
                             const std::vector<int32_t>& labels) {
  KMEANSLL_CHECK_EQ(assignment.size(), labels.size());
  Contingency c;
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (labels[i] < 0) continue;  // synthetic outliers carry label -1
    ++c.joint[{assignment[i], labels[i]}];
    ++c.by_cluster[assignment[i]];
    ++c.by_label[labels[i]];
    ++c.total;
  }
  return c;
}

}  // namespace

double Purity(const std::vector<int32_t>& assignment,
              const std::vector<int32_t>& labels) {
  Contingency c = BuildContingency(assignment, labels);
  if (c.total == 0) return 0.0;
  // Σ_cluster max_label joint(cluster, label) / total.
  std::map<int32_t, int64_t> best_in_cluster;
  for (const auto& [key, count] : c.joint) {
    auto& best = best_in_cluster[key.first];
    best = std::max(best, count);
  }
  int64_t matched = 0;
  for (const auto& [cluster, count] : best_in_cluster) matched += count;
  return static_cast<double>(matched) / static_cast<double>(c.total);
}

double NormalizedMutualInformation(const std::vector<int32_t>& assignment,
                                   const std::vector<int32_t>& labels) {
  Contingency c = BuildContingency(assignment, labels);
  if (c.total == 0) return 0.0;
  const double n = static_cast<double>(c.total);

  double mi = 0.0;
  for (const auto& [key, count] : c.joint) {
    double pxy = static_cast<double>(count) / n;
    double px = static_cast<double>(c.by_cluster.at(key.first)) / n;
    double py = static_cast<double>(c.by_label.at(key.second)) / n;
    mi += pxy * std::log(pxy / (px * py));
  }
  auto entropy = [n](const std::map<int32_t, int64_t>& marginal) {
    double h = 0.0;
    for (const auto& [value, count] : marginal) {
      double p = static_cast<double>(count) / n;
      h -= p * std::log(p);
    }
    return h;
  };
  double hx = entropy(c.by_cluster);
  double hy = entropy(c.by_label);
  double denom = 0.5 * (hx + hy);
  if (denom <= 0.0) return hx == hy ? 1.0 : 0.0;
  double nmi = mi / denom;
  return std::clamp(nmi, 0.0, 1.0);
}

double SimplifiedSilhouette(const Dataset& data, const Matrix& centers,
                            const std::vector<int32_t>& assignment) {
  KMEANSLL_CHECK_GE(centers.rows(), 2);
  KMEANSLL_CHECK_EQ(static_cast<int64_t>(assignment.size()), data.n());
  const int64_t k = centers.rows();
  const int64_t d = data.dim();
  double total = 0.0;
  double total_weight = 0.0;
  for (int64_t i = 0; i < data.n(); ++i) {
    auto own = static_cast<int64_t>(assignment[static_cast<size_t>(i)]);
    double a = std::sqrt(
        SquaredL2(data.Point(i), centers.Row(own), d));
    double b2 = std::numeric_limits<double>::infinity();
    for (int64_t c = 0; c < k; ++c) {
      if (c == own) continue;
      b2 = std::min(b2, SquaredL2(data.Point(i), centers.Row(c), d));
    }
    double b = std::sqrt(b2);
    double denom = std::max(a, b);
    double s = denom > 0.0 ? (b - a) / denom : 0.0;
    double w = data.Weight(i);
    total += w * s;
    total_weight += w;
  }
  return total_weight > 0.0 ? total / total_weight : 0.0;
}

double DaviesBouldinIndex(const Dataset& data, const Matrix& centers,
                          const std::vector<int32_t>& assignment) {
  KMEANSLL_CHECK_GE(centers.rows(), 2);
  KMEANSLL_CHECK_EQ(static_cast<int64_t>(assignment.size()), data.n());
  const int64_t k = centers.rows();
  const int64_t d = data.dim();
  // Per-cluster mean distance to centroid (weighted).
  std::vector<double> scatter(static_cast<size_t>(k), 0.0);
  std::vector<double> mass(static_cast<size_t>(k), 0.0);
  for (int64_t i = 0; i < data.n(); ++i) {
    auto c = static_cast<size_t>(assignment[static_cast<size_t>(i)]);
    double w = data.Weight(i);
    scatter[c] += w * std::sqrt(SquaredL2(data.Point(i),
                                          centers.Row(static_cast<int64_t>(c)),
                                          d));
    mass[c] += w;
  }
  for (int64_t c = 0; c < k; ++c) {
    auto ci = static_cast<size_t>(c);
    if (mass[ci] > 0.0) scatter[ci] /= mass[ci];
  }
  double total = 0.0;
  int64_t populated = 0;
  for (int64_t i = 0; i < k; ++i) {
    if (!(mass[static_cast<size_t>(i)] > 0.0)) continue;
    double worst = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      if (i == j || !(mass[static_cast<size_t>(j)] > 0.0)) continue;
      double separation = std::sqrt(
          SquaredL2(centers.Row(i), centers.Row(j), d));
      if (separation <= 0.0) continue;
      worst = std::max(worst, (scatter[static_cast<size_t>(i)] +
                               scatter[static_cast<size_t>(j)]) /
                                  separation);
    }
    total += worst;
    ++populated;
  }
  return populated > 0 ? total / static_cast<double>(populated) : 0.0;
}

double CenterRecoveryRmse(const Matrix& true_centers,
                          const Matrix& recovered_centers) {
  KMEANSLL_CHECK_EQ(true_centers.cols(), recovered_centers.cols());
  KMEANSLL_CHECK_GT(true_centers.rows(), 0);
  KMEANSLL_CHECK_GT(recovered_centers.rows(), 0);
  NearestCenterSearch search(recovered_centers);
  double sum = 0.0;
  for (int64_t i = 0; i < true_centers.rows(); ++i) {
    sum += search.Find(true_centers.Row(i)).distance2;
  }
  return std::sqrt(sum / static_cast<double>(true_centers.rows()));
}

}  // namespace kmeansll
