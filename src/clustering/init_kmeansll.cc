#include "clustering/init_kmeansll.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>
#include <vector>

#include "clustering/lloyd.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/timer.h"
#include "common/trace.h"
#include "data/checkpoint_io.h"
#include "distance/nearest.h"
#include "rng/reservoir.h"
#include "rng/splitmix64.h"

namespace kmeansll {

namespace internal {

Result<double> ResolveOversampling(double oversampling, int64_t k) {
  if (oversampling <= 0.0) return 2.0 * static_cast<double>(k);
  if (!std::isfinite(oversampling)) {
    return Status::InvalidArgument("oversampling must be finite");
  }
  return oversampling;
}

int64_t ResolveRounds(int64_t rounds, double psi) {
  if (rounds != KMeansLLOptions::kAutoRounds) return rounds;
  if (!(psi > 1.0)) return 1;
  auto r = static_cast<int64_t>(std::ceil(std::log(psi)));
  return std::clamp<int64_t>(r, 1, 40);
}

Result<Matrix> ReclusterCandidates(const Matrix& candidates,
                                   const std::vector<double>& weights,
                                   int64_t k, rng::Rng rng,
                                   const KMeansLLOptions& options,
                                   InitTelemetry* telemetry) {
  WallTimer timer;
  KMEANSLL_ASSIGN_OR_RETURN(
      Dataset coreset,
      Dataset::WithWeights(candidates, weights));

  KMeansPPOptions pp_options = options.recluster_kmeanspp;
  KMEANSLL_ASSIGN_OR_RETURN(
      InitResult seeded,
      KMeansPPInit(coreset, k, rng.Fork(rng::StreamPurpose::kRecluster),
                   pp_options));

  Matrix centers = std::move(seeded.centers);
  if (options.recluster == ReclusterMethod::kWeightedKMeansPPPlusLloyd &&
      options.recluster_lloyd_iterations > 0) {
    LloydOptions lloyd_options;
    lloyd_options.max_iterations = options.recluster_lloyd_iterations;
    KMEANSLL_ASSIGN_OR_RETURN(
        LloydResult refined,
        RunLloyd(coreset, centers, lloyd_options, /*pool=*/nullptr));
    centers = std::move(refined.centers);
  }
  if (telemetry != nullptr) {
    telemetry->recluster_seconds += timer.ElapsedSeconds();
  }
  return centers;
}

}  // namespace internal

Result<InitResult> KMeansLLInit(const DatasetSource& data, int64_t k,
                                rng::Rng rng,
                                const KMeansLLOptions& options,
                                ThreadPool* pool) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > data.n()) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds n=" + std::to_string(data.n()));
  }
  if (options.rounds != KMeansLLOptions::kAutoRounds && options.rounds < 0) {
    return Status::InvalidArgument("rounds must be >= 0 or kAutoRounds");
  }
  KMEANSLL_ASSIGN_OR_RETURN(
      double ell, internal::ResolveOversampling(options.oversampling, k));

  WallTimer timer;
  InitResult result;
  result.centers = Matrix(data.dim());

  // Checkpoint/resume: every draw below is a pure function of
  // (rng root, round, point index), so a seeding checkpoint needs only
  // the candidate set and round potentials — the distance tracker is
  // rebuilt by replaying the stored candidates, which is bitwise the
  // incremental update sequence (ascending candidate order both ways).
  const bool ckpt_enabled = !options.checkpoint_path.empty();
  const int64_t ckpt_every =
      std::max<int64_t>(1, options.checkpoint_every);
  uint64_t ckpt_fp = 0;
  if (ckpt_enabled) {
    ckpt_fp = rng::HashCombine(rng.root_key(),
                               static_cast<uint64_t>(data.n()));
    ckpt_fp = rng::HashCombine(ckpt_fp, static_cast<uint64_t>(data.dim()));
    ckpt_fp = rng::HashCombine(ckpt_fp, static_cast<uint64_t>(k));
    ckpt_fp = rng::HashCombine(ckpt_fp, std::bit_cast<uint64_t>(ell));
    ckpt_fp = rng::HashCombine(ckpt_fp,
                               static_cast<uint64_t>(options.rounds));
    ckpt_fp = rng::HashCombine(ckpt_fp, options.exact_ell ? 1u : 0u);
  }

  Matrix candidates(data.dim());
  int64_t start_round = 0;
  bool resumed = false;
  if (ckpt_enabled && FileExists(options.checkpoint_path)) {
    Result<data::TrainingCheckpoint> loaded =
        data::LoadCheckpoint(options.checkpoint_path);
    if (!loaded.ok()) {
      KMEANSLL_LOG(Warning)
          << "ignoring unreadable seeding checkpoint at '"
          << options.checkpoint_path
          << "': " << loaded.status().message();
    } else {
      data::TrainingCheckpoint ckpt = std::move(loaded).ValueOrDie();
      if (ckpt.phase == data::TrainingCheckpoint::Phase::kSeeding &&
          ckpt.fingerprint == ckpt_fp && ckpt.iteration > 0 &&
          ckpt.centers.cols() == data.dim() &&
          !ckpt.cost_history.empty()) {
        candidates = std::move(ckpt.centers);
        result.telemetry.round_potentials = std::move(ckpt.cost_history);
        result.telemetry.data_passes = ckpt.data_passes;
        start_round = ckpt.iteration;
        resumed = true;
      }
    }
  }

  if (!resumed) {
    // Step 1: one initial center, uniformly at random.
    rng::Rng init_rng = rng.Fork(rng::StreamPurpose::kInitialCenter);
    auto first = static_cast<int64_t>(init_rng.NextBounded(data.n()));
    PinnedBlock pin = data.Pin(first, first + 1);
    candidates.AppendRow(pin.view().Point(0));
  }

  // Step 2: ψ = φ_X(C). The tracker runs every round's distance update as
  // one blocked parallel pass (cached point norms, fused potential).
  MinDistanceTracker tracker(data, pool);
  double psi;
  if (resumed) {
    // Replay the full candidate set; telemetry keeps the uninterrupted
    // run's counts (the replay is a recovery pass, not a logical one).
    tracker.AddCenters(candidates, 0);
    psi = result.telemetry.round_potentials.front();
  } else {
    psi = tracker.AddCenters(candidates, 0);
    result.telemetry.data_passes = 1;
    result.telemetry.round_potentials.push_back(psi);
  }

  const int64_t rounds = internal::ResolveRounds(options.rounds, psi);
  const auto ell_int =
      static_cast<int64_t>(std::llround(std::ceil(ell)));

  // Steps 3–6: r rounds of oversampled D² selection.
  for (int64_t round = start_round; round < rounds; ++round) {
    KMEANSLL_TRACE_SPAN("seeding.round");
    const double phi = tracker.Potential();
    if (!(phi > 0.0)) break;  // every point coincides with a candidate

    // Randomness for round `round` is a pure function of
    // (seed, round, point index): reproducible under any partitioning.
    const uint64_t round_seed = rng::HashCombine(
        rng.Fork(rng::StreamPurpose::kRoundSampling, round).root_key(),
        static_cast<uint64_t>(round));

    std::vector<int64_t> chosen;
    if (options.exact_ell) {
      rng::WeightedReservoir reservoir(
          ell_int, rng.Fork(rng::StreamPurpose::kRoundSampling, round));
      // The sampling pass touches only weights and tracker state;
      // streamed block by block in ascending row order.
      ForEachBlock(data, 0, data.n(), [&](const DatasetView& v) {
        for (int64_t b = 0; b < v.rows(); ++b) {
          const int64_t i = v.first_row() + b;
          double w = v.Weight(b) * tracker.Distance2(i);
          if (!(w > 0.0)) continue;
          // Key derived from per-point hashed uniform => deterministic.
          double u =
              rng::UniformAtIndex(round_seed, static_cast<uint64_t>(i));
          while (u <= 0.0) {
            u = rng::UniformAtIndex(round_seed ^ 0x5bf0,
                                    static_cast<uint64_t>(i));
          }
          reservoir.OfferWithUniform(i, w, u);
        }
      });
      chosen = reservoir.Items();
      std::sort(chosen.begin(), chosen.end());
    } else {
      ForEachBlock(data, 0, data.n(), [&](const DatasetView& v) {
        for (int64_t b = 0; b < v.rows(); ++b) {
          const int64_t i = v.first_row() + b;
          double p = ell * v.Weight(b) * tracker.Distance2(i) / phi;
          if (p <= 0.0) continue;
          double u =
              rng::UniformAtIndex(round_seed, static_cast<uint64_t>(i));
          if (u < p) chosen.push_back(i);
        }
      });
    }

    int64_t previous = candidates.rows();
    // `chosen` is sorted, so the gather pins each shard at most once and
    // block-copies contiguous runs.
    candidates.AppendRows(GatherPoints(data, chosen));
    tracker.AddCenters(candidates, previous);
    result.telemetry.data_passes += 2;  // sampling pass + distance update
    result.telemetry.round_potentials.push_back(tracker.Potential());

    if (ckpt_enabled && (round + 1) % ckpt_every == 0) {
      // The last round checkpoints too: a crash between seeding and
      // Lloyd then re-does only the cheap Steps 7–8 on resume.
      data::TrainingCheckpoint ckpt;
      ckpt.phase = data::TrainingCheckpoint::Phase::kSeeding;
      ckpt.fingerprint = ckpt_fp;
      ckpt.iteration = round + 1;
      ckpt.centers = candidates;
      ckpt.cost_history = result.telemetry.round_potentials;
      ckpt.data_passes = result.telemetry.data_passes;
      KMEANSLL_RETURN_NOT_OK(
          data::SaveCheckpoint(ckpt, options.checkpoint_path,
                               &result.telemetry.checkpoint_write_retries));
      // Kill point for crash tests: dies only when armed, right after
      // the checkpoint became durable.
      KMEANSLL_RETURN_NOT_OK(fault::Check("seed.kill"));
    }
  }
  result.telemetry.rounds = rounds;
  result.telemetry.intermediate_centers = candidates.rows();

  // Step 7: w_x = total weight of points whose closest candidate is x.
  // tracker.ClosestCenter already holds the argmin over all candidates.
  std::vector<double> weights(static_cast<size_t>(candidates.rows()), 0.0);
  ForEachBlock(data, 0, data.n(), [&](const DatasetView& v) {
    for (int64_t b = 0; b < v.rows(); ++b) {
      int64_t c = tracker.ClosestCenter(v.first_row() + b);
      KMEANSLL_DCHECK(c >= 0);
      weights[static_cast<size_t>(c)] += v.Weight(b);
    }
  });
  result.telemetry.data_passes += 1;
  result.telemetry.sampling_seconds = timer.ElapsedSeconds();

  // Every data-wide pass is behind us: surface a degraded source as a
  // clean error (a bad shard fails the seeding, never the process), and
  // retire the checkpoint — the run is past the expensive phase.
  KMEANSLL_RETURN_NOT_OK(data.status());
  if (ckpt_enabled) (void)RemoveFileIfExists(options.checkpoint_path);

  // Step 8: recluster to k (skipped when we undershot; see header).
  if (candidates.rows() <= k) {
    if (candidates.rows() < k) {
      KMEANSLL_LOG(Warning)
          << "k-means|| selected " << candidates.rows()
          << " candidates < k=" << k
          << " (r*ell too small); returning them without reclustering";
    }
    result.centers = std::move(candidates);
    return result;
  }

  KMEANSLL_ASSIGN_OR_RETURN(
      result.centers,
      internal::ReclusterCandidates(candidates, weights, k, rng, options,
                                    &result.telemetry));
  return result;
}

Result<InitResult> KMeansLLInit(const Dataset& data, int64_t k,
                                rng::Rng rng,
                                const KMeansLLOptions& options,
                                ThreadPool* pool) {
  InMemorySource source = data.AsSource();
  return KMeansLLInit(source, k, rng, options, pool);
}

}  // namespace kmeansll
