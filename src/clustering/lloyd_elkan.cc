#include "clustering/lloyd_elkan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "clustering/cost.h"
#include "common/math_util.h"
#include "distance/l2.h"
#include "distance/nearest.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

namespace {

/// Chunk-replicated centroid accumulation (identical to LloydStep's and
/// RunLloydHamerly's, so all three produce bitwise-equal centers).
void AccumulateCentroids(const Dataset& data,
                         const std::vector<int32_t>& assignment, int64_t k,
                         std::vector<double>* sums,
                         std::vector<double>* weights) {
  const int64_t d = data.dim();
  sums->assign(static_cast<size_t>(k * d), 0.0);
  weights->assign(static_cast<size_t>(k), 0.0);
  std::vector<IndexRange> chunks =
      MakeChunks(data.n(), kDeterministicChunks);
  std::vector<double> chunk_sums(static_cast<size_t>(k * d));
  std::vector<double> chunk_weights(static_cast<size_t>(k));
  for (const IndexRange& r : chunks) {
    std::fill(chunk_sums.begin(), chunk_sums.end(), 0.0);
    std::fill(chunk_weights.begin(), chunk_weights.end(), 0.0);
    for (int64_t i = r.begin; i < r.end; ++i) {
      auto c = static_cast<int64_t>(assignment[static_cast<size_t>(i)]);
      double w = data.Weight(i);
      const double* point = data.Point(i);
      double* sum = chunk_sums.data() + c * d;
      for (int64_t j = 0; j < d; ++j) sum[j] += w * point[j];
      chunk_weights[static_cast<size_t>(c)] += w;
    }
    for (size_t v = 0; v < chunk_sums.size(); ++v) {
      (*sums)[v] += chunk_sums[v];
    }
    for (size_t c = 0; c < chunk_weights.size(); ++c) {
      (*weights)[c] += chunk_weights[c];
    }
  }
}

void RepairEmptyClusters(const Dataset& data, const Matrix& old_centers,
                         const std::vector<int64_t>& empty,
                         Matrix* new_centers) {
  NearestCenterSearch search(old_centers);
  std::vector<std::pair<double, int64_t>> contributions;
  contributions.reserve(static_cast<size_t>(data.n()));
  for (int64_t i = 0; i < data.n(); ++i) {
    contributions.emplace_back(
        data.Weight(i) * search.Find(data.Point(i)).distance2, i);
  }
  std::sort(contributions.begin(), contributions.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  size_t next = 0;
  for (int64_t c : empty) {
    const double* point = data.Point(contributions[next].second);
    ++next;
    double* row = new_centers->Row(c);
    for (int64_t j = 0; j < data.dim(); ++j) row[j] = point[j];
  }
}

}  // namespace

Result<LloydResult> RunLloydElkan(const Dataset& data,
                                  const Matrix& initial_centers,
                                  const LloydOptions& options,
                                  ElkanStats* stats) {
  if (initial_centers.rows() == 0) {
    return Status::InvalidArgument("initial center set is empty");
  }
  if (initial_centers.cols() != data.dim()) {
    return Status::InvalidArgument(
        "center dimension " + std::to_string(initial_centers.cols()) +
        " does not match data dimension " + std::to_string(data.dim()));
  }
  if (data.n() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }

  const int64_t n = data.n();
  const int64_t k = initial_centers.rows();
  const int64_t d = data.dim();

  LloydResult result;
  result.centers = initial_centers;

  std::vector<int32_t> assignment(static_cast<size_t>(n), -1);
  std::vector<int32_t> previous_assignment;
  // Unsquared distances throughout (triangle inequality is linear).
  std::vector<double> upper(static_cast<size_t>(n), 0.0);
  std::vector<double> lower(static_cast<size_t>(n * k), 0.0);
  bool bounds_valid = false;

  std::vector<double> center_dist(static_cast<size_t>(k * k), 0.0);
  std::vector<double> half_nearest(static_cast<size_t>(k), 0.0);

  double previous_cost = std::numeric_limits<double>::quiet_NaN();
  bool have_previous_cost = false;

  for (int64_t iter = 0; iter < options.max_iterations; ++iter) {
    // Inter-center geometry.
    for (int64_t a = 0; a < k; ++a) {
      double best = std::numeric_limits<double>::infinity();
      for (int64_t b = 0; b < k; ++b) {
        if (a == b) {
          center_dist[static_cast<size_t>(a * k + b)] = 0.0;
          continue;
        }
        double dist = std::sqrt(
            SquaredL2(result.centers.Row(a), result.centers.Row(b), d));
        center_dist[static_cast<size_t>(a * k + b)] = dist;
        best = std::min(best, dist);
      }
      half_nearest[static_cast<size_t>(a)] = k > 1 ? 0.5 * best : 0.0;
    }

    if (!bounds_valid) {
      // Full initialization: exact distances to every center.
      for (int64_t i = 0; i < n; ++i) {
        double best = std::numeric_limits<double>::infinity();
        int64_t best_c = -1;
        for (int64_t c = 0; c < k; ++c) {
          double dist =
              std::sqrt(SquaredL2(data.Point(i), result.centers.Row(c), d));
          lower[static_cast<size_t>(i * k + c)] = dist;
          if (stats != nullptr) ++stats->distance_evals;
          if (dist < best) {
            best = dist;
            best_c = c;
          }
        }
        assignment[static_cast<size_t>(i)] = static_cast<int32_t>(best_c);
        upper[static_cast<size_t>(i)] = best;
      }
      bounds_valid = true;
    } else {
      for (int64_t i = 0; i < n; ++i) {
        auto idx = static_cast<size_t>(i);
        auto a = static_cast<int64_t>(assignment[idx]);
        if (upper[idx] <= half_nearest[static_cast<size_t>(a)]) {
          if (stats != nullptr) ++stats->point_skips;
          continue;
        }
        bool upper_tight = false;
        for (int64_t c = 0; c < k; ++c) {
          if (c == a) continue;
          double l = lower[static_cast<size_t>(i * k + c)];
          double half_gap =
              0.5 * center_dist[static_cast<size_t>(a * k + c)];
          if (upper[idx] <= l || upper[idx] <= half_gap) {
            if (stats != nullptr) ++stats->center_prunes;
            continue;
          }
          if (!upper_tight) {
            upper[idx] = std::sqrt(SquaredL2(
                data.Point(i), result.centers.Row(a), d));
            lower[static_cast<size_t>(i * k + a)] = upper[idx];
            if (stats != nullptr) ++stats->distance_evals;
            upper_tight = true;
            if (upper[idx] <= l || upper[idx] <= half_gap) {
              if (stats != nullptr) ++stats->center_prunes;
              continue;
            }
          }
          double dist = std::sqrt(
              SquaredL2(data.Point(i), result.centers.Row(c), d));
          lower[static_cast<size_t>(i * k + c)] = dist;
          if (stats != nullptr) ++stats->distance_evals;
          if (dist < upper[idx]) {
            a = c;
            assignment[idx] = static_cast<int32_t>(c);
            upper[idx] = dist;
            upper_tight = true;
          }
        }
      }
    }

    // Centroid update (bitwise identical to LloydStep).
    std::vector<double> sums, weights;
    AccumulateCentroids(data, assignment, k, &sums, &weights);
    Matrix new_centers(k, d);
    std::vector<int64_t> empty;
    for (int64_t c = 0; c < k; ++c) {
      double w = weights[static_cast<size_t>(c)];
      double* row = new_centers.Row(c);
      if (w > 0.0) {
        const double* sum = sums.data() + c * d;
        for (int64_t j = 0; j < d; ++j) row[j] = sum[j] / w;
      } else {
        empty.push_back(c);
      }
    }
    bool repaired = !empty.empty();
    if (repaired) {
      result.empty_cluster_repairs += static_cast<int64_t>(empty.size());
      RepairEmptyClusters(data, result.centers, empty, &new_centers);
    }
    ++result.iterations;

    // Bound maintenance.
    if (repaired) {
      bounds_valid = false;  // teleported center: recompute next round
    } else {
      std::vector<double> movement(static_cast<size_t>(k));
      for (int64_t c = 0; c < k; ++c) {
        movement[static_cast<size_t>(c)] = std::sqrt(
            SquaredL2(result.centers.Row(c), new_centers.Row(c), d));
      }
      for (int64_t i = 0; i < n; ++i) {
        auto idx = static_cast<size_t>(i);
        upper[idx] +=
            movement[static_cast<size_t>(assignment[idx])];
        double* row_lower = lower.data() + i * k;
        for (int64_t c = 0; c < k; ++c) {
          row_lower[c] =
              std::max(0.0, row_lower[c] - movement[static_cast<size_t>(c)]);
        }
      }
    }

    bool assignments_unchanged =
        iter > 0 && assignment == previous_assignment;

    if (options.track_history || options.relative_tolerance > 0.0) {
      KahanSum cost;
      for (int64_t i = 0; i < n; ++i) {
        cost.Add(data.Weight(i) *
                 SquaredL2(data.Point(i),
                           result.centers.Row(
                               assignment[static_cast<size_t>(i)]),
                           d));
      }
      double current_cost = cost.Total();
      if (options.track_history) {
        result.cost_history.push_back(current_cost);
      }
      if (options.relative_tolerance > 0.0 && have_previous_cost &&
          previous_cost > 0.0) {
        double improvement = (previous_cost - current_cost) / previous_cost;
        if (improvement >= 0.0 &&
            improvement < options.relative_tolerance) {
          result.centers = std::move(new_centers);
          previous_assignment = assignment;
          result.converged = true;
          break;
        }
      }
      previous_cost = current_cost;
      have_previous_cost = true;
    }

    result.centers = std::move(new_centers);
    previous_assignment = assignment;

    if (assignments_unchanged) {
      result.converged = true;
      break;
    }
  }

  result.assignment = ComputeAssignment(data, result.centers);
  return result;
}

}  // namespace kmeansll
