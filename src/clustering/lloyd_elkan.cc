#include "clustering/lloyd_elkan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "clustering/cost.h"
#include "clustering/lloyd_internal.h"
#include "common/trace.h"
#include "common/math_util.h"
#include "distance/batch.h"
#include "distance/nearest.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

Result<LloydResult> RunLloydElkan(const DatasetSource& data,
                                  const Matrix& initial_centers,
                                  const LloydOptions& options,
                                  ElkanStats* stats,
                                  const double* point_norms) {
  if (initial_centers.rows() == 0) {
    return Status::InvalidArgument("initial center set is empty");
  }
  if (initial_centers.cols() != data.dim()) {
    return Status::InvalidArgument(
        "center dimension " + std::to_string(initial_centers.cols()) +
        " does not match data dimension " + std::to_string(data.dim()));
  }
  if (data.n() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }

  const int64_t n = data.n();
  const int64_t k = initial_centers.rows();
  const int64_t d = data.dim();

  // Shared-chain arithmetic (see RunLloydHamerly): every exact distance
  // here is an engine value, bitwise the one RunLloyd's scan computes.
  std::vector<double> norm_storage;
  bool expanded = false;
  const double* pn = internal::EnsurePointNorms(
      data, point_norms, &norm_storage, /*pool=*/nullptr, &expanded);

  LloydResult result;
  result.centers = initial_centers;

  std::vector<int32_t> assignment(static_cast<size_t>(n), -1);
  std::vector<int32_t> previous_assignment;
  // Unsquared distances throughout (triangle inequality is linear).
  std::vector<double> upper(static_cast<size_t>(n), 0.0);
  std::vector<double> lower(static_cast<size_t>(n * k), 0.0);
  bool bounds_valid = false;

  std::vector<double> center_dist(static_cast<size_t>(k * k), 0.0);
  std::vector<double> center_d2(static_cast<size_t>(k * k));
  std::vector<double> half_nearest(static_cast<size_t>(k), 0.0);
  std::vector<double> chunk_d2;  // scratch for the bound-init pass

  double previous_cost = std::numeric_limits<double>::quiet_NaN();
  bool have_previous_cost = false;

  // Checkpoint/resume (shared protocol, see lloyd_internal.h). The n × k
  // bound table is not persisted: the resumed iteration runs with
  // bounds_valid = false, i.e. the exact full-initialization pass, so
  // assignments — and therefore centers — stay bitwise the
  // uninterrupted run's. The previous assignment and cost are
  // reconstructed from the stored entering centers.
  const internal::LloydCheckpointPlan plan =
      internal::MakeLloydCheckpointPlan(data, initial_centers, options);
  int64_t start_iter = 0;
  {
    Matrix resume_prev;
    LloydResult resumed;
    if (internal::TryResumeLloyd(plan, &resumed, &resume_prev)) {
      result = std::move(resumed);
      start_iter = result.iterations;
      Assignment prev =
          ComputeAssignment(data, resume_prev, /*pool=*/nullptr, pn);
      previous_assignment = std::move(prev.cluster);
      if (options.track_history || options.relative_tolerance > 0.0) {
        previous_cost = prev.cost;
        have_previous_cost = true;
      }
    }
  }

  for (int64_t iter = start_iter; iter < options.max_iterations; ++iter) {
    KMEANSLL_TRACE_SPAN("lloyd_elkan.iteration");
    const bool will_checkpoint =
        internal::ShouldCheckpoint(plan, iter, options.max_iterations);
    Matrix entering_centers;
    if (will_checkpoint) entering_centers = result.centers;
    NearestCenterSearch search(result.centers);
    search.Freeze();
    // Scalar probes share the search's cached norms (same
    // RowSquaredNorms chain) rather than recomputing them.
    const double* cn =
        expanded ? search.center_norms().data() : nullptr;

    // Inter-center geometry: one blocked k × k scan; the diagonal is
    // pinned to zero (the engine's expanded self-distance can be a few
    // ulps of cancellation noise, and d(a, a) is zero by definition).
    search.DistancesRange(result.centers, IndexRange{0, k}, cn,
                          center_d2.data());
    for (int64_t a = 0; a < k; ++a) {
      double best = std::numeric_limits<double>::infinity();
      for (int64_t b = 0; b < k; ++b) {
        if (a == b) {
          center_dist[static_cast<size_t>(a * k + b)] = 0.0;
          continue;
        }
        double dist =
            std::sqrt(center_d2[static_cast<size_t>(a * k + b)]);
        center_dist[static_cast<size_t>(a * k + b)] = dist;
        best = std::min(best, dist);
      }
      half_nearest[static_cast<size_t>(a)] = k > 1 ? 0.5 * best : 0.0;
    }

    if (!bounds_valid) {
      // Full initialization: exact distances to every center, one
      // blocked pass chunked on the deterministic grid, written straight
      // into the n × k lower-bound table.
      std::vector<IndexRange> chunks = MakeChunks(n, kDeterministicChunks);
      for (size_t ci = 0; ci < chunks.size(); ++ci) {
        const IndexRange& r = chunks[ci];
        // Warm the next chunk's shards while this chunk's k-wide
        // distance rows compute — the bound-init gather is the one Elkan
        // pass not covered by ForEachBlock's own tail hints (each
        // DistancesRange call only sees its own chunk). Advisory only.
        if (ci + 1 < chunks.size()) {
          data.PrefetchHint(chunks[ci + 1].begin, chunks[ci + 1].end);
        }
        chunk_d2.resize(static_cast<size_t>(r.size() * k));
        search.DistancesRange(data, r,
                              pn == nullptr ? nullptr : pn + r.begin,
                              chunk_d2.data());
        for (int64_t i = r.begin; i < r.end; ++i) {
          const double* row = chunk_d2.data() + (i - r.begin) * k;
          double* row_lower = lower.data() + i * k;
          // Argmin on the squared values: two distinct d² can round to
          // the same sqrt, and the tie must break exactly like the
          // standard scan's strict-< over d².
          double best_d2 = std::numeric_limits<double>::infinity();
          int64_t best_c = -1;
          for (int64_t c = 0; c < k; ++c) {
            row_lower[c] = std::sqrt(row[c]);
            if (row[c] < best_d2) {
              best_d2 = row[c];
              best_c = c;
            }
          }
          assignment[static_cast<size_t>(i)] =
              static_cast<int32_t>(best_c);
          upper[static_cast<size_t>(i)] = row_lower[best_c];
        }
      }
      if (stats != nullptr) stats->distance_evals += n * k;
      bounds_valid = true;
    } else {
      ForEachBlock(data, 0, n, [&](const DatasetView& v) {
        for (int64_t b = 0; b < v.rows(); ++b) {
          const int64_t i = v.first_row() + b;
          auto idx = static_cast<size_t>(i);
          auto a = static_cast<int64_t>(assignment[idx]);
          if (upper[idx] <= half_nearest[static_cast<size_t>(a)]) {
            if (stats != nullptr) ++stats->point_skips;
            continue;
          }
          bool upper_tight = false;
          for (int64_t c = 0; c < k; ++c) {
            if (c == a) continue;
            double l = lower[static_cast<size_t>(i * k + c)];
            double half_gap =
                0.5 * center_dist[static_cast<size_t>(a * k + c)];
            if (upper[idx] <= l || upper[idx] <= half_gap) {
              if (stats != nullptr) ++stats->center_prunes;
              continue;
            }
            if (!upper_tight) {
              upper[idx] = std::sqrt(internal::PairDistance2(
                  v.Point(b), expanded ? pn[i] : 0.0,
                  result.centers.Row(a), expanded ? cn[a] : 0.0, d,
                  expanded));
              lower[static_cast<size_t>(i * k + a)] = upper[idx];
              if (stats != nullptr) ++stats->distance_evals;
              upper_tight = true;
              if (upper[idx] <= l || upper[idx] <= half_gap) {
                if (stats != nullptr) ++stats->center_prunes;
                continue;
              }
            }
            double dist = std::sqrt(internal::PairDistance2(
                v.Point(b), expanded ? pn[i] : 0.0,
                result.centers.Row(c), expanded ? cn[c] : 0.0, d,
                expanded));
            lower[static_cast<size_t>(i * k + c)] = dist;
            if (stats != nullptr) ++stats->distance_evals;
            if (dist < upper[idx]) {
              a = c;
              assignment[idx] = static_cast<int32_t>(c);
              upper[idx] = dist;
              upper_tight = true;
            }
          }
        }
      });
    }

    // Centroid update (bitwise identical to LloydStep).
    internal::CentroidSums totals =
        internal::AccumulateCentroids(data, assignment, k, nullptr);
    Matrix new_centers;
    std::vector<int64_t> empty =
        internal::CentroidsFromSums(totals, k, d, &new_centers);
    bool repaired = !empty.empty();
    if (repaired) {
      result.empty_cluster_repairs += static_cast<int64_t>(empty.size());
      internal::RepairEmptyClusters(data, result.centers, empty,
                                    &new_centers, /*pool=*/nullptr, pn);
    }
    ++result.iterations;

    // Bound maintenance.
    if (repaired) {
      bounds_valid = false;  // teleported center: recompute next round
    } else {
      std::vector<double> movement(static_cast<size_t>(k));
      for (int64_t c = 0; c < k; ++c) {
        // Plain chain: the expanded form can cancel to zero for a
        // barely-moved center and understate movement (unsound for the
        // bound updates below).
        movement[static_cast<size_t>(c)] = std::sqrt(
            PairSquaredL2(result.centers.Row(c), new_centers.Row(c), d));
      }
      for (int64_t i = 0; i < n; ++i) {
        auto idx = static_cast<size_t>(i);
        upper[idx] += movement[static_cast<size_t>(assignment[idx])];
        double* row_lower = lower.data() + i * k;
        for (int64_t c = 0; c < k; ++c) {
          row_lower[c] =
              std::max(0.0, row_lower[c] - movement[static_cast<size_t>(c)]);
        }
      }
    }

    bool assignments_unchanged =
        iter > 0 && assignment == previous_assignment;

    if (options.track_history || options.relative_tolerance > 0.0) {
      // Bitwise the cost RunLloyd's history records (shared chunked
      // Kahan reduction over the same per-pair values).
      double current_cost = internal::AssignmentCost(
          data, result.centers, assignment, pn, cn, expanded);
      if (options.track_history) {
        result.cost_history.push_back(current_cost);
      }
      if (options.relative_tolerance > 0.0 && have_previous_cost &&
          previous_cost > 0.0) {
        double improvement = (previous_cost - current_cost) / previous_cost;
        if (improvement >= 0.0 &&
            improvement < options.relative_tolerance) {
          result.centers = std::move(new_centers);
          previous_assignment = assignment;
          result.converged = true;
          break;
        }
      }
      previous_cost = current_cost;
      have_previous_cost = true;
    }

    result.centers = std::move(new_centers);
    previous_assignment = assignment;

    if (assignments_unchanged) {
      result.converged = true;
      break;
    }

    if (will_checkpoint) {
      KMEANSLL_RETURN_NOT_OK(
          internal::CheckpointLloydIteration(
              plan, entering_centers, result,
              &result.checkpoint_write_retries));
    }
  }

  result.assignment = ComputeAssignment(data, result.centers, nullptr, pn);
  KMEANSLL_RETURN_NOT_OK(data.status());
  internal::RemoveLloydCheckpoint(plan);
  return result;
}

Result<LloydResult> RunLloydElkan(const Dataset& data,
                                  const Matrix& initial_centers,
                                  const LloydOptions& options,
                                  ElkanStats* stats,
                                  const double* point_norms) {
  InMemorySource source = data.AsSource();
  return RunLloydElkan(source, initial_centers, options, stats,
                       point_norms);
}

}  // namespace kmeansll
