#include "clustering/mapreduce_kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/timer.h"
#include "distance/batch.h"
#include "distance/l2.h"
#include "distance/nearest.h"
#include "mapreduce/job.h"
#include "rng/splitmix64.h"

namespace kmeansll {

namespace {

using mapreduce::DataPartition;
using mapreduce::Emitter;
using mapreduce::Job;
using mapreduce::MakePartitions;

void CountPass(const MRContext& ctx) {
  if (ctx.counters != nullptr) {
    ctx.counters->Add(mapreduce::kCounterDataPasses, 1);
  }
}

/// Builds the job's input partitions and installs the prefetch-aware
/// execution plan for them. Partition BOUNDARIES always come from
/// MakePartitions — per-task partial sums fold over those row groups, so
/// keeping them fixed is what makes MR results bitwise identical between
/// in-memory and sharded sources. On top of that, when the source
/// exposes residency units, MakeMapTaskSchedule supplies (a) a
/// submission order that starts each concurrent wave on distinct shards
/// even when the partition count does not match the shard count
/// (partitions subdividing a shard would otherwise pile the wave onto
/// it), and (b) per-task hints for the next partition of the same
/// worker's shard span, issued by the task prologue while the current
/// task scans (see DatasetSource::PrefetchHint; advisory, so neither
/// lever can change results). Sources without residency units keep the
/// plain one-pool-width-ahead hint.
template <typename JobT>
std::vector<DataPartition> PartitionsWithPrefetch(const DatasetSource& data,
                                                  const MRContext& ctx,
                                                  JobT* job) {
  std::vector<DataPartition> parts =
      MakePartitions(data, ctx.num_partitions);
  const int64_t workers =
      ctx.pool == nullptr ? 1 : ctx.pool->num_threads();
  mapreduce::MapTaskSchedule schedule =
      mapreduce::MakeMapTaskSchedule(data, parts, workers);
  if (!schedule.order.empty()) {
    job->WithSubmissionOrder(std::move(schedule.order));
    job->WithPrologue(
        [&data, hints = std::move(schedule.hints)](int64_t t) {
          const auto& [begin, end] = hints[static_cast<size_t>(t)];
          if (begin < end) data.PrefetchHint(begin, end);
        });
    return parts;
  }
  job->WithPrologue([parts, workers](int64_t t) {
    const auto next = static_cast<size_t>(t + workers);
    if (next < parts.size()) {
      parts[next].source->PrefetchHint(parts[next].begin,
                                       parts[next].end);
    }
  });
  return parts;
}

/// Installs the context's fault policy on a job: attempt budget,
/// optional speculation, and the error channel every driver checks
/// right after Run (a terminal task failure yields a Status, never an
/// abort). `allow_speculation` is false for jobs whose map tasks write
/// shared per-row state (the k-means|| distance update, the Lloyd
/// assignment scatter): a retry of such a task is idempotent — it
/// rewrites the same rows with the same values after the primary is
/// dead — but a live speculative twin would race the primary on those
/// rows, so only side-effect-free jobs speculate.
template <typename JobT>
void ApplyFaultPolicy(JobT* job, const MRContext& ctx, Status* error_out,
                      bool allow_speculation = true) {
  job->WithTaskAttempts(ctx.max_task_attempts)
      .WithSpeculativeExecution(allow_speculation &&
                                ctx.speculative_execution)
      .WithErrorOut(error_out);
}

}  // namespace

Result<double> MRComputeCost(const DatasetSource& data,
                             const Matrix& centers, const MRContext& ctx) {
  KMEANSLL_CHECK_GT(centers.rows(), 0);
  NearestCenterSearch search(centers);
  search.Freeze();  // one packing shared by every map task
  Job<DataPartition, int, double, double> job;
  job.WithMap([&](int64_t, const DataPartition& part,
                  Emitter<int, double>* out) {
        // One streaming pass: scan each pinned block and fold its
        // weighted distances immediately (rows still fold in ascending
        // order, so the Kahan chain is unchanged). A scan pass plus a
        // separate weight pass would pin — and under a tight window,
        // map — every shard twice per task.
        KahanSum partial;
        std::vector<double> d2;
        ForEachBlock(*part.source, part.begin, part.end,
                     [&](const DatasetView& v) {
                       d2.resize(static_cast<size_t>(v.rows()));
                       search.FindRange(v.points(),
                                        IndexRange{0, v.rows()}, nullptr,
                                        /*out_index=*/nullptr, d2.data());
                       for (int64_t i = 0; i < v.rows(); ++i) {
                         partial.Add(v.Weight(i) *
                                     d2[static_cast<size_t>(i)]);
                       }
                     });
        out->Emit(0, partial.Total());
      })
      .WithCombine([](const double& a, const double& b) { return a + b; })
      .WithReduce([](const int&, std::vector<double>& values) {
        KahanSum sum;
        for (double v : values) sum.Add(v);
        return sum.Total();
      })
      .WithCounters(ctx.counters);
  Status job_error;
  ApplyFaultPolicy(&job, ctx, &job_error);
  auto outputs = job.Run(ctx.pool, PartitionsWithPrefetch(data, ctx, &job));
  CountPass(ctx);
  KMEANSLL_RETURN_NOT_OK(job_error);
  KMEANSLL_RETURN_NOT_OK(data.status());
  KMEANSLL_CHECK_EQ(outputs.size(), 1u);
  return outputs[0];
}

namespace {

/// Shared distributed state for the k-means|| driver: per-point min
/// squared distance, closest-candidate index, and the cached point norms
/// the expanded kernel reuses across rounds. Map tasks touch disjoint row
/// ranges, so lock-free writes are safe.
struct DistanceState {
  std::vector<double> min_d2;
  std::vector<int32_t> closest;
  std::vector<double> point_norms;  // empty when the plain kernel is used
};

/// Job 1: fold rows [first, |C|) of the candidate set into the distance
/// state via the blocked batch engine and return the updated potential φ.
Result<double> RunUpdateCostJob(const DatasetSource& data,
                                const Matrix& candidates, int64_t first,
                                DistanceState* state, const MRContext& ctx) {
  const bool expanded = data.dim() >= kExpandedKernelMinDim;
  // Norms for the newly added candidate rows only (indexed relative to
  // `first`, as the engine expects).
  std::vector<double> new_center_norms;
  if (expanded) {
    for (int64_t c = first; c < candidates.rows(); ++c) {
      new_center_norms.push_back(SquaredNorm(candidates.Row(c),
                                             data.dim()));
    }
  }
  // Pack the new candidate rows once; every map task (and every pinned
  // block within one) scans the same panels.
  CenterPanels panels;
  panels.Pack(candidates, first);
  Job<DataPartition, int, double, double> job;
  job.WithMap([&](int64_t, const DataPartition& part,
                  Emitter<int, double>* out) {
        KahanSum partial;
        ForEachBlock(*part.source, part.begin, part.end,
                     [&](const DatasetView& v) {
                       const int64_t fr = v.first_row();
                       BatchNearestMerge(
                           v.points(), IndexRange{0, v.rows()},
                           expanded ? state->point_norms.data() + fr
                                    : nullptr,
                           panels,
                           expanded ? new_center_norms.data() : nullptr,
                           expanded ? BatchKernel::kExpanded
                                    : BatchKernel::kPlain,
                           state->min_d2.data() + fr,
                           state->closest.data() + fr);
                       for (int64_t i = 0; i < v.rows(); ++i) {
                         partial.Add(
                             v.Weight(i) *
                             state->min_d2[static_cast<size_t>(fr + i)]);
                       }
                     });
        out->Emit(0, partial.Total());
      })
      .WithCombine([](const double& a, const double& b) { return a + b; })
      .WithReduce([](const int&, std::vector<double>& values) {
        KahanSum sum;
        for (double v : values) sum.Add(v);
        return sum.Total();
      })
      .WithCounters(ctx.counters);
  Status job_error;
  ApplyFaultPolicy(&job, ctx, &job_error, /*allow_speculation=*/false);
  auto outputs = job.Run(ctx.pool, PartitionsWithPrefetch(data, ctx, &job));
  CountPass(ctx);
  KMEANSLL_RETURN_NOT_OK(job_error);
  KMEANSLL_RETURN_NOT_OK(data.status());
  return outputs[0];
}

/// One (key, index) candidate emitted by the exact-ℓ sampling job.
struct ExactCandidate {
  double key = 0;     // log(u)/w — larger is better
  int64_t index = 0;
};

/// Job 2: D² sampling. Bernoulli mode emits every selected index;
/// exact-ℓ mode emits per-point keys and the reducer keeps the top ℓ.
Result<std::vector<int64_t>> RunSamplingJob(
    const DatasetSource& data, const DistanceState& state, double phi,
    double ell, int64_t ell_int, bool exact_ell, uint64_t round_seed,
    const MRContext& ctx) {
  Status job_error;
  std::vector<int64_t> chosen;
  if (!exact_ell) {
    Job<DataPartition, int, std::vector<int64_t>, std::vector<int64_t>> job;
    job.WithMap([&](int64_t, const DataPartition& part,
                    Emitter<int, std::vector<int64_t>>* out) {
          std::vector<int64_t> local;
          ForEachBlock(*part.source, part.begin, part.end,
                       [&](const DatasetView& v) {
                         for (int64_t b = 0; b < v.rows(); ++b) {
                           const int64_t i = v.first_row() + b;
                           double p =
                               ell * v.Weight(b) *
                               state.min_d2[static_cast<size_t>(i)] / phi;
                           if (p <= 0.0) continue;
                           if (rng::UniformAtIndex(
                                   round_seed, static_cast<uint64_t>(i)) <
                               p) {
                             local.push_back(i);
                           }
                         }
                       });
          out->Emit(0, std::move(local));
        })
        .WithReduce([](const int&, std::vector<std::vector<int64_t>>& vs) {
          std::vector<int64_t> merged;
          for (auto& v : vs) {
            merged.insert(merged.end(), v.begin(), v.end());
          }
          std::sort(merged.begin(), merged.end());
          return merged;
        })
        .WithCounters(ctx.counters);
    ApplyFaultPolicy(&job, ctx, &job_error);
    auto outputs =
        job.Run(ctx.pool, PartitionsWithPrefetch(data, ctx, &job));
    if (job_error.ok()) chosen = std::move(outputs[0]);
  } else {
    Job<DataPartition, int, std::vector<ExactCandidate>,
        std::vector<int64_t>>
        job;
    job.WithMap([&](int64_t, const DataPartition& part,
                    Emitter<int, std::vector<ExactCandidate>>* out) {
          // Keep only the partition-local top ℓ (a combiner in spirit):
          // the global top ℓ is a subset of the per-partition top ℓ.
          std::vector<ExactCandidate> local;
          ForEachBlock(
              *part.source, part.begin, part.end,
              [&](const DatasetView& v) {
                for (int64_t b = 0; b < v.rows(); ++b) {
                  const int64_t i = v.first_row() + b;
                  double w =
                      v.Weight(b) * state.min_d2[static_cast<size_t>(i)];
                  if (!(w > 0.0)) continue;
                  double u = rng::UniformAtIndex(round_seed,
                                                 static_cast<uint64_t>(i));
                  while (u <= 0.0) {
                    u = rng::UniformAtIndex(round_seed ^ 0x5bf0,
                                            static_cast<uint64_t>(i));
                  }
                  local.push_back(ExactCandidate{std::log(u) / w, i});
                }
              });
          auto keep = static_cast<size_t>(
              std::min<int64_t>(ell_int,
                                static_cast<int64_t>(local.size())));
          std::partial_sort(local.begin(), local.begin() + keep,
                            local.end(),
                            [](const ExactCandidate& a,
                               const ExactCandidate& b) {
                              if (a.key != b.key) return a.key > b.key;
                              return a.index < b.index;
                            });
          local.resize(keep);
          out->Emit(0, std::move(local));
        })
        .WithReduce([&](const int&,
                        std::vector<std::vector<ExactCandidate>>& vs) {
          std::vector<ExactCandidate> merged;
          for (auto& v : vs) {
            merged.insert(merged.end(), v.begin(), v.end());
          }
          std::sort(merged.begin(), merged.end(),
                    [](const ExactCandidate& a, const ExactCandidate& b) {
                      if (a.key != b.key) return a.key > b.key;
                      return a.index < b.index;
                    });
          if (static_cast<int64_t>(merged.size()) > ell_int) {
            merged.resize(static_cast<size_t>(ell_int));
          }
          std::vector<int64_t> indices;
          indices.reserve(merged.size());
          for (const auto& c : merged) indices.push_back(c.index);
          std::sort(indices.begin(), indices.end());
          return indices;
        })
        .WithCounters(ctx.counters);
    ApplyFaultPolicy(&job, ctx, &job_error);
    auto outputs =
        job.Run(ctx.pool, PartitionsWithPrefetch(data, ctx, &job));
    if (job_error.ok()) chosen = std::move(outputs[0]);
  }
  CountPass(ctx);
  KMEANSLL_RETURN_NOT_OK(job_error);
  KMEANSLL_RETURN_NOT_OK(data.status());
  return chosen;
}

/// Job 3 (Step 7): weight of every candidate = total weight of the points
/// it attracts; (candidate, weight) pairs with a summing combiner.
Result<std::vector<double>> RunWeightJob(const DatasetSource& data,
                                         const DistanceState& state,
                                         int64_t num_candidates,
                                         const MRContext& ctx) {
  struct CenterWeight {
    int64_t center;
    double weight;
  };
  Job<DataPartition, int64_t, double, CenterWeight> job;
  job.WithMap([&](int64_t, const DataPartition& part,
                  Emitter<int64_t, double>* out) {
        // Local pre-aggregation keeps emissions at O(candidates), not O(n).
        std::vector<double> local(static_cast<size_t>(num_candidates), 0.0);
        ForEachBlock(*part.source, part.begin, part.end,
                     [&](const DatasetView& v) {
                       for (int64_t b = 0; b < v.rows(); ++b) {
                         const int64_t i = v.first_row() + b;
                         local[static_cast<size_t>(state.closest[
                             static_cast<size_t>(i)])] += v.Weight(b);
                       }
                     });
        for (int64_t c = 0; c < num_candidates; ++c) {
          double w = local[static_cast<size_t>(c)];
          if (w > 0.0) out->Emit(c, w);
        }
      })
      .WithCombine([](const double& a, const double& b) { return a + b; })
      .WithReduce([](const int64_t& center, std::vector<double>& values) {
        KahanSum sum;
        for (double v : values) sum.Add(v);
        return CenterWeight{center, sum.Total()};
      })
      .WithCounters(ctx.counters);
  Status job_error;
  ApplyFaultPolicy(&job, ctx, &job_error);
  auto outputs = job.Run(ctx.pool, PartitionsWithPrefetch(data, ctx, &job));
  CountPass(ctx);
  KMEANSLL_RETURN_NOT_OK(job_error);
  KMEANSLL_RETURN_NOT_OK(data.status());
  std::vector<double> weights(static_cast<size_t>(num_candidates), 0.0);
  for (const auto& cw : outputs) {
    weights[static_cast<size_t>(cw.center)] = cw.weight;
  }
  return weights;
}

}  // namespace

Result<InitResult> MRKMeansLLInit(const DatasetSource& data, int64_t k,
                                  rng::Rng rng,
                                  const KMeansLLOptions& options,
                                  const MRContext& ctx) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > data.n()) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds n=" + std::to_string(data.n()));
  }
  if (options.rounds != KMeansLLOptions::kAutoRounds && options.rounds < 0) {
    return Status::InvalidArgument("rounds must be >= 0 or kAutoRounds");
  }
  KMEANSLL_ASSIGN_OR_RETURN(
      double ell, internal::ResolveOversampling(options.oversampling, k));
  const auto ell_int = static_cast<int64_t>(std::llround(std::ceil(ell)));

  WallTimer timer;
  InitResult result;

  // Step 1: initial center (same stream as the sequential driver).
  rng::Rng init_rng = rng.Fork(rng::StreamPurpose::kInitialCenter);
  auto first = static_cast<int64_t>(init_rng.NextBounded(data.n()));
  Matrix candidates(data.dim());
  {
    PinnedBlock pin = data.Pin(first, first + 1);
    candidates.AppendRow(pin.view().Point(0));
  }

  DistanceState state;
  state.min_d2.assign(static_cast<size_t>(data.n()),
                      std::numeric_limits<double>::infinity());
  state.closest.assign(static_cast<size_t>(data.n()), -1);
  if (data.dim() >= kExpandedKernelMinDim) {
    // Computed once, reused by every round's update job.
    state.point_norms = RowSquaredNorms(data, ctx.pool);
  }

  // Step 2: ψ via the update+cost job.
  KMEANSLL_ASSIGN_OR_RETURN(double psi,
                            RunUpdateCostJob(data, candidates, 0, &state,
                                             ctx));
  result.telemetry.round_potentials.push_back(psi);
  result.telemetry.data_passes = 1;

  const int64_t rounds = internal::ResolveRounds(options.rounds, psi);
  double phi = psi;

  // Steps 3–6.
  for (int64_t round = 0; round < rounds; ++round) {
    if (!(phi > 0.0)) break;
    const uint64_t round_seed = rng::HashCombine(
        rng.Fork(rng::StreamPurpose::kRoundSampling, round).root_key(),
        static_cast<uint64_t>(round));
    KMEANSLL_ASSIGN_OR_RETURN(
        std::vector<int64_t> chosen,
        RunSamplingJob(data, state, phi, ell, ell_int, options.exact_ell,
                       round_seed, ctx));
    result.telemetry.data_passes += 1;

    int64_t previous = candidates.rows();
    // `chosen` is sorted: the gather pins each shard at most once.
    candidates.AppendRows(GatherPoints(data, chosen));
    KMEANSLL_ASSIGN_OR_RETURN(
        phi, RunUpdateCostJob(data, candidates, previous, &state, ctx));
    result.telemetry.data_passes += 1;
    result.telemetry.round_potentials.push_back(phi);
  }
  result.telemetry.rounds = rounds;
  result.telemetry.intermediate_centers = candidates.rows();

  // Step 7.
  KMEANSLL_ASSIGN_OR_RETURN(
      std::vector<double> weights,
      RunWeightJob(data, state, candidates.rows(), ctx));
  result.telemetry.data_passes += 1;
  result.telemetry.sampling_seconds = timer.ElapsedSeconds();

  // Step 8 on a single machine (the candidate set is tiny).
  if (candidates.rows() <= k) {
    if (candidates.rows() < k) {
      KMEANSLL_LOG(Warning)
          << "MR k-means|| selected " << candidates.rows()
          << " candidates < k=" << k << "; skipping reclustering";
    }
    result.centers = std::move(candidates);
    return result;
  }
  KMEANSLL_ASSIGN_OR_RETURN(
      result.centers,
      internal::ReclusterCandidates(candidates, weights, k, rng, options,
                                    &result.telemetry));
  return result;
}

Result<InitResult> MRRandomInit(const DatasetSource& data, int64_t k,
                                rng::Rng rng, const MRContext& ctx) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > data.n()) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds n=" + std::to_string(data.n()));
  }
  WallTimer timer;
  const uint64_t seed =
      rng.Fork(rng::StreamPurpose::kInitialCenter).root_key();

  struct Keyed {
    uint64_t key;
    int64_t index;
  };
  auto keep_smallest = [](std::vector<Keyed>& entries, int64_t count) {
    auto keep = static_cast<size_t>(std::min<int64_t>(
        count, static_cast<int64_t>(entries.size())));
    std::partial_sort(entries.begin(), entries.begin() + keep,
                      entries.end(), [](const Keyed& a, const Keyed& b) {
                        if (a.key != b.key) return a.key < b.key;
                        return a.index < b.index;
                      });
    entries.resize(keep);
  };

  Job<DataPartition, int, std::vector<Keyed>, std::vector<int64_t>> job;
  job.WithMap([&](int64_t, const DataPartition& part,
                  Emitter<int, std::vector<Keyed>>* out) {
        std::vector<Keyed> local;
        local.reserve(static_cast<size_t>(part.size()));
        for (int64_t i = part.begin; i < part.end; ++i) {
          local.push_back(Keyed{
              rng::HashCombine(seed, static_cast<uint64_t>(i)), i});
        }
        keep_smallest(local, k);
        out->Emit(0, std::move(local));
      })
      .WithReduce([&](const int&, std::vector<std::vector<Keyed>>& vs) {
        std::vector<Keyed> merged;
        for (auto& v : vs) merged.insert(merged.end(), v.begin(), v.end());
        keep_smallest(merged, k);
        std::vector<int64_t> indices;
        indices.reserve(merged.size());
        for (const Keyed& e : merged) indices.push_back(e.index);
        std::sort(indices.begin(), indices.end());
        return indices;
      })
      .WithCounters(ctx.counters);
  Status job_error;
  ApplyFaultPolicy(&job, ctx, &job_error);
  auto outputs = job.Run(ctx.pool, PartitionsWithPrefetch(data, ctx, &job));
  CountPass(ctx);
  KMEANSLL_RETURN_NOT_OK(job_error);
  KMEANSLL_RETURN_NOT_OK(data.status());

  InitResult result;
  result.centers = GatherPoints(data, outputs[0]);
  result.telemetry.rounds = 0;
  result.telemetry.data_passes = 1;
  result.telemetry.sampling_seconds = timer.ElapsedSeconds();
  return result;
}

Result<InitResult> MRPartitionInit(const DatasetSource& data, int64_t k,
                                   rng::Rng rng,
                                   const PartitionOptions& options,
                                   const MRContext& ctx) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (k > data.n()) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds n=" + std::to_string(data.n()));
  }
  if (options.num_groups > 0 &&
      options.num_groups != ctx.num_partitions) {
    return Status::InvalidArgument(
        "MRPartitionInit maps groups onto input splits: num_groups (" +
        std::to_string(options.num_groups) + ") must equal "
        "num_partitions (" + std::to_string(ctx.num_partitions) + ") "
        "or be <= 0");
  }
  WallTimer timer;

  int64_t batch = options.batch_size;
  if (batch <= 0) {
    batch = static_cast<int64_t>(std::ceil(
        3.0 * std::log(std::max<double>(2.0, static_cast<double>(k)))));
  }
  const int64_t iterations = options.iterations > 0 ? options.iterations : k;

  // Round 1: one map task per group — k-means# plus group-local weights.
  struct WeightedPick {
    int64_t index;
    double weight;
  };
  Job<DataPartition, int, std::vector<WeightedPick>,
      std::vector<WeightedPick>>
      job;
  job.WithMap([&](int64_t, const DataPartition& part,
                  Emitter<int, std::vector<WeightedPick>>* out) {
        if (part.size() == 0) return;
        std::vector<int64_t> selected = internal::KMeansSharp(
            data, part.begin, part.end, batch, iterations, rng);
        Matrix group_centers = GatherPoints(data, selected);
        NearestCenterSearch search(group_centers);
        search.Freeze();  // one packing for the whole partition scan
        // Single streaming pass: per-block nearest scan feeding the
        // weight fold directly (see MRComputeCost on why).
        std::vector<int32_t> nearest;
        std::vector<double> nearest_d2;
        std::vector<double> weights(selected.size(), 0.0);
        ForEachBlock(*part.source, part.begin, part.end,
                     [&](const DatasetView& v) {
                       nearest.resize(static_cast<size_t>(v.rows()));
                       nearest_d2.resize(static_cast<size_t>(v.rows()));
                       search.FindRange(v.points(),
                                        IndexRange{0, v.rows()}, nullptr,
                                        nearest.data(),
                                        nearest_d2.data());
                       for (int64_t b = 0; b < v.rows(); ++b) {
                         weights[static_cast<size_t>(
                             nearest[static_cast<size_t>(b)])] +=
                             v.Weight(b);
                       }
                     });
        std::vector<WeightedPick> picks;
        picks.reserve(selected.size());
        for (size_t s = 0; s < selected.size(); ++s) {
          picks.push_back(WeightedPick{selected[s], weights[s]});
        }
        out->Emit(0, std::move(picks));
      })
      .WithReduce([](const int&,
                     std::vector<std::vector<WeightedPick>>& vs) {
        std::vector<WeightedPick> merged;
        for (auto& v : vs) merged.insert(merged.end(), v.begin(), v.end());
        return merged;
      })
      .WithCounters(ctx.counters);
  Status job_error;
  ApplyFaultPolicy(&job, ctx, &job_error);
  auto outputs = job.Run(ctx.pool, PartitionsWithPrefetch(data, ctx, &job));
  CountPass(ctx);
  KMEANSLL_RETURN_NOT_OK(job_error);
  KMEANSLL_RETURN_NOT_OK(data.status());
  KMEANSLL_CHECK(!outputs.empty() && !outputs[0].empty());

  std::vector<int64_t> all_selected;
  std::vector<double> weights;
  all_selected.reserve(outputs[0].size());
  weights.reserve(outputs[0].size());
  for (const auto& pick : outputs[0]) {
    all_selected.push_back(pick.index);
    weights.push_back(pick.weight);
  }

  InitResult result;
  result.telemetry.rounds = 2;
  result.telemetry.intermediate_centers =
      static_cast<int64_t>(all_selected.size());
  result.telemetry.data_passes = iterations + 1;
  Matrix candidates = GatherPoints(data, all_selected);
  result.telemetry.sampling_seconds = timer.ElapsedSeconds();

  // Round 2 on a single machine, as in the paper.
  if (candidates.rows() <= k) {
    result.centers = std::move(candidates);
    return result;
  }
  KMeansLLOptions recluster_options;
  KMEANSLL_ASSIGN_OR_RETURN(
      result.centers,
      internal::ReclusterCandidates(candidates, weights, k, rng,
                                    recluster_options,
                                    &result.telemetry));
  return result;
}

Result<LloydResult> MRRunLloyd(const DatasetSource& data,
                               const Matrix& initial_centers,
                               const LloydOptions& options,
                               const MRContext& ctx) {
  if (initial_centers.rows() == 0) {
    return Status::InvalidArgument("initial center set is empty");
  }
  if (initial_centers.cols() != data.dim()) {
    return Status::InvalidArgument("center dimension mismatch");
  }

  const int64_t k = initial_centers.rows();
  const int64_t d = data.dim();

  /// Per-center accumulator flowing through the job.
  struct CentroidAccum {
    std::vector<double> sum;
    double weight = 0;
    double cost = 0;  // partial φ contribution of the emitting partition
  };
  struct CentroidOut {
    int64_t center = 0;
    std::vector<double> centroid;
    double weight = 0;
    double cost = 0;
    bool empty = false;
  };

  LloydResult result;
  result.centers = initial_centers;
  std::vector<int32_t> previous_assignment;

  for (int64_t iter = 0; iter < options.max_iterations; ++iter) {
    NearestCenterSearch search(result.centers);
    search.Freeze();  // one packing shared by every map task and block
    std::vector<int32_t> assignment(static_cast<size_t>(data.n()), -1);

    Job<DataPartition, int64_t, CentroidAccum, CentroidOut> job;
    job.WithMap([&](int64_t, const DataPartition& part,
                    Emitter<int64_t, CentroidAccum>* out) {
          std::vector<CentroidAccum> local(static_cast<size_t>(k));
          // Single streaming pass: assign each pinned block and fold it
          // into the centroid accumulators before the pin drops (see
          // MRComputeCost on why).
          std::vector<double> d2;
          ForEachBlock(
              *part.source, part.begin, part.end,
              [&](const DatasetView& v) {
                d2.resize(static_cast<size_t>(v.rows()));
                search.FindRange(v.points(), IndexRange{0, v.rows()},
                                 nullptr,
                                 assignment.data() + v.first_row(),
                                 d2.data());
                for (int64_t b = 0; b < v.rows(); ++b) {
                  const int64_t i = v.first_row() + b;
                  auto owner = static_cast<size_t>(
                      assignment[static_cast<size_t>(i)]);
                  auto& acc = local[owner];
                  if (acc.sum.empty()) {
                    acc.sum.assign(static_cast<size_t>(d), 0.0);
                  }
                  double w = v.Weight(b);
                  const double* point = v.Point(b);
                  for (int64_t j = 0; j < d; ++j) {
                    acc.sum[static_cast<size_t>(j)] += w * point[j];
                  }
                  acc.weight += w;
                  acc.cost += w * d2[static_cast<size_t>(b)];
                }
              });
          for (int64_t c = 0; c < k; ++c) {
            auto& acc = local[static_cast<size_t>(c)];
            if (acc.weight > 0.0) out->Emit(c, std::move(acc));
          }
        })
        .WithCombine([](const CentroidAccum& a, const CentroidAccum& b) {
          CentroidAccum merged = a;
          if (merged.sum.empty()) {
            merged.sum = b.sum;
          } else if (!b.sum.empty()) {
            for (size_t j = 0; j < merged.sum.size(); ++j) {
              merged.sum[j] += b.sum[j];
            }
          }
          merged.weight += b.weight;
          merged.cost += b.cost;
          return merged;
        })
        .WithReduce([&](const int64_t& center,
                        std::vector<CentroidAccum>& values) {
          CentroidOut out;
          out.center = center;
          CentroidAccum total;
          for (auto& v : values) {
            if (total.sum.empty()) {
              total.sum = std::move(v.sum);
            } else if (!v.sum.empty()) {
              for (size_t j = 0; j < total.sum.size(); ++j) {
                total.sum[j] += v.sum[j];
              }
            }
            total.weight += v.weight;
            total.cost += v.cost;
          }
          out.weight = total.weight;
          out.cost = total.cost;
          if (total.weight > 0.0) {
            out.centroid.resize(static_cast<size_t>(d));
            for (int64_t j = 0; j < d; ++j) {
              out.centroid[static_cast<size_t>(j)] =
                  total.sum[static_cast<size_t>(j)] / total.weight;
            }
          } else {
            out.empty = true;
          }
          return out;
        })
        .WithCounters(ctx.counters);
    // The map scatters into the shared `assignment` vector, so a live
    // speculative twin would race the primary; retries (which run only
    // after the primary attempt died) are idempotent and stay enabled.
    Status job_error;
    ApplyFaultPolicy(&job, ctx, &job_error, /*allow_speculation=*/false);

    auto outputs =
        job.Run(ctx.pool, PartitionsWithPrefetch(data, ctx, &job));
    CountPass(ctx);
    KMEANSLL_RETURN_NOT_OK(job_error);
    KMEANSLL_RETURN_NOT_OK(data.status());
    ++result.iterations;

    Matrix new_centers(k, d);
    std::vector<bool> seen(static_cast<size_t>(k), false);
    KahanSum cost;
    for (const auto& out : outputs) {
      seen[static_cast<size_t>(out.center)] = true;
      cost.Add(out.cost);
      double* row = new_centers.Row(out.center);
      for (int64_t j = 0; j < d; ++j) {
        row[j] = out.centroid[static_cast<size_t>(j)];
      }
    }
    // Empty-cluster repair, same deterministic policy as LloydStep.
    std::vector<int64_t> empty;
    for (int64_t c = 0; c < k; ++c) {
      if (!seen[static_cast<size_t>(c)]) empty.push_back(c);
    }
    if (!empty.empty()) {
      result.empty_cluster_repairs += static_cast<int64_t>(empty.size());
      std::vector<double> repair_d2;
      search.FindAll(data, /*out_index=*/nullptr, &repair_d2, ctx.pool);
      std::vector<std::pair<double, int64_t>> contributions;
      contributions.reserve(static_cast<size_t>(data.n()));
      ForEachBlock(data, 0, data.n(), [&](const DatasetView& v) {
        for (int64_t b = 0; b < v.rows(); ++b) {
          const int64_t i = v.first_row() + b;
          contributions.emplace_back(
              v.Weight(b) * repair_d2[static_cast<size_t>(i)], i);
        }
      });
      std::sort(contributions.begin(), contributions.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      size_t next = 0;
      for (int64_t c : empty) {
        const int64_t source_row = contributions[next].second;
        ++next;
        PinnedBlock pin = data.Pin(source_row, source_row + 1);
        const double* point = pin.view().Point(0);
        double* row = new_centers.Row(c);
        for (int64_t j = 0; j < d; ++j) row[j] = point[j];
      }
    }

    bool assignments_unchanged =
        iter > 0 && assignment == previous_assignment;
    double previous_cost = result.assignment.cost;
    result.centers = std::move(new_centers);
    result.assignment.cluster = assignment;
    result.assignment.cost = cost.Total();
    previous_assignment = std::move(assignment);
    if (options.track_history) {
      result.cost_history.push_back(result.assignment.cost);
    }

    if (assignments_unchanged) {
      result.converged = true;
      break;
    }
    if (options.relative_tolerance > 0.0 && iter > 0 &&
        previous_cost > 0.0) {
      double improvement =
          (previous_cost - result.assignment.cost) / previous_cost;
      if (improvement >= 0.0 && improvement < options.relative_tolerance) {
        result.converged = true;
        break;
      }
    }
  }

  // Final cost must describe the final centers.
  KMEANSLL_ASSIGN_OR_RETURN(result.assignment.cost,
                            MRComputeCost(data, result.centers, ctx));
  return result;
}

// --- Dataset conveniences (wrap in an InMemorySource and delegate) ------

Result<double> MRComputeCost(const Dataset& data, const Matrix& centers,
                             const MRContext& ctx) {
  InMemorySource source = data.AsSource();
  return MRComputeCost(source, centers, ctx);
}

Result<InitResult> MRKMeansLLInit(const Dataset& data, int64_t k,
                                  rng::Rng rng,
                                  const KMeansLLOptions& options,
                                  const MRContext& ctx) {
  InMemorySource source = data.AsSource();
  return MRKMeansLLInit(source, k, rng, options, ctx);
}

Result<InitResult> MRRandomInit(const Dataset& data, int64_t k,
                                rng::Rng rng, const MRContext& ctx) {
  InMemorySource source = data.AsSource();
  return MRRandomInit(source, k, rng, ctx);
}

Result<InitResult> MRPartitionInit(const Dataset& data, int64_t k,
                                   rng::Rng rng,
                                   const PartitionOptions& options,
                                   const MRContext& ctx) {
  InMemorySource source = data.AsSource();
  return MRPartitionInit(source, k, rng, options, ctx);
}

Result<LloydResult> MRRunLloyd(const Dataset& data,
                               const Matrix& initial_centers,
                               const LloydOptions& options,
                               const MRContext& ctx) {
  InMemorySource source = data.AsSource();
  return MRRunLloyd(source, initial_centers, options, ctx);
}

}  // namespace kmeansll
