#include "clustering/lloyd.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "clustering/cost.h"
#include "clustering/lloyd_internal.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/trace.h"
#include "distance/batch.h"
#include "distance/nearest.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

int64_t LloydStep(const DatasetSource& data, const Matrix& centers,
                  Matrix* new_centers, Assignment* assignment,
                  ThreadPool* pool, const double* point_norms) {
  const int64_t k = centers.rows();
  const int64_t d = centers.cols();
  {
    KMEANSLL_TRACE_SPAN("lloyd.assign_scan");
    *assignment = ComputeAssignment(data, centers, pool, point_norms);
  }

  internal::CentroidSums totals;
  {
    KMEANSLL_TRACE_SPAN("lloyd.centroid_accumulate");
    totals =
        internal::AccumulateCentroids(data, assignment->cluster, k, pool);
  }
  std::vector<int64_t> empty =
      internal::CentroidsFromSums(totals, k, d, new_centers);
  if (!empty.empty()) {
    KMEANSLL_TRACE_SPAN("lloyd.repair_empty");
    internal::RepairEmptyClusters(data, centers, empty, new_centers, pool,
                                  point_norms);
  }
  return static_cast<int64_t>(empty.size());
}

Result<LloydResult> RunLloyd(const DatasetSource& data,
                             const Matrix& initial_centers,
                             const LloydOptions& options,
                             ThreadPool* pool, const double* point_norms) {
  if (initial_centers.rows() == 0) {
    return Status::InvalidArgument("initial center set is empty");
  }
  if (initial_centers.cols() != data.dim()) {
    return Status::InvalidArgument(
        "center dimension " + std::to_string(initial_centers.cols()) +
        " does not match data dimension " + std::to_string(data.dim()));
  }
  if (data.n() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }

  // Point norms are a pure function of the immutable dataset: one O(n·d)
  // pass per run feeds the expanded kernel of every assignment, repair,
  // and cost evaluation below instead of being recomputed per iteration —
  // done here unless the caller (KMeans::Fit) already holds the vector.
  std::vector<double> norm_storage;
  bool expanded = false;
  point_norms = internal::EnsurePointNorms(data, point_norms,
                                           &norm_storage, pool, &expanded);

  LloydResult result;
  result.centers = initial_centers;

  // Checkpoint/resume: a valid checkpoint restores the end state of its
  // iteration; the previous assignment (and its cost, feeding the
  // convergence tests) is recomputed against the stored entering centers
  // — one data pass instead of O(n) persisted state — so the resumed
  // trajectory is bitwise the uninterrupted one.
  const internal::LloydCheckpointPlan plan =
      internal::MakeLloydCheckpointPlan(data, initial_centers, options);
  int64_t start_iter = 0;
  {
    Matrix resume_prev;
    if (internal::TryResumeLloyd(plan, &result, &resume_prev)) {
      start_iter = result.iterations;
      result.assignment =
          ComputeAssignment(data, resume_prev, pool, point_norms);
    } else {
      result.assignment = ComputeAssignment(data, result.centers, pool,
                                            point_norms);
    }
  }

  for (int64_t iter = start_iter; iter < options.max_iterations; ++iter) {
    KMEANSLL_TRACE_SPAN("lloyd.iteration");
    const bool will_checkpoint =
        internal::ShouldCheckpoint(plan, iter, options.max_iterations);
    Matrix entering_centers;
    if (will_checkpoint) entering_centers = result.centers;

    Matrix new_centers;
    Assignment assignment;
    result.empty_cluster_repairs += LloydStep(
        data, result.centers, &new_centers, &assignment, pool, point_norms);
    ++result.iterations;

    bool assignments_unchanged =
        assignment.cluster == result.assignment.cluster && iter > 0;
    double previous_cost = result.assignment.cost;

    result.centers = std::move(new_centers);
    result.assignment = std::move(assignment);
    if (options.track_history) {
      result.cost_history.push_back(result.assignment.cost);
    }

    if (assignments_unchanged) {
      result.converged = true;
      break;
    }
    // Tolerance comparisons start at iteration 1: at iteration 0 the
    // "previous" cost describes the same assignment under the same
    // centers, so the improvement is trivially zero.
    if (options.relative_tolerance > 0.0 && iter > 0 &&
        previous_cost > 0.0) {
      double improvement =
          (previous_cost - result.assignment.cost) / previous_cost;
      if (improvement >= 0.0 && improvement < options.relative_tolerance) {
        result.converged = true;
        break;
      }
    }

    if (will_checkpoint) {
      KMEANSLL_RETURN_NOT_OK(
          internal::CheckpointLloydIteration(
              plan, entering_centers, result,
              &result.checkpoint_write_retries));
    }
  }

  // Report the cost of the final centers (the assignment stored above is
  // the one that *produced* them; recompute so cost matches centers).
  result.assignment = ComputeAssignment(data, result.centers, pool,
                                        point_norms);
  KMEANSLL_RETURN_NOT_OK(data.status());
  internal::RemoveLloydCheckpoint(plan);
  return result;
}

int64_t LloydStep(const Dataset& data, const Matrix& centers,
                  Matrix* new_centers, Assignment* assignment,
                  ThreadPool* pool, const double* point_norms) {
  InMemorySource source = data.AsSource();
  return LloydStep(source, centers, new_centers, assignment, pool,
                   point_norms);
}

Result<LloydResult> RunLloyd(const Dataset& data,
                             const Matrix& initial_centers,
                             const LloydOptions& options, ThreadPool* pool,
                             const double* point_norms) {
  InMemorySource source = data.AsSource();
  return RunLloyd(source, initial_centers, options, pool, point_norms);
}

}  // namespace kmeansll
