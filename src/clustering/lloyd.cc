#include "clustering/lloyd.h"

#include <algorithm>
#include <cmath>

#include "clustering/cost.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "distance/l2.h"
#include "distance/nearest.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

namespace {

/// Per-chunk partial sums for the centroid update.
struct CentroidPartial {
  std::vector<double> sums;    // k × d weighted coordinate sums
  std::vector<double> weight;  // k weighted counts

  static CentroidPartial Zero(int64_t k, int64_t d) {
    CentroidPartial p;
    p.sums.assign(static_cast<size_t>(k * d), 0.0);
    p.weight.assign(static_cast<size_t>(k), 0.0);
    return p;
  }

  void Merge(const CentroidPartial& other) {
    for (size_t i = 0; i < sums.size(); ++i) sums[i] += other.sums[i];
    for (size_t i = 0; i < weight.size(); ++i) weight[i] += other.weight[i];
  }
};

}  // namespace

int64_t LloydStep(const Dataset& data, const Matrix& centers,
                  Matrix* new_centers, Assignment* assignment,
                  ThreadPool* pool) {
  const int64_t k = centers.rows();
  const int64_t d = centers.cols();
  *assignment = ComputeAssignment(data, centers, pool);

  auto map = [&](IndexRange r) {
    CentroidPartial partial = CentroidPartial::Zero(k, d);
    for (int64_t i = r.begin; i < r.end; ++i) {
      auto c = static_cast<int64_t>(assignment->cluster[static_cast<size_t>(i)]);
      double w = data.Weight(i);
      const double* point = data.Point(i);
      double* sum = partial.sums.data() + c * d;
      for (int64_t j = 0; j < d; ++j) sum[j] += w * point[j];
      partial.weight[static_cast<size_t>(c)] += w;
    }
    return partial;
  };
  auto combine = [](CentroidPartial a, CentroidPartial b) {
    a.Merge(b);
    return a;
  };
  CentroidPartial total = ParallelReduce<CentroidPartial>(
      pool, data.n(), CentroidPartial::Zero(k, d), map, combine);

  *new_centers = Matrix(k, d);
  std::vector<int64_t> empty;
  for (int64_t c = 0; c < k; ++c) {
    double w = total.weight[static_cast<size_t>(c)];
    double* row = new_centers->Row(c);
    if (w > 0.0) {
      const double* sum = total.sums.data() + c * d;
      for (int64_t j = 0; j < d; ++j) row[j] = sum[j] / w;
    } else {
      empty.push_back(c);
    }
  }

  if (!empty.empty()) {
    // Deterministic repair: hand each empty cluster the point with the
    // largest current cost contribution (ties and reuse avoided by
    // claiming indices in order of decreasing contribution).
    NearestCenterSearch search(centers);
    std::vector<double> d2;
    search.FindAll(data.points(), /*out_index=*/nullptr, &d2, pool);
    std::vector<std::pair<double, int64_t>> contributions;
    contributions.reserve(static_cast<size_t>(data.n()));
    for (int64_t i = 0; i < data.n(); ++i) {
      double contrib = data.Weight(i) * d2[static_cast<size_t>(i)];
      contributions.emplace_back(contrib, i);
    }
    std::sort(contributions.begin(), contributions.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    size_t next = 0;
    for (int64_t c : empty) {
      const double* point = data.Point(contributions[next].second);
      ++next;
      double* row = new_centers->Row(c);
      for (int64_t j = 0; j < d; ++j) row[j] = point[j];
    }
  }
  return static_cast<int64_t>(empty.size());
}

Result<LloydResult> RunLloyd(const Dataset& data,
                             const Matrix& initial_centers,
                             const LloydOptions& options,
                             ThreadPool* pool) {
  if (initial_centers.rows() == 0) {
    return Status::InvalidArgument("initial center set is empty");
  }
  if (initial_centers.cols() != data.dim()) {
    return Status::InvalidArgument(
        "center dimension " + std::to_string(initial_centers.cols()) +
        " does not match data dimension " + std::to_string(data.dim()));
  }
  if (data.n() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }

  LloydResult result;
  result.centers = initial_centers;
  result.assignment = ComputeAssignment(data, result.centers, pool);

  for (int64_t iter = 0; iter < options.max_iterations; ++iter) {
    Matrix new_centers;
    Assignment assignment;
    result.empty_cluster_repairs +=
        LloydStep(data, result.centers, &new_centers, &assignment, pool);
    ++result.iterations;

    bool assignments_unchanged =
        assignment.cluster == result.assignment.cluster && iter > 0;
    double previous_cost = result.assignment.cost;

    result.centers = std::move(new_centers);
    result.assignment = std::move(assignment);
    if (options.track_history) {
      result.cost_history.push_back(result.assignment.cost);
    }

    if (assignments_unchanged) {
      result.converged = true;
      break;
    }
    // Tolerance comparisons start at iteration 1: at iteration 0 the
    // "previous" cost describes the same assignment under the same
    // centers, so the improvement is trivially zero.
    if (options.relative_tolerance > 0.0 && iter > 0 &&
        previous_cost > 0.0) {
      double improvement =
          (previous_cost - result.assignment.cost) / previous_cost;
      if (improvement >= 0.0 && improvement < options.relative_tolerance) {
        result.converged = true;
        break;
      }
    }
  }

  // Report the cost of the final centers (the assignment stored above is
  // the one that *produced* them; recompute so cost matches centers).
  result.assignment = ComputeAssignment(data, result.centers, pool);
  return result;
}

}  // namespace kmeansll
