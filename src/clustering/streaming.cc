#include "clustering/streaming.h"

#include <cmath>
#include <utility>

#include "clustering/init_kmeansll.h"
#include "clustering/init_partition.h"
#include "distance/nearest.h"

namespace kmeansll {

StreamingKMeans::StreamingKMeans(const StreamingOptions& options)
    : options_(options),
      block_points_(options.dim),
      coreset_points_(options.dim),
      rng_(rng::MakeRootRng(options.seed)) {
  resolved_batch_ =
      options.batch_size > 0
          ? options.batch_size
          : static_cast<int64_t>(std::ceil(3.0 * std::log(std::max<double>(
                2.0, static_cast<double>(options.k)))));
  resolved_iterations_ =
      options.iterations > 0 ? options.iterations : options.k;
}

Result<StreamingKMeans> StreamingKMeans::Create(
    const StreamingOptions& options) {
  if (options.k <= 0) return Status::InvalidArgument("k must be positive");
  if (options.dim <= 0) {
    return Status::InvalidArgument("dim must be positive");
  }
  if (options.block_size < options.k) {
    return Status::InvalidArgument(
        "block_size must be at least k (got " +
        std::to_string(options.block_size) + " < " +
        std::to_string(options.k) + ")");
  }
  return StreamingKMeans(options);
}

Status StreamingKMeans::Add(std::span<const double> point, double weight) {
  if (finalized_) {
    return Status::FailedPrecondition("stream already finalized");
  }
  if (static_cast<int64_t>(point.size()) != options_.dim) {
    return Status::InvalidArgument(
        "point has " + std::to_string(point.size()) +
        " coordinates, expected " + std::to_string(options_.dim));
  }
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    return Status::InvalidArgument("weight must be positive and finite");
  }
  block_points_.AppendRow(point.data());
  block_weights_.push_back(weight);
  ++points_seen_;
  if (block_points_.rows() >= options_.block_size) CompressBlock();
  return Status::OK();
}

Status StreamingKMeans::AddBlock(const DatasetView& block) {
  if (block.dim() != options_.dim) {
    return Status::InvalidArgument(
        "block has dimension " + std::to_string(block.dim()) +
        ", expected " + std::to_string(options_.dim));
  }
  for (int64_t i = 0; i < block.rows(); ++i) {
    KMEANSLL_RETURN_NOT_OK(
        Add(std::span<const double>(block.Point(i),
                                    static_cast<size_t>(block.dim())),
            block.Weight(i)));
  }
  return Status::OK();
}

Status StreamingKMeans::AddSource(const DatasetSource& source) {
  if (finalized_) {
    return Status::FailedPrecondition("stream already finalized");
  }
  // Fail a dimension mismatch before touching any shard: ForEachBlock
  // cannot break early, and pinning every remaining shard only to skip
  // it would be wasted I/O.
  if (source.dim() != options_.dim) {
    return Status::InvalidArgument(
        "source has dimension " + std::to_string(source.dim()) +
        ", expected " + std::to_string(options_.dim));
  }
  Status status = Status::OK();
  ForEachBlock(source, 0, source.n(), [&](const DatasetView& v) {
    if (status.ok()) status = AddBlock(v);
  });
  // A degraded source substituted fallback blocks mid-stream; surface
  // that as the scan's outcome rather than silently absorbing zeros.
  KMEANSLL_RETURN_NOT_OK(status);
  return source.status();
}

void StreamingKMeans::CompressBlock() {
  if (block_points_.rows() == 0) return;
  auto block = Dataset::WithWeights(std::move(block_points_),
                                    std::move(block_weights_));
  KMEANSLL_CHECK(block.ok());
  block_points_ = Matrix(options_.dim);
  block_weights_.clear();

  // Tiny blocks (the tail of the stream) are kept verbatim: k-means#
  // would select nearly all of them anyway.
  if (block->n() <= resolved_batch_) {
    for (int64_t i = 0; i < block->n(); ++i) {
      coreset_points_.AppendRow(block->Point(i));
      coreset_weights_.push_back(block->Weight(i));
    }
    ++blocks_compressed_;
    return;
  }

  rng::Rng block_rng = rng_.Fork(rng::StreamPurpose::kPartitionGroup,
                                 static_cast<uint64_t>(blocks_compressed_));
  std::vector<int64_t> selected =
      internal::KMeansSharp(*block, 0, block->n(), resolved_batch_,
                            resolved_iterations_, block_rng);
  KMEANSLL_CHECK(!selected.empty());

  Matrix picks = block->points().GatherRows(selected);
  // FindAll packs the center panels once for the whole block scan (no
  // Freeze needed for a single batched call).
  NearestCenterSearch search(picks);
  std::vector<int32_t> nearest;
  std::vector<double> nearest_d2;
  search.FindAll(block->points(), &nearest, &nearest_d2);
  std::vector<double> weights(selected.size(), 0.0);
  for (int64_t i = 0; i < block->n(); ++i) {
    weights[static_cast<size_t>(nearest[static_cast<size_t>(i)])] +=
        block->Weight(i);
  }
  for (size_t s = 0; s < selected.size(); ++s) {
    coreset_points_.AppendRow(picks.Row(static_cast<int64_t>(s)));
    coreset_weights_.push_back(weights[s]);
  }
  ++blocks_compressed_;
}

Result<Matrix> StreamingKMeans::Finalize() {
  if (finalized_) {
    return Status::FailedPrecondition("stream already finalized");
  }
  if (points_seen_ < options_.k) {
    return Status::InvalidArgument(
        "saw " + std::to_string(points_seen_) + " points, need at least " +
        std::to_string(options_.k));
  }
  CompressBlock();
  finalized_ = true;

  if (coreset_points_.rows() <= options_.k) {
    return std::move(coreset_points_);
  }
  KMeansLLOptions recluster_options;
  InitTelemetry telemetry;
  return internal::ReclusterCandidates(
      coreset_points_, coreset_weights_, options_.k,
      rng_.Fork(rng::StreamPurpose::kRecluster), recluster_options,
      &telemetry);
}

}  // namespace kmeansll
