#include "clustering/minibatch.h"

#include <algorithm>
#include <vector>

#include "clustering/cost.h"
#include "distance/l2.h"
#include "distance/nearest.h"

namespace kmeansll {

Result<MiniBatchResult> RunMiniBatch(const DatasetSource& data,
                                     const Matrix& initial_centers,
                                     const MiniBatchOptions& options,
                                     rng::Rng rng) {
  if (initial_centers.rows() == 0) {
    return Status::InvalidArgument("initial center set is empty");
  }
  if (initial_centers.cols() != data.dim()) {
    return Status::InvalidArgument("center dimension mismatch");
  }
  if (options.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (options.iterations < 0) {
    return Status::InvalidArgument("iterations must be >= 0");
  }

  rng::Rng gen = rng.Fork(rng::StreamPurpose::kGeneral, 0xB47C);
  MiniBatchResult result;
  result.centers = initial_centers;
  const int64_t d = data.dim();
  const int64_t batch =
      std::min<int64_t>(options.batch_size, data.n());
  // Per-center assignment counts drive the decaying learning rate 1/count.
  std::vector<double> counts(static_cast<size_t>(initial_centers.rows()),
                             0.0);

  std::vector<int64_t> members(static_cast<size_t>(batch));
  std::vector<double> member_weights;
  std::vector<int32_t> owner;
  std::vector<double> owner_d2;
  for (int64_t iter = 0; iter < options.iterations; ++iter) {
    // Sample the batch, then assign all members against this iteration's
    // centers in one blocked batch-engine pass (FindAll packs the center
    // panels once per call — at minibatch row counts the packing would
    // otherwise rival the scan). The gradient step below mutates the
    // centers, so each iteration builds a fresh search over them.
    NearestCenterSearch search(result.centers);
    for (int64_t b = 0; b < batch; ++b) {
      members[static_cast<size_t>(b)] =
          static_cast<int64_t>(gen.NextBounded(data.n()));
    }
    Matrix sampled =
        GatherPointsAndWeights(data, members, &member_weights);
    search.FindAll(sampled, &owner, &owner_d2);
    // Gradient step per member with per-center rate 1/count.
    double max_movement2 = 0.0;
    for (int64_t b = 0; b < batch; ++b) {
      int64_t c = owner[static_cast<size_t>(b)];
      double w = member_weights[static_cast<size_t>(b)];
      if (!(w > 0.0)) continue;
      counts[static_cast<size_t>(c)] += w;
      double eta = w / counts[static_cast<size_t>(c)];
      double* center = result.centers.Row(c);
      const double* point = sampled.Row(b);
      double movement2 = 0.0;
      for (int64_t j = 0; j < d; ++j) {
        double delta = eta * (point[j] - center[j]);
        center[j] += delta;
        movement2 += delta * delta;
      }
      max_movement2 = std::max(max_movement2, movement2);
    }
    ++result.iterations;
    if (options.movement_tolerance > 0.0 &&
        max_movement2 < options.movement_tolerance *
                            options.movement_tolerance) {
      result.converged = true;
      break;
    }
  }
  result.final_cost = ComputeCost(data, result.centers);
  // A degraded source served fallback blocks above: report the root
  // cause instead of a result trained on synthetic zeros.
  KMEANSLL_RETURN_NOT_OK(data.status());
  return result;
}

Result<MiniBatchResult> RunMiniBatch(const Dataset& data,
                                     const Matrix& initial_centers,
                                     const MiniBatchOptions& options,
                                     rng::Rng rng) {
  InMemorySource source = data.AsSource();
  return RunMiniBatch(source, initial_centers, options, rng);
}

}  // namespace kmeansll
