// External clustering-quality metrics against ground-truth labels.
// The paper evaluates by potential φ only; these metrics back the
// GaussMixture example (known generating centers) and the tests'
// "did we actually recover the mixture" assertions.

#ifndef KMEANSLL_CLUSTERING_METRICS_H_
#define KMEANSLL_CLUSTERING_METRICS_H_

#include <cstdint>
#include <vector>

#include "matrix/dataset.h"
#include "matrix/matrix.h"

namespace kmeansll {

/// Purity: fraction of points whose cluster's majority true label matches
/// their own. In [0, 1]; 1 = perfect. Points with negative labels
/// (outliers in the synthetic generators) are skipped.
double Purity(const std::vector<int32_t>& assignment,
              const std::vector<int32_t>& labels);

/// Normalized mutual information between the assignment and the labels
/// (arithmetic normalization); in [0, 1]. Negative labels are skipped.
double NormalizedMutualInformation(const std::vector<int32_t>& assignment,
                                   const std::vector<int32_t>& labels);

/// Root-mean-square distance from each true center to its nearest
/// recovered center — how well the mixture means were located.
double CenterRecoveryRmse(const Matrix& true_centers,
                          const Matrix& recovered_centers);

/// Simplified silhouette coefficient (Hruschka et al.): per point,
/// (b - a) / max(a, b) with a = distance to own centroid and b = distance
/// to the nearest other centroid; averaged (weighted) over all points.
/// In [-1, 1]; larger is better. O(n·k) instead of the exact
/// silhouette's O(n²). Requires k >= 2.
double SimplifiedSilhouette(const Dataset& data, const Matrix& centers,
                            const std::vector<int32_t>& assignment);

/// Davies–Bouldin index: mean over clusters of the worst
/// (σ_i + σ_j) / d(c_i, c_j) ratio, where σ is the cluster's mean
/// distance to its centroid. Lower is better; 0 is ideal. Empty clusters
/// are skipped. Requires k >= 2.
double DaviesBouldinIndex(const Dataset& data, const Matrix& centers,
                          const std::vector<int32_t>& assignment);

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_METRICS_H_
