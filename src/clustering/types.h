// Shared result/telemetry types for initializers and Lloyd's iteration.

#ifndef KMEANSLL_CLUSTERING_TYPES_H_
#define KMEANSLL_CLUSTERING_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "matrix/matrix.h"

namespace kmeansll {

/// Point-to-center assignment plus the clustering cost φ_X(C) under it.
struct Assignment {
  std::vector<int32_t> cluster;  ///< per-point closest-center index
  double cost = std::numeric_limits<double>::quiet_NaN();  ///< φ_X(C)
};

/// What an initializer did — the quantities behind the paper's Tables 4–5
/// (passes/rounds, intermediate-set size) and Figures 5.1–5.3 (potential
/// per round).
struct InitTelemetry {
  /// Sampling rounds executed (k-means||: r; k-means++: k; Random: 0).
  int64_t rounds = 0;
  /// Centers selected before reclustering (paper Table 5). Zero when the
  /// method needs no reclustering.
  int64_t intermediate_centers = 0;
  /// Full passes over the data during initialization.
  int64_t data_passes = 0;
  /// φ_X(C) of the candidate set at the end of each sampling round.
  std::vector<double> round_potentials;
  /// Wall-clock seconds in candidate selection / in reclustering.
  double sampling_seconds = 0.0;
  double recluster_seconds = 0.0;
  /// Transient write retries burned saving seeding checkpoints (0 when
  /// checkpointing is off or every save landed first try).
  int64_t checkpoint_write_retries = 0;
};

/// Output of any initialization method.
struct InitResult {
  Matrix centers;  ///< k × d seed centers
  InitTelemetry telemetry;
};

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_TYPES_H_
