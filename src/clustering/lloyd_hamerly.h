// Hamerly's accelerated Lloyd iteration (Hamerly, SDM 2010).
//
// Standard Lloyd spends O(n·k·d) per iteration re-scanning all centers
// for every point. Hamerly's algorithm maintains, per point, an upper
// bound on the distance to its assigned center and a single lower bound
// on the distance to the second-closest center; both are updated from
// center movement via the triangle inequality, and the full k-scan runs
// only when the bounds cannot certify the assignment. On stable
// clusterings (the common case after the first few iterations —
// especially from a k-means|| seed) most points skip the scan entirely.
//
// Produces the same sequence of assignments and centers as RunLloyd
// (standard Lloyd): every exact distance is evaluated with the batch
// engine's accumulation chains (distance/batch.h), so the two
// iterations compare identical values and the tests assert bitwise
// equivalence. The caveat is conditioning: the bound certifications
// assume the computed distances respect the triangle inequality, which
// the expanded kernel (d >= kExpandedKernelMinDim) only guarantees up
// to an absolute error ~eps·(‖x‖² + ‖c‖²). On well-scaled data that
// error is far below any certification margin; on data with a large
// common coordinate offset (‖x‖² enormous relative to cluster
// separations) a bound may certify a stale assignment that a full scan
// would flip — center such data first (see README "Choosing a Lloyd
// variant"). This is the "modification to the basic k-means algorithm"
// extension the paper's conclusion anticipates, and bench/bm_lloyd
// ablates it against the standard iteration.

#ifndef KMEANSLL_CLUSTERING_LLOYD_HAMERLY_H_
#define KMEANSLL_CLUSTERING_LLOYD_HAMERLY_H_

#include "clustering/lloyd.h"
#include "clustering/types.h"
#include "common/result.h"
#include "matrix/dataset.h"
#include "matrix/matrix.h"

namespace kmeansll {

/// Statistics about how much work the bounds saved.
struct HamerlyStats {
  int64_t full_scans = 0;     ///< points that needed the k-center scan
  int64_t bound_skips = 0;    ///< points certified by their bounds
  int64_t inner_updates = 0;  ///< tightenings of the upper bound only
};

/// Runs Lloyd's iteration with Hamerly bounds. Same contract and same
/// results as RunLloyd; `stats` (optional) receives pruning counters and
/// `point_norms` (optional, RowSquaredNorms of data.points()) skips the
/// internal norm pass exactly as in RunLloyd.
/// The DatasetSource overload streams pinned row blocks (the per-point
/// bound state stays in memory — O(n) — while the points themselves may
/// live in memory-mapped shards) and is bitwise identical to the Dataset
/// overload for the same rows.
Result<LloydResult> RunLloydHamerly(const DatasetSource& data,
                                    const Matrix& initial_centers,
                                    const LloydOptions& options,
                                    HamerlyStats* stats = nullptr,
                                    const double* point_norms = nullptr);
Result<LloydResult> RunLloydHamerly(const Dataset& data,
                                    const Matrix& initial_centers,
                                    const LloydOptions& options,
                                    HamerlyStats* stats = nullptr,
                                    const double* point_norms = nullptr);

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_LLOYD_HAMERLY_H_
