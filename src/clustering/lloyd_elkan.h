// Elkan's accelerated Lloyd iteration (Elkan, ICML 2003).
//
// Where Hamerly keeps one lower bound per point, Elkan keeps one per
// (point, center) pair plus the k×k inter-center distances, trading
// O(n·k) memory for far stronger pruning: a center j can be ruled out
// for point x whenever u(x) <= l(x, j) or u(x) <= ½·d(c_a(x), c_j),
// without touching x's coordinates. Best suited to moderate k where the
// k×k table and the n×k bounds fit comfortably (k up to a few thousand
// at our scales).
//
// Produces the same centers and assignments as RunLloyd /
// RunLloydHamerly (bitwise — shared engine distance chains and centroid
// accumulation), with the same conditioning caveat as RunLloydHamerly:
// bound pruning trusts the triangle inequality over computed distances,
// so data with a huge common coordinate offset should be centered first
// (see lloyd_hamerly.h and README "Choosing a Lloyd variant"). Ablated
// in bench/bm_lloyd.

#ifndef KMEANSLL_CLUSTERING_LLOYD_ELKAN_H_
#define KMEANSLL_CLUSTERING_LLOYD_ELKAN_H_

#include "clustering/lloyd.h"
#include "clustering/types.h"
#include "common/result.h"
#include "matrix/dataset.h"
#include "matrix/matrix.h"

namespace kmeansll {

/// Pruning effectiveness counters.
struct ElkanStats {
  int64_t point_skips = 0;      ///< points skipped entirely (u <= s(a))
  int64_t center_prunes = 0;    ///< (point, center) pairs ruled out
  int64_t distance_evals = 0;   ///< exact distances computed
};

/// Runs Lloyd's iteration with Elkan bounds. Same contract and results
/// as RunLloyd; `stats` (optional) receives pruning counters and
/// `point_norms` (optional, RowSquaredNorms of data.points()) skips the
/// internal norm pass exactly as in RunLloyd.
/// The DatasetSource overload streams pinned row blocks (bound state —
/// O(n·k) here — stays in memory while the points may live in
/// memory-mapped shards); bitwise identical to the Dataset overload for
/// the same rows.
Result<LloydResult> RunLloydElkan(const DatasetSource& data,
                                  const Matrix& initial_centers,
                                  const LloydOptions& options,
                                  ElkanStats* stats = nullptr,
                                  const double* point_norms = nullptr);
Result<LloydResult> RunLloydElkan(const Dataset& data,
                                  const Matrix& initial_centers,
                                  const LloydOptions& options,
                                  ElkanStats* stats = nullptr,
                                  const double* point_norms = nullptr);

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_LLOYD_ELKAN_H_
