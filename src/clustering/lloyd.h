// Lloyd's iteration (the "k-means algorithm" proper): alternate
// nearest-center assignment and centroid recomputation until a fixed
// point. Supports weighted datasets, so the same routine refines the
// weighted coresets produced by k-means|| reclustering and the Partition
// baseline.

#ifndef KMEANSLL_CLUSTERING_LLOYD_H_
#define KMEANSLL_CLUSTERING_LLOYD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clustering/types.h"
#include "common/result.h"
#include "matrix/dataset.h"
#include "matrix/dataset_view.h"
#include "matrix/matrix.h"
#include "parallel/thread_pool.h"

namespace kmeansll {

/// Options for RunLloyd.
struct LloydOptions {
  /// Hard iteration cap. The paper caps parallel Random at 20 (§4.2) and
  /// lets sequential runs converge; Table 6 counts iterations to the
  /// assignment fixed point.
  int64_t max_iterations = 100;
  /// Early stop when the relative cost improvement falls below this
  /// (0 disables; convergence is then the assignment fixed point only).
  double relative_tolerance = 0.0;
  /// Record φ after every iteration in LloydResult::cost_history.
  bool track_history = false;
  /// When non-empty, a KMLLCKPT training checkpoint (see
  /// data/checkpoint_io.h) is written atomically at this path every
  /// `checkpoint_every` iterations, and a run finding a valid checkpoint
  /// for the same job here resumes from it with bitwise-identical
  /// results to an uninterrupted run. Stale or corrupt checkpoints are
  /// ignored; the file is removed when the run completes.
  std::string checkpoint_path;
  /// Iterations between checkpoint saves (used when checkpoint_path is
  /// set; values < 1 behave as 1).
  int64_t checkpoint_every = 1;
};

/// Outcome of Lloyd's iteration.
struct LloydResult {
  Matrix centers;            ///< final k × d centers
  Assignment assignment;     ///< final assignment and cost
  int64_t iterations = 0;    ///< iterations actually executed
  bool converged = false;    ///< reached a fixed point before the cap
  std::vector<double> cost_history;  ///< φ after each iteration (optional)
  int64_t empty_cluster_repairs = 0; ///< centers reseeded (see below)
  /// Transient write retries burned saving iteration checkpoints (0 when
  /// checkpointing is off or every save landed first try).
  int64_t checkpoint_write_retries = 0;
};

/// Runs Lloyd's iteration from `initial_centers`.
///
/// Empty-cluster repair: when a cluster receives no (weighted) points, its
/// center is reseeded to the point with the largest current cost
/// contribution not already claimed by another repair — a deterministic
/// policy; the paper does not specify one (DESIGN.md §5.5).
///
/// `point_norms` (RowSquaredNorms of data.points(), length n) may be
/// null, in which case the norms are computed here once per run; callers
/// that already hold them (KMeans::Fit) pass them through so the O(n·d)
/// pass is not repeated. Results are bitwise identical either way.
///
/// Fails if `initial_centers` is empty or dimensions mismatch.
///
/// The DatasetSource overload is the primary implementation: every
/// assignment, centroid accumulation, repair, and cost pass streams
/// pinned row blocks, so the same iteration runs over in-memory data and
/// disk-resident shard stores with bitwise-identical results for the
/// same rows.
Result<LloydResult> RunLloyd(const DatasetSource& data,
                             const Matrix& initial_centers,
                             const LloydOptions& options,
                             ThreadPool* pool = nullptr,
                             const double* point_norms = nullptr);
Result<LloydResult> RunLloyd(const Dataset& data,
                             const Matrix& initial_centers,
                             const LloydOptions& options,
                             ThreadPool* pool = nullptr,
                             const double* point_norms = nullptr);

/// One assignment + centroid-update step (exposed for tests and for the
/// MapReduce driver): given centers, produces the new centroids and the
/// assignment that generated them. Returns the number of empty clusters
/// repaired. `point_norms` (RowSquaredNorms of data.points(), length n)
/// may be null; RunLloyd computes it once per run and threads it through
/// every iteration so the O(n·d) norm pass is not redone per step.
int64_t LloydStep(const DatasetSource& data, const Matrix& centers,
                  Matrix* new_centers, Assignment* assignment,
                  ThreadPool* pool, const double* point_norms = nullptr);
int64_t LloydStep(const Dataset& data, const Matrix& centers,
                  Matrix* new_centers, Assignment* assignment,
                  ThreadPool* pool, const double* point_norms = nullptr);

}  // namespace kmeansll

#endif  // KMEANSLL_CLUSTERING_LLOYD_H_
