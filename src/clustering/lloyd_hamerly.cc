#include "clustering/lloyd_hamerly.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "clustering/cost.h"
#include "clustering/lloyd_internal.h"
#include "common/trace.h"
#include "common/math_util.h"
#include "distance/batch.h"
#include "distance/nearest.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

Result<LloydResult> RunLloydHamerly(const DatasetSource& data,
                                    const Matrix& initial_centers,
                                    const LloydOptions& options,
                                    HamerlyStats* stats,
                                    const double* point_norms) {
  if (initial_centers.rows() == 0) {
    return Status::InvalidArgument("initial center set is empty");
  }
  if (initial_centers.cols() != data.dim()) {
    return Status::InvalidArgument(
        "center dimension " + std::to_string(initial_centers.cols()) +
        " does not match data dimension " + std::to_string(data.dim()));
  }
  if (data.n() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }

  const int64_t n = data.n();
  const int64_t k = initial_centers.rows();
  const int64_t d = data.dim();

  // Every distance below — bound probes, full scans, center separations,
  // cost tracking — runs on the batch engine's accumulation chains with
  // the standard kAuto kernel choice, so the values are bitwise the ones
  // RunLloyd's assignment scan produces and the two variants stay
  // structurally (not just statistically) equivalent.
  std::vector<double> norm_storage;
  bool expanded = false;
  const double* pn = internal::EnsurePointNorms(
      data, point_norms, &norm_storage, /*pool=*/nullptr, &expanded);

  LloydResult result;
  result.centers = initial_centers;

  // Per-point bounds. Distances are kept *unsquared* here because the
  // triangle-inequality updates are linear in distance, not in squared
  // distance.
  std::vector<int32_t> assignment(static_cast<size_t>(n), -1);
  std::vector<int32_t> previous_assignment;
  std::vector<double> upper(static_cast<size_t>(n),
                            std::numeric_limits<double>::infinity());
  std::vector<double> lower(static_cast<size_t>(n), 0.0);

  // Half distance to the closest other center, per center.
  std::vector<double> half_nearest(static_cast<size_t>(k));
  std::vector<double> center_d2(static_cast<size_t>(k * k));

  // Scratch for the batched full scans of each iteration.
  std::vector<int64_t> scan_list;
  std::vector<double> scan_norms;
  std::vector<int32_t> scan_idx;
  std::vector<double> scan_d1;
  std::vector<double> scan_d2;

  double previous_cost = std::numeric_limits<double>::quiet_NaN();
  bool have_previous_cost = false;  // first comparison at iteration 1

  // Checkpoint/resume (shared protocol, see lloyd_internal.h). Bounds
  // are *not* persisted: the resumed iteration starts with assignment
  // -1 / upper ∞ / lower 0, so every point takes the batched full-scan
  // path — exactness-preserving, hence the assignments (and therefore
  // the centers) stay bitwise the uninterrupted run's. Only the previous
  // assignment and cost need reconstructing, from the stored entering
  // centers.
  const internal::LloydCheckpointPlan plan =
      internal::MakeLloydCheckpointPlan(data, initial_centers, options);
  int64_t start_iter = 0;
  {
    Matrix resume_prev;
    LloydResult resumed;
    if (internal::TryResumeLloyd(plan, &resumed, &resume_prev)) {
      result = std::move(resumed);
      start_iter = result.iterations;
      Assignment prev =
          ComputeAssignment(data, resume_prev, /*pool=*/nullptr, pn);
      previous_assignment = std::move(prev.cluster);
      if (options.track_history || options.relative_tolerance > 0.0) {
        previous_cost = prev.cost;
        have_previous_cost = true;
      }
    }
  }

  for (int64_t iter = start_iter; iter < options.max_iterations; ++iter) {
    KMEANSLL_TRACE_SPAN("lloyd_hamerly.iteration");
    const bool will_checkpoint =
        internal::ShouldCheckpoint(plan, iter, options.max_iterations);
    Matrix entering_centers;
    if (will_checkpoint) entering_centers = result.centers;
    // Frozen panel snapshot of this iteration's centers: the
    // center-center scan, the batched full scans, and (via the norms
    // below) the scalar bound probes all read one packing.
    NearestCenterSearch search(result.centers);
    search.Freeze();
    // Scalar probes share the search's cached norms (same
    // RowSquaredNorms chain) rather than recomputing them.
    const double* cn =
        expanded ? search.center_norms().data() : nullptr;

    // --- Inter-center separations (one blocked k × k scan) -----------
    search.DistancesRange(result.centers, IndexRange{0, k}, cn,
                          center_d2.data());
    for (int64_t c = 0; c < k; ++c) {
      double best = std::numeric_limits<double>::infinity();
      const double* row = center_d2.data() + c * k;
      for (int64_t o = 0; o < k; ++o) {
        if (o == c) continue;
        best = std::min(best, row[o]);
      }
      half_nearest[static_cast<size_t>(c)] =
          k > 1 ? 0.5 * std::sqrt(best) : 0.0;
    }

    // --- Bound certification pass ------------------------------------
    // Per point, independent of every other point: certify from the
    // bounds, else tighten the upper bound with one exact probe, else
    // queue the point for the batched full scan below.
    scan_list.clear();
    ForEachBlock(data, 0, n, [&](const DatasetView& v) {
      for (int64_t b = 0; b < v.rows(); ++b) {
        const int64_t i = v.first_row() + b;
        auto idx = static_cast<size_t>(i);
        const int64_t a = assignment[idx];
        if (a >= 0) {
          double threshold =
              std::max(half_nearest[static_cast<size_t>(a)], lower[idx]);
          if (upper[idx] <= threshold) {
            if (stats != nullptr) ++stats->bound_skips;
            continue;  // bound certifies the assignment
          }
          // Tighten the upper bound with one exact distance.
          upper[idx] = std::sqrt(internal::PairDistance2(
              v.Point(b), expanded ? pn[i] : 0.0, result.centers.Row(a),
              expanded ? cn[a] : 0.0, d, expanded));
          if (upper[idx] <= threshold) {
            if (stats != nullptr) ++stats->inner_updates;
            continue;
          }
        }
        scan_list.push_back(i);
      }
    });

    // --- Batched full scans ------------------------------------------
    if (!scan_list.empty()) {
      const auto m = static_cast<int64_t>(scan_list.size());
      scan_idx.resize(static_cast<size_t>(m));
      scan_d1.resize(static_cast<size_t>(m));
      scan_d2.resize(static_cast<size_t>(m));
      if (m == n) {
        // Everyone rescans (iteration 0, or the round after a repair
        // reset): scan the blocks in place — no gather copy.
        search.FindTwoNearestRange(data, IndexRange{0, n}, pn,
                                   scan_idx.data(), scan_d1.data(),
                                   scan_d2.data());
      } else {
        Matrix gathered = GatherPoints(data, scan_list);
        const double* gathered_norms = nullptr;
        if (expanded) {
          scan_norms.resize(static_cast<size_t>(m));
          for (int64_t b = 0; b < m; ++b) {
            scan_norms[static_cast<size_t>(b)] =
                pn[scan_list[static_cast<size_t>(b)]];
          }
          gathered_norms = scan_norms.data();
        }
        search.FindTwoNearestRange(gathered, IndexRange{0, m},
                                   gathered_norms, scan_idx.data(),
                                   scan_d1.data(), scan_d2.data());
      }
      if (stats != nullptr) stats->full_scans += m;
      for (int64_t b = 0; b < m; ++b) {
        auto idx = static_cast<size_t>(scan_list[static_cast<size_t>(b)]);
        assignment[idx] = scan_idx[static_cast<size_t>(b)];
        upper[idx] = std::sqrt(scan_d1[static_cast<size_t>(b)]);
        lower[idx] = std::sqrt(scan_d2[static_cast<size_t>(b)]);
      }
    }

    // --- Centroid update (bitwise identical to LloydStep) ------------
    internal::CentroidSums totals =
        internal::AccumulateCentroids(data, assignment, k, nullptr);
    Matrix new_centers;
    std::vector<int64_t> empty =
        internal::CentroidsFromSums(totals, k, d, &new_centers);
    bool repaired = !empty.empty();
    if (repaired) {
      result.empty_cluster_repairs += static_cast<int64_t>(empty.size());
      internal::RepairEmptyClusters(data, result.centers, empty,
                                    &new_centers, /*pool=*/nullptr, pn);
    }
    ++result.iterations;

    // --- Bound maintenance from center movement ----------------------
    std::vector<double> movement(static_cast<size_t>(k));
    double max_movement = 0.0;
    for (int64_t c = 0; c < k; ++c) {
      // Plain chain on purpose: the expanded form can cancel to zero for
      // a barely-moved center and understate movement, which is the
      // unsound direction for the bound updates below.
      movement[static_cast<size_t>(c)] = std::sqrt(
          PairSquaredL2(result.centers.Row(c), new_centers.Row(c), d));
      max_movement =
          std::max(max_movement, movement[static_cast<size_t>(c)]);
    }
    if (repaired) {
      // A repaired center teleported; the triangle-inequality updates no
      // longer bound anything. Reset so every point rescans next round.
      std::fill(upper.begin(), upper.end(),
                std::numeric_limits<double>::infinity());
      std::fill(lower.begin(), lower.end(), 0.0);
    } else {
      for (int64_t i = 0; i < n; ++i) {
        auto idx = static_cast<size_t>(i);
        upper[idx] += movement[static_cast<size_t>(assignment[idx])];
        lower[idx] = std::max(0.0, lower[idx] - max_movement);
      }
    }

    bool assignments_unchanged =
        iter > 0 && assignment == previous_assignment;

    if (options.track_history || options.relative_tolerance > 0.0) {
      // The standard iteration records the cost of the assignment that
      // produced the centroids (w.r.t. the replaced centers). The shared
      // helper replicates ComputeAssignment's chunked Kahan reduction, so
      // this history is bitwise the one RunLloyd records.
      double current_cost = internal::AssignmentCost(
          data, result.centers, assignment, pn, cn, expanded);
      if (options.track_history) {
        result.cost_history.push_back(current_cost);
      }
      if (options.relative_tolerance > 0.0 && have_previous_cost &&
          previous_cost > 0.0) {
        double improvement = (previous_cost - current_cost) / previous_cost;
        if (improvement >= 0.0 &&
            improvement < options.relative_tolerance) {
          result.centers = std::move(new_centers);
          previous_assignment = assignment;
          result.converged = true;
          break;
        }
      }
      previous_cost = current_cost;
      have_previous_cost = true;
    }

    result.centers = std::move(new_centers);
    previous_assignment = assignment;

    if (assignments_unchanged) {
      result.converged = true;
      break;
    }

    if (will_checkpoint) {
      KMEANSLL_RETURN_NOT_OK(
          internal::CheckpointLloydIteration(
              plan, entering_centers, result,
              &result.checkpoint_write_retries));
    }
  }

  result.assignment = ComputeAssignment(data, result.centers, nullptr, pn);
  KMEANSLL_RETURN_NOT_OK(data.status());
  internal::RemoveLloydCheckpoint(plan);
  return result;
}

Result<LloydResult> RunLloydHamerly(const Dataset& data,
                                    const Matrix& initial_centers,
                                    const LloydOptions& options,
                                    HamerlyStats* stats,
                                    const double* point_norms) {
  InMemorySource source = data.AsSource();
  return RunLloydHamerly(source, initial_centers, options, stats,
                         point_norms);
}

}  // namespace kmeansll
