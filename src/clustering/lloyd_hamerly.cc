#include "clustering/lloyd_hamerly.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "clustering/cost.h"
#include "common/math_util.h"
#include "distance/l2.h"
#include "distance/nearest.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

namespace {

/// Centroid accumulation replicating LloydStep's chunked reduction
/// exactly (same chunk boundaries, same merge order), so the centers this
/// path produces are bitwise identical to the standard iteration's.
void AccumulateCentroids(const Dataset& data,
                         const std::vector<int32_t>& assignment, int64_t k,
                         std::vector<double>* sums,
                         std::vector<double>* weights) {
  const int64_t d = data.dim();
  sums->assign(static_cast<size_t>(k * d), 0.0);
  weights->assign(static_cast<size_t>(k), 0.0);
  std::vector<IndexRange> chunks =
      MakeChunks(data.n(), kDeterministicChunks);
  std::vector<double> chunk_sums(static_cast<size_t>(k * d));
  std::vector<double> chunk_weights(static_cast<size_t>(k));
  for (const IndexRange& r : chunks) {
    std::fill(chunk_sums.begin(), chunk_sums.end(), 0.0);
    std::fill(chunk_weights.begin(), chunk_weights.end(), 0.0);
    for (int64_t i = r.begin; i < r.end; ++i) {
      auto c = static_cast<int64_t>(assignment[static_cast<size_t>(i)]);
      double w = data.Weight(i);
      const double* point = data.Point(i);
      double* sum = chunk_sums.data() + c * d;
      for (int64_t j = 0; j < d; ++j) sum[j] += w * point[j];
      chunk_weights[static_cast<size_t>(c)] += w;
    }
    for (size_t v = 0; v < chunk_sums.size(); ++v) {
      (*sums)[v] += chunk_sums[v];
    }
    for (size_t c = 0; c < chunk_weights.size(); ++c) {
      (*weights)[c] += chunk_weights[c];
    }
  }
}

/// The deterministic empty-cluster repair shared with LloydStep: hand
/// each empty cluster the point with the largest current contribution.
void RepairEmptyClusters(const Dataset& data, const Matrix& old_centers,
                         const std::vector<int64_t>& empty,
                         Matrix* new_centers) {
  NearestCenterSearch search(old_centers);
  std::vector<std::pair<double, int64_t>> contributions;
  contributions.reserve(static_cast<size_t>(data.n()));
  for (int64_t i = 0; i < data.n(); ++i) {
    contributions.emplace_back(
        data.Weight(i) * search.Find(data.Point(i)).distance2, i);
  }
  std::sort(contributions.begin(), contributions.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  size_t next = 0;
  for (int64_t c : empty) {
    const double* point = data.Point(contributions[next].second);
    ++next;
    double* row = new_centers->Row(c);
    for (int64_t j = 0; j < data.dim(); ++j) row[j] = point[j];
  }
}

/// Nearest and second-nearest distances with standard tie-breaking
/// (strict <, ascending center index).
struct TwoNearest {
  int64_t best = -1;
  double d1 = std::numeric_limits<double>::infinity();
  double d2 = std::numeric_limits<double>::infinity();
};

TwoNearest FindTwoNearest(const double* point, const Matrix& centers) {
  TwoNearest out;
  const int64_t k = centers.rows();
  const int64_t d = centers.cols();
  for (int64_t c = 0; c < k; ++c) {
    double dist2 = SquaredL2(point, centers.Row(c), d);
    if (dist2 < out.d1) {
      out.d2 = out.d1;
      out.d1 = dist2;
      out.best = c;
    } else if (dist2 < out.d2) {
      out.d2 = dist2;
    }
  }
  return out;
}

}  // namespace

Result<LloydResult> RunLloydHamerly(const Dataset& data,
                                    const Matrix& initial_centers,
                                    const LloydOptions& options,
                                    HamerlyStats* stats) {
  if (initial_centers.rows() == 0) {
    return Status::InvalidArgument("initial center set is empty");
  }
  if (initial_centers.cols() != data.dim()) {
    return Status::InvalidArgument(
        "center dimension " + std::to_string(initial_centers.cols()) +
        " does not match data dimension " + std::to_string(data.dim()));
  }
  if (data.n() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (options.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be >= 0");
  }

  const int64_t n = data.n();
  const int64_t k = initial_centers.rows();
  const int64_t d = data.dim();

  LloydResult result;
  result.centers = initial_centers;

  // Per-point bounds. Distances are kept *unsquared* here because the
  // triangle-inequality updates are linear in distance, not in squared
  // distance.
  std::vector<int32_t> assignment(static_cast<size_t>(n), -1);
  std::vector<int32_t> previous_assignment;
  std::vector<double> upper(static_cast<size_t>(n),
                            std::numeric_limits<double>::infinity());
  std::vector<double> lower(static_cast<size_t>(n), 0.0);

  // Half distance to the closest other center, per center.
  std::vector<double> half_nearest(static_cast<size_t>(k));

  double previous_cost = std::numeric_limits<double>::quiet_NaN();
  bool have_previous_cost = false;  // first comparison at iteration 1

  for (int64_t iter = 0; iter < options.max_iterations; ++iter) {
    // --- Inter-center separations ------------------------------------
    for (int64_t c = 0; c < k; ++c) {
      double best = std::numeric_limits<double>::infinity();
      for (int64_t o = 0; o < k; ++o) {
        if (o == c) continue;
        best = std::min(
            best, SquaredL2(result.centers.Row(c), result.centers.Row(o),
                            d));
      }
      half_nearest[static_cast<size_t>(c)] =
          k > 1 ? 0.5 * std::sqrt(best) : 0.0;
    }

    // --- Assignment with bound pruning -------------------------------
    for (int64_t i = 0; i < n; ++i) {
      auto idx = static_cast<size_t>(i);
      double threshold =
          std::max(half_nearest[static_cast<size_t>(
                       assignment[idx] < 0 ? 0 : assignment[idx])],
                   lower[idx]);
      if (assignment[idx] >= 0 && upper[idx] <= threshold) {
        if (stats != nullptr) ++stats->bound_skips;
        continue;  // bound certifies the assignment
      }
      if (assignment[idx] >= 0) {
        // Tighten the upper bound with one exact distance.
        upper[idx] = std::sqrt(SquaredL2(
            data.Point(i),
            result.centers.Row(assignment[idx]), d));
        if (upper[idx] <= threshold) {
          if (stats != nullptr) ++stats->inner_updates;
          continue;
        }
      }
      TwoNearest nearest = FindTwoNearest(data.Point(i), result.centers);
      if (stats != nullptr) ++stats->full_scans;
      assignment[idx] = static_cast<int32_t>(nearest.best);
      upper[idx] = std::sqrt(nearest.d1);
      lower[idx] = std::sqrt(nearest.d2);
    }

    // --- Centroid update (bitwise identical to LloydStep) ------------
    std::vector<double> sums, weights;
    AccumulateCentroids(data, assignment, k, &sums, &weights);
    Matrix new_centers(k, d);
    std::vector<int64_t> empty;
    for (int64_t c = 0; c < k; ++c) {
      double w = weights[static_cast<size_t>(c)];
      double* row = new_centers.Row(c);
      if (w > 0.0) {
        const double* sum = sums.data() + c * d;
        for (int64_t j = 0; j < d; ++j) row[j] = sum[j] / w;
      } else {
        empty.push_back(c);
      }
    }
    bool repaired = !empty.empty();
    if (repaired) {
      result.empty_cluster_repairs += static_cast<int64_t>(empty.size());
      RepairEmptyClusters(data, result.centers, empty, &new_centers);
    }
    ++result.iterations;

    // --- Bound maintenance from center movement ----------------------
    std::vector<double> movement(static_cast<size_t>(k));
    double max_movement = 0.0;
    for (int64_t c = 0; c < k; ++c) {
      movement[static_cast<size_t>(c)] = std::sqrt(
          SquaredL2(result.centers.Row(c), new_centers.Row(c), d));
      max_movement =
          std::max(max_movement, movement[static_cast<size_t>(c)]);
    }
    if (repaired) {
      // A repaired center teleported; the triangle-inequality updates no
      // longer bound anything. Reset so every point rescans next round.
      std::fill(upper.begin(), upper.end(),
                std::numeric_limits<double>::infinity());
      std::fill(lower.begin(), lower.end(), 0.0);
    } else {
      for (int64_t i = 0; i < n; ++i) {
        auto idx = static_cast<size_t>(i);
        upper[idx] += movement[static_cast<size_t>(assignment[idx])];
        lower[idx] = std::max(0.0, lower[idx] - max_movement);
      }
    }

    bool assignments_unchanged =
        iter > 0 && assignment == previous_assignment;

    if (options.track_history || options.relative_tolerance > 0.0) {
      // The standard iteration records the cost of the assignment that
      // produced the centroids (w.r.t. the replaced centers); computing
      // it exactly costs one extra pass, paid only when asked for.
      KahanSum cost;
      for (int64_t i = 0; i < n; ++i) {
        cost.Add(data.Weight(i) *
                 SquaredL2(data.Point(i),
                           result.centers.Row(
                               assignment[static_cast<size_t>(i)]),
                           d));
      }
      double current_cost = cost.Total();
      if (options.track_history) {
        result.cost_history.push_back(current_cost);
      }
      if (options.relative_tolerance > 0.0 && have_previous_cost &&
          previous_cost > 0.0) {
        double improvement = (previous_cost - current_cost) / previous_cost;
        if (improvement >= 0.0 &&
            improvement < options.relative_tolerance) {
          result.centers = std::move(new_centers);
          previous_assignment = assignment;
          result.converged = true;
          break;
        }
      }
      previous_cost = current_cost;
      have_previous_cost = true;
    }

    result.centers = std::move(new_centers);
    previous_assignment = assignment;

    if (assignments_unchanged) {
      result.converged = true;
      break;
    }
  }

  result.assignment = ComputeAssignment(data, result.centers);
  return result;
}

}  // namespace kmeansll
