#include "parallel/parallel_for.h"

namespace kmeansll {

std::vector<IndexRange> MakeChunks(int64_t total, int64_t max_chunks) {
  KMEANSLL_CHECK_GE(total, 0);
  KMEANSLL_CHECK_GE(max_chunks, 1);
  std::vector<IndexRange> chunks;
  if (total == 0) return chunks;
  int64_t parts = max_chunks < total ? max_chunks : total;
  chunks.reserve(static_cast<size_t>(parts));
  int64_t base = total / parts;
  int64_t extra = total % parts;
  int64_t begin = 0;
  for (int64_t p = 0; p < parts; ++p) {
    int64_t len = base + (p < extra ? 1 : 0);
    chunks.push_back(IndexRange{begin, begin + len});
    begin += len;
  }
  return chunks;
}

void ParallelFor(ThreadPool* pool, int64_t total,
                 const std::function<void(IndexRange)>& body,
                 const ScanSchedule* schedule) {
  if (total <= 0) return;
  const bool scheduled = schedule != nullptr && !schedule->empty();
  if (pool == nullptr && schedule == nullptr) {
    body(IndexRange{0, total});
    return;
  }
  std::vector<IndexRange> chunks = MakeChunks(total, kDeterministicChunks);
  const bool hinted = scheduled && schedule->prefetch != nullptr &&
                      schedule->hints.size() == chunks.size();
  auto run_position = [&](size_t p) {
    if (hinted && schedule->hints[p].size() > 0) {
      schedule->prefetch(schedule->hints[p]);
    }
    const size_t c =
        scheduled && !schedule->order.empty() ? schedule->order[p] : p;
    body(chunks[c]);
  };
  if (pool == nullptr) {
    for (size_t p = 0; p < chunks.size(); ++p) run_position(p);
    return;
  }
  for (size_t p = 0; p < chunks.size(); ++p) {
    pool->Submit([&run_position, p] { run_position(p); });
  }
  pool->Wait();
}

}  // namespace kmeansll
