#include "parallel/parallel_for.h"

namespace kmeansll {

std::vector<IndexRange> MakeChunks(int64_t total, int64_t max_chunks) {
  KMEANSLL_CHECK_GE(total, 0);
  KMEANSLL_CHECK_GE(max_chunks, 1);
  std::vector<IndexRange> chunks;
  if (total == 0) return chunks;
  int64_t parts = max_chunks < total ? max_chunks : total;
  chunks.reserve(static_cast<size_t>(parts));
  int64_t base = total / parts;
  int64_t extra = total % parts;
  int64_t begin = 0;
  for (int64_t p = 0; p < parts; ++p) {
    int64_t len = base + (p < extra ? 1 : 0);
    chunks.push_back(IndexRange{begin, begin + len});
    begin += len;
  }
  return chunks;
}

void ParallelFor(ThreadPool* pool, int64_t total,
                 const std::function<void(IndexRange)>& body) {
  if (total <= 0) return;
  if (pool == nullptr) {
    body(IndexRange{0, total});
    return;
  }
  std::vector<IndexRange> chunks = MakeChunks(total, kDeterministicChunks);
  for (const IndexRange& r : chunks) {
    pool->Submit([&body, r] { body(r); });
  }
  pool->Wait();
}

}  // namespace kmeansll
