// Fixed-size worker pool. This is the execution substrate for both the
// parallel_for helpers and the in-memory MapReduce engine; the paper's
// "embarrassingly parallel" steps (cost computation, per-point sampling,
// weight counting, Lloyd assignment) all run on it.

#ifndef KMEANSLL_PARALLEL_THREAD_POOL_H_
#define KMEANSLL_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace kmeansll {

/// A fixed set of worker threads draining a FIFO task queue.
/// Submission is thread-safe. Destruction drains outstanding tasks.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of hardware threads (>= 1).
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  // queued + running
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace kmeansll

#endif  // KMEANSLL_PARALLEL_THREAD_POOL_H_
