#include "parallel/thread_pool.h"

namespace kmeansll {

ThreadPool::ThreadPool(int num_threads) {
  KMEANSLL_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    KMEANSLL_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ with an empty queue: exit.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

int ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace kmeansll
