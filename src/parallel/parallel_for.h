// Deterministic data-parallel helpers over a ThreadPool.
//
// Work is split into fixed chunks (independent of the thread count), and
// reductions combine per-chunk partials in chunk order. Consequently every
// parallel result is bitwise identical across thread counts — a property
// the tests assert and the reproducibility story (DESIGN.md §5.7) relies
// on.

#ifndef KMEANSLL_PARALLEL_PARALLEL_FOR_H_
#define KMEANSLL_PARALLEL_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/macros.h"
#include "parallel/thread_pool.h"

namespace kmeansll {

/// Contiguous index range [begin, end).
struct IndexRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// Splits [0, total) into at most `max_chunks` near-equal ranges.
std::vector<IndexRange> MakeChunks(int64_t total, int64_t max_chunks);

/// Fixed chunk count used by ParallelFor/ParallelReduce. Independent of
/// the pool's thread count (and of whether a pool is used at all), so
/// chunked reductions produce bitwise-identical results sequentially and
/// at any parallelism.
inline constexpr int64_t kDeterministicChunks = 64;

/// Execution schedule for a chunked pass over a storage-backed range
/// (built by MakeScanSchedule in matrix/dataset_view.h). The schedule
/// changes WHEN chunks run, never what they compute or how partials fold:
///
///  - `order` permutes chunk *submission* so concurrently running workers
///    scan distinct shards of an out-of-core source instead of piling
///    onto one shard's pin. Reductions still fold per-chunk partials in
///    ascending chunk-index order, so results are bitwise identical with
///    or without a schedule, at any thread count.
///  - `hints` + `prefetch`: when the chunk at submission position p
///    starts, prefetch(hints[p]) is issued first (an advisory row-range
///    warm-up ahead of that worker's scan cursor — see
///    DatasetSource::PrefetchHint). Hints are advisory and asynchronous;
///    they touch no consumer-visible state.
struct ScanSchedule {
  std::vector<size_t> order;       ///< submission order; empty = ascending
  std::vector<IndexRange> hints;   ///< per-position prefetch ranges
                                   ///< (empty, or one per chunk; a hint
                                   ///< with begin >= end is "no hint")
  std::function<void(IndexRange)> prefetch;  ///< null = hints ignored

  bool empty() const { return order.empty() && prefetch == nullptr; }
};

/// Runs body(range) for each chunk of [0, total) on the pool. Blocks until
/// all chunks complete. `pool` may be null: runs inline (sequentially).
/// `schedule` (may be null) reorders chunk submission and issues prefetch
/// hints; it never changes the chunk grid. Passing a schedule — even an
/// empty one — also opts the sequential path into the fixed chunk grid
/// (chunk-by-chunk, ascending, hints ahead of the inline scan), so
/// consumers whose per-row values could depend on tile origins see the
/// pooled path's grid at every pool size; with no schedule the
/// sequential path runs the whole range as one body call, as before.
void ParallelFor(ThreadPool* pool, int64_t total,
                 const std::function<void(IndexRange)>& body,
                 const ScanSchedule* schedule = nullptr);

/// Map-reduce over chunks: `map` produces a partial P per chunk, and the
/// partials are folded left-to-right in chunk order by `combine` into
/// `init`. Deterministic for any thread count; `schedule` (may be null)
/// affects submission order and prefetch only, never the fold order.
template <typename P>
P ParallelReduce(ThreadPool* pool, int64_t total, P init,
                 const std::function<P(IndexRange)>& map,
                 const std::function<P(P, P)>& combine,
                 const ScanSchedule* schedule = nullptr) {
  std::vector<IndexRange> chunks = MakeChunks(total, kDeterministicChunks);
  std::vector<P> partials(chunks.size());
  const bool scheduled = schedule != nullptr && !schedule->empty();
  const bool hinted = scheduled && schedule->prefetch != nullptr &&
                      schedule->hints.size() == chunks.size();
  auto chunk_at = [&](size_t p) {
    return scheduled && !schedule->order.empty() ? schedule->order[p] : p;
  };
  auto run_position = [&](size_t p) {
    if (hinted && schedule->hints[p].size() > 0) {
      schedule->prefetch(schedule->hints[p]);
    }
    const size_t c = chunk_at(p);
    partials[c] = map(chunks[c]);
  };
  if (pool == nullptr) {
    for (size_t p = 0; p < chunks.size(); ++p) run_position(p);
  } else {
    for (size_t p = 0; p < chunks.size(); ++p) {
      pool->Submit([&run_position, p] { run_position(p); });
    }
    pool->Wait();
  }
  P acc = std::move(init);
  for (auto& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace kmeansll

#endif  // KMEANSLL_PARALLEL_PARALLEL_FOR_H_
