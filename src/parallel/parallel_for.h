// Deterministic data-parallel helpers over a ThreadPool.
//
// Work is split into fixed chunks (independent of the thread count), and
// reductions combine per-chunk partials in chunk order. Consequently every
// parallel result is bitwise identical across thread counts — a property
// the tests assert and the reproducibility story (DESIGN.md §5.7) relies
// on.

#ifndef KMEANSLL_PARALLEL_PARALLEL_FOR_H_
#define KMEANSLL_PARALLEL_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/macros.h"
#include "parallel/thread_pool.h"

namespace kmeansll {

/// Contiguous index range [begin, end).
struct IndexRange {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// Splits [0, total) into at most `max_chunks` near-equal ranges.
std::vector<IndexRange> MakeChunks(int64_t total, int64_t max_chunks);

/// Fixed chunk count used by ParallelFor/ParallelReduce. Independent of
/// the pool's thread count (and of whether a pool is used at all), so
/// chunked reductions produce bitwise-identical results sequentially and
/// at any parallelism.
inline constexpr int64_t kDeterministicChunks = 64;

/// Runs body(range) for each chunk of [0, total) on the pool. Blocks until
/// all chunks complete. `pool` may be null: runs inline (sequentially).
void ParallelFor(ThreadPool* pool, int64_t total,
                 const std::function<void(IndexRange)>& body);

/// Map-reduce over chunks: `map` produces a partial P per chunk, and the
/// partials are folded left-to-right in chunk order by `combine` into
/// `init`. Deterministic for any thread count.
template <typename P>
P ParallelReduce(ThreadPool* pool, int64_t total, P init,
                 const std::function<P(IndexRange)>& map,
                 const std::function<P(P, P)>& combine) {
  std::vector<IndexRange> chunks = MakeChunks(total, kDeterministicChunks);
  std::vector<P> partials(chunks.size());
  if (pool == nullptr) {
    for (size_t c = 0; c < chunks.size(); ++c) partials[c] = map(chunks[c]);
  } else {
    for (size_t c = 0; c < chunks.size(); ++c) {
      pool->Submit([&, c] { partials[c] = map(chunks[c]); });
    }
    pool->Wait();
  }
  P acc = std::move(init);
  for (auto& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace kmeansll

#endif  // KMEANSLL_PARALLEL_PARALLEL_FOR_H_
