// Capped-exponential-backoff retry for transient I/O failures.
//
// Policy: only StatusCode::kIOError is considered transient (a bad
// argument or failed precondition will not heal by waiting). Attempt n
// sleeps base_backoff_us * 2^(n-1), capped at max_backoff_us, before
// retrying. The helper reports how many retries it burned so callers
// can feed telemetry counters.

#ifndef KMEANSLL_COMMON_RETRY_H_
#define KMEANSLL_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/status.h"

namespace kmeansll {

struct RetryPolicy {
  /// Total attempts (first try included). 1 disables retrying.
  int max_attempts = 3;
  /// Sleep before the first retry; doubles per attempt thereafter.
  int64_t base_backoff_us = 100;
  /// Backoff ceiling.
  int64_t max_backoff_us = 10'000;
};

/// Runs `op` (any callable returning Status) up to policy.max_attempts
/// times, backing off between attempts, and returns the last Status.
/// Non-transient errors (anything but kIOError) return immediately.
/// `*out_retries` (optional) receives the number of retries performed.
template <typename Op>
Status RetryTransient(const RetryPolicy& policy, Op&& op,
                      int64_t* out_retries = nullptr) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  int64_t backoff_us = policy.base_backoff_us;
  Status status;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = op();
    if (status.ok() || !status.IsIOError()) break;
    if (attempt == attempts) break;
    if (out_retries != nullptr) ++*out_retries;
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
      backoff_us = backoff_us * 2 > policy.max_backoff_us
                       ? policy.max_backoff_us
                       : backoff_us * 2;
    }
  }
  return status;
}

}  // namespace kmeansll

#endif  // KMEANSLL_COMMON_RETRY_H_
