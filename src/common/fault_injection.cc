#include "common/fault_injection.h"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

namespace kmeansll::fault {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShortRead:
      return "short read";
    case FaultKind::kMapFail:
      return "map failure";
    case FaultKind::kCrcError:
      return "CRC error";
    case FaultKind::kSlowIo:
      return "slow IO";
    case FaultKind::kWriteFail:
      return "write failure";
    case FaultKind::kTaskFail:
      return "task failure";
    case FaultKind::kTornWrite:
      return "torn write";
  }
  return "unknown fault";
}

namespace {

// FNV-1a, then a splitmix64 finalizer: stable across platforms, good
// avalanche for the per-call Bernoulli decision.
uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

struct FaultInjector::Impl {
  struct Site {
    FaultRule rule;
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> fired{0};
  };

  std::atomic<bool> armed{false};
  std::atomic<uint64_t> triggered{0};
  uint64_t seed = 0;

  // Guards the map shape only; per-call state is atomic. Sites are armed
  // up front by tests, so Check never takes this on the fast path.
  mutable std::mutex mu;
  std::map<std::string, Site, std::less<>> sites;
};

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

FaultInjector::Impl* FaultInjector::impl() {
  static Impl* impl = new Impl();
  return impl;
}

void FaultInjector::Seed(uint64_t seed) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  i->seed = seed;
  for (auto& [name, site] : i->sites) {
    site.calls.store(0, std::memory_order_relaxed);
    site.fired.store(0, std::memory_order_relaxed);
  }
  i->triggered.store(0, std::memory_order_relaxed);
}

void FaultInjector::Arm(std::string site, FaultRule rule) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  Impl::Site& s = i->sites[std::move(site)];
  s.rule = rule;
  s.calls.store(0, std::memory_order_relaxed);
  s.fired.store(0, std::memory_order_relaxed);
  i->armed.store(true, std::memory_order_release);
}

void FaultInjector::Reset() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  i->sites.clear();
  i->seed = 0;
  i->triggered.store(0, std::memory_order_relaxed);
  i->armed.store(false, std::memory_order_release);
}

bool FaultInjector::armed() const {
  return const_cast<FaultInjector*>(this)->impl()->armed.load(
      std::memory_order_acquire);
}

uint64_t FaultInjector::triggered_count() const {
  return const_cast<FaultInjector*>(this)->impl()->triggered.load(
      std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(std::string_view site, FaultKind* out_kind,
                               int64_t* out_slow_us) {
  Impl* i = impl();
  if (!i->armed.load(std::memory_order_acquire)) return false;
  Impl::Site* s = nullptr;
  uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(i->mu);
    auto it = i->sites.find(site);
    if (it == i->sites.end()) return false;
    s = &it->second;
    seed = i->seed;
  }
  // 1-based call ordinal at this site. With concurrent callers the
  // *assignment* of ordinals to threads is racy, but every ordinal is
  // claimed exactly once, so "fail the Nth call" and "fail p of the
  // calls" both trigger a deterministic set of ordinals.
  const uint64_t call =
      s->calls.fetch_add(1, std::memory_order_relaxed) + 1;
  const FaultRule& rule = s->rule;
  bool fire = false;
  if (rule.nth_call > 0) {
    fire = (call == rule.nth_call);
  } else if (rule.probability > 0.0) {
    const uint64_t h = Mix(seed ^ Mix(HashSite(site) ^ call));
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0,1)
    fire = (u < rule.probability);
  }
  if (!fire) return false;
  if (rule.max_triggers > 0) {
    // Claim a trigger slot; lose the race past the cap -> no fault.
    const uint64_t n = s->fired.fetch_add(1, std::memory_order_relaxed);
    if (n >= rule.max_triggers) return false;
  }
  i->triggered.fetch_add(1, std::memory_order_relaxed);
  if (out_kind != nullptr) *out_kind = rule.kind;
  if (out_slow_us != nullptr) *out_slow_us = rule.slow_io_us;
  return true;
}

#if KMEANSLL_FAULT_INJECTION

Status Check(std::string_view site) {
  FaultKind kind;
  int64_t slow_us = 0;
  if (!FaultInjector::Global().ShouldFail(site, &kind, &slow_us)) {
    return Status::OK();
  }
  if (kind == FaultKind::kSlowIo) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        slow_us > 0 ? slow_us : 1000));
    return Status::OK();
  }
  return Status::IOError(std::string("injected ") +
                         FaultKindToString(kind) + " at " +
                         std::string(site));
}

bool CheckKind(std::string_view site, FaultKind* out_kind) {
  int64_t slow_us = 0;
  return FaultInjector::Global().ShouldFail(site, out_kind, &slow_us);
}

#endif  // KMEANSLL_FAULT_INJECTION

}  // namespace kmeansll::fault
