// Process-wide metrics registry: named, label-tagged Counter / Gauge /
// Histogram handles with Prometheus text exposition.
//
// Design goals, in order:
//   1. Hot-path updates are wait-free. A handle is a stable pointer to a
//      relaxed std::atomic cell (Counter/Gauge) or to a LatencyHistogram
//      (common/telemetry.h) whose Record() is already wait-free. No
//      mutex, no allocation, no hashing on the update path — call sites
//      resolve their handle once (typically a function-local static) and
//      then pay one fetch_add per event.
//   2. Registration is idempotent and returns stable pointers. The
//      registry hands out the same cell for the same (name, labels) key
//      for the life of the process; cells live in deques and are never
//      moved or freed, so a cached handle can never dangle.
//   3. Snapshots are tear-free per cell. DumpPrometheusText() samples
//      each atomic individually — exactly the IoStats / LatencyHistogram
//      contract: no single value can tear, though cross-cell invariants
//      may be off by an in-flight update.
//
// Naming scheme (see docs/ARCHITECTURE.md "Observability"): every metric
// is `kmll_<layer>_<what>[_<unit>]`, counters end in `_total`, gauges
// name their unit (`_bytes`, `_rows`), histograms name theirs (`_us`).
// Labels carry low-cardinality dimensions only (tenant name, shard
// backend); per-request values belong in histogram buckets, not labels.
//
// Instrumented call sites keep their existing bespoke stat structs
// (IoStats, RequestBatcher::Stats, RefineStats, ...) as the per-instance
// source of truth — tests assert exact counts on those — and additionally
// bump the process-wide registry cells so one scrape sees every layer.

#ifndef KMEANSLL_COMMON_METRICS_H_
#define KMEANSLL_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/telemetry.h"

namespace kmeansll {

/// Monotonically increasing counter. Increment() is wait-free; value()
/// is a single relaxed load.
class Counter {
 public:
  Counter() = default;
  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(Counter);

  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (resident bytes, queue depth).
/// Set()/Add() are wait-free; value() is a single relaxed load.
class Gauge {
 public:
  Gauge() = default;
  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(Gauge);

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// Monotonic max update (peak watermarks). Wait-free CAS loop.
  void UpdateMax(int64_t value) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (value > seen && !value_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<int64_t> value_{0};
};

/// One `label="value"` pair; order is preserved in the exposition.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Registry of named metric cells. Thread-safe: registration takes a
/// mutex (call sites register once and cache the pointer); updates
/// through the returned handles never touch the registry again.
///
/// Library code uses the process-wide Global() instance; tests that need
/// exact counts construct their own local registry.
class MetricsRegistry {
 public:
  MetricsRegistry();   // out-of-line: deque members need complete Cell
  ~MetricsRegistry();  // (tests construct local registries)
  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  /// The process-wide registry every library call site records into.
  static MetricsRegistry& Global();

  /// Returns the counter registered under (name, labels), creating it on
  /// first call. `help` is attached to the metric family on first
  /// registration; later calls may pass an empty help. The returned
  /// pointer is stable for the registry's lifetime.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const MetricLabels& labels = {});
  /// Histogram cell is a LatencyHistogram (HdrHistogram-style buckets,
  /// wait-free Record()); exposed in cumulative Prometheus bucket format
  /// by DumpPrometheusText().
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& help,
                                 const MetricLabels& labels = {});

  /// Prometheus text exposition (version 0.0.4): `# HELP` / `# TYPE` per
  /// family, one sample line per (labels) cell, histograms as cumulative
  /// `_bucket{le="..."}` series plus `_sum` and `_count`. Histogram HELP
  /// lines document the bucket upper-bound (<= 12.5% relative error)
  /// percentile semantics. Values are tear-free per cell.
  std::string DumpPrometheusText() const;

  /// Number of registered cells across all families (for tests).
  size_t CellCount() const;

 private:
  struct Cell;
  struct Family;

  enum class MetricType { kCounter, kGauge, kHistogram };

  Cell* GetCell(MetricType type, const std::string& name,
                const std::string& help, const MetricLabels& labels);

  mutable std::mutex mu_;
  // Deques so every Cell / Family address is stable across growth.
  std::deque<Family> families_;
  std::deque<Cell> cells_;
};

/// Appends one LatencyHistogram snapshot to `out` as a cumulative
/// Prometheus histogram series (`name_bucket{...,le="..."}` lines in
/// strictly increasing `le`, closed by `+Inf`, then `name_sum` and
/// `name_count`). Shared by MetricsRegistry::DumpPrometheusText and
/// per-instance dumps (ServerRegistry::DumpPrometheusText).
void AppendPrometheusHistogram(const std::string& name,
                               const MetricLabels& labels,
                               const LatencyHistogram::Snapshot& snap,
                               std::string* out);

}  // namespace kmeansll

#endif  // KMEANSLL_COMMON_METRICS_H_
