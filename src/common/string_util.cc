#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace kmeansll {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string buf(Trim(text));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  std::string buf(Trim(text));
  if (buf.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

std::string FormatScientific(double value, int precision) {
  char buf[64];
  double mag = std::fabs(value);
  if (value != 0.0 && (mag >= 1e6 || mag < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  }
  return buf;
}

std::string FormatWithCommas(int64_t value) {
  bool negative = value < 0;
  // Build digits right-to-left, inserting a comma every three digits.
  uint64_t mag = negative ? -static_cast<uint64_t>(value)
                          : static_cast<uint64_t>(value);
  std::string digits;
  int count = 0;
  do {
    if (count > 0 && count % 3 == 0) digits.push_back(',');
    digits.push_back(static_cast<char>('0' + mag % 10));
    mag /= 10;
    ++count;
  } while (mag != 0);
  if (negative) digits.push_back('-');
  return std::string(digits.rbegin(), digits.rend());
}

}  // namespace kmeansll
