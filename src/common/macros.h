// Core macros shared across the kmeansll codebase.
//
// Error-handling philosophy (Arrow/RocksDB idiom):
//  * Recoverable errors (bad input, IO failure) travel through
//    kmeansll::Status / kmeansll::Result<T>; see common/status.h.
//  * Programmer errors (broken invariants) abort via KMEANSLL_CHECK.

#ifndef KMEANSLL_COMMON_MACROS_H_
#define KMEANSLL_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define KMEANSLL_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;               \
  TypeName& operator=(const TypeName&) = delete

#define KMEANSLL_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define KMEANSLL_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))

// Aborts the process with a location-tagged message when `condition` is
// false. Used for invariants that indicate bugs, never for user input.
#define KMEANSLL_CHECK(condition)                                         \
  do {                                                                    \
    if (KMEANSLL_PREDICT_FALSE(!(condition))) {                           \
      ::std::fprintf(stderr, "KMEANSLL_CHECK failed at %s:%d: %s\n",      \
                     __FILE__, __LINE__, #condition);                     \
      ::std::abort();                                                     \
    }                                                                     \
  } while (0)

#define KMEANSLL_CHECK_OP(op, a, b) KMEANSLL_CHECK((a)op(b))
#define KMEANSLL_CHECK_EQ(a, b) KMEANSLL_CHECK_OP(==, a, b)
#define KMEANSLL_CHECK_NE(a, b) KMEANSLL_CHECK_OP(!=, a, b)
#define KMEANSLL_CHECK_LT(a, b) KMEANSLL_CHECK_OP(<, a, b)
#define KMEANSLL_CHECK_LE(a, b) KMEANSLL_CHECK_OP(<=, a, b)
#define KMEANSLL_CHECK_GT(a, b) KMEANSLL_CHECK_OP(>, a, b)
#define KMEANSLL_CHECK_GE(a, b) KMEANSLL_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define KMEANSLL_DCHECK(condition) \
  do {                             \
  } while (0)
#else
#define KMEANSLL_DCHECK(condition) KMEANSLL_CHECK(condition)
#endif

// Propagates a non-OK Status from an expression that yields a Status.
#define KMEANSLL_RETURN_NOT_OK(expr)              \
  do {                                            \
    ::kmeansll::Status _st = (expr);              \
    if (KMEANSLL_PREDICT_FALSE(!_st.ok())) {      \
      return _st;                                 \
    }                                             \
  } while (0)

// Assigns the value of a Result<T> expression to `lhs`, or propagates its
// error Status. `lhs` may include a declaration, e.g.
//   KMEANSLL_ASSIGN_OR_RETURN(auto data, LoadCsv(path));
#define KMEANSLL_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                   \
  if (KMEANSLL_PREDICT_FALSE(!result_name.ok())) {              \
    return result_name.status();                                \
  }                                                             \
  lhs = std::move(result_name).ValueUnsafe()

#define KMEANSLL_CONCAT_IMPL(x, y) x##y
#define KMEANSLL_CONCAT(x, y) KMEANSLL_CONCAT_IMPL(x, y)

#define KMEANSLL_ASSIGN_OR_RETURN(lhs, rexpr) \
  KMEANSLL_ASSIGN_OR_RETURN_IMPL(             \
      KMEANSLL_CONCAT(_kmeansll_result_, __LINE__), lhs, rexpr)

#endif  // KMEANSLL_COMMON_MACROS_H_
