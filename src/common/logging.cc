#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace kmeansll {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("KMEANSLL_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) return static_cast<LogLevel>(v);
  }
  return LogLevel::kInfo;
}

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

std::mutex& EmitMutex() {
  static std::mutex m;
  return m;
}

// Installed sink; nullptr means the built-in stderr destination. Read
// and written under EmitMutex() so a sink can never be swapped out from
// under an in-flight Write().
LogSink*& SinkStorage() {
  static LogSink* sink = nullptr;
  return sink;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelStorage().load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  LevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogSink* SetLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(EmitMutex());
  LogSink* previous = SinkStorage();
  SinkStorage() = sink;
  return previous;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel() && level != LogLevel::kOff),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  std::lock_guard<std::mutex> lock(EmitMutex());
  if (LogSink* sink = SinkStorage(); sink != nullptr) {
    sink->Write(level_, stream_.str());
  } else {
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace kmeansll
