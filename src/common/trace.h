// Scoped-span tracing with per-thread lock-free ring buffers and Chrome
// trace-event JSON export (loadable in Perfetto / chrome://tracing).
//
// The recording path is built for hot loops: a KMEANSLL_TRACE_SPAN at
// the top of a scope costs one relaxed atomic load when tracing is
// compiled in but disabled (the common case), and when enabled, two
// steady_clock reads plus a wait-free ring append — no mutex, no
// allocation, no syscall. Each recording thread owns a fixed-capacity
// ring; overflow drops the *oldest* span (the ring is a sliding window
// over the most recent activity, which is what a post-mortem wants) and
// the number of dropped spans is accounted exactly.
//
// Spans are recorded at scope exit with their start timestamp and
// duration, so per-thread ring order is monotonic in span *end* time.
// Export emits Chrome trace-event "X" (complete) events with ts/dur in
// microseconds; one pid, one tid per recording thread.
//
// Determinism: tracing is pure observation. It reads clocks and writes
// to its own buffers; it never touches data values, iteration order, or
// scheduling decisions, so centers/assignments/cost histories are
// bitwise identical with tracing on, off, or compiled out
// (tests/trace_test.cc asserts this over seeding + all Lloyd variants).
//
// Compile-out: building with -DKMEANSLL_TRACING=OFF (CMake option)
// defines KMEANSLL_TRACING=0 and KMEANSLL_TRACE_SPAN expands to nothing
// — zero code, zero data, zero atomic loads. The Tracer API itself stays
// linkable so tools can unconditionally call WriteChromeJson() (they
// get a valid, empty trace).

#ifndef KMEANSLL_COMMON_TRACE_H_
#define KMEANSLL_COMMON_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

#ifndef KMEANSLL_TRACING
#define KMEANSLL_TRACING 1
#endif

namespace kmeansll {
namespace trace {

/// One completed span. `name` must be a string literal (or otherwise
/// outlive the tracer); the recording path stores the pointer only.
struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;  ///< steady-clock ns since process trace epoch
  int64_t dur_ns = 0;
};

/// Process-wide tracer. Disabled by default; Enable()/Disable() flip one
/// relaxed atomic read by every span site. Recording threads lazily
/// register a ring on first span; rings are owned by the tracer and
/// never freed, so the thread-local fast path is a raw pointer.
class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = 64 * 1024;

  /// Opaque per-thread ring; defined in trace.cc (public so the
  /// thread-local cache in the implementation can name it).
  struct ThreadRing;

  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Steady-clock nanoseconds since the tracer's epoch. Monotonic.
  static int64_t NowNs();

  /// Appends one span to the calling thread's ring (wait-free after the
  /// first call on a thread). No-op when disabled.
  void Record(const char* name, int64_t start_ns, int64_t dur_ns);

  /// Spans currently retained across all rings (post-drop).
  size_t RetainedCount() const;
  /// Spans recorded across all rings, including dropped ones.
  int64_t RecordedCount() const;
  /// Spans lost to ring overflow (drop-oldest), summed over all rings.
  int64_t DroppedCount() const;

  /// Serializes every retained span as Chrome trace-event JSON
  /// ({"traceEvents":[...]}; ph="X", ts/dur in microseconds, one tid per
  /// recording thread, per-tid order monotonic in span end time).
  /// Safe to call while recorders are quiescent; a concurrent recorder
  /// may race the newest slot, so export after joining worker threads.
  std::string DumpChromeJson() const;
  /// DumpChromeJson() to a file.
  Status WriteChromeJson(const std::string& path) const;

  /// Test hooks: Reset() discards all rings (and re-arms thread-local
  /// registration via a generation bump); SetRingCapacityForTest applies
  /// to rings created afterwards. Both require quiescent recorders.
  void Reset();
  void SetRingCapacityForTest(size_t capacity);

 private:
  Tracer();
  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(Tracer);

  ThreadRing* RingForThisThread();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards ring registration + config, not recording
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  size_t ring_capacity_ = kDefaultRingCapacity;
  std::atomic<uint64_t> generation_{1};
  int next_tid_ = 1;
};

/// RAII span: captures the start time at construction and records at
/// destruction if tracing was enabled when the scope was entered.
class Span {
 public:
  explicit Span(const char* name) {
    if (Tracer::Global().enabled()) {
      name_ = name;
      start_ns_ = Tracer::NowNs();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      const int64_t end_ns = Tracer::NowNs();
      Tracer::Global().Record(name_, start_ns_, end_ns - start_ns_);
    }
  }
  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(Span);

 private:
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
};

}  // namespace trace
}  // namespace kmeansll

#if KMEANSLL_TRACING
#define KMEANSLL_TRACE_CONCAT_(a, b) a##b
#define KMEANSLL_TRACE_CONCAT(a, b) KMEANSLL_TRACE_CONCAT_(a, b)
/// Traces the enclosing scope as a span named `name` (string literal).
#define KMEANSLL_TRACE_SPAN(name) \
  ::kmeansll::trace::Span KMEANSLL_TRACE_CONCAT(kmll_span_, __LINE__)(name)
#else
#define KMEANSLL_TRACE_SPAN(name) \
  do {                            \
  } while (false)
#endif

#endif  // KMEANSLL_COMMON_TRACE_H_
