#include "common/math_util.h"

#include <algorithm>
#include <cmath>

namespace kmeansll {

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  double lower = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  KahanSum sum;
  for (double v : values) sum.Add(v);
  return sum.Total() / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  KahanSum sq;
  for (double v : values) sq.Add((v - mean) * (v - mean));
  return std::sqrt(sq.Total() / static_cast<double>(values.size() - 1));
}

int Log2Ceil(uint64_t x) {
  if (x <= 1) return 0;
  return 64 - __builtin_clzll(x - 1);
}

uint64_t NextPowerOfTwo(uint64_t x) {
  if (x <= 1) return 1;
  return uint64_t{1} << Log2Ceil(x);
}

}  // namespace kmeansll
