// Result<T>: a value or an error Status (Arrow's arrow::Result idiom).

#ifndef KMEANSLL_COMMON_RESULT_H_
#define KMEANSLL_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/macros.h"
#include "common/status.h"

namespace kmeansll {

/// Holds either a successfully computed T or the Status explaining why it
/// could not be computed. Construct from a T (implicitly OK) or from a
/// non-OK Status. Use KMEANSLL_ASSIGN_OR_RETURN to unwrap with propagation.
template <typename T>
class Result {
 public:
  /// Constructs from an error status. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {
    KMEANSLL_CHECK(!std::get<Status>(repr_).ok());
  }

  /// Constructs from a value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The value. Requires ok().
  const T& ValueOrDie() const& {
    KMEANSLL_CHECK(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    KMEANSLL_CHECK(ok());
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    KMEANSLL_CHECK(ok());
    return std::move(std::get<T>(repr_));
  }

  /// Unchecked accessors used by KMEANSLL_ASSIGN_OR_RETURN after an ok()
  /// test. Calling these on an error Result is a bug.
  const T& ValueUnsafe() const& { return std::get<T>(repr_); }
  T ValueUnsafe() && { return std::move(std::get<T>(repr_)); }

  /// Returns the value, or `alternative` on error.
  T ValueOr(T alternative) const {
    return ok() ? std::get<T>(repr_) : std::move(alternative);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace kmeansll

#endif  // KMEANSLL_COMMON_RESULT_H_
