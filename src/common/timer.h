// Wall-clock timing utilities used by the benchmark harnesses and the
// algorithm telemetry.

#ifndef KMEANSLL_COMMON_TIMER_H_
#define KMEANSLL_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace kmeansll {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed seconds into `*sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace kmeansll

#endif  // KMEANSLL_COMMON_TIMER_H_
