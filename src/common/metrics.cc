#include "common/metrics.h"

#include <memory>
#include <sstream>

namespace kmeansll {
namespace {

// Prometheus text-format escaping: label values escape backslash, quote,
// and newline; HELP text escapes backslash and newline.
std::string EscapeLabelValue(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeHelp(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

// Label set with a trailing le="..." pair appended (histogram buckets).
std::string RenderBucketLabels(const MetricLabels& labels,
                               const std::string& le) {
  std::string out = "{";
  for (const auto& [key, value] : labels) {
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\",";
  }
  out += "le=\"";
  out += le;
  out += "\"}";
  return out;
}

}  // namespace

void AppendPrometheusHistogram(const std::string& name,
                               const MetricLabels& labels,
                               const LatencyHistogram::Snapshot& snap,
                               std::string* out) {
  // Cumulative bucket series. Only buckets that change the cumulative
  // count are emitted (488 fixed buckets would bloat every scrape); the
  // series stays valid because `le` values are strictly increasing and
  // `+Inf` always closes it.
  int64_t cumulative = 0;
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    const int64_t in_bucket = snap.buckets[static_cast<size_t>(b)];
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    *out += name;
    *out += "_bucket";
    *out += RenderBucketLabels(
        labels, std::to_string(LatencyHistogram::BucketUpperBound(b)));
    *out += " ";
    *out += std::to_string(cumulative);
    *out += "\n";
  }
  *out += name;
  *out += "_bucket";
  *out += RenderBucketLabels(labels, "+Inf");
  *out += " ";
  *out += std::to_string(snap.count);
  *out += "\n";
  *out += name;
  *out += "_sum";
  *out += RenderLabels(labels);
  *out += " ";
  *out += std::to_string(snap.sum);
  *out += "\n";
  *out += name;
  *out += "_count";
  *out += RenderLabels(labels);
  *out += " ";
  *out += std::to_string(snap.count);
  *out += "\n";
}

struct MetricsRegistry::Cell {
  MetricLabels labels;
  // Exactly one of these is non-null, matching the family type. Heap
  // allocation keeps a counter cell at 8 bytes instead of carrying an
  // unused ~4 KB histogram inline.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<LatencyHistogram> histogram;
};

struct MetricsRegistry::Family {
  std::string name;
  std::string help;
  MetricType type;
  std::vector<Cell*> cells;  // registration order
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Cell* MetricsRegistry::GetCell(MetricType type,
                                                const std::string& name,
                                                const std::string& help,
                                                const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = nullptr;
  for (Family& f : families_) {
    if (f.name == name) {
      family = &f;
      break;
    }
  }
  if (family == nullptr) {
    families_.push_back(Family{name, help, type, {}});
    family = &families_.back();
  } else {
    KMEANSLL_CHECK(family->type == type);  // one type per metric name
    if (family->help.empty()) family->help = help;
  }
  for (Cell* cell : family->cells) {
    if (cell->labels == labels) return cell;
  }
  cells_.push_back(Cell{});
  Cell* cell = &cells_.back();
  cell->labels = labels;
  switch (type) {
    case MetricType::kCounter:
      cell->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      cell->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      cell->histogram = std::make_unique<LatencyHistogram>();
      break;
  }
  family->cells.push_back(cell);
  return cell;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const MetricLabels& labels) {
  return GetCell(MetricType::kCounter, name, help, labels)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const MetricLabels& labels) {
  return GetCell(MetricType::kGauge, name, help, labels)->gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& help,
                                                const MetricLabels& labels) {
  return GetCell(MetricType::kHistogram, name, help, labels)->histogram.get();
}

size_t MetricsRegistry::CellCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

std::string MetricsRegistry::DumpPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const Family& family : families_) {
    std::string help = family.help;
    const char* type_name = "counter";
    if (family.type == MetricType::kGauge) type_name = "gauge";
    if (family.type == MetricType::kHistogram) {
      type_name = "histogram";
      // Document the HdrHistogram-style bucket semantics where a scraper
      // will actually read them: percentiles computed from these buckets
      // report the bucket's upper bound, so they are conservative (never
      // below the true sample) and within 12.5% relative error of it.
      help += (help.empty() ? "" : " ");
      help +=
          "Bucket bounds are HdrHistogram-style (8 linear sub-buckets per "
          "octave); percentile estimates report the bucket upper bound, "
          "conservative within 12.5% relative error.";
    }
    if (!help.empty()) {
      out << "# HELP " << family.name << " " << EscapeHelp(help) << "\n";
    }
    out << "# TYPE " << family.name << " " << type_name << "\n";
    for (const Cell* cell : family.cells) {
      switch (family.type) {
        case MetricType::kCounter:
          out << family.name << RenderLabels(cell->labels) << " "
              << cell->counter->value() << "\n";
          break;
        case MetricType::kGauge:
          out << family.name << RenderLabels(cell->labels) << " "
              << cell->gauge->value() << "\n";
          break;
        case MetricType::kHistogram: {
          std::string series;
          AppendPrometheusHistogram(family.name, cell->labels,
                                    cell->histogram->snapshot(), &series);
          out << series;
          break;
        }
      }
    }
  }
  return out.str();
}

}  // namespace kmeansll
