// Status: the recoverable-error currency of the library (Arrow/RocksDB
// idiom). Library entry points that can fail on user input or IO return
// Status or Result<T> instead of throwing.

#ifndef KMEANSLL_COMMON_STATUS_H_
#define KMEANSLL_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "common/macros.h"

namespace kmeansll {

/// Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kOutOfRange = 3,
  kNotImplemented = 4,
  kUnknown = 5,
  kFailedPrecondition = 6,
  kUnavailable = 7,
};

/// Returns a stable human-readable name ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// An OK-or-error value. OK carries no allocation; errors carry a code and
/// a message. Cheap to move, cheap to test.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Aborts the process if not OK. For use in examples and tests where an
  /// error is unrecoverable.
  void Abort() const;
  void Abort(const std::string& context) const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }

  std::unique_ptr<State> state_;  // nullptr <=> OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace kmeansll

#endif  // KMEANSLL_COMMON_STATUS_H_
