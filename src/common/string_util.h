// Small string helpers shared by IO, CLI parsing and table printing.

#ifndef KMEANSLL_COMMON_STRING_UTIL_H_
#define KMEANSLL_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kmeansll {

/// Splits `input` on `delim`. Adjacent delimiters yield empty fields; an
/// empty input yields one empty field (CSV semantics).
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-sensitive string-to-double/int parsing that reports failure
/// instead of silently returning 0.
bool ParseDouble(std::string_view text, double* out);
bool ParseInt64(std::string_view text, int64_t* out);

/// Formats a double like "1.23e+10" when large, plain otherwise; used by
/// table printers to mimic the paper's scaled notation.
std::string FormatScientific(double value, int precision = 3);

/// Formats with thousands separators: 1234567 -> "1,234,567".
std::string FormatWithCommas(int64_t value);

}  // namespace kmeansll

#endif  // KMEANSLL_COMMON_STRING_UTIL_H_
