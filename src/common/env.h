// Typed access to environment variables, used for benchmark scaling knobs.

#ifndef KMEANSLL_COMMON_ENV_H_
#define KMEANSLL_COMMON_ENV_H_

#include <cstdint>
#include <optional>
#include <string>

namespace kmeansll {

/// Returns the raw value of `name`, or nullopt if unset.
std::optional<std::string> GetEnv(const std::string& name);

/// Returns `name` parsed as int64, or `default_value` if unset/unparsable.
int64_t GetEnvInt64(const std::string& name, int64_t default_value);

/// Returns `name` parsed as double, or `default_value` if unset/unparsable.
double GetEnvDouble(const std::string& name, double default_value);

/// Returns true iff `name` is set to a truthy value ("1", "true", "on",
/// "yes", case-insensitive); `default_value` if unset.
bool GetEnvBool(const std::string& name, bool default_value);

}  // namespace kmeansll

#endif  // KMEANSLL_COMMON_ENV_H_
