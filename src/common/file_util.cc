#include "common/file_util.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/fault_injection.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace kmeansll {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path +
                         "': " + std::strerror(errno));
}

#if !defined(_WIN32)
// Flushes the directory containing `path` so a completed rename is
// durable. Best-effort: some filesystems refuse O_RDONLY dir fsync.
void FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
#endif

}  // namespace

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size, std::string_view fault_site) {
#if defined(_WIN32)
  (void)fault_site;
  // Portability stub: plain write (the CI/targets for this repo are
  // POSIX; Windows would need ReplaceFileW for the same guarantee).
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return ErrnoStatus("cannot open", path);
  const size_t written = size == 0 ? 0 : std::fwrite(data, 1, size, f);
  std::fclose(f);
  if (written != size) return ErrnoStatus("short write to", path);
  return Status::OK();
#else
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#if KMEANSLL_FAULT_INJECTION
  if (!fault_site.empty()) {
    fault::FaultKind kind;
    int64_t slow_us = 0;
    if (fault::FaultInjector::Global().ShouldFail(fault_site, &kind,
                                                  &slow_us)) {
      if (kind == fault::FaultKind::kSlowIo) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(slow_us > 0 ? slow_us : 1000));
      } else if (kind == fault::FaultKind::kTornWrite) {
        // Simulated crash mid-write: persist a PREFIX of the payload in
        // the temp file and die without cleanup, exactly as a power cut
        // would. The destination must still hold its previous contents,
        // and recovery must tolerate the stray torn temp file.
        const int tfd =
            ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (tfd >= 0) {
          const size_t torn = size / 2;
          size_t off = 0;
          while (off < torn) {
            const ssize_t n = ::write(tfd, static_cast<const char*>(data) + off,
                                      torn - off);
            if (n < 0) {
              if (errno == EINTR) continue;
              break;
            }
            off += static_cast<size_t>(n);
          }
          ::fsync(tfd);
          ::close(tfd);
        }
        return Status::IOError(std::string("injected torn write at ") +
                               std::string(fault_site));
      } else {
        // Simulated crash/failure before anything reached the filesystem.
        return Status::IOError(std::string("injected ") +
                               fault::FaultKindToString(kind) + " at " +
                               std::string(fault_site));
      }
    }
  }
#endif  // KMEANSLL_FAULT_INJECTION
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("cannot create", tmp);

  Status status;
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = ErrnoStatus("write failed for", tmp);
      break;
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (status.ok() && ::fsync(fd) != 0) {
    status = ErrnoStatus("fsync failed for", tmp);
  }
  if (::close(fd) != 0 && status.ok()) {
    status = ErrnoStatus("close failed for", tmp);
  }
  if (status.ok() && !fault_site.empty()) {
    // Simulated crash between durability of the temp file and the
    // rename: the destination must still hold its previous contents.
    const std::string rename_site = std::string(fault_site) + ".rename";
    status = fault::Check(rename_site);
  }
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = ErrnoStatus("rename failed for", tmp);
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());  // best-effort cleanup; dest untouched
    return status;
  }
  FsyncParentDir(path);
  return Status::OK();
#endif
}

Status RemoveFileIfExists(const std::string& path) {
#if defined(_WIN32)
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("cannot remove", path);
  }
  return Status::OK();
#else
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("cannot remove", path);
  }
  return Status::OK();
#endif
}

bool FileExists(const std::string& path) {
#if defined(_WIN32)
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
#else
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
#endif
}

}  // namespace kmeansll

