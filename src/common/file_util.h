// Crash-consistent file publication.
//
// AtomicWriteFile implements the standard temp+fsync+rename protocol:
// the payload is written to `<path>.tmp.<pid>`, flushed to stable
// storage with fsync, renamed over `path` (atomic within a filesystem,
// POSIX rename(2)), and the parent directory is fsynced so the rename
// itself survives a crash. A reader therefore sees either the complete
// old file or the complete new file — never a torn prefix. This is the
// publish step every durable artifact in the library (KMLLMODL models,
// KMLLSHRD manifests, KMLLDATA shards, KMLLCKPT checkpoints) goes
// through; cf. log-structured stores that batch-apply then atomically
// flip a published pointer.
//
// `fault_site` (optional) names a fault-injection site checked before
// the write and before the rename (`<site>.rename`), so tests can
// simulate a crash at either boundary and assert the destination is
// never torn. A kTornWrite fault at the pre-write site persists a
// torn prefix of the payload in the temp file — left behind, as a
// real crash would leave it — which proves the rename protocol keeps
// the destination intact even when partial bytes reached the disk.

#ifndef KMEANSLL_COMMON_FILE_UTIL_H_
#define KMEANSLL_COMMON_FILE_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace kmeansll {

/// Atomically publishes `size` bytes at `data` as the contents of
/// `path`. On any failure the destination is untouched (the temp file
/// is unlinked best-effort).
Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size, std::string_view fault_site = {});

/// Removes `path` if it exists. Missing file is OK; other unlink
/// failures surface as IOError.
Status RemoveFileIfExists(const std::string& path);

/// True iff `path` exists (any file type).
bool FileExists(const std::string& path);

}  // namespace kmeansll

#endif  // KMEANSLL_COMMON_FILE_UTIL_H_
