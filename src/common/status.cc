#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace kmeansll {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unrecognized status code";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const { Abort(""); }

void Status::Abort(const std::string& context) const {
  if (ok()) return;
  if (context.empty()) {
    std::fprintf(stderr, "Aborting on non-OK status: %s\n",
                 ToString().c_str());
  } else {
    std::fprintf(stderr, "Aborting (%s) on non-OK status: %s\n",
                 context.c_str(), ToString().c_str());
  }
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace kmeansll
