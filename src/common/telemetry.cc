#include "common/telemetry.h"

#include <bit>

namespace kmeansll {

int LatencyHistogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < kLinearMax) return static_cast<int>(value);
  // exp = floor(log2(value)) >= kSubBits + 1; the top kSubBits bits
  // below the leading bit pick the linear sub-bucket within the octave.
  const int exp = 63 - std::countl_zero(static_cast<uint64_t>(value));
  const int sub =
      static_cast<int>((value >> (exp - kSubBits)) & (kSub - 1));
  return static_cast<int>(kLinearMax) + (exp - kSubBits - 1) * kSub + sub;
}

int64_t LatencyHistogram::BucketUpperBound(int b) {
  KMEANSLL_DCHECK(b >= 0 && b < kNumBuckets);
  if (b < kLinearMax) return b;
  const int rel = b - static_cast<int>(kLinearMax);
  const int exp = kSubBits + 1 + rel / kSub;
  const int sub = rel % kSub;
  const int64_t width = int64_t{1} << (exp - kSubBits);
  const int64_t lower = (int64_t{kSub} + sub) << (exp - kSubBits);
  return lower + width - 1;
}

void LatencyHistogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[static_cast<size_t>(BucketFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  for (int b = 0; b < kNumBuckets; ++b) {
    out.buckets[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  return out;
}

int64_t LatencyHistogram::Snapshot::PercentileValue(double p) const {
  if (count <= 0) return 0;
  if (p <= 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the requested sample, 1-based: ceil(p/100 * count), at
  // least 1 so p -> 0 degenerates to the minimum.
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(count));
  if (static_cast<double>(rank) * 100.0 < p * static_cast<double>(count)) {
    ++rank;
  }
  if (rank < 1) rank = 1;
  int64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets[static_cast<size_t>(b)];
    if (cumulative >= rank) return BucketUpperBound(b);
  }
  return max;  // count raced ahead of the bucket cells; report the max
}

}  // namespace kmeansll
