// Deterministic, site-keyed fault injection for exercising failure paths.
//
// Production code names each fallible operation with a string site key
// ("shard.map", "model.write", "mr.task", ...) and asks the process-wide
// injector whether that call should fail:
//
//   if (Status st = fault::Check("shard.map"); !st.ok()) return st;
//
// Tests arm sites with FaultRule{kind, probability or nth_call, count}.
// Decisions are a pure function of (injector seed, site key, per-site
// call number), so a test run injects the same faults at the same call
// ordinals every time regardless of thread interleaving — which is what
// lets the fault-matrix suite assert bitwise identity between a
// fault-free run and an injected-then-retried run.
//
// When KMEANSLL_FAULT_INJECTION is 0 every hook compiles to a no-op
// returning OK (constant-folded at the call site); release builds pay
// nothing for the instrumentation.

#ifndef KMEANSLL_COMMON_FAULT_INJECTION_H_
#define KMEANSLL_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

#ifndef KMEANSLL_FAULT_INJECTION
#define KMEANSLL_FAULT_INJECTION 1
#endif

namespace kmeansll::fault {

/// What the armed site simulates. Sites interpret the kind themselves:
/// I/O sites surface kShortRead/kMapFail/kWriteFail as Status::IOError,
/// kCrcError corrupts validation, kSlowIo sleeps then succeeds, kTaskFail
/// fails a MapReduce task attempt. kTornWrite is the crash-shaped write
/// failure: unlike kWriteFail (which fails before any byte lands), a
/// torn write leaves a PREFIX of the payload on disk and then dies —
/// writers that must be crash-consistent (the oplog's append path,
/// AtomicWriteFile's temp file) consume it via CheckKind and truncate
/// their own write mid-record, so recovery code faces the same torn
/// tail a real power cut would leave.
enum class FaultKind : int {
  kShortRead = 0,  ///< read/map returned fewer bytes than asked
  kMapFail = 1,    ///< mmap/open failed outright
  kCrcError = 2,   ///< payload read back with a checksum mismatch
  kSlowIo = 3,     ///< operation succeeds after an injected delay
  kWriteFail = 4,  ///< write/fsync/rename failed
  kTaskFail = 5,   ///< a MapReduce task attempt died mid-flight
  kTornWrite = 6,  ///< write died mid-record, leaving a torn prefix
};

const char* FaultKindToString(FaultKind kind);

/// One armed trigger. Either probabilistic (`probability` of each call
/// failing, decided by a hash of (seed, site, call#)) or deterministic
/// (`nth_call` fails the Nth call to the site, 1-based). `max_triggers`
/// caps how many times the rule fires (0 = unlimited) — retry loops need
/// transient faults, not permanent ones.
struct FaultRule {
  FaultKind kind = FaultKind::kMapFail;
  double probability = 0.0;  ///< in [0,1]; used when nth_call == 0
  uint64_t nth_call = 0;     ///< 1-based call ordinal; 0 = probabilistic
  uint64_t max_triggers = 0; ///< 0 = unlimited
  int64_t slow_io_us = 0;    ///< injected delay for kSlowIo
};

/// Process-wide injector. Disarmed (no rules) by default; tests arm
/// sites via Arm()/Seed() and Reset() in teardown. All methods are
/// thread-safe; the per-site call counters are atomics so the decision
/// for the Nth call at a site does not depend on which thread makes it.
class FaultInjector {
 public:
  /// The process-wide instance used by the Check/CheckKind helpers.
  static FaultInjector& Global();

  /// Reseeds the probabilistic hash chain (also clears trigger counts).
  void Seed(uint64_t seed);

  /// Arms `site` with `rule`. Re-arming a site replaces its rule.
  void Arm(std::string site, FaultRule rule);

  /// Disarms everything and zeroes all counters.
  void Reset();

  /// True if any site is armed (fast path: one relaxed atomic load).
  bool armed() const;

  /// Decides whether this call at `site` fails. Returns the triggered
  /// kind through `out_kind` and true when a fault fires; advances the
  /// site's call counter either way (for armed sites).
  bool ShouldFail(std::string_view site, FaultKind* out_kind,
                  int64_t* out_slow_us);

  /// Total faults triggered since the last Reset/Seed.
  uint64_t triggered_count() const;

 private:
  FaultInjector() = default;
  struct Impl;
  Impl* impl();  // lazily constructed, never destroyed (leaky singleton)
};

/// Checks `site`; returns a non-OK Status describing the injected fault
/// or OK. kSlowIo sleeps here and returns OK. The usual instrumentation
/// hook for Status-returning code paths.
#if KMEANSLL_FAULT_INJECTION
Status Check(std::string_view site);
/// As Check, but reports the kind instead of mapping to a Status —
/// for sites that need to *simulate* the failure (e.g. corrupt a CRC)
/// rather than just fail. Returns true when a fault should fire.
bool CheckKind(std::string_view site, FaultKind* out_kind);
#else
inline Status Check(std::string_view) { return Status::OK(); }
inline bool CheckKind(std::string_view, FaultKind*) { return false; }
#endif

}  // namespace kmeansll::fault

#endif  // KMEANSLL_COMMON_FAULT_INJECTION_H_
