#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/file_util.h"

namespace kmeansll {
namespace trace {

// One recording thread's span storage. The owner thread is the only
// writer: it fills events_[next_ % capacity] and then publishes with a
// release store of next_ + 1, so an exporter that acquires next_ sees
// fully written slots for every index below it. Overflow overwrites the
// oldest slot (the ring keeps the most recent `capacity` spans);
// dropped = max(0, next_ - capacity) exactly, with no extra counter on
// the hot path.
struct Tracer::ThreadRing {
  explicit ThreadRing(size_t capacity, int tid)
      : capacity(capacity), tid(tid), events(capacity) {}

  const size_t capacity;
  const int tid;
  std::vector<TraceEvent> events;
  std::atomic<int64_t> next{0};  ///< spans ever recorded on this thread
};

namespace {

// Per-thread cache of the ring registered with the global tracer, plus
// the tracer generation it was registered under — Reset() bumps the
// generation to invalidate caches without freeing memory out from under
// a live recorder's pointer.
struct RingCache {
  Tracer::ThreadRing* ring = nullptr;
  uint64_t generation = 0;
};
thread_local RingCache t_ring_cache;

// Nanoseconds rendered as decimal microseconds ("1234.567") without
// any floating-point round trip.
std::string FormatMicros(int64_t ns) {
  std::string out = std::to_string(ns / 1000);
  const int64_t frac = ns % 1000;
  out += ".";
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

Tracer::Tracer() {
  TraceEpoch();  // pin the epoch before any span can observe the clock
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

int64_t Tracer::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

Tracer::ThreadRing* Tracer::RingForThisThread() {
  const uint64_t generation = generation_.load(std::memory_order_acquire);
  if (t_ring_cache.ring != nullptr && t_ring_cache.generation == generation) {
    return t_ring_cache.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<ThreadRing>(ring_capacity_, next_tid_++));
  t_ring_cache.ring = rings_.back().get();
  t_ring_cache.generation = generation_.load(std::memory_order_relaxed);
  return t_ring_cache.ring;
}

void Tracer::Record(const char* name, int64_t start_ns, int64_t dur_ns) {
  if (!enabled()) return;
  ThreadRing* ring = RingForThisThread();
  const int64_t slot = ring->next.load(std::memory_order_relaxed);
  TraceEvent& event =
      ring->events[static_cast<size_t>(slot) % ring->capacity];
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  ring->next.store(slot + 1, std::memory_order_release);
}

size_t Tracer::RetainedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& ring : rings_) {
    const int64_t recorded = ring->next.load(std::memory_order_acquire);
    total += std::min<size_t>(static_cast<size_t>(recorded), ring->capacity);
  }
  return total;
}

int64_t Tracer::RecordedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->next.load(std::memory_order_acquire);
  }
  return total;
}

int64_t Tracer::DroppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (const auto& ring : rings_) {
    const int64_t recorded = ring->next.load(std::memory_order_acquire);
    const int64_t over = recorded - static_cast<int64_t>(ring->capacity);
    if (over > 0) dropped += over;
  }
  return dropped;
}

std::string Tracer::DumpChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ring : rings_) {
    const int64_t recorded = ring->next.load(std::memory_order_acquire);
    const int64_t retained =
        std::min<int64_t>(recorded, static_cast<int64_t>(ring->capacity));
    // Oldest retained span first: per-tid output order is recording
    // order, which is monotonic in span end time (spans record at scope
    // exit against a steady clock).
    for (int64_t i = recorded - retained; i < recorded; ++i) {
      const TraceEvent& event =
          ring->events[static_cast<size_t>(i) % ring->capacity];
      if (!first) out << ",";
      first = false;
      // Chrome trace-event "X" (complete) event; ts/dur in microseconds
      // with full nanosecond precision (3 fractional digits), so span
      // end times (ts + dur) stay exactly monotonic per tid after the
      // unit conversion — the harness's trace validator relies on it.
      out << "{\"name\":\"" << event.name << "\",\"cat\":\"kmll\","
          << "\"ph\":\"X\",\"ts\":" << FormatMicros(event.start_ns)
          << ",\"dur\":" << FormatMicros(std::max<int64_t>(event.dur_ns, 0))
          << ",\"pid\":1,\"tid\":" << ring->tid << "}";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  const std::string json = DumpChromeJson();
  return AtomicWriteFile(path, json.data(), json.size());
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  rings_.clear();
  next_tid_ = 1;
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

void Tracer::SetRingCapacityForTest(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = capacity == 0 ? 1 : capacity;
}

}  // namespace trace
}  // namespace kmeansll
