#include "common/env.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace kmeansll {

std::optional<std::string> GetEnv(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

int64_t GetEnvInt64(const std::string& name, int64_t default_value) {
  auto v = GetEnv(name);
  if (!v.has_value() || v->empty()) return default_value;
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (errno != 0 || end == v->c_str() || *end != '\0') return default_value;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double default_value) {
  auto v = GetEnv(name);
  if (!v.has_value() || v->empty()) return default_value;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(v->c_str(), &end);
  if (errno != 0 || end == v->c_str() || *end != '\0') return default_value;
  return parsed;
}

bool GetEnvBool(const std::string& name, bool default_value) {
  auto v = GetEnv(name);
  if (!v.has_value()) return default_value;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "1" || lower == "true" || lower == "on" || lower == "yes") {
    return true;
  }
  if (lower == "0" || lower == "false" || lower == "off" || lower == "no") {
    return false;
  }
  return default_value;
}

}  // namespace kmeansll
