// Minimal leveled logger. Thread-safe; emits through a pluggable
// LogSink (stderr by default, swappable so tests can capture and assert
// on WARNING/ERROR lines instead of scraping stderr). Level is
// controlled programmatically or via the KMEANSLL_LOG_LEVEL environment
// variable (0=DEBUG 1=INFO 2=WARNING 3=ERROR 4=OFF; default INFO).

#ifndef KMEANSLL_COMMON_LOGGING_H_
#define KMEANSLL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

#include "common/macros.h"

namespace kmeansll {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Destination for formatted log lines. Write() receives one complete
/// line (prefix + message + trailing '\n') and is always called under
/// the logger's emit mutex, so implementations need no locking of their
/// own and lines never interleave.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, const std::string& line) = 0;
};

/// Installs `sink` as the process-wide log destination and returns the
/// previous one (nullptr for the built-in stderr sink). Passing nullptr
/// restores the stderr default. The caller keeps ownership of `sink`
/// and must keep it alive until another SetLogSink call replaces it.
LogSink* SetLogSink(LogSink* sink);

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(LogMessage);

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace kmeansll

#define KMEANSLL_LOG(level)                                       \
  ::kmeansll::internal::LogMessage(::kmeansll::LogLevel::k##level, \
                                   __FILE__, __LINE__)

#endif  // KMEANSLL_COMMON_LOGGING_H_
