// Numeric helpers: compensated summation, order statistics, bit tricks.

#ifndef KMEANSLL_COMMON_MATH_UTIL_H_
#define KMEANSLL_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace kmeansll {

/// Kahan–Neumaier compensated accumulator. Clustering costs sum n terms
/// spanning many orders of magnitude (the paper's potentials reach 1e16);
/// naive summation loses the small terms that drive convergence tests.
class KahanSum {
 public:
  KahanSum() = default;

  void Add(double value) {
    double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      compensation_ += (sum_ - t) + value;
    } else {
      compensation_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  /// Merges another accumulator (used by parallel reductions).
  void Merge(const KahanSum& other) {
    Add(other.sum_);
    Add(other.compensation_);
  }

  double Total() const { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Median of `values` (averaging the two middle elements for even sizes).
/// The input is copied; empty input returns 0.
double Median(std::vector<double> values);

/// Arithmetic mean; empty input returns 0.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); sizes < 2 return 0.
double StdDev(const std::vector<double>& values);

/// ceil(log2(x)) for x >= 1; Log2Ceil(1) == 0.
int Log2Ceil(uint64_t x);

/// Smallest power of two >= x (x == 0 -> 1).
uint64_t NextPowerOfTwo(uint64_t x);

}  // namespace kmeansll

#endif  // KMEANSLL_COMMON_MATH_UTIL_H_
