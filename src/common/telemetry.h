// Lock-free telemetry cells for the serving and storage layers.
//
// LatencyHistogram is the latency-percentile sibling of the IoStats
// atomic-cell pattern (data/shard_store.h): every bucket is an
// independent relaxed atomic, Record() is wait-free (one bucket
// increment plus three counter updates, no mutex anywhere), and
// snapshot() samples each cell individually — a concurrent snapshot can
// never tear a single field, though cross-field invariants may be off by
// an in-flight update (count and a bucket may momentarily disagree by
// one). That is exactly the contract a per-model QPS/latency readout
// needs when dozens of serving threads record while a stats scraper
// reads: readers cost the recorders nothing.
//
// The bucket layout is a fixed logarithmic grid with linear sub-buckets
// (an HdrHistogram-style scheme, sized for microsecond latencies):
// values below 2^(kSubBits+1) get exact one-per-value buckets, and every
// octave above is split into 2^kSubBits linear sub-buckets, so the
// relative quantization error of any reported percentile is bounded by
// 1/2^kSubBits (12.5% at kSubBits = 3) across the full int64 range. A
// histogram is ~4 KB of cells — cheap enough to keep one per tenant —
// and needs no per-recording allocation, calibration, or merge step, all
// of which rules out the fancier t-digest for this use (we care about
// tail buckets, fixed memory, and wait-free recording, not arbitrary
// quantile resolution).

#ifndef KMEANSLL_COMMON_TELEMETRY_H_
#define KMEANSLL_COMMON_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace kmeansll {

/// Fixed-bucket concurrent histogram of non-negative int64 samples
/// (conventionally microseconds). Record() is wait-free and safe from
/// any number of threads; snapshot() is lock-free and per-cell
/// consistent. Percentile queries report the upper bound of the bucket
/// containing the requested rank, so reported percentiles are
/// conservative (never below the true sample) and within 12.5% of it.
class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave = 2^kSubBits; bounds the relative
  /// quantization error of percentiles at 1/2^kSubBits.
  static constexpr int kSubBits = 3;
  static constexpr int kSub = 1 << kSubBits;
  /// Exact one-per-value buckets for values in [0, kLinearMax).
  static constexpr int64_t kLinearMax = kSub * 2;
  /// One group of kSub buckets per octave from exponent kSubBits+1 up to
  /// 62 (int64 max), after the linear region.
  static constexpr int kNumBuckets =
      static_cast<int>(kLinearMax) + (62 - kSubBits) * kSub;

  LatencyHistogram() = default;
  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(LatencyHistogram);

  /// Records one sample (negative values clamp to 0). Wait-free.
  void Record(int64_t value);

  /// Bucket index for `value`; exposed for the unit tests' monotonicity
  /// and boundary checks.
  static int BucketFor(int64_t value);
  /// Largest value mapping to bucket `b` (the value a percentile query
  /// landing in `b` reports).
  static int64_t BucketUpperBound(int b);

  /// A tear-free-per-cell copy of the histogram state.
  struct Snapshot {
    int64_t count = 0;  ///< samples recorded
    int64_t sum = 0;    ///< sum of recorded values (mean = sum/count)
    int64_t max = 0;    ///< largest value recorded
    std::array<int64_t, kNumBuckets> buckets{};

    /// Value at the `p`-th percentile (0 < p <= 100): the upper bound of
    /// the bucket holding the ceil(p/100 * count)-th smallest sample.
    /// Returns 0 on an empty snapshot.
    int64_t PercentileValue(double p) const;
    double MeanValue() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };
  Snapshot snapshot() const;

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
};

}  // namespace kmeansll

#endif  // KMEANSLL_COMMON_TELEMETRY_H_
