// Named counters, mirroring Hadoop job counters. Algorithms running on
// the MapReduce engine report passes over the data, records read, bytes
// shuffled, etc.; the cluster simulator consumes these to model wall-clock
// time on an m-machine cluster (DESIGN.md §2).

#ifndef KMEANSLL_MAPREDUCE_COUNTERS_H_
#define KMEANSLL_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace kmeansll::mapreduce {

/// Thread-safe map from counter name to int64 value.
class Counters {
 public:
  Counters() = default;
  Counters(const Counters& other) : values_(other.Snapshot()) {}
  Counters& operator=(const Counters& other) {
    if (this != &other) {
      auto snap = other.Snapshot();
      std::lock_guard<std::mutex> lock(mu_);
      values_ = std::move(snap);
    }
    return *this;
  }

  /// Adds `delta` to `name` (creating it at zero).
  void Add(const std::string& name, int64_t delta) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[name] += delta;
  }

  /// Current value of `name` (0 if never touched).
  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  /// Adds every counter of `other` into this.
  void Merge(const Counters& other) {
    auto snap = other.Snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, value] : snap) values_[name] += value;
  }

  /// Name-sorted copy of all counters.
  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    values_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> values_;
};

/// Canonical counter names used across the engine and algorithms.
inline constexpr char kCounterMapTasks[] = "map_tasks";
inline constexpr char kCounterMapInputRecords[] = "map_input_records";
inline constexpr char kCounterMapOutputPairs[] = "map_output_pairs";
inline constexpr char kCounterCombineOutputPairs[] = "combine_output_pairs";
inline constexpr char kCounterReduceGroups[] = "reduce_groups";
inline constexpr char kCounterJobs[] = "jobs";
inline constexpr char kCounterDataPasses[] = "data_passes";
inline constexpr char kCounterTaskRetries[] = "map_task_retries";
inline constexpr char kCounterTaskFailures[] = "map_task_failures";
inline constexpr char kCounterSpeculativeTasks[] = "speculative_map_tasks";
inline constexpr char kCounterDroppedDuplicates[] =
    "dropped_duplicate_completions";

}  // namespace kmeansll::mapreduce

#endif  // KMEANSLL_MAPREDUCE_COUNTERS_H_
