// A typed, in-memory MapReduce engine.
//
// Semantics mirror Hadoop's:
//   map:      (partition_id, Input) -> list of (K, V)
//   combine:  associative V ⊕ V, applied per map task (optional)
//   shuffle:  group by key, deterministic key order (std::map)
//   reduce:   (K, [V]) -> Out, one group per reduce call
//
// The engine executes map tasks and reduce groups on a ThreadPool, but its
// output is bit-identical for any thread count: per-task emissions are
// collected separately and folded in task order, and reduce outputs are
// emitted in key order.
//
// This is the substrate on which the parallel k-means|| of paper §3.5
// runs (cost job, sampling job, weight job, Lloyd job — see
// clustering/mapreduce_kmeans.h).

#ifndef KMEANSLL_MAPREDUCE_JOB_H_
#define KMEANSLL_MAPREDUCE_JOB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "mapreduce/counters.h"
#include "parallel/thread_pool.h"

namespace kmeansll::mapreduce {

/// Collects (key, value) pairs emitted by one map task.
template <typename K, typename V>
class Emitter {
 public:
  void Emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<K, V>>& pairs() { return pairs_; }
  const std::vector<std::pair<K, V>>& pairs() const { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// Configuration and execution of one job.
///
/// Input:  the element type of the partition list (one map task each).
/// K, V:   intermediate key/value types. K needs operator<.
/// Out:    reduce output type.
template <typename Input, typename K, typename V, typename Out>
class Job {
 public:
  using MapFn =
      std::function<void(int64_t partition_id, const Input& input,
                         Emitter<K, V>* emitter)>;
  /// Associative combiner; applied eagerly per map task and again at
  /// shuffle, exactly like a Hadoop combiner.
  using CombineFn = std::function<V(const V&, const V&)>;
  using ReduceFn = std::function<Out(const K& key, std::vector<V>& values)>;
  /// Advisory hook run at the start of each map task (before the map
  /// function), e.g. to prefetch the input of an upcoming task. Must not
  /// touch emitters or shared mutable state: it runs concurrently across
  /// tasks and must not be able to affect any task's output.
  using PrologueFn = std::function<void(int64_t partition_id)>;

  Job& WithMap(MapFn map) {
    map_ = std::move(map);
    return *this;
  }
  Job& WithPrologue(PrologueFn prologue) {
    prologue_ = std::move(prologue);
    return *this;
  }
  /// Permutes the order map tasks are SUBMITTED to the pool (must be a
  /// permutation of [0, partitions.size()) when non-empty). Execution
  /// order never affects results — per-task emissions are still folded
  /// in task-index order — so this is a pure scheduling lever: a
  /// prefetch-aware order (mapreduce::MakeMapTaskSchedule) starts a
  /// concurrent wave on distinct shards of an out-of-core source instead
  /// of piling it onto neighboring partitions that share shards.
  Job& WithSubmissionOrder(std::vector<int64_t> order) {
    submission_order_ = std::move(order);
    return *this;
  }
  Job& WithCombine(CombineFn combine) {
    combine_ = std::move(combine);
    return *this;
  }
  Job& WithReduce(ReduceFn reduce) {
    reduce_ = std::move(reduce);
    return *this;
  }
  Job& WithCounters(Counters* counters) {
    counters_ = counters;
    return *this;
  }

  /// Runs the job over `partitions` on `pool` (nullptr = inline execution).
  /// Returns reduce outputs in ascending key order.
  std::vector<Out> Run(ThreadPool* pool,
                       const std::vector<Input>& partitions) const {
    KMEANSLL_CHECK(map_ != nullptr);
    KMEANSLL_CHECK(reduce_ != nullptr);
    const int64_t num_tasks = static_cast<int64_t>(partitions.size());

    // --- Map phase (+ eager per-task combine, run inside the task) -------
    // The per-emitter combiner fold is embarrassingly parallel across
    // tasks, so it executes on the pool right after each task's map
    // function instead of serially inside the shuffle loop below. Each
    // task's fold only touches its own emitter and `locals` slot; the
    // shuffle then walks the folded maps in task order, so the grouped
    // value order — and therefore every reduce — is bitwise the same as
    // the serial fold's at any thread count.
    std::vector<Emitter<K, V>> emitters(partitions.size());
    std::vector<std::map<K, V>> locals(
        combine_ != nullptr ? partitions.size() : 0);
    std::vector<int64_t> task_pairs(partitions.size(), 0);
    auto run_map_task = [&](int64_t t) {
      if (prologue_ != nullptr) prologue_(t);
      auto& emitter = emitters[static_cast<size_t>(t)];
      map_(t, partitions[static_cast<size_t>(t)], &emitter);
      task_pairs[static_cast<size_t>(t)] =
          static_cast<int64_t>(emitter.pairs().size());
      if (combine_ != nullptr) {
        auto& local = locals[static_cast<size_t>(t)];
        for (auto& [key, value] : emitter.pairs()) {
          auto [it, inserted] = local.emplace(key, value);
          if (!inserted) it->second = combine_(it->second, value);
        }
        emitter.pairs().clear();
        emitter.pairs().shrink_to_fit();
      }
    };
    const bool ordered =
        static_cast<int64_t>(submission_order_.size()) == num_tasks;
    auto task_at = [&](int64_t p) {
      const int64_t t =
          ordered ? submission_order_[static_cast<size_t>(p)] : p;
      KMEANSLL_CHECK(t >= 0 && t < num_tasks);
      return t;
    };
    if (pool == nullptr) {
      for (int64_t p = 0; p < num_tasks; ++p) run_map_task(task_at(p));
    } else {
      for (int64_t p = 0; p < num_tasks; ++p) {
        const int64_t t = task_at(p);
        pool->Submit([&run_map_task, t] { run_map_task(t); });
      }
      pool->Wait();
    }

    int64_t map_output_pairs = 0;
    for (int64_t pairs : task_pairs) map_output_pairs += pairs;

    // --- Shuffle (task order => deterministic) ---------------------------
    std::map<K, std::vector<V>> groups;
    int64_t combined_pairs = 0;
    if (combine_ != nullptr) {
      for (auto& local : locals) {
        combined_pairs += static_cast<int64_t>(local.size());
        for (auto& [key, value] : local) {
          groups[key].push_back(std::move(value));
        }
        local.clear();
      }
    } else {
      for (auto& emitter : emitters) {
        combined_pairs += static_cast<int64_t>(emitter.pairs().size());
        for (auto& [key, value] : emitter.pairs()) {
          groups[key].push_back(std::move(value));
        }
        emitter.pairs().clear();
        emitter.pairs().shrink_to_fit();
      }
    }

    // --- Reduce phase ----------------------------------------------------
    // Collapse combined values again so each reducer sees one value when a
    // combiner exists (matching Hadoop's "combiner may run 0..n times").
    std::vector<const K*> keys;
    keys.reserve(groups.size());
    for (auto& [key, values] : groups) {
      if (combine_ != nullptr && values.size() > 1) {
        V acc = values[0];
        for (size_t i = 1; i < values.size(); ++i) {
          acc = combine_(acc, values[i]);
        }
        values.clear();
        values.push_back(std::move(acc));
      }
      keys.push_back(&key);
    }

    std::vector<Out> outputs(groups.size());
    auto run_reduce = [&](size_t g) {
      const K& key = *keys[g];
      outputs[g] = reduce_(key, groups[key]);
    };
    if (pool == nullptr || groups.size() <= 1) {
      for (size_t g = 0; g < keys.size(); ++g) run_reduce(g);
    } else {
      for (size_t g = 0; g < keys.size(); ++g) {
        pool->Submit([&run_reduce, g] { run_reduce(g); });
      }
      pool->Wait();
    }

    if (counters_ != nullptr) {
      counters_->Add(kCounterJobs, 1);
      counters_->Add(kCounterMapTasks, num_tasks);
      counters_->Add(kCounterMapOutputPairs, map_output_pairs);
      counters_->Add(kCounterCombineOutputPairs, combined_pairs);
      counters_->Add(kCounterReduceGroups,
                     static_cast<int64_t>(groups.size()));
    }
    return outputs;
  }

 private:
  MapFn map_;
  PrologueFn prologue_;
  CombineFn combine_;
  ReduceFn reduce_;
  std::vector<int64_t> submission_order_;  // empty = ascending
  Counters* counters_ = nullptr;
};

}  // namespace kmeansll::mapreduce

#endif  // KMEANSLL_MAPREDUCE_JOB_H_
