// A typed, in-memory MapReduce engine.
//
// Semantics mirror Hadoop's:
//   map:      (partition_id, Input) -> list of (K, V)
//   combine:  associative V ⊕ V, applied per map task (optional)
//   shuffle:  group by key, deterministic key order (std::map)
//   reduce:   (K, [V]) -> Out, one group per reduce call
//
// The engine executes map tasks and reduce groups on a ThreadPool, but its
// output is bit-identical for any thread count: per-task emissions are
// collected separately and folded in task order, and reduce outputs are
// emitted in key order.
//
// This is the substrate on which the parallel k-means|| of paper §3.5
// runs (cost job, sampling job, weight job, Lloyd job — see
// clustering/mapreduce_kmeans.h).

#ifndef KMEANSLL_MAPREDUCE_JOB_H_
#define KMEANSLL_MAPREDUCE_JOB_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/status.h"
#include "mapreduce/counters.h"
#include "parallel/thread_pool.h"

namespace kmeansll::mapreduce {

/// Collects (key, value) pairs emitted by one map task.
template <typename K, typename V>
class Emitter {
 public:
  void Emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<K, V>>& pairs() { return pairs_; }
  const std::vector<std::pair<K, V>>& pairs() const { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// Configuration and execution of one job.
///
/// Input:  the element type of the partition list (one map task each).
/// K, V:   intermediate key/value types. K needs operator<.
/// Out:    reduce output type.
template <typename Input, typename K, typename V, typename Out>
class Job {
 public:
  using MapFn =
      std::function<void(int64_t partition_id, const Input& input,
                         Emitter<K, V>* emitter)>;
  /// Associative combiner; applied eagerly per map task and again at
  /// shuffle, exactly like a Hadoop combiner.
  using CombineFn = std::function<V(const V&, const V&)>;
  using ReduceFn = std::function<Out(const K& key, std::vector<V>& values)>;
  /// Advisory hook run at the start of each map task (before the map
  /// function), e.g. to prefetch the input of an upcoming task. Must not
  /// touch emitters or shared mutable state: it runs concurrently across
  /// tasks and must not be able to affect any task's output.
  using PrologueFn = std::function<void(int64_t partition_id)>;

  Job& WithMap(MapFn map) {
    map_ = std::move(map);
    return *this;
  }
  Job& WithPrologue(PrologueFn prologue) {
    prologue_ = std::move(prologue);
    return *this;
  }
  /// Permutes the order map tasks are SUBMITTED to the pool (must be a
  /// permutation of [0, partitions.size()) when non-empty). Execution
  /// order never affects results — per-task emissions are still folded
  /// in task-index order — so this is a pure scheduling lever: a
  /// prefetch-aware order (mapreduce::MakeMapTaskSchedule) starts a
  /// concurrent wave on distinct shards of an out-of-core source instead
  /// of piling it onto neighboring partitions that share shards.
  Job& WithSubmissionOrder(std::vector<int64_t> order) {
    submission_order_ = std::move(order);
    return *this;
  }
  Job& WithCombine(CombineFn combine) {
    combine_ = std::move(combine);
    return *this;
  }
  Job& WithReduce(ReduceFn reduce) {
    reduce_ = std::move(reduce);
    return *this;
  }
  Job& WithCounters(Counters* counters) {
    counters_ = counters;
    return *this;
  }
  /// Task-attempt budget: a map task whose attempt fails (an injected
  /// "mr.task" fault or an exception escaping the map function) is
  /// re-executed up to `attempts` times total before the job declares
  /// it failed. Every attempt runs against a fresh emitter, so a failed
  /// attempt contributes nothing — the fold still sees exactly one
  /// emission set per task, in task-index order, which keeps retried
  /// runs bitwise identical to fault-free runs.
  Job& WithTaskAttempts(int attempts) {
    max_task_attempts_ = attempts;
    return *this;
  }
  /// Straggler re-execution: submit a speculative duplicate of every
  /// map task after the primaries. A duplicate that starts after its
  /// task already completed exits immediately; when both run, the first
  /// completion installs its result and the loser's is dropped
  /// (install-first-wins on a per-task atomic), so duplicate completion
  /// is safe and results stay bitwise identical.
  Job& WithSpeculativeExecution(bool enabled) {
    speculative_ = enabled;
    return *this;
  }
  /// Error channel: when any task exhausts its attempt budget, the
  /// first such failure is stored in `*status`, Run returns an empty
  /// output vector, and nothing reduces. Without an error channel a
  /// terminal task failure aborts (the pre-fault-tolerance behavior —
  /// appropriate for callers that cannot observe partial results).
  /// The caller owns `status` and should reset it before each Run.
  Job& WithErrorOut(Status* status) {
    error_out_ = status;
    return *this;
  }

  /// Runs the job over `partitions` on `pool` (nullptr = inline execution).
  /// Returns reduce outputs in ascending key order.
  std::vector<Out> Run(ThreadPool* pool,
                       const std::vector<Input>& partitions) const {
    KMEANSLL_CHECK(map_ != nullptr);
    KMEANSLL_CHECK(reduce_ != nullptr);
    const int64_t num_tasks = static_cast<int64_t>(partitions.size());

    // --- Map phase (+ eager per-task combine, run inside the task) -------
    // The per-emitter combiner fold is embarrassingly parallel across
    // tasks, so it executes on the pool right after each task's map
    // function instead of serially inside the shuffle loop below. Each
    // task's fold only touches its own emitter and `locals` slot; the
    // shuffle then walks the folded maps in task order, so the grouped
    // value order — and therefore every reduce — is bitwise the same as
    // the serial fold's at any thread count.
    std::vector<Emitter<K, V>> emitters(partitions.size());
    std::vector<std::map<K, V>> locals(
        combine_ != nullptr ? partitions.size() : 0);
    std::vector<int64_t> task_pairs(partitions.size(), 0);

    // Fault-tolerance state. `installed[t]` is the per-task commit
    // point: exactly one attempt (primary, retry, or speculative
    // duplicate) wins the exchange and publishes its emissions; every
    // other completion is dropped. pool->Wait() is the barrier that
    // makes the winner's writes visible to the shuffle.
    std::vector<std::atomic<bool>> installed(partitions.size());
    std::atomic<int64_t> task_retries{0};
    std::atomic<int64_t> task_failures{0};
    std::atomic<int64_t> speculative_runs{0};
    std::atomic<int64_t> dropped_duplicates{0};
    std::mutex fail_mu;
    Status first_failure;

    auto install_result = [&](int64_t t, Emitter<K, V>&& scratch) {
      if (installed[static_cast<size_t>(t)].exchange(
              true, std::memory_order_acq_rel)) {
        dropped_duplicates.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      auto& emitter = emitters[static_cast<size_t>(t)];
      emitter.pairs() = std::move(scratch.pairs());
      task_pairs[static_cast<size_t>(t)] =
          static_cast<int64_t>(emitter.pairs().size());
      if (combine_ != nullptr) {
        auto& local = locals[static_cast<size_t>(t)];
        for (auto& [key, value] : emitter.pairs()) {
          auto [it, inserted] = local.emplace(key, value);
          if (!inserted) it->second = combine_(it->second, value);
        }
        emitter.pairs().clear();
        emitter.pairs().shrink_to_fit();
      }
    };
    auto run_map_task = [&](int64_t t) {
      const int attempts = max_task_attempts_ < 1 ? 1 : max_task_attempts_;
      for (int attempt = 1; attempt <= attempts; ++attempt) {
        if (installed[static_cast<size_t>(t)].load(
                std::memory_order_acquire)) {
          return;  // another attempt (a speculative twin) already won
        }
        // A fresh emitter per attempt: a failed attempt's partial
        // emissions never leak into the fold.
        Emitter<K, V> scratch;
        Status status = fault::Check("mr.task");
        if (status.ok()) {
          try {
            if (prologue_ != nullptr) prologue_(t);
            map_(t, partitions[static_cast<size_t>(t)], &scratch);
          } catch (const std::exception& e) {
            status = Status::Unknown(std::string("map task threw: ") +
                                     e.what());
          } catch (...) {
            status = Status::Unknown("map task threw");
          }
        }
        if (status.ok()) {
          install_result(t, std::move(scratch));
          return;
        }
        if (attempt < attempts) {
          task_retries.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        task_failures.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(fail_mu);
        if (first_failure.ok()) {
          first_failure = Status(
              status.code(),
              "map task " + std::to_string(t) + " failed after " +
                  std::to_string(attempts) + " attempts: " +
                  status.message());
        }
      }
    };
    const bool ordered =
        static_cast<int64_t>(submission_order_.size()) == num_tasks;
    auto task_at = [&](int64_t p) {
      const int64_t t =
          ordered ? submission_order_[static_cast<size_t>(p)] : p;
      KMEANSLL_CHECK(t >= 0 && t < num_tasks);
      return t;
    };
    if (pool == nullptr) {
      for (int64_t p = 0; p < num_tasks; ++p) run_map_task(task_at(p));
    } else {
      for (int64_t p = 0; p < num_tasks; ++p) {
        const int64_t t = task_at(p);
        pool->Submit([&run_map_task, t] { run_map_task(t); });
      }
      if (speculative_) {
        // Speculative wave, submitted after every primary: each
        // duplicate re-executes its task only if the primary hasn't
        // finished by the time a worker picks it up (the classic
        // straggler mitigation). Safe because completion is
        // install-first-wins.
        for (int64_t p = 0; p < num_tasks; ++p) {
          const int64_t t = task_at(p);
          pool->Submit([&run_map_task, &installed, &speculative_runs, t] {
            if (installed[static_cast<size_t>(t)].load(
                    std::memory_order_acquire)) {
              return;
            }
            speculative_runs.fetch_add(1, std::memory_order_relaxed);
            run_map_task(t);
          });
        }
      }
      pool->Wait();
    }

    if (counters_ != nullptr) {
      counters_->Add(kCounterTaskRetries,
                     task_retries.load(std::memory_order_relaxed));
      counters_->Add(kCounterTaskFailures,
                     task_failures.load(std::memory_order_relaxed));
      counters_->Add(kCounterSpeculativeTasks,
                     speculative_runs.load(std::memory_order_relaxed));
      counters_->Add(kCounterDroppedDuplicates,
                     dropped_duplicates.load(std::memory_order_relaxed));
    }
    if (!first_failure.ok()) {
      if (error_out_ != nullptr) {
        *error_out_ = std::move(first_failure);
        return {};
      }
      // No error channel: fail loudly rather than reduce over a
      // partial fold (the pre-fault-tolerance contract).
      first_failure.Abort("mapreduce job without an error channel");
    }

    int64_t map_output_pairs = 0;
    for (int64_t pairs : task_pairs) map_output_pairs += pairs;

    // --- Shuffle (task order => deterministic) ---------------------------
    std::map<K, std::vector<V>> groups;
    int64_t combined_pairs = 0;
    if (combine_ != nullptr) {
      for (auto& local : locals) {
        combined_pairs += static_cast<int64_t>(local.size());
        for (auto& [key, value] : local) {
          groups[key].push_back(std::move(value));
        }
        local.clear();
      }
    } else {
      for (auto& emitter : emitters) {
        combined_pairs += static_cast<int64_t>(emitter.pairs().size());
        for (auto& [key, value] : emitter.pairs()) {
          groups[key].push_back(std::move(value));
        }
        emitter.pairs().clear();
        emitter.pairs().shrink_to_fit();
      }
    }

    // --- Reduce phase ----------------------------------------------------
    // Collapse combined values again so each reducer sees one value when a
    // combiner exists (matching Hadoop's "combiner may run 0..n times").
    std::vector<const K*> keys;
    keys.reserve(groups.size());
    for (auto& [key, values] : groups) {
      if (combine_ != nullptr && values.size() > 1) {
        V acc = values[0];
        for (size_t i = 1; i < values.size(); ++i) {
          acc = combine_(acc, values[i]);
        }
        values.clear();
        values.push_back(std::move(acc));
      }
      keys.push_back(&key);
    }

    std::vector<Out> outputs(groups.size());
    auto run_reduce = [&](size_t g) {
      const K& key = *keys[g];
      outputs[g] = reduce_(key, groups[key]);
    };
    if (pool == nullptr || groups.size() <= 1) {
      for (size_t g = 0; g < keys.size(); ++g) run_reduce(g);
    } else {
      for (size_t g = 0; g < keys.size(); ++g) {
        pool->Submit([&run_reduce, g] { run_reduce(g); });
      }
      pool->Wait();
    }

    if (counters_ != nullptr) {
      counters_->Add(kCounterJobs, 1);
      counters_->Add(kCounterMapTasks, num_tasks);
      counters_->Add(kCounterMapOutputPairs, map_output_pairs);
      counters_->Add(kCounterCombineOutputPairs, combined_pairs);
      counters_->Add(kCounterReduceGroups,
                     static_cast<int64_t>(groups.size()));
    }
    return outputs;
  }

 private:
  MapFn map_;
  PrologueFn prologue_;
  CombineFn combine_;
  ReduceFn reduce_;
  std::vector<int64_t> submission_order_;  // empty = ascending
  Counters* counters_ = nullptr;
  int max_task_attempts_ = 3;
  bool speculative_ = false;
  Status* error_out_ = nullptr;  // borrowed; null = abort on failure
};

}  // namespace kmeansll::mapreduce

#endif  // KMEANSLL_MAPREDUCE_JOB_H_
