// Input splits for MapReduce jobs over a Dataset: each partition is a
// contiguous row range of the (logically distributed) point set, the
// in-memory analog of an HDFS block.

#ifndef KMEANSLL_MAPREDUCE_PARTITION_H_
#define KMEANSLL_MAPREDUCE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "matrix/dataset.h"

namespace kmeansll::mapreduce {

/// One map task's slice of the dataset.
struct DataPartition {
  const Dataset* data = nullptr;  ///< not owned
  int64_t begin = 0;              ///< first row (inclusive)
  int64_t end = 0;                ///< last row (exclusive)

  int64_t size() const { return end - begin; }
};

/// Splits `data` into `num_partitions` near-equal contiguous partitions.
inline std::vector<DataPartition> MakePartitions(const Dataset& data,
                                                 int64_t num_partitions) {
  std::vector<DataPartition> parts;
  auto ranges = data.SplitRanges(num_partitions);
  parts.reserve(ranges.size());
  for (const auto& [begin, end] : ranges) {
    parts.push_back(DataPartition{&data, begin, end});
  }
  return parts;
}

}  // namespace kmeansll::mapreduce

#endif  // KMEANSLL_MAPREDUCE_PARTITION_H_
