// Input splits for MapReduce jobs over a dataset: each partition is a
// contiguous row range of the (logically distributed) point set, the
// in-memory analog of an HDFS block.
//
// A partition references a DatasetSource rather than holding rows: over
// an in-memory dataset it is a row-range view, and over a
// data::ShardedDataset it is effectively a shard reference — the map
// task pins the shard's mmap while it scans and releases it after, so
// partitioning never copies points.

#ifndef KMEANSLL_MAPREDUCE_PARTITION_H_
#define KMEANSLL_MAPREDUCE_PARTITION_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "matrix/dataset_view.h"

namespace kmeansll::mapreduce {

/// One map task's slice of the dataset.
struct DataPartition {
  const DatasetSource* source = nullptr;  ///< not owned
  int64_t begin = 0;                      ///< first row (inclusive)
  int64_t end = 0;                        ///< last row (exclusive)

  int64_t size() const { return end - begin; }
};

/// Splits `source` into `num_partitions` near-equal contiguous
/// partitions (the same split Dataset::SplitRanges produces).
inline std::vector<DataPartition> MakePartitions(const DatasetSource& source,
                                                 int64_t num_partitions) {
  KMEANSLL_CHECK_GE(num_partitions, 1);
  std::vector<DataPartition> parts;
  parts.reserve(static_cast<size_t>(num_partitions));
  const int64_t total = source.n();
  const int64_t base = total / num_partitions;
  const int64_t extra = total % num_partitions;
  int64_t begin = 0;
  for (int64_t p = 0; p < num_partitions; ++p) {
    int64_t len = base + (p < extra ? 1 : 0);
    parts.push_back(DataPartition{&source, begin, begin + len});
    begin += len;
  }
  return parts;
}

/// Partitions aligned to a list of natural block boundaries (one
/// partition per [begin, end) range — e.g. the shard table of a
/// ShardedDataset), so each map task scans exactly one resident block.
inline std::vector<DataPartition> MakeAlignedPartitions(
    const DatasetSource& source,
    const std::vector<std::pair<int64_t, int64_t>>& ranges) {
  std::vector<DataPartition> parts;
  parts.reserve(ranges.size());
  for (const auto& [begin, end] : ranges) {
    parts.push_back(DataPartition{&source, begin, end});
  }
  return parts;
}

/// Exactly `num_partitions` partitions whose boundaries align with the
/// source's residency units even when the two counts differ: with fewer
/// partitions than shards each partition is a contiguous group of whole
/// shards; with more, shards are subdivided so no partition straddles a
/// shard boundary. Either way a map task's scan pins the minimum set of
/// shards and never shares a boundary shard with its neighbor. Falls
/// back to MakePartitions over uniformly resident sources.
///
/// Balance note: shards are distributed by count, not row count — exact
/// for the near-equal shards WriteShards/ShardWriter produce. Note that
/// per-task partial sums fold over different row groupings than
/// MakePartitions', so MR reductions over aligned partitions are
/// bitwise-comparable only to runs using the same partitioning (the
/// drivers default to MakePartitions for cross-source reproducibility).
inline std::vector<DataPartition> MakeAlignedPartitions(
    const DatasetSource& source, int64_t num_partitions) {
  KMEANSLL_CHECK_GE(num_partitions, 1);
  const std::vector<std::pair<int64_t, int64_t>> ranges =
      source.ResidencyRanges();
  const auto num_shards = static_cast<int64_t>(ranges.size());
  if (num_shards == 0) return MakePartitions(source, num_partitions);
  std::vector<DataPartition> parts;
  parts.reserve(static_cast<size_t>(num_partitions));
  if (num_partitions <= num_shards) {
    // Contiguous shard groups: shard s belongs to partition s·P/S.
    int64_t s = 0;
    for (int64_t p = 0; p < num_partitions; ++p) {
      const int64_t begin = ranges[static_cast<size_t>(s)].first;
      int64_t end = begin;
      while (s < num_shards && s * num_partitions / num_shards == p) {
        end = ranges[static_cast<size_t>(s)].second;
        ++s;
      }
      parts.push_back(DataPartition{&source, begin, end});
    }
    return parts;
  }
  // More partitions than shards: split every shard into its own
  // near-equal sub-ranges; the first P mod S shards carry one extra.
  const int64_t base = num_partitions / num_shards;
  const int64_t extra = num_partitions % num_shards;
  for (int64_t s = 0; s < num_shards; ++s) {
    const auto& [begin, end] = ranges[static_cast<size_t>(s)];
    const int64_t pieces = base + (s < extra ? 1 : 0);
    const int64_t rows = end - begin;
    for (int64_t q = 0; q < pieces; ++q) {
      parts.push_back(DataPartition{&source,
                                    begin + q * rows / pieces,
                                    begin + (q + 1) * rows / pieces});
    }
  }
  return parts;
}

/// Prefetch-aware map-task schedule for a job over `parts`: a submission
/// permutation plus a per-task hint range (see Job::WithSubmissionOrder
/// and the prologue hook). Tasks are grouped into min(workers, shards)
/// contiguous shard spans — exactly MakeScanSchedule's policy for
/// chunked passes — and submission round-robins across the groups, so a
/// pool's wave scans distinct shards even when the partition count does
/// not match the shard count (unscheduled FIFO piles the first wave onto
/// the first few shards when partitions subdivide them). Each task's
/// hint is the row range of the next task in its group — the range that
/// worker streams next — issued by the task prologue while the current
/// task computes.
///
/// The schedule changes only WHEN tasks run and what is warmed ahead;
/// emissions still fold in task-index order inside Job::Run, so job
/// outputs are bitwise identical with and without it. Returns empty
/// order/hints when there is nothing to exploit (fewer than two
/// residency units, trivial task counts, or no pool).
struct MapTaskSchedule {
  std::vector<int64_t> order;  ///< submission order; empty = ascending
  /// Per-task advisory prefetch range (begin >= end means "no hint").
  std::vector<std::pair<int64_t, int64_t>> hints;
};

inline MapTaskSchedule MakeMapTaskSchedule(
    const DatasetSource& source, const std::vector<DataPartition>& parts,
    int64_t workers) {
  MapTaskSchedule schedule;
  const auto num_tasks = static_cast<int64_t>(parts.size());
  if (workers <= 1 || num_tasks < 2) return schedule;
  const std::vector<std::pair<int64_t, int64_t>> ranges =
      source.ResidencyRanges();
  const auto num_shards = static_cast<int64_t>(ranges.size());
  if (num_shards < 2) return schedule;

  // Shard owning a row (ranges are ascending and contiguous from 0).
  auto shard_of = [&](int64_t row) {
    int64_t lo = 0, hi = num_shards - 1;
    while (lo < hi) {
      const int64_t mid = (lo + hi + 1) / 2;
      if (ranges[static_cast<size_t>(mid)].first <= row) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };

  const int64_t groups = std::min(workers, num_shards);
  std::vector<std::vector<int64_t>> sequences(
      static_cast<size_t>(groups));
  for (int64_t t = 0; t < num_tasks; ++t) {
    const int64_t g = shard_of(parts[static_cast<size_t>(t)].begin) *
                      groups / num_shards;
    sequences[static_cast<size_t>(g)].push_back(t);
  }

  // Round-robin across groups; a task's hint is the task after it in
  // its own group (what that worker streams next).
  schedule.order.reserve(static_cast<size_t>(num_tasks));
  schedule.hints.assign(static_cast<size_t>(num_tasks), {0, 0});
  std::vector<size_t> cursor(static_cast<size_t>(groups), 0);
  for (int64_t taken = 0; taken < num_tasks;) {
    for (int64_t g = 0; g < groups; ++g) {
      const auto& seq = sequences[static_cast<size_t>(g)];
      size_t& c = cursor[static_cast<size_t>(g)];
      if (c >= seq.size()) continue;
      const int64_t t = seq[c++];
      ++taken;
      schedule.order.push_back(t);
      if (c < seq.size()) {
        const DataPartition& next = parts[static_cast<size_t>(seq[c])];
        schedule.hints[static_cast<size_t>(t)] = {next.begin, next.end};
      }
    }
  }
  return schedule;
}

}  // namespace kmeansll::mapreduce

#endif  // KMEANSLL_MAPREDUCE_PARTITION_H_
