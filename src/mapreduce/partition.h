// Input splits for MapReduce jobs over a dataset: each partition is a
// contiguous row range of the (logically distributed) point set, the
// in-memory analog of an HDFS block.
//
// A partition references a DatasetSource rather than holding rows: over
// an in-memory dataset it is a row-range view, and over a
// data::ShardedDataset it is effectively a shard reference — the map
// task pins the shard's mmap while it scans and releases it after, so
// partitioning never copies points.

#ifndef KMEANSLL_MAPREDUCE_PARTITION_H_
#define KMEANSLL_MAPREDUCE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "matrix/dataset_view.h"

namespace kmeansll::mapreduce {

/// One map task's slice of the dataset.
struct DataPartition {
  const DatasetSource* source = nullptr;  ///< not owned
  int64_t begin = 0;                      ///< first row (inclusive)
  int64_t end = 0;                        ///< last row (exclusive)

  int64_t size() const { return end - begin; }
};

/// Splits `source` into `num_partitions` near-equal contiguous
/// partitions (the same split Dataset::SplitRanges produces).
inline std::vector<DataPartition> MakePartitions(const DatasetSource& source,
                                                 int64_t num_partitions) {
  KMEANSLL_CHECK_GE(num_partitions, 1);
  std::vector<DataPartition> parts;
  parts.reserve(static_cast<size_t>(num_partitions));
  const int64_t total = source.n();
  const int64_t base = total / num_partitions;
  const int64_t extra = total % num_partitions;
  int64_t begin = 0;
  for (int64_t p = 0; p < num_partitions; ++p) {
    int64_t len = base + (p < extra ? 1 : 0);
    parts.push_back(DataPartition{&source, begin, begin + len});
    begin += len;
  }
  return parts;
}

/// Partitions aligned to a list of natural block boundaries (one
/// partition per [begin, end) range — e.g. the shard table of a
/// ShardedDataset), so each map task scans exactly one resident block.
inline std::vector<DataPartition> MakeAlignedPartitions(
    const DatasetSource& source,
    const std::vector<std::pair<int64_t, int64_t>>& ranges) {
  std::vector<DataPartition> parts;
  parts.reserve(ranges.size());
  for (const auto& [begin, end] : ranges) {
    parts.push_back(DataPartition{&source, begin, end});
  }
  return parts;
}

}  // namespace kmeansll::mapreduce

#endif  // KMEANSLL_MAPREDUCE_PARTITION_H_
