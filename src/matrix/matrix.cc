#include "matrix/matrix.h"

#include <cstring>

namespace kmeansll {

Matrix Matrix::FromValues(int64_t rows, int64_t cols,
                          const std::vector<double>& values) {
  KMEANSLL_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  Matrix m(rows, cols);
  if (!values.empty()) {
    std::memcpy(m.data(), values.data(), values.size() * sizeof(double));
  }
  return m;
}

void Matrix::AppendRow(const double* row) {
  buffer_.Append(row, static_cast<size_t>(cols_));
  ++rows_;
}

void Matrix::AppendRows(const Matrix& other) {
  KMEANSLL_CHECK_EQ(cols_, other.cols_);
  if (other.rows_ == 0) return;
  buffer_.Append(other.data(), static_cast<size_t>(other.size()));
  rows_ += other.rows_;
}

Matrix Matrix::GatherRows(const std::vector<int64_t>& indices) const {
  Matrix out(cols_);
  out.ReserveRows(static_cast<int64_t>(indices.size()));
  for (int64_t idx : indices) {
    KMEANSLL_CHECK(idx >= 0 && idx < rows_);
    out.AppendRow(Row(idx));
  }
  return out;
}

void Matrix::Zero() {
  if (size() > 0) {
    std::memset(data(), 0, static_cast<size_t>(size()) * sizeof(double));
  }
}

bool Matrix::operator==(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (int64_t i = 0; i < size(); ++i) {
    if (data()[i] != other.data()[i]) return false;
  }
  return true;
}

}  // namespace kmeansll
