#include "matrix/matrix.h"

#include <cstring>

namespace kmeansll {

Matrix Matrix::FromValues(int64_t rows, int64_t cols,
                          const std::vector<double>& values) {
  KMEANSLL_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  Matrix m(rows, cols);
  if (!values.empty()) {
    std::memcpy(m.data(), values.data(), values.size() * sizeof(double));
  }
  return m;
}

void Matrix::AppendRow(const double* row) {
  buffer_.Append(row, static_cast<size_t>(cols_));
  ++rows_;
}

void Matrix::AppendRows(const Matrix& other) {
  KMEANSLL_CHECK_EQ(cols_, other.cols_);
  if (other.rows_ == 0) return;
  buffer_.Append(other.data(), static_cast<size_t>(other.size()));
  rows_ += other.rows_;
}

Matrix Matrix::GatherRows(const std::vector<int64_t>& indices) const {
  const auto count = static_cast<int64_t>(indices.size());
  Matrix out(count, cols_);
  // Maximal ascending-contiguous runs copy as one memcpy instead of one
  // row at a time; a fully contiguous request (a partition, a range
  // gather) degenerates to a single block copy.
  int64_t j = 0;
  while (j < count) {
    const int64_t first = indices[static_cast<size_t>(j)];
    KMEANSLL_CHECK(first >= 0 && first < rows_);
    int64_t run = 1;
    while (j + run < count &&
           indices[static_cast<size_t>(j + run)] ==
               indices[static_cast<size_t>(j + run - 1)] + 1) {
      ++run;
    }
    KMEANSLL_CHECK(first + run <= rows_);
    if (cols_ > 0) {
      std::memcpy(out.Row(j), Row(first),
                  static_cast<size_t>(run * cols_) * sizeof(double));
    }
    j += run;
  }
  return out;
}

void Matrix::Zero() {
  if (size() > 0) {
    std::memset(data(), 0, static_cast<size_t>(size()) * sizeof(double));
  }
}

bool Matrix::operator==(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (int64_t i = 0; i < size(); ++i) {
    if (data()[i] != other.data()[i]) return false;
  }
  return true;
}

}  // namespace kmeansll
