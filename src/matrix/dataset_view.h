// DatasetView + DatasetSource: the storage abstraction between datasets
// and the algorithms that stream over them.
//
// A DatasetView is a non-owning, contiguous row-range window onto point
// data (points pointer with row stride == dim, plus optional weight and
// label slices). An in-memory Dataset yields one view spanning all rows;
// a disk-resident ShardedDataset (data/shard_store.h) yields one view per
// memory-mapped shard. Everything downstream of the storage layer —
// nearest-center scans, cost/assignment reductions, the Lloyd variants,
// the seeding passes, the MapReduce map tasks — consumes views, so the
// same code path clusters data that fits in RAM and data that does not.
//
// A DatasetSource hands out pinned views on demand. Pin(begin, end)
// returns the longest contiguous resident run starting at global row
// `begin` (clipped to `end`) together with an RAII pin that keeps those
// rows resident; iteration over an arbitrary range is the ForEachBlock
// loop below. Sources must be thread-safe: parallel chunked passes pin
// blocks concurrently from pool workers.
//
// Determinism contract (extends the engine's, see distance/batch.h): a
// point's distances depend only on its own coordinates and the center
// set — never on which view it arrived through — and every reduction in
// the library accumulates per-row contributions in ascending global row
// order within the fixed deterministic chunk grid. Splitting a chunk at
// shard boundaries therefore changes neither per-row values nor any
// accumulation order, which is why sharded and in-memory runs over the
// same rows produce bitwise-identical centers, assignments, and cost
// histories (asserted by tests/shard_store_test.cc).

#ifndef KMEANSLL_MATRIX_DATASET_VIEW_H_
#define KMEANSLL_MATRIX_DATASET_VIEW_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "matrix/matrix.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

/// Contiguous row-range window [first_row, first_row + rows) of a
/// (possibly disk-resident) dataset. Rows are addressed locally:
/// Point(i) is global row first_row + i. Weight/label slices are
/// optional; a null weight slice means every weight is 1.0.
class DatasetView {
 public:
  DatasetView() = default;
  DatasetView(ConstMatrixView points, int64_t first_row,
              const double* weights, const int32_t* labels)
      : points_(points),
        first_row_(first_row),
        weights_(weights),
        labels_(labels) {}

  int64_t rows() const { return points_.rows(); }
  int64_t dim() const { return points_.cols(); }
  /// Global index of local row 0.
  int64_t first_row() const { return first_row_; }
  /// One past the last global row covered by this view.
  int64_t end_row() const { return first_row_ + points_.rows(); }

  const ConstMatrixView& points() const { return points_; }
  const double* Point(int64_t i) const { return points_.Row(i); }

  bool has_weights() const { return weights_ != nullptr; }
  /// Weight of local row i (1.0 when the view carries no weights).
  double Weight(int64_t i) const {
    KMEANSLL_DCHECK(i >= 0 && i < rows());
    return weights_ == nullptr ? 1.0 : weights_[i];
  }
  const double* weights() const { return weights_; }

  bool has_labels() const { return labels_ != nullptr; }
  int32_t Label(int64_t i) const {
    KMEANSLL_DCHECK(labels_ != nullptr && i >= 0 && i < rows());
    return labels_[i];
  }
  const int32_t* labels() const { return labels_; }

  /// Sub-view of local rows [begin, end) (global indices shift along).
  DatasetView Slice(int64_t begin, int64_t end) const {
    return DatasetView(points_.Slice(begin, end), first_row_ + begin,
                       weights_ == nullptr ? nullptr : weights_ + begin,
                       labels_ == nullptr ? nullptr : labels_ + begin);
  }

 private:
  ConstMatrixView points_;
  int64_t first_row_ = 0;
  const double* weights_ = nullptr;  // null => all 1.0
  const int32_t* labels_ = nullptr;  // null => unknown
};

/// RAII pin over one DatasetView: the viewed rows stay resident until the
/// block is destroyed. In-memory sources hand out pins with no release
/// action; sharded sources count pins per shard so the eviction window
/// never unmaps rows in use.
class PinnedBlock {
 public:
  PinnedBlock() = default;
  explicit PinnedBlock(DatasetView view) : view_(view) {}
  PinnedBlock(DatasetView view, std::function<void()> release)
      : view_(view), release_(std::move(release)) {}

  PinnedBlock(PinnedBlock&& other) noexcept
      : view_(other.view_), release_(std::move(other.release_)) {
    other.release_ = nullptr;
  }
  PinnedBlock& operator=(PinnedBlock&& other) noexcept {
    if (this != &other) {
      Release();
      view_ = other.view_;
      release_ = std::move(other.release_);
      other.release_ = nullptr;
    }
    return *this;
  }
  PinnedBlock(const PinnedBlock&) = delete;
  PinnedBlock& operator=(const PinnedBlock&) = delete;

  ~PinnedBlock() { Release(); }

  const DatasetView& view() const { return view_; }

 private:
  void Release() {
    if (release_) {
      release_();
      release_ = nullptr;
    }
  }

  DatasetView view_;
  std::function<void()> release_;
};

/// Abstract provider of pinned row-range views. Implemented by
/// InMemorySource (below) over a Dataset and by data::ShardedDataset over
/// memory-mapped binary shards.
class DatasetSource {
 public:
  virtual ~DatasetSource() = default;

  virtual int64_t n() const = 0;
  virtual int64_t dim() const = 0;
  virtual bool has_weights() const = 0;
  virtual bool has_labels() const = 0;
  /// Sum of all weights (n for unweighted data).
  virtual double TotalWeight() const = 0;

  /// Pins the longest contiguous resident run starting at global row
  /// `begin`, clipped to `end`. Requires 0 <= begin < end <= n(); the
  /// returned view covers at least one row and starts exactly at
  /// `begin`. Thread-safe.
  virtual PinnedBlock Pin(int64_t begin, int64_t end) const = 0;

  /// Advises the source that global rows [begin, end) will be scanned
  /// soon, so it may start making them resident (mapping + touching the
  /// covering shards) in the background. Purely advisory: it never
  /// blocks on I/O, never pins anything, and never changes the bytes any
  /// Pin returns — so issuing (or dropping) hints cannot change results.
  /// Out-of-range or empty ranges are ignored. Thread-safe. Default:
  /// no-op (uniformly resident sources have nothing to warm).
  virtual void PrefetchHint(int64_t begin, int64_t end) const {
    (void)begin;
    (void)end;
  }

  /// Row ranges of the source's residency units — the granularity at
  /// which rows become resident together (the shard table of a
  /// ShardedDataset). Ascending and contiguous when non-empty. Empty
  /// means the source is uniformly resident (in-memory) and scan
  /// scheduling has nothing to exploit.
  virtual std::vector<std::pair<int64_t, int64_t>> ResidencyRanges()
      const {
    return {};
  }

  /// How many residency units the source can keep resident at once
  /// under its memory budget (0 = unbounded). MakeScanSchedule caps the
  /// number of concurrently streamed shard sequences with this so a
  /// pool never scans more distinct shards at a time than the eviction
  /// window can hold — beyond it, workers just thrash each other's
  /// mappings.
  virtual int64_t ResidentUnitCapacity() const { return 0; }

  /// Sticky health of the source. Pin has no error channel (a scan must
  /// be able to stream without per-block error plumbing), so a source
  /// that hits an unrecoverable I/O failure serves structurally valid
  /// fallback blocks and records the first error here. Drivers check
  /// this once, at their Result-returning boundary, after the scan —
  /// the out-of-core analogue of checking ferror() after fread loops.
  /// Default: always OK (in-memory sources cannot fail).
  virtual Status status() const { return Status::OK(); }
};

/// DatasetSource over rows the caller already holds in memory. The
/// viewed storage (not the source) must outlive every consumer; the
/// source itself is a cheap value the Dataset-taking API shims construct
/// on the stack.
class InMemorySource final : public DatasetSource {
 public:
  /// Views `points` (and optional parallel weight/label arrays, which may
  /// be null). All pointers are borrowed.
  InMemorySource(ConstMatrixView points, const double* weights,
                 const int32_t* labels)
      : view_(points, /*first_row=*/0, weights, labels) {}

  int64_t n() const override { return view_.rows(); }
  int64_t dim() const override { return view_.dim(); }
  bool has_weights() const override { return view_.has_weights(); }
  bool has_labels() const override { return view_.has_labels(); }
  double TotalWeight() const override;

  PinnedBlock Pin(int64_t begin, int64_t end) const override {
    KMEANSLL_CHECK(begin >= 0 && begin < end && end <= view_.rows());
    return PinnedBlock(view_.Slice(begin, end));
  }

 private:
  DatasetView view_;
};

/// Visits [begin, end) as a sequence of pinned contiguous views in
/// ascending row order (each pin is released before the next is taken).
/// After each pin and before the visitor runs, the remaining tail of the
/// range is hinted to the source, so an out-of-core source can map and
/// touch the next shard while `fn` computes over the current one (a
/// no-op for in-memory sources and for ranges inside one shard).
template <typename Fn>
void ForEachBlock(const DatasetSource& source, int64_t begin, int64_t end,
                  Fn&& fn) {
  int64_t row = begin;
  while (row < end) {
    PinnedBlock block = source.Pin(row, end);
    const DatasetView& view = block.view();
    KMEANSLL_CHECK(view.first_row() == row && view.rows() > 0);
    row = view.end_row();
    if (row < end) source.PrefetchHint(row, end);
    fn(view);
  }
}

/// Builds the shard-aware execution schedule for one chunked pass over
/// [0, total) rows of `source` (see ScanSchedule in
/// parallel/parallel_for.h). The deterministic chunk grid is split into
/// min(workers, shards) groups of contiguous shard spans and submission
/// round-robins across the groups, so the pool's workers advance through
/// disjoint shard sequences instead of pinning the same shard in lock
/// step; each position also carries a hint for its group's next shard so
/// the source warms it while the current shard computes. Returns an
/// empty schedule (callers may pass it; it is ignored) when the source
/// has fewer than two residency units or the pass is trivially small.
/// The schedule borrows `source` and must not outlive it.
ScanSchedule MakeScanSchedule(const DatasetSource& source, int64_t total,
                              ThreadPool* pool);

/// Copies the selected global rows' points into a dense matrix (the
/// source-agnostic analog of Matrix::GatherRows). Indices need not be
/// sorted, but ascending runs pin each shard only once.
Matrix GatherPoints(const DatasetSource& source,
                    const std::vector<int64_t>& indices);

/// As GatherPoints, but also copies the rows' weights into `weights`
/// (1.0 entries when the source is unweighted).
Matrix GatherPointsAndWeights(const DatasetSource& source,
                              const std::vector<int64_t>& indices,
                              std::vector<double>* weights);

}  // namespace kmeansll

#endif  // KMEANSLL_MATRIX_DATASET_VIEW_H_
