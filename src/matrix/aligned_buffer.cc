#include "matrix/aligned_buffer.h"

#include <cstdlib>
#include <cstring>

namespace kmeansll {

double* AlignedBuffer::Allocate(size_t count) {
  if (count == 0) return nullptr;
  void* ptr = nullptr;
  size_t bytes = count * sizeof(double);
  // Round up to an alignment multiple as required by aligned_alloc.
  bytes = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  ptr = std::aligned_alloc(kAlignment, bytes);
  KMEANSLL_CHECK(ptr != nullptr);
  return static_cast<double*>(ptr);
}

void AlignedBuffer::Deallocate(double* ptr) { std::free(ptr); }

AlignedBuffer::AlignedBuffer(size_t size) {
  Resize(size);
}

AlignedBuffer::~AlignedBuffer() { Deallocate(data_); }

AlignedBuffer::AlignedBuffer(const AlignedBuffer& other) {
  if (other.size_ > 0) {
    data_ = Allocate(other.size_);
    std::memcpy(data_, other.data_, other.size_ * sizeof(double));
  }
  size_ = other.size_;
  capacity_ = other.size_;
}

AlignedBuffer& AlignedBuffer::operator=(const AlignedBuffer& other) {
  if (this == &other) return *this;
  if (other.size_ > capacity_) {
    Deallocate(data_);
    data_ = Allocate(other.size_);
    capacity_ = other.size_;
  }
  if (other.size_ > 0) {
    std::memcpy(data_, other.data_, other.size_ * sizeof(double));
  }
  size_ = other.size_;
  return *this;
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.capacity_ = 0;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this == &other) return *this;
  Deallocate(data_);
  data_ = other.data_;
  size_ = other.size_;
  capacity_ = other.capacity_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.capacity_ = 0;
  return *this;
}

void AlignedBuffer::Reallocate(size_t new_capacity) {
  double* fresh = Allocate(new_capacity);
  if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(double));
  Deallocate(data_);
  data_ = fresh;
  capacity_ = new_capacity;
}

void AlignedBuffer::Reserve(size_t capacity) {
  if (capacity > capacity_) Reallocate(capacity);
}

void AlignedBuffer::Resize(size_t size) {
  if (size > capacity_) Reallocate(size);
  if (size > size_) {
    std::memset(data_ + size_, 0, (size - size_) * sizeof(double));
  }
  size_ = size;
}

void AlignedBuffer::Append(const double* src, size_t count) {
  if (count == 0) return;
  if (size_ + count > capacity_) {
    size_t grown = capacity_ == 0 ? 64 : capacity_ * 2;
    if (grown < size_ + count) grown = size_ + count;
    Reallocate(grown);
  }
  std::memcpy(data_ + size_, src, count * sizeof(double));
  size_ += count;
}

}  // namespace kmeansll
