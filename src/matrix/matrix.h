// Dense row-major matrix of doubles: the representation of both datasets
// (n × d points) and center sets (k × d) throughout the library.

#ifndef KMEANSLL_MATRIX_MATRIX_H_
#define KMEANSLL_MATRIX_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "matrix/aligned_buffer.h"

namespace kmeansll {

/// Non-owning view of a contiguous row-major block of doubles
/// (rows × cols, row stride == cols). This is the currency the batch
/// distance engine scans: an owning Matrix, a Dataset, and a
/// memory-mapped shard all present their rows through it, so every
/// consumer written against the view works unchanged over in-memory and
/// disk-resident data. The viewed storage must outlive the view.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, int64_t rows, int64_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  const double* data() const { return data_; }
  const double* Row(int64_t i) const {
    KMEANSLL_DCHECK(i >= 0 && i < rows_);
    return data_ + i * cols_;
  }

  /// Sub-view of rows [begin, end).
  ConstMatrixView Slice(int64_t begin, int64_t end) const {
    KMEANSLL_DCHECK(begin >= 0 && begin <= end && end <= rows_);
    return ConstMatrixView(data_ + begin * cols_, end - begin, cols_);
  }

 private:
  const double* data_ = nullptr;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
};

/// Row-major (rows × cols) matrix with 64-byte-aligned storage and
/// amortized AppendRow, used both for immutable datasets and for growing
/// center sets during initialization.
class Matrix {
 public:
  /// Empty 0 × cols matrix (rows can be appended).
  Matrix() = default;
  explicit Matrix(int64_t cols) : cols_(cols) { KMEANSLL_CHECK_GE(cols, 0); }

  /// rows × cols matrix, zero-initialized.
  Matrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
    KMEANSLL_CHECK_GE(rows, 0);
    KMEANSLL_CHECK_GE(cols, 0);
    buffer_.Resize(static_cast<size_t>(rows * cols));
  }

  /// Builds from row-major `values` (size must equal rows*cols).
  static Matrix FromValues(int64_t rows, int64_t cols,
                           const std::vector<double>& values);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0; }

  double* data() { return buffer_.data(); }
  const double* data() const { return buffer_.data(); }

  /// Non-owning view of the whole matrix (valid until the matrix is
  /// mutated or destroyed).
  ConstMatrixView view() const {
    return ConstMatrixView(buffer_.data(), rows_, cols_);
  }

  /// Pointer to the start of row i.
  double* Row(int64_t i) {
    KMEANSLL_DCHECK(i >= 0 && i < rows_);
    return buffer_.data() + i * cols_;
  }
  const double* Row(int64_t i) const {
    KMEANSLL_DCHECK(i >= 0 && i < rows_);
    return buffer_.data() + i * cols_;
  }

  std::span<double> RowSpan(int64_t i) {
    return std::span<double>(Row(i), static_cast<size_t>(cols_));
  }
  std::span<const double> RowSpan(int64_t i) const {
    return std::span<const double>(Row(i), static_cast<size_t>(cols_));
  }

  double At(int64_t i, int64_t j) const {
    KMEANSLL_DCHECK(j >= 0 && j < cols_);
    return Row(i)[j];
  }
  double& At(int64_t i, int64_t j) {
    KMEANSLL_DCHECK(j >= 0 && j < cols_);
    return Row(i)[j];
  }

  /// Appends one row copied from `row` (must have cols() elements).
  void AppendRow(const double* row);
  void AppendRow(std::span<const double> row) {
    KMEANSLL_CHECK_EQ(static_cast<int64_t>(row.size()), cols_);
    AppendRow(row.data());
  }

  /// Appends all rows of `other` (same cols()).
  void AppendRows(const Matrix& other);

  /// Pre-allocates capacity for `rows` rows.
  void ReserveRows(int64_t rows) {
    buffer_.Reserve(static_cast<size_t>(rows * cols_));
  }

  /// Copies the given rows (by index) into a new matrix.
  Matrix GatherRows(const std::vector<int64_t>& indices) const;

  /// Sets every element to zero without changing shape.
  void Zero();

  /// Elementwise equality.
  bool operator==(const Matrix& other) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  AlignedBuffer buffer_;
};

}  // namespace kmeansll

#endif  // KMEANSLL_MATRIX_MATRIX_H_
