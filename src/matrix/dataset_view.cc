#include "matrix/dataset_view.h"

#include <algorithm>
#include <cstring>

#include "common/math_util.h"

namespace kmeansll {

double InMemorySource::TotalWeight() const {
  if (!view_.has_weights()) return static_cast<double>(view_.rows());
  KahanSum sum;
  for (int64_t i = 0; i < view_.rows(); ++i) sum.Add(view_.Weight(i));
  return sum.Total();
}

namespace {

template <typename PerRun>
void VisitRuns(const DatasetSource& source,
               const std::vector<int64_t>& indices, PerRun&& per_run) {
  const auto count = static_cast<int64_t>(indices.size());
  // Residency-unit boundaries, for hinting ahead across shard
  // transitions. Empty (in-memory sources) disables hinting entirely —
  // no unit lookups, no hint calls on the hot gather path.
  const std::vector<std::pair<int64_t, int64_t>> units =
      count > 1 ? source.ResidencyRanges()
                : std::vector<std::pair<int64_t, int64_t>>{};
  auto unit_of = [&](int64_t row) -> size_t {
    size_t lo = 0, hi = units.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi + 1) / 2;
      if (units[mid].first <= row) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };

  int64_t j = 0;
  while (j < count) {
    const int64_t first = indices[static_cast<size_t>(j)];
    KMEANSLL_CHECK(first >= 0 && first < source.n());
    int64_t run = 1;
    while (j + run < count &&
           indices[static_cast<size_t>(j + run)] ==
               indices[static_cast<size_t>(j + run - 1)] + 1) {
      ++run;
    }
    KMEANSLL_CHECK(first + run <= source.n());
    // Warm the next shard the gather will need while this run copies —
    // but only at shard transitions: a random-sample gather decomposes
    // into many single-row runs, and hinting each one would take the
    // store's mutex per sampled row for no overlap (the accelerated
    // Lloyd variants' rescan lists and minibatch samples are exactly
    // that shape). One advisory hint per shard the tail visits is
    // enough; hints never change the gathered bytes.
    if (!units.empty() && j + run < count) {
      const size_t cur_unit = unit_of(first + run - 1);
      const int64_t next = indices[static_cast<size_t>(j + run)];
      if (next >= 0 && next < source.n() && unit_of(next) != cur_unit) {
        source.PrefetchHint(next, units[unit_of(next)].second);
      }
    }
    // A run may still span shard boundaries; ForEachBlock splits it.
    ForEachBlock(source, first, first + run, [&](const DatasetView& v) {
      per_run(j + (v.first_row() - first), v);
    });
    j += run;
  }
}

}  // namespace

ScanSchedule MakeScanSchedule(const DatasetSource& source, int64_t total,
                              ThreadPool* pool) {
  ScanSchedule schedule;
  if (total <= 0) return schedule;
  const std::vector<std::pair<int64_t, int64_t>> shards =
      source.ResidencyRanges();
  if (shards.size() < 2) return schedule;
  const std::vector<IndexRange> chunks =
      MakeChunks(total, kDeterministicChunks);
  if (chunks.size() < 2) return schedule;

  // Shard owning a row (shards are ascending and contiguous from row 0).
  auto shard_of = [&](int64_t row) {
    size_t lo = 0, hi = shards.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi + 1) / 2;
      if (shards[mid].first <= row) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };

  // Split the shard list into `groups` contiguous spans — one per worker
  // that can usefully run concurrently — and give each group its chunks
  // in ascending order. Workers then stream disjoint shard sequences.
  // The residency window caps the fan-out: streaming more concurrent
  // sequences than (capacity - 1) shards — one slot is left for the
  // prefetcher's double buffer — would evict mappings out from under
  // the other workers.
  size_t workers =
      pool == nullptr ? 1 : static_cast<size_t>(pool->num_threads());
  const int64_t capacity = source.ResidentUnitCapacity();
  if (capacity > 0) {
    workers = std::min(
        workers, static_cast<size_t>(std::max<int64_t>(capacity - 1, 1)));
  }
  const size_t groups = std::min(workers, shards.size());
  auto group_of_shard = [&](size_t s) {
    return s * groups / shards.size();
  };
  // Last shard of the group that shard `s` belongs to.
  auto group_end_shard = [&](size_t s) {
    const size_t g = group_of_shard(s);
    size_t e = s;
    while (e + 1 < shards.size() && group_of_shard(e + 1) == g) ++e;
    return e;
  };

  std::vector<std::vector<size_t>> sequences(groups);
  for (size_t c = 0; c < chunks.size(); ++c) {
    sequences[group_of_shard(shard_of(chunks[c].begin))].push_back(c);
  }

  // Round-robin submission across groups; per-position hint = the full
  // row range of the group's next shard (issued while the current shard
  // of that group computes; the source deduplicates repeats).
  schedule.order.reserve(chunks.size());
  schedule.hints.reserve(chunks.size());
  std::vector<size_t> cursor(groups, 0);
  bool any_hint = false;
  for (size_t taken = 0; taken < chunks.size();) {
    for (size_t g = 0; g < groups; ++g) {
      if (cursor[g] >= sequences[g].size()) continue;
      const size_t c = sequences[g][cursor[g]++];
      ++taken;
      schedule.order.push_back(c);
      const size_t s = shard_of(chunks[c].end - 1);
      IndexRange hint{0, 0};
      if (s < group_end_shard(s)) {
        hint.begin = shards[s + 1].first;
        hint.end = std::min(shards[s + 1].second, total);
      }
      if (hint.size() > 0) any_hint = true;
      schedule.hints.push_back(hint);
    }
  }
  if (groups == 1) schedule.order.clear();  // ascending; keep hints only
  if (!any_hint && schedule.order.empty()) return ScanSchedule{};
  schedule.prefetch = [&source](IndexRange r) {
    source.PrefetchHint(r.begin, r.end);
  };
  return schedule;
}

Matrix GatherPoints(const DatasetSource& source,
                    const std::vector<int64_t>& indices) {
  const int64_t d = source.dim();
  Matrix out(static_cast<int64_t>(indices.size()), d);
  VisitRuns(source, indices, [&](int64_t out_row, const DatasetView& v) {
    if (d > 0) {
      std::memcpy(out.Row(out_row), v.Point(0),
                  static_cast<size_t>(v.rows() * d) * sizeof(double));
    }
  });
  return out;
}

Matrix GatherPointsAndWeights(const DatasetSource& source,
                              const std::vector<int64_t>& indices,
                              std::vector<double>* weights) {
  const int64_t d = source.dim();
  Matrix out(static_cast<int64_t>(indices.size()), d);
  weights->assign(indices.size(), 1.0);
  VisitRuns(source, indices, [&](int64_t out_row, const DatasetView& v) {
    if (d > 0) {
      std::memcpy(out.Row(out_row), v.Point(0),
                  static_cast<size_t>(v.rows() * d) * sizeof(double));
    }
    if (v.has_weights()) {
      std::memcpy(weights->data() + out_row, v.weights(),
                  static_cast<size_t>(v.rows()) * sizeof(double));
    }
  });
  return out;
}

}  // namespace kmeansll
