#include "matrix/dataset_view.h"

#include <cstring>

#include "common/math_util.h"

namespace kmeansll {

double InMemorySource::TotalWeight() const {
  if (!view_.has_weights()) return static_cast<double>(view_.rows());
  KahanSum sum;
  for (int64_t i = 0; i < view_.rows(); ++i) sum.Add(view_.Weight(i));
  return sum.Total();
}

namespace {

template <typename PerRun>
void VisitRuns(const DatasetSource& source,
               const std::vector<int64_t>& indices, PerRun&& per_run) {
  const auto count = static_cast<int64_t>(indices.size());
  int64_t j = 0;
  while (j < count) {
    const int64_t first = indices[static_cast<size_t>(j)];
    KMEANSLL_CHECK(first >= 0 && first < source.n());
    int64_t run = 1;
    while (j + run < count &&
           indices[static_cast<size_t>(j + run)] ==
               indices[static_cast<size_t>(j + run - 1)] + 1) {
      ++run;
    }
    KMEANSLL_CHECK(first + run <= source.n());
    // A run may still span shard boundaries; ForEachBlock splits it.
    ForEachBlock(source, first, first + run, [&](const DatasetView& v) {
      per_run(j + (v.first_row() - first), v);
    });
    j += run;
  }
}

}  // namespace

Matrix GatherPoints(const DatasetSource& source,
                    const std::vector<int64_t>& indices) {
  const int64_t d = source.dim();
  Matrix out(static_cast<int64_t>(indices.size()), d);
  VisitRuns(source, indices, [&](int64_t out_row, const DatasetView& v) {
    if (d > 0) {
      std::memcpy(out.Row(out_row), v.Point(0),
                  static_cast<size_t>(v.rows() * d) * sizeof(double));
    }
  });
  return out;
}

Matrix GatherPointsAndWeights(const DatasetSource& source,
                              const std::vector<int64_t>& indices,
                              std::vector<double>* weights) {
  const int64_t d = source.dim();
  Matrix out(static_cast<int64_t>(indices.size()), d);
  weights->assign(indices.size(), 1.0);
  VisitRuns(source, indices, [&](int64_t out_row, const DatasetView& v) {
    if (d > 0) {
      std::memcpy(out.Row(out_row), v.Point(0),
                  static_cast<size_t>(v.rows() * d) * sizeof(double));
    }
    if (v.has_weights()) {
      std::memcpy(weights->data() + out_row, v.weights(),
                  static_cast<size_t>(v.rows()) * sizeof(double));
    }
  });
  return out;
}

}  // namespace kmeansll
