#include "matrix/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace kmeansll {

Result<Dataset> Dataset::WithWeights(Matrix points,
                                     std::vector<double> weights) {
  if (static_cast<int64_t>(weights.size()) != points.rows()) {
    return Status::InvalidArgument(
        "weight count " + std::to_string(weights.size()) +
        " does not match point count " + std::to_string(points.rows()));
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!std::isfinite(weights[i]) || weights[i] < 0.0) {
      return Status::InvalidArgument("weight " + std::to_string(i) +
                                     " is negative or non-finite");
    }
  }
  Dataset d(std::move(points));
  d.weights_ = std::move(weights);
  return d;
}

Result<Dataset> Dataset::WithLabels(Matrix points,
                                    std::vector<int32_t> labels) {
  if (static_cast<int64_t>(labels.size()) != points.rows()) {
    return Status::InvalidArgument(
        "label count " + std::to_string(labels.size()) +
        " does not match point count " + std::to_string(points.rows()));
  }
  Dataset d(std::move(points));
  d.labels_ = std::move(labels);
  return d;
}

Result<Dataset> Dataset::WithWeightsAndLabels(Matrix points,
                                              std::vector<double> weights,
                                              std::vector<int32_t> labels) {
  if (static_cast<int64_t>(labels.size()) != points.rows()) {
    return Status::InvalidArgument(
        "label count " + std::to_string(labels.size()) +
        " does not match point count " + std::to_string(points.rows()));
  }
  KMEANSLL_ASSIGN_OR_RETURN(
      Dataset d, WithWeights(std::move(points), std::move(weights)));
  d.labels_ = std::move(labels);
  return d;
}

double Dataset::TotalWeight() const {
  if (weights_.empty()) return static_cast<double>(n());
  KahanSum sum;
  for (double w : weights_) sum.Add(w);
  return sum.Total();
}

Dataset Dataset::Gather(const std::vector<int64_t>& indices) const {
  // GatherRows block-copies ascending-contiguous index runs; mirror that
  // here for the weight/label slices instead of element-by-element pushes.
  Dataset out(points_.GatherRows(indices));
  const auto count = static_cast<int64_t>(indices.size());
  if (!weights_.empty()) out.weights_.resize(indices.size());
  if (!labels_.empty()) out.labels_.resize(indices.size());
  int64_t j = 0;
  while (j < count) {
    const int64_t first = indices[static_cast<size_t>(j)];
    int64_t run = 1;
    while (j + run < count &&
           indices[static_cast<size_t>(j + run)] ==
               indices[static_cast<size_t>(j + run - 1)] + 1) {
      ++run;
    }
    if (!weights_.empty()) {
      std::copy_n(weights_.begin() + first, run, out.weights_.begin() + j);
    }
    if (!labels_.empty()) {
      std::copy_n(labels_.begin() + first, run, out.labels_.begin() + j);
    }
    j += run;
  }
  return out;
}

Status Dataset::ValidateFinite() const {
  const double* values = points_.data();
  const int64_t total = points_.size();
  for (int64_t v = 0; v < total; ++v) {
    if (!std::isfinite(values[v])) {
      int64_t row = v / std::max<int64_t>(dim(), 1);
      int64_t col = v % std::max<int64_t>(dim(), 1);
      return Status::InvalidArgument(
          "non-finite coordinate at point " + std::to_string(row) +
          ", dimension " + std::to_string(col));
    }
  }
  return Status::OK();
}

std::vector<std::pair<int64_t, int64_t>> Dataset::SplitRanges(
    int64_t parts) const {
  KMEANSLL_CHECK_GE(parts, 1);
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ranges.reserve(static_cast<size_t>(parts));
  int64_t total = n();
  int64_t base = total / parts;
  int64_t extra = total % parts;
  int64_t begin = 0;
  for (int64_t p = 0; p < parts; ++p) {
    int64_t len = base + (p < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

}  // namespace kmeansll
