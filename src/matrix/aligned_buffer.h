// 64-byte-aligned growable buffer of doubles. Row data aligned to cache
// lines keeps the O(nkd) distance kernels vectorizable and avoids split
// loads; this is the storage layer under Matrix.

#ifndef KMEANSLL_MATRIX_ALIGNED_BUFFER_H_
#define KMEANSLL_MATRIX_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>

#include "common/macros.h"

namespace kmeansll {

/// Owning, movable, 64-byte aligned array of double with amortized-growth
/// append semantics (like std::vector, minus initialization of spare
/// capacity).
class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;

  AlignedBuffer() = default;
  /// Allocates `size` zero-initialized doubles.
  explicit AlignedBuffer(size_t size);
  ~AlignedBuffer();

  AlignedBuffer(const AlignedBuffer& other);
  AlignedBuffer& operator=(const AlignedBuffer& other);
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;

  /// Grows or shrinks to `size` elements. New elements are
  /// zero-initialized; surviving elements are preserved.
  void Resize(size_t size);

  /// Ensures capacity for at least `capacity` elements.
  void Reserve(size_t capacity);

  /// Appends `count` doubles from `src` (may not alias this buffer).
  void Append(const double* src, size_t count);

  double* data() { return data_; }
  const double* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  double& operator[](size_t i) {
    KMEANSLL_DCHECK(i < size_);
    return data_[i];
  }
  double operator[](size_t i) const {
    KMEANSLL_DCHECK(i < size_);
    return data_[i];
  }

 private:
  void Reallocate(size_t new_capacity);
  static double* Allocate(size_t count);
  static void Deallocate(double* ptr);

  double* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace kmeansll

#endif  // KMEANSLL_MATRIX_ALIGNED_BUFFER_H_
