// Dataset: points plus optional per-point weights and ground-truth labels.
// Weighted datasets arise in the reclustering step of k-means|| (Algorithm
// 2, Steps 7–8) and in the Partition baseline's intermediate coresets.

#ifndef KMEANSLL_MATRIX_DATASET_H_
#define KMEANSLL_MATRIX_DATASET_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "matrix/dataset_view.h"
#include "matrix/matrix.h"

namespace kmeansll {

/// Immutable-by-convention collection of n points in R^d with optional
/// weights (default 1.0) and optional integer labels (for synthetic data
/// with known ground truth).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Matrix points) : points_(std::move(points)) {}

  /// Builds a weighted dataset; weight count must match the row count and
  /// weights must be finite and non-negative.
  static Result<Dataset> WithWeights(Matrix points,
                                     std::vector<double> weights);

  /// Attaches ground-truth labels (size must match row count).
  static Result<Dataset> WithLabels(Matrix points,
                                    std::vector<int32_t> labels);

  /// Attaches both weights and labels (each validated as above).
  static Result<Dataset> WithWeightsAndLabels(Matrix points,
                                              std::vector<double> weights,
                                              std::vector<int32_t> labels);

  int64_t n() const { return points_.rows(); }
  int64_t dim() const { return points_.cols(); }

  const Matrix& points() const { return points_; }
  const double* Point(int64_t i) const { return points_.Row(i); }

  bool has_weights() const { return !weights_.empty(); }
  /// Weight of point i (1.0 when unweighted).
  double Weight(int64_t i) const {
    return weights_.empty() ? 1.0 : weights_[static_cast<size_t>(i)];
  }
  const std::vector<double>& weights() const { return weights_; }
  /// Sum of all weights (n for unweighted datasets).
  double TotalWeight() const;

  bool has_labels() const { return !labels_.empty(); }
  const std::vector<int32_t>& labels() const { return labels_; }

  /// Non-owning view of all rows (valid until the dataset is mutated or
  /// destroyed). The storage-layer entry point: wrap it in an
  /// InMemorySource to run any streaming driver over in-memory data.
  DatasetView View() const {
    return DatasetView(points_.view(), /*first_row=*/0,
                       weights_.empty() ? nullptr : weights_.data(),
                       labels_.empty() ? nullptr : labels_.data());
  }

  /// InMemorySource over this dataset (borrowing; the dataset must
  /// outlive the source and every pin taken from it).
  InMemorySource AsSource() const {
    return InMemorySource(points_.view(),
                          weights_.empty() ? nullptr : weights_.data(),
                          labels_.empty() ? nullptr : labels_.data());
  }

  /// Copies the selected rows (weights/labels follow) into a new Dataset.
  Dataset Gather(const std::vector<int64_t>& indices) const;

  /// Splits into `parts` contiguous chunks of near-equal size (the last
  /// chunks are one smaller when n % parts != 0); returns [begin,end) pairs.
  std::vector<std::pair<int64_t, int64_t>> SplitRanges(int64_t parts) const;

  /// Verifies every coordinate is finite (weights are validated at
  /// construction). Distance arithmetic on NaN/Inf corrupts every
  /// downstream result silently, so entry points check this up front.
  Status ValidateFinite() const;

 private:
  Matrix points_;
  std::vector<double> weights_;  // empty => all 1.0
  std::vector<int32_t> labels_;  // empty => unknown
};

}  // namespace kmeansll

#endif  // KMEANSLL_MATRIX_DATASET_H_
