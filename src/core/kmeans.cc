#include "core/kmeans.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "clustering/cost.h"
#include "common/timer.h"
#include "distance/batch.h"
#include "distance/nearest.h"

namespace kmeansll {

const char* InitMethodName(InitMethod method) {
  switch (method) {
    case InitMethod::kRandom:
      return "Random";
    case InitMethod::kKMeansPP:
      return "k-means++";
    case InitMethod::kKMeansParallel:
      return "k-means||";
    case InitMethod::kPartition:
      return "Partition";
  }
  return "unknown";
}

KMeans::KMeans(KMeansConfig config) : config_(std::move(config)) {
  if (config_.num_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  // Propagate the pipeline-level checkpoint path into the phase options
  // (explicit per-phase paths win). Seeding and Lloyd use distinct files
  // so a crash during Lloyd does not re-run the sampling rounds.
  if (!config_.checkpoint_path.empty()) {
    if (config_.kmeansll.checkpoint_path.empty()) {
      config_.kmeansll.checkpoint_path = config_.checkpoint_path + ".seed";
      config_.kmeansll.checkpoint_every = config_.checkpoint_every;
    }
    if (config_.lloyd.checkpoint_path.empty()) {
      config_.lloyd.checkpoint_path = config_.checkpoint_path;
      config_.lloyd.checkpoint_every = config_.checkpoint_every;
    }
  }
}

KMeans::~KMeans() = default;

namespace {

/// ValidateFinite for a streamed source: one pass over pinned blocks,
/// same error reporting as Dataset::ValidateFinite.
Status ValidateFiniteSource(const DatasetSource& data) {
  Status status = Status::OK();
  ForEachBlock(data, 0, data.n(), [&](const DatasetView& v) {
    if (!status.ok()) return;
    for (int64_t i = 0; i < v.rows() && status.ok(); ++i) {
      const double* point = v.Point(i);
      for (int64_t j = 0; j < v.dim(); ++j) {
        if (!std::isfinite(point[j])) {
          status = Status::InvalidArgument(
              "non-finite coordinate at point " +
              std::to_string(v.first_row() + i) + ", dimension " +
              std::to_string(j));
          break;
        }
      }
    }
  });
  return status;
}

Status ValidateConfig(const KMeansConfig& config,
                      const DatasetSource& data) {
  if (config.k <= 0) return Status::InvalidArgument("k must be positive");
  if (data.n() == 0) return Status::InvalidArgument("dataset is empty");
  if (config.k > data.n()) {
    return Status::InvalidArgument(
        "k=" + std::to_string(config.k) +
        " exceeds n=" + std::to_string(data.n()));
  }
  if (config.use_mapreduce && config.init == InitMethod::kKMeansPP) {
    return Status::InvalidArgument(
        "k-means++ is inherently sequential (the paper's motivation); "
        "MapReduce execution supports k-means||, Random, and Partition");
  }
  if (config.use_mapreduce && config.num_partitions <= 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (config.num_runs < 1) {
    return Status::InvalidArgument("num_runs must be >= 1");
  }
  if (config.validate_data) {
    KMEANSLL_RETURN_NOT_OK(ValidateFiniteSource(data));
  }
  return Status::OK();
}

}  // namespace

Result<InitResult> KMeans::Initialize(const Dataset& data) const {
  InMemorySource source = data.AsSource();
  return Initialize(source);
}

Result<InitResult> KMeans::Initialize(const DatasetSource& data) const {
  return InitializeWithContext(data, nullptr, config_.seed);
}

Result<InitResult> KMeans::InitializeWithContext(
    const DatasetSource& data, mapreduce::Counters* counters,
    uint64_t seed) const {
  KMEANSLL_RETURN_NOT_OK(ValidateConfig(config_, data));
  rng::Rng rng = rng::MakeRootRng(seed);
  if (config_.use_mapreduce) {
    MRContext ctx;
    ctx.num_partitions = config_.num_partitions;
    ctx.pool = pool_.get();
    ctx.counters = counters;
    switch (config_.init) {
      case InitMethod::kKMeansParallel:
        return MRKMeansLLInit(data, config_.k, rng, config_.kmeansll, ctx);
      case InitMethod::kRandom:
        return MRRandomInit(data, config_.k, rng, ctx);
      case InitMethod::kPartition:
        return MRPartitionInit(data, config_.k, rng, config_.partition,
                               ctx);
      case InitMethod::kKMeansPP:
        return Status::InvalidArgument("k-means++ has no MapReduce path");
    }
  }
  switch (config_.init) {
    case InitMethod::kRandom:
      return RandomInit(data, config_.k, rng);
    case InitMethod::kKMeansPP:
      return KMeansPPInit(data, config_.k, rng, config_.kmeanspp,
                          pool_.get());
    case InitMethod::kKMeansParallel:
      return KMeansLLInit(data, config_.k, rng, config_.kmeansll,
                          pool_.get());
    case InitMethod::kPartition:
      return PartitionInit(data, config_.k, rng, config_.partition);
  }
  return Status::InvalidArgument("unknown init method");
}

Result<KMeansReport> KMeans::Fit(const Dataset& data) const {
  InMemorySource source = data.AsSource();
  return Fit(source);
}

Result<KMeansReport> KMeans::Fit(const DatasetSource& data) const {
  KMEANSLL_RETURN_NOT_OK(ValidateConfig(config_, data));
  WallTimer total_timer;
  KMeansReport report;

  MRContext ctx;
  ctx.num_partitions = config_.num_partitions;
  ctx.pool = pool_.get();
  ctx.counters = &report.counters;

  // Point norms are a pure function of the data: computed once per Fit
  // and threaded through every in-process cost/assignment evaluation
  // below (each used to redo the O(n·d) norm pass). Only the expanded
  // kernel reads them, so small dimensions skip the pass entirely; the
  // MapReduce paths keep norms in their own per-partition distance state.
  std::vector<double> norm_storage;
  if (!config_.use_mapreduce &&
      ResolveExpandedKernel(BatchKernel::kAuto, data.dim())) {
    norm_storage = RowSquaredNorms(data, pool_.get());
  }
  const double* point_norms =
      norm_storage.empty() ? nullptr : norm_storage.data();

  // Best-of-num_runs seeding: every run derives its own root seed (run 0
  // uses config.seed itself) and the lowest-cost seed set wins.
  WallTimer init_timer;
  InitResult init;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int64_t run = 0; run < config_.num_runs; ++run) {
    uint64_t run_seed =
        run == 0 ? config_.seed
                 : rng::HashCombine(config_.seed,
                                    static_cast<uint64_t>(run));
    KMEANSLL_ASSIGN_OR_RETURN(
        InitResult candidate,
        InitializeWithContext(data, &report.counters, run_seed));
    double cost;
    if (config_.use_mapreduce) {
      KMEANSLL_ASSIGN_OR_RETURN(
          cost, MRComputeCost(data, candidate.centers, ctx));
    } else {
      cost = ComputeCost(data, candidate.centers, pool_.get(),
                         point_norms);
    }
    if (cost < best_cost) {
      best_cost = cost;
      init = std::move(candidate);
    }
  }
  report.init_seconds = init_timer.ElapsedSeconds();
  report.init = init.telemetry;
  report.seed_cost = best_cost;

  WallTimer lloyd_timer;
  if (config_.lloyd.max_iterations > 0) {
    if (config_.use_mapreduce) {
      KMEANSLL_ASSIGN_OR_RETURN(
          LloydResult lloyd,
          MRRunLloyd(data, init.centers, config_.lloyd, ctx));
      report.centers = std::move(lloyd.centers);
      report.assignment = std::move(lloyd.assignment);
      report.lloyd_iterations = lloyd.iterations;
      report.lloyd_converged = lloyd.converged;
    } else {
      Result<LloydResult> run = [&]() -> Result<LloydResult> {
        switch (config_.lloyd_variant) {
          case KMeansConfig::LloydVariant::kHamerly:
            return RunLloydHamerly(data, init.centers, config_.lloyd,
                                   /*stats=*/nullptr, point_norms);
          case KMeansConfig::LloydVariant::kElkan:
            return RunLloydElkan(data, init.centers, config_.lloyd,
                                 /*stats=*/nullptr, point_norms);
          case KMeansConfig::LloydVariant::kStandard:
            break;
        }
        return RunLloyd(data, init.centers, config_.lloyd, pool_.get(),
                        point_norms);
      }();
      KMEANSLL_ASSIGN_OR_RETURN(LloydResult lloyd, std::move(run));
      report.centers = std::move(lloyd.centers);
      report.assignment = std::move(lloyd.assignment);
      report.lloyd_iterations = lloyd.iterations;
      report.lloyd_converged = lloyd.converged;
      report.checkpoint_write_retries = lloyd.checkpoint_write_retries;
    }
  } else {
    report.centers = std::move(init.centers);
    report.assignment = ComputeAssignment(data, report.centers,
                                          pool_.get(), point_norms);
  }
  report.lloyd_seconds = lloyd_timer.ElapsedSeconds();
  report.final_cost = report.assignment.cost;
  report.total_seconds = total_timer.ElapsedSeconds();

  // A degraded source (see DatasetSource::status) served fallback blocks
  // somewhere above: the report would be internally consistent but not
  // the data's — fail the Fit with the root cause instead of persisting
  // or returning it.
  KMEANSLL_RETURN_NOT_OK(data.status());

  if (!config_.model_output_path.empty()) {
    KMEANSLL_RETURN_NOT_OK(
        data::SaveModel(MakeModelArtifact(config_, report, data.n()),
                        config_.model_output_path,
                        &report.model_write_retries));
  }
  return report;
}

Assignment Predict(const Matrix& centers, const Dataset& data) {
  return ComputeAssignment(data, centers);
}

Assignment Predict(const Matrix& centers, const DatasetSource& data) {
  return ComputeAssignment(data, centers);
}

data::ModelArtifact MakeModelArtifact(const KMeansConfig& config,
                                      const KMeansReport& report,
                                      int64_t trained_rows) {
  data::ModelMetadata metadata;
  metadata.init_method = InitMethodName(config.init);
  metadata.seed = config.seed;
  metadata.lloyd_iterations = report.lloyd_iterations;
  metadata.trained_rows = trained_rows;
  metadata.seed_cost = report.seed_cost;
  metadata.final_cost = report.final_cost;
  return data::MakeModelArtifact(report.centers, std::move(metadata));
}

Status SaveCenters(const Matrix& centers, const std::string& path) {
  return data::SaveModel(
      data::MakeModelArtifact(centers, data::ModelMetadata{}), path);
}

Result<Matrix> LoadCenters(const std::string& path) {
  KMEANSLL_ASSIGN_OR_RETURN(data::ModelArtifact artifact,
                            data::LoadModel(path));
  return std::move(artifact.centers);
}

}  // namespace kmeansll
