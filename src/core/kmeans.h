// KMeans: the library's public estimator facade.
//
// One object configures the full pipeline the paper evaluates —
// initialization method (Random / k-means++ / k-means|| / Partition),
// execution mode (sequential, thread-pool, MapReduce engine), and Lloyd
// refinement — and Fit() returns both the model and the telemetry the
// paper's tables report (seed cost, final cost, Lloyd iterations,
// intermediate-set size, timings).
//
// Quickstart (see examples/quickstart.cc):
//   KMeansConfig config;
//   config.k = 50;
//   config.init = InitMethod::kKMeansParallel;
//   config.kmeansll.oversampling = 2.0 * 50;   // ℓ = 2k
//   config.kmeansll.rounds = 5;                // r = 5
//   KMeans model(config);
//   KMEANSLL_ASSIGN_OR_RETURN(KMeansReport report, model.Fit(data));

#ifndef KMEANSLL_CORE_KMEANS_H_
#define KMEANSLL_CORE_KMEANS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "clustering/init_kmeanspp.h"
#include "clustering/init_kmeansll.h"
#include "clustering/init_partition.h"
#include "clustering/init_random.h"
#include "clustering/lloyd.h"
#include "clustering/lloyd_elkan.h"
#include "clustering/lloyd_hamerly.h"
#include "clustering/mapreduce_kmeans.h"
#include "clustering/types.h"
#include "common/result.h"
#include "data/model_io.h"
#include "matrix/dataset.h"

namespace kmeansll {

/// Seeding strategy (the paper's §4.2 baselines plus the contribution).
enum class InitMethod {
  kRandom,          ///< uniform k points (baseline)
  kKMeansPP,        ///< k-means++, Algorithm 1 (baseline)
  kKMeansParallel,  ///< k-means||, Algorithm 2 (the contribution)
  kPartition,       ///< streaming baseline of Ailon et al. (§4.2.1)
};

/// Human-readable method name ("k-means||" etc.).
const char* InitMethodName(InitMethod method);

/// Full pipeline configuration.
struct KMeansConfig {
  int64_t k = 8;
  InitMethod init = InitMethod::kKMeansParallel;
  uint64_t seed = 42;

  KMeansLLOptions kmeansll;    ///< used when init == kKMeansParallel
  KMeansPPOptions kmeanspp;    ///< used when init == kKMeansPP
  PartitionOptions partition;  ///< used when init == kPartition

  /// Lloyd refinement on the full dataset; max_iterations = 0 disables
  /// (seed-only evaluation, the paper's "seed" columns).
  LloydOptions lloyd;

  /// Independent seeding attempts; the seed set with the lowest cost on
  /// the full data wins and is the one Lloyd refines (the classic
  /// best-of-R restarts, run 0 uses `seed` itself so num_runs = 1 is the
  /// plain pipeline).
  int64_t num_runs = 1;

  /// Lloyd implementation for the sequential path (the MapReduce path
  /// always runs the standard per-job iteration). All variants produce
  /// identical centers; the accelerated ones skip distance work via
  /// triangle-inequality bounds (Hamerly: O(n) extra memory; Elkan:
  /// O(n·k), strongest pruning).
  enum class LloydVariant { kStandard, kHamerly, kElkan };
  LloydVariant lloyd_variant = LloydVariant::kStandard;

  /// Reject datasets containing NaN/Inf coordinates up front (one O(n·d)
  /// scan per Fit). Disable only for trusted pipelines where the scan
  /// matters.
  bool validate_data = true;

  /// Worker threads for the data-parallel paths (0 = sequential).
  int num_threads = 0;
  /// Run initialization and Lloyd through the MapReduce engine
  /// (requires kKMeansParallel or kRandom init).
  bool use_mapreduce = false;
  /// Input splits when use_mapreduce is set.
  int64_t num_partitions = 8;

  /// When non-empty, Fit() persists the fitted model at this path as a
  /// KMLLMODL artifact (centers + center norms + training metadata, CRC
  /// validated — see data/model_io.h). A failed save fails the Fit: a
  /// training run whose deliverable is the artifact must not report
  /// success without it.
  std::string model_output_path;

  /// When non-empty, training checkpoints (KMLLCKPT artifacts, see
  /// data/checkpoint_io.h) are written atomically during the sequential
  /// pipeline: k-means|| seeding rounds checkpoint at `<path>.seed` and
  /// Lloyd iterations at `<path>` (propagated into
  /// kmeansll.checkpoint_path / lloyd.checkpoint_path unless those are
  /// set explicitly). A re-run of the same configuration that finds a
  /// valid checkpoint resumes from it and produces a bitwise-identical
  /// report; checkpoints are removed as each phase completes. The
  /// MapReduce path does not checkpoint (its per-task retry plus
  /// speculative re-execution covers worker faults); with num_runs > 1
  /// only the seeding run in flight at a crash resumes — completed runs
  /// recompute deterministically.
  std::string checkpoint_path;
  /// Iterations/rounds between checkpoint saves (values < 1 act as 1).
  int64_t checkpoint_every = 1;
};

/// Everything Fit() learned and measured.
struct KMeansReport {
  Matrix centers;          ///< final k × d centers
  Assignment assignment;   ///< final assignment + cost on the input data
  double seed_cost = 0;    ///< φ after initialization, before Lloyd
  double final_cost = 0;   ///< φ after Lloyd refinement
  int64_t lloyd_iterations = 0;
  bool lloyd_converged = false;
  InitTelemetry init;      ///< rounds / intermediate centers / passes
  double init_seconds = 0;
  double lloyd_seconds = 0;
  double total_seconds = 0;
  mapreduce::Counters counters;  ///< populated when use_mapreduce
  /// Transient write retries burned persisting artifacts: Lloyd
  /// checkpoints (init's seeding-checkpoint retries live in
  /// init.checkpoint_write_retries) and the final model save. Non-zero
  /// counters mean a save healed by retrying — telemetry a flaky-disk
  /// postmortem wants, invisible in the Status.
  int64_t checkpoint_write_retries = 0;
  int64_t model_write_retries = 0;
};

/// Configured, reusable estimator. Thread-compatible: one Fit() at a time
/// per instance.
class KMeans {
 public:
  explicit KMeans(KMeansConfig config);
  ~KMeans();

  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(KMeans);

  /// Runs initialization + Lloyd on `data`. Fails on invalid
  /// configuration or data (empty, k > n, dimension mismatch...).
  Result<KMeansReport> Fit(const Dataset& data) const;

  /// Out-of-core Fit: the same pipeline over a DatasetSource (e.g. a
  /// data::ShardedDataset whose pinned window is smaller than the data).
  /// Produces bitwise-identical reports to the in-memory overload for
  /// the same rows and configuration.
  Result<KMeansReport> Fit(const DatasetSource& data) const;

  /// Runs only the configured initializer (the paper's "seed" rows).
  Result<InitResult> Initialize(const Dataset& data) const;
  Result<InitResult> Initialize(const DatasetSource& data) const;

  const KMeansConfig& config() const { return config_; }

 private:
  /// Initialize with MapReduce counters wired through and an explicit
  /// root seed (Fit's best-of-num_runs path).
  Result<InitResult> InitializeWithContext(const DatasetSource& data,
                                           mapreduce::Counters* counters,
                                           uint64_t seed) const;

  KMeansConfig config_;
  std::unique_ptr<ThreadPool> pool_;  // created when num_threads > 0
};

/// Assigns every row of `data` to its nearest center, packing the
/// centers per call. Repeated Predicts against one model should go
/// through the serving fast path instead — the Predict(CenterIndex, …)
/// overloads in serving/center_index.h reuse the index's frozen panels
/// and produce bitwise-identical assignments.
Assignment Predict(const Matrix& centers, const Dataset& data);
Assignment Predict(const Matrix& centers, const DatasetSource& data);

/// Builds the KMLLMODL artifact for a finished Fit: the report's centers
/// plus its telemetry as model metadata (what Fit saves when
/// config.model_output_path is set).
data::ModelArtifact MakeModelArtifact(const KMeansConfig& config,
                                      const KMeansReport& report,
                                      int64_t trained_rows);

/// Persists bare centers as a KMLLMODL artifact (empty metadata).
/// Convenience wrapper over data::SaveModel.
Status SaveCenters(const Matrix& centers, const std::string& path);

/// Loads the centers of a KMLLMODL artifact (drops norms/metadata).
/// Fails on anything data::LoadModel rejects.
Result<Matrix> LoadCenters(const std::string& path);

}  // namespace kmeansll

#endif  // KMEANSLL_CORE_KMEANS_H_
