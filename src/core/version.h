// Library version constants.

#ifndef KMEANSLL_CORE_VERSION_H_
#define KMEANSLL_CORE_VERSION_H_

namespace kmeansll {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace kmeansll

#endif  // KMEANSLL_CORE_VERSION_H_
