#include "simcluster/cost_model.h"

#include <algorithm>
#include <cmath>

#include "clustering/cost.h"
#include "common/macros.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "matrix/matrix.h"

namespace kmeansll::simcluster {

CostModel::CostModel(const ClusterConfig& config) : config_(config) {
  KMEANSLL_CHECK_GE(config.num_machines, 1);
  KMEANSLL_CHECK(config.seconds_per_flop > 0);
  KMEANSLL_CHECK(config.job_setup_seconds >= 0);
  KMEANSLL_CHECK(config.seconds_per_shuffled_value >= 0);
}

double CostModel::JobSeconds(const JobWork& work) const {
  int64_t machines = config_.num_machines;
  if (work.max_parallelism > 0) {
    machines = std::min(machines, work.max_parallelism);
  }
  double map_seconds = work.parallel_flops * config_.seconds_per_flop /
                       static_cast<double>(machines);
  double shuffle_seconds =
      work.shuffled_values * config_.seconds_per_shuffled_value;
  double sequential_seconds =
      work.sequential_flops * config_.seconds_per_flop;
  return config_.job_setup_seconds + map_seconds + shuffle_seconds +
         sequential_seconds;
}

double CostModel::TotalSeconds(const std::vector<JobWork>& jobs) const {
  double total = 0.0;
  for (const JobWork& job : jobs) total += JobSeconds(job);
  return total;
}

namespace {

/// Flops of one distance evaluation in d dimensions (sub, mul, add).
double DistanceFlops(int64_t d) { return 3.0 * static_cast<double>(d); }

/// Flops of weighted k-means++ reducing m points to k centers:
/// k sequential steps, each scanning m points once (O(m·k·d) total).
double KMeansPPFlops(int64_t m, int64_t k, int64_t d) {
  return static_cast<double>(m) * static_cast<double>(k) * DistanceFlops(d);
}

}  // namespace

std::vector<JobWork> KMeansLLProfile(int64_t n, int64_t d, int64_t k,
                                     double ell, int64_t rounds,
                                     int64_t intermediate_centers) {
  std::vector<JobWork> jobs;
  const double nd = static_cast<double>(n);
  // Job 0: initial potential — one distance per point (|C| = 1).
  jobs.push_back(JobWork{nd * DistanceFlops(d), 0.0, 1.0});

  // Per round: the sampling job touches every point once (probability
  // evaluation only, ~5 flops) and the update job computes one distance
  // per point per newly added candidate (≈ ℓ of them).
  double new_per_round =
      intermediate_centers > 0 && rounds > 0
          ? static_cast<double>(intermediate_centers - 1) /
                static_cast<double>(rounds)
          : ell;
  for (int64_t r = 0; r < rounds; ++r) {
    jobs.push_back(JobWork{nd * 5.0, 0.0, new_per_round});  // sampling
    jobs.push_back(JobWork{nd * new_per_round * DistanceFlops(d), 0.0,
                           1.0});  // update + cost
  }
  // Step 7: weighting — one pass, emits |C| aggregated weights/mapper.
  jobs.push_back(JobWork{nd * 2.0, 0.0,
                         static_cast<double>(intermediate_centers)});
  // Step 8: sequential reclustering on the driver.
  jobs.push_back(JobWork{
      0.0, KMeansPPFlops(intermediate_centers, k, d),
      static_cast<double>(intermediate_centers) * static_cast<double>(d)});
  return jobs;
}

std::vector<JobWork> PartitionProfile(int64_t n, int64_t d, int64_t k,
                                      int64_t num_groups,
                                      int64_t intermediate_centers) {
  KMEANSLL_CHECK_GE(num_groups, 1);
  std::vector<JobWork> jobs;
  // Round 1: each group runs k-means#: k iterations, each scanning the
  // group (n/m points) against the 3·ln k new batch (distance updates) —
  // total per group ≈ (n/m) · |selected| distances; |selected| ≈
  // intermediate/m. Parallelism is capped at m groups, so express the
  // whole round as per-machine work times m machines — the model divides
  // by min(machines, groups) via scaling here.
  double per_group_points =
      static_cast<double>(n) / static_cast<double>(num_groups);
  double per_group_selected = static_cast<double>(intermediate_centers) /
                              static_cast<double>(num_groups);
  // k-means# distance updates plus the group-local weighting pass: both
  // scan the group's n/m points against its ~intermediate/m selections.
  double per_group_flops =
      2.0 * per_group_points * per_group_selected * DistanceFlops(d);
  // Round 1 runs on at most `num_groups` machines regardless of cluster
  // size (one group = one sequential stream).
  jobs.push_back(JobWork{per_group_flops * static_cast<double>(num_groups),
                         0.0,
                         static_cast<double>(intermediate_centers) *
                             static_cast<double>(d),
                         num_groups});
  // Round 2: sequential k-means++ over the intermediate set.
  jobs.push_back(JobWork{0.0, KMeansPPFlops(intermediate_centers, k, d),
                         static_cast<double>(k) * static_cast<double>(d),
                         0});
  return jobs;
}

std::vector<JobWork> RandomInitProfile(int64_t n, int64_t d) {
  // One selection pass; negligible math, one record per point scanned.
  return {JobWork{static_cast<double>(n), 0.0, static_cast<double>(d)}};
}

std::vector<JobWork> LloydProfile(int64_t n, int64_t d, int64_t k,
                                  int64_t iterations,
                                  int64_t num_machines) {
  std::vector<JobWork> jobs;
  jobs.reserve(static_cast<size_t>(iterations));
  for (int64_t i = 0; i < iterations; ++i) {
    // n·k distances per pass; every mapper shuffles k centroids of d
    // coordinates.
    jobs.push_back(JobWork{
        static_cast<double>(n) * static_cast<double>(k) * DistanceFlops(d),
        static_cast<double>(k) * static_cast<double>(d),
        static_cast<double>(num_machines) * static_cast<double>(k) *
            static_cast<double>(d)});
  }
  return jobs;
}

double CalibrateSecondsPerFlop() {
  // Time the real nearest-center kernel on a small instance and divide by
  // its nominal flop count.
  const int64_t n = 4096, d = 32, k = 64;
  auto generated = data::GenerateUniform(n, d, 0.0, 1.0, rng::Rng(1234));
  KMEANSLL_CHECK(generated.ok());
  Matrix centers(k, d);
  for (int64_t c = 0; c < k; ++c) {
    double* row = centers.Row(c);
    for (int64_t j = 0; j < d; ++j) {
      row[j] = static_cast<double>((c * 37 + j) % 101) / 101.0;
    }
  }
  // Warm-up + timed runs.
  ComputeCost(*generated, centers);
  WallTimer timer;
  const int reps = 5;
  double sink = 0;
  for (int r = 0; r < reps; ++r) sink += ComputeCost(*generated, centers);
  double seconds = timer.ElapsedSeconds() / reps;
  KMEANSLL_CHECK(sink > 0);  // defeat dead-code elimination
  double flops = static_cast<double>(n) * static_cast<double>(k) * 3.0 *
                 static_cast<double>(d);
  return seconds / flops;
}

}  // namespace kmeansll::simcluster
