// Analytic cost model of an m-machine MapReduce cluster.
//
// The paper's Table 4 measures wall-clock minutes on a 1968-node Hadoop
// cluster, which we cannot run offline. What *determines* those minutes is
// algorithmic and measurable here: the number of MapReduce rounds (each
// paying a fixed job-setup latency), the per-machine share of the per-pass
// distance work, the shuffle volume, and the sequential reclustering work
// on the driver. This module converts those quantities — taken from real
// runs' telemetry — into modeled seconds.
//
// The model deliberately reproduces the paper's qualitative analysis
// (§4.2.1): with m = sqrt(n/k) the Partition baseline's per-round,
// per-machine instance is Θ(sqrt(nk)), so its running time stops improving
// beyond a machine threshold, whereas k-means||'s time keeps dropping
// linearly in the number of machines.

#ifndef KMEANSLL_SIMCLUSTER_COST_MODEL_H_
#define KMEANSLL_SIMCLUSTER_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace kmeansll::simcluster {

/// Cluster hardware / framework parameters.
struct ClusterConfig {
  /// Worker machines available to map tasks.
  int64_t num_machines = 100;
  /// Seconds per floating-point multiply-add on one machine. Calibrate
  /// with CalibrateSecondsPerFlop() for this-host realism; the default is
  /// a 2.5 GHz core sustaining ~1 flop/cycle.
  double seconds_per_flop = 4e-10;
  /// Fixed latency per MapReduce job (Hadoop job scheduling, JVM spin-up;
  /// tens of seconds on 2012 clusters — the paper's §4.2.1 "setup costs").
  double job_setup_seconds = 20.0;
  /// Seconds per shuffled value (serialization + network + sort).
  double seconds_per_shuffled_value = 5e-8;
};

/// Work performed by one MapReduce job.
struct JobWork {
  /// Flops spread evenly over the machines (map side).
  double parallel_flops = 0.0;
  /// Flops that run on a single node (driver / single reducer).
  double sequential_flops = 0.0;
  /// Values moving through the shuffle.
  double shuffled_values = 0.0;
  /// Maximum machines this job can use (0 = unbounded). Partition's
  /// round 1 is capped at its m groups — the reason its running time
  /// "does not improve when the number of available machines surpasses a
  /// certain threshold" (§4.2.1).
  int64_t max_parallelism = 0;
};

/// Converts work profiles to modeled seconds.
class CostModel {
 public:
  explicit CostModel(const ClusterConfig& config);

  /// Modeled seconds for one job: setup + parallel work / machines +
  /// shuffle + sequential work.
  double JobSeconds(const JobWork& work) const;

  /// Sum over a job sequence (MapReduce rounds are serial).
  double TotalSeconds(const std::vector<JobWork>& jobs) const;

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
};

/// Work profile of k-means|| initialization (Algorithm 2 + §3.5 mapping):
/// one job for ψ, then per round one sampling job and one update+cost
/// job, one weighting job, and the sequential reclustering of
/// `intermediate_centers` weighted points into k.
std::vector<JobWork> KMeansLLProfile(int64_t n, int64_t d, int64_t k,
                                     double ell, int64_t rounds,
                                     int64_t intermediate_centers);

/// Work profile of the Partition baseline: one parallel round running
/// k-means# per group (per-machine instance n/m points × k iterations of
/// 3·ln k D² batches) and one sequential round reclustering the
/// ~3·m·k·ln k intermediate centers. The group count m is also the
/// maximum parallelism of round 1 — the "threshold" effect.
std::vector<JobWork> PartitionProfile(int64_t n, int64_t d, int64_t k,
                                      int64_t num_groups,
                                      int64_t intermediate_centers);

/// Work profile of Random initialization (a single selection pass).
std::vector<JobWork> RandomInitProfile(int64_t n, int64_t d);

/// Work profile of `iterations` Lloyd iterations (one job each, n·k·d
/// flops per job plus the centroid shuffle of k·d values per mapper).
std::vector<JobWork> LloydProfile(int64_t n, int64_t d, int64_t k,
                                  int64_t iterations, int64_t num_machines);

/// Measures this host's effective seconds-per-flop on the nearest-center
/// kernel (for calibrating ClusterConfig::seconds_per_flop).
double CalibrateSecondsPerFlop();

}  // namespace kmeansll::simcluster

#endif  // KMEANSLL_SIMCLUSTER_COST_MODEL_H_
