// Repeated-trial statistics, matching the paper's methodology ("the
// median cost (over 11 runs)", "averaged over 10 runs").

#ifndef KMEANSLL_EVAL_TRIALS_H_
#define KMEANSLL_EVAL_TRIALS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace kmeansll::eval {

/// Summary statistics of one measured quantity across trials.
struct TrialSummary {
  double median = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  int64_t count = 0;
};

/// Summarizes raw per-trial values.
TrialSummary Summarize(const std::vector<double>& values);

/// Runs `trial(t)` for t = 0..count-1 and summarizes the returned values.
/// Each trial should derive its randomness from t so runs are independent.
TrialSummary RunTrials(int64_t count,
                       const std::function<double(int64_t)>& trial);

/// Runs trials that each produce several named quantities at once (e.g.
/// seed cost AND final cost AND iterations from one Fit); returns one
/// summary per quantity, in the order produced.
std::vector<TrialSummary> RunMultiTrials(
    int64_t count,
    const std::function<std::vector<double>(int64_t)>& trial);

}  // namespace kmeansll::eval

#endif  // KMEANSLL_EVAL_TRIALS_H_
