#include "eval/trials.h"

#include <algorithm>

#include "common/macros.h"
#include "common/math_util.h"

namespace kmeansll::eval {

TrialSummary Summarize(const std::vector<double>& values) {
  TrialSummary s;
  s.count = static_cast<int64_t>(values.size());
  if (values.empty()) return s;
  s.median = Median(values);
  s.mean = Mean(values);
  s.stddev = StdDev(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  return s;
}

TrialSummary RunTrials(int64_t count,
                       const std::function<double(int64_t)>& trial) {
  KMEANSLL_CHECK_GE(count, 1);
  std::vector<double> values;
  values.reserve(static_cast<size_t>(count));
  for (int64_t t = 0; t < count; ++t) values.push_back(trial(t));
  return Summarize(values);
}

std::vector<TrialSummary> RunMultiTrials(
    int64_t count,
    const std::function<std::vector<double>(int64_t)>& trial) {
  KMEANSLL_CHECK_GE(count, 1);
  std::vector<std::vector<double>> columns;
  for (int64_t t = 0; t < count; ++t) {
    std::vector<double> row = trial(t);
    if (columns.empty()) columns.resize(row.size());
    KMEANSLL_CHECK_EQ(columns.size(), row.size());
    for (size_t q = 0; q < row.size(); ++q) columns[q].push_back(row[q]);
  }
  std::vector<TrialSummary> out;
  out.reserve(columns.size());
  for (const auto& column : columns) out.push_back(Summarize(column));
  return out;
}

}  // namespace kmeansll::eval
