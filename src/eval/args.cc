#include "eval/args.h"

#include "common/string_util.h"

namespace kmeansll::eval {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "1";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool Args::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Args::GetString(const std::string& name,
                            const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Args::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  int64_t out = 0;
  return ParseInt64(it->second, &out) ? out : default_value;
}

double Args::GetDouble(const std::string& name,
                       double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  double out = 0;
  return ParseDouble(it->second, &out) ? out : default_value;
}

bool Args::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "1" || it->second == "true" || it->second == "on";
}

}  // namespace kmeansll::eval
