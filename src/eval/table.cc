#include "eval/table.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace kmeansll::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  KMEANSLL_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  KMEANSLL_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

Status TablePrinter::WriteTsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << Join(headers_, "\t") << '\n';
  for (const auto& row : rows_) out << Join(row, "\t") << '\n';
  if (!out.good()) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

std::string Cell(double value, int precision) {
  return FormatScientific(value, precision);
}

std::string CellScaled(double value, double scale, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value / scale);
  return buf;
}

std::string CellInt(int64_t value) { return FormatWithCommas(value); }

std::string TsvOutputPath(const std::string& name) {
  ::mkdir("bench_out", 0755);  // best-effort; failure surfaces on write
  return "bench_out/" + name + ".tsv";
}

}  // namespace kmeansll::eval
