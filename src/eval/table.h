// Console table printer and TSV writer for the benchmark harnesses. Each
// bench prints paper-style rows to stdout and mirrors them into
// bench/out/*.tsv for plotting.

#ifndef KMEANSLL_EVAL_TABLE_H_
#define KMEANSLL_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace kmeansll::eval {

/// Column-aligned plain-text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule and 2-space column gaps.
  void Print(std::ostream& os) const;

  /// Writes headers + rows as tab-separated values.
  Status WriteTsv(const std::string& path) const;

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats helpers shared by the benches.
std::string Cell(double value, int precision = 3);
std::string CellScaled(double value, double scale, int precision = 0);
std::string CellInt(int64_t value);

/// Creates bench/out/ (relative to the working directory) if needed and
/// returns "<dir>/<name>.tsv".
std::string TsvOutputPath(const std::string& name);

}  // namespace kmeansll::eval

#endif  // KMEANSLL_EVAL_TABLE_H_
