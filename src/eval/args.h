// Minimal --flag=value command-line parsing for the bench harnesses and
// examples (no external dependencies by design).

#ifndef KMEANSLL_EVAL_ARGS_H_
#define KMEANSLL_EVAL_ARGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace kmeansll::eval {

/// Parses "--name=value" and bare "--flag" (value "1") arguments.
/// Unrecognized positional arguments are ignored.
class Args {
 public:
  Args(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace kmeansll::eval

#endif  // KMEANSLL_EVAL_ARGS_H_
