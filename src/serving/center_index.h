// CenterIndex: an immutable, shareable snapshot of a fitted center set,
// prepared for online nearest-center queries.
//
// Training produces centers; serving answers "which cluster is this
// point in" at high QPS. The index is the bridge: it owns a bitwise copy
// of the k × d centers together with everything the batch distance
// engine (distance/batch.h) needs precomputed — the packed CenterPanels
// and the center squared norms — so per-query work is pure scanning with
// zero packing or norm cost. Once built, a CenterIndex never changes;
// every query method is const and safe to call from any number of
// threads concurrently, which is what lets ModelServer publish snapshots
// RCU-style (readers hold a shared_ptr, writers build-then-swap — see
// serving/model_server.h).
//
// Two-level pruned index (opt-in, CenterIndexOptions::enable_pruning):
// a flat scan pays exact O(k) per query, which collapses QPS linearly as
// k grows into the tens of thousands. The pruned build runs a coarse
// k-means over the k centers themselves (the repo's own k-means||
// seeding + Lloyd, fixed seed, deterministic by construction), permutes
// the centers group-contiguously into ONE packed panel set, and caches
// per-group member radii R_j = max_{c in group j} ||c − coarse_j||. A
// query computes its g ≈ √k coarse distances D_j, visits groups in
// ascending lower-bound order lb_j = D_j − R_j, and skips every group
// whose bound proves (triangle inequality, the same algebra as the Elkan
// bounds in clustering/lloyd_elkan.cc) that no member can strictly beat
// the running best — so most groups never reach the engine, yet the
// surviving ones go through the exact same frozen-panel scans
// (BatchNearestMergeSubset / BatchTopMSubset).
//
// Determinism contract (extends distance/batch.h): AssignBatch runs the
// exact reduction ComputeAssignment runs (clustering/cost.h,
// ReduceNearestWithSearch) over this index's frozen panels, so its
// Assignment — indices, cost, and tie resolution — is bitwise identical
// to ComputeAssignment on the same centers at any pool size. AssignOne
// is the engine's scalar reference path (bitwise-consistent per pair),
// and AssignTopM's slot 0 is bitwise the AssignOne result. The pruned
// exact mode PRESERVES all of this bitwise: per-pair engine values never
// depend on panel placement, the in-group permutation keeps ascending
// original order (so in-group strict-< ties resolve like the flat scan),
// cross-group winners merge lexicographically on (d², original index),
// and the skip test subtracts a conservative floating-point slack from
// the bound before comparing strictly — a skipped group's members are
// provably strictly farther than the running best, so neither values nor
// tie resolution can change. Only the opt-in approximate mode
// (approx_probes > 0) may diverge, by bounding how many groups are
// scanned; MeasureApproxRecall reports the resulting recall.

#ifndef KMEANSLL_SERVING_CENTER_INDEX_H_
#define KMEANSLL_SERVING_CENTER_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "clustering/types.h"
#include "common/result.h"
#include "data/model_io.h"
#include "distance/nearest.h"
#include "matrix/dataset.h"
#include "matrix/dataset_view.h"
#include "matrix/matrix.h"
#include "parallel/thread_pool.h"

namespace kmeansll::serving {

/// Build-time knobs for the two-level pruned index. The default is the
/// flat exact scan (pruning off); every knob is deterministic — two
/// builds from the same centers and options produce indexes that answer
/// every query identically.
struct CenterIndexOptions {
  /// Master switch for the two-level index. Off = flat panel scans.
  bool enable_pruning = false;
  /// Pruning below this k is overhead with nothing to win (the coarse
  /// pass alone costs ~√k of the flat scan); smaller center sets serve
  /// flat even when enable_pruning is set (counted as exact_fallbacks).
  int64_t min_prune_k = 512;
  /// Coarse group count; 0 picks ⌈√k⌉ (balances the g-distance coarse
  /// pass against the k/g-sized group scans).
  int64_t num_groups = 0;
  /// 0 = exact (prune only what the bounds prove safe). > 0 = approximate
  /// mode: scan at most this many groups per query, in ascending
  /// lower-bound order — results may then differ from the flat scan;
  /// see MeasureApproxRecall.
  int64_t approx_probes = 0;
  /// Seed of the coarse k-means over the centers. Fixed default: the
  /// grouping must not depend on anything per-process. (Exact-mode
  /// RESULTS never depend on the grouping — only scan counts do.)
  uint64_t coarse_seed = 0x9E3779B97F4A7C15ULL;
  /// k-means|| rounds for the coarse seeding (build cost knob).
  int64_t coarse_rounds = 3;
  /// Lloyd iterations refining the coarse centers (build cost knob;
  /// 0 = use the k-means|| seed as-is). Tighter coarse clusters mean
  /// smaller group radii and therefore sharper lower bounds — the
  /// default buys prune power with a few extra build-time passes over
  /// the k centers (cheap next to the panel pack at serving scale).
  int64_t coarse_iterations = 8;
};

/// Snapshot of the pruned-path effectiveness counters (wait-free relaxed
/// atomics, safe to read under concurrent traffic). Counters accumulate
/// over the snapshot's lifetime — a publish/swap starts fresh ones.
/// Invariant for pruned queries: groups_scanned + groups_pruned ==
/// queries × (non-empty group count); approximate-mode probe cutoffs
/// count the unvisited remainder as pruned.
struct PruneStats {
  int64_t queries = 0;          ///< queries answered via the pruned path
  int64_t groups_scanned = 0;   ///< groups that reached the engine
  int64_t groups_pruned = 0;    ///< groups skipped (bounds or probe cap)
  int64_t exact_fallbacks = 0;  ///< queries served flat although pruning
                                ///< was requested (k < min_prune_k or
                                ///< coarse build unavailable)
};

class CenterIndex {
 public:
  /// Builds a snapshot from `centers` (copied/moved in; k >= 1, d >= 1).
  /// Packs the panels and computes the norms once, up front. `version`
  /// tags the snapshot (ModelServer bumps it per publish; it never
  /// affects results).
  static std::shared_ptr<const CenterIndex> Build(Matrix centers,
                                                  uint64_t version = 0);

  /// As above with explicit options; `pool` (may be null) parallelizes
  /// the coarse k-means of a pruned build — the resulting index is
  /// identical at any pool size.
  static std::shared_ptr<const CenterIndex> Build(
      Matrix centers, const CenterIndexOptions& options,
      uint64_t version = 0, ThreadPool* pool = nullptr);

  /// Builds from a loaded model artifact, adopting its metadata and
  /// REUSING its stored center norms: data::LoadModel has already proven
  /// them bitwise equal to the local RowSquaredNorms chain, so the build
  /// adopts them (re-asserted bitwise, see
  /// NearestCenterSearch::FreezeWithNorms) instead of recomputing. A
  /// FromModel index serves bitwise like a Build index over the same
  /// centers. Fails on an empty artifact.
  static Result<std::shared_ptr<const CenterIndex>> FromModel(
      const data::ModelArtifact& artifact, uint64_t version = 0);
  static Result<std::shared_ptr<const CenterIndex>> FromModel(
      const data::ModelArtifact& artifact,
      const CenterIndexOptions& options, uint64_t version = 0,
      ThreadPool* pool = nullptr);

  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(CenterIndex);

  int64_t k() const { return centers_.rows(); }
  int64_t dim() const { return centers_.cols(); }
  uint64_t version() const { return version_; }
  const Matrix& centers() const { return centers_; }
  /// Training provenance (empty for Build-from-Matrix snapshots).
  const data::ModelMetadata& metadata() const { return metadata_; }

  /// The options this snapshot was built with. ModelServer threads them
  /// through Refine/PublishFromFile so a pruned tenant stays pruned
  /// across hot swaps.
  const CenterIndexOptions& options() const { return options_; }
  /// True when the two-level index is live (enable_pruning, k >=
  /// min_prune_k, and the coarse build succeeded).
  bool pruned() const { return pruned_ != nullptr; }
  /// Coarse group count of the live pruned index (0 when not pruned).
  int64_t num_groups() const;
  /// Current prune-effectiveness counters (see PruneStats).
  PruneStats prune_stats() const;

  /// Nearest center for one point (`point` has dim() coordinates).
  /// Scalar engine path — the right call for a single ad-hoc query; high
  /// request rates should go through serving::RequestBatcher, which
  /// coalesces concurrent callers onto AssignRange.
  NearestResult AssignOne(const double* point) const;

  /// Nearest center + squared distance for rows [rows.begin, rows.end)
  /// of a borrowed contiguous block (the batcher's path). Output arrays
  /// are range-relative; `out_d2` may be null when only indices matter.
  void AssignRange(ConstMatrixView points, IndexRange rows,
                   int32_t* out_index, double* out_d2) const;

  /// Full-dataset assignment: bitwise identical to
  /// ComputeAssignment(data, centers(), pool, point_norms) — same
  /// reduction, same chunk grid, same Kahan fold — with the packing cost
  /// already paid at Build. `point_norms` (length data.n()) may be null.
  /// The pruned exact path preserves this bitwise (identical per-row d²
  /// feed the identical per-chunk Kahan chains); only approx_probes > 0
  /// may diverge.
  Assignment AssignBatch(const DatasetSource& data,
                         ThreadPool* pool = nullptr,
                         const double* point_norms = nullptr) const;
  Assignment AssignBatch(const Dataset& data, ThreadPool* pool = nullptr,
                         const double* point_norms = nullptr) const;

  /// The m nearest centers of one point, ascending by distance (exact
  /// ties: ascending center index). Writes min(m, k) entries and returns
  /// that count; slot 0 matches AssignOne bitwise. m >= 1.
  int64_t AssignTopM(const double* point, int64_t m,
                     std::vector<int32_t>* out_index,
                     std::vector<double>* out_d2) const;

  /// Batched top-m over a borrowed block: out_index/out_d2 hold m slots
  /// per row, row-major (see NearestCenterSearch::FindTopMRange; slots
  /// beyond k hold -1 / +infinity).
  void AssignTopMRange(ConstMatrixView points, IndexRange rows, int64_t m,
                       int32_t* out_index, double* out_d2) const;

  /// Recall of this index's serving path on `queries`: the fraction of
  /// rows whose AssignRange nearest-center index equals the exact flat
  /// scan's. 1.0 by construction for exact indexes (pruned or flat);
  /// meaningfully < 1.0 only with approx_probes > 0. Empty queries
  /// return 1.0.
  double MeasureApproxRecall(ConstMatrixView queries) const;

 private:
  // The two-level index state: one permuted, group-contiguous packed
  // panel set plus the coarse search and per-group bounds. Immutable
  // after build (heap-allocated so the coarse NearestCenterSearch's
  // reference to coarse_centers stays stable).
  struct PrunedIndex {
    CenterPanels panels;          // permuted centers, group-contiguous
    std::vector<double> norms;    // permuted ||c||² (expanded kernel only)
    std::vector<int32_t> perm_to_orig;  // permuted row -> original row
    std::vector<int64_t> group_begin;   // g+1 offsets in permuted space
    std::vector<double> group_radius;   // R_j (unsquared / sqrt space)
    std::vector<int32_t> active_groups;  // non-empty groups, ascending
    Matrix coarse_centers;              // g × d
    std::unique_ptr<NearestCenterSearch> coarse;  // frozen
    BatchKernel kernel = BatchKernel::kAuto;
    double max_center_len = 0.0;  // slack scale, see PrunedScanRow
  };

  CenterIndex(Matrix centers, data::ModelMetadata metadata,
              CenterIndexOptions options,
              std::vector<double> validated_norms, uint64_t version,
              ThreadPool* pool);

  /// Runs the coarse k-means over the centers and assembles PrunedIndex;
  /// leaves pruned_ null (flat serving) if the coarse build fails.
  void BuildPruned(ThreadPool* pool);

  /// Pruned-path FindRange: per-row adaptive group scans, bitwise equal
  /// to the flat FindRange in exact mode. `point_norms` (range-relative,
  /// SquaredNorm chain) may be null.
  void PrunedFindRange(ConstMatrixView points, IndexRange rows,
                       const double* point_norms, int32_t* out_index,
                       double* out_d2) const;

  /// Pruned-path FindTopMRange (same slot semantics as the flat path).
  void PrunedFindTopMRange(ConstMatrixView points, IndexRange rows,
                           const double* point_norms, int64_t m,
                           int32_t* out_index, double* out_d2) const;

  const Matrix centers_;  // declared before search_: search_ borrows it
  const data::ModelMetadata metadata_;
  const CenterIndexOptions options_;
  const uint64_t version_;
  NearestCenterSearch search_;  // frozen in the constructor, never again
  std::unique_ptr<const PrunedIndex> pruned_;  // null = flat serving

  // Wait-free telemetry cells (the one mutable corner of an otherwise
  // immutable snapshot; same idiom as serving/telemetry.h). Relaxed is
  // enough: these are monotone counters, never synchronization.
  mutable std::atomic<int64_t> stat_queries_{0};
  mutable std::atomic<int64_t> stat_groups_scanned_{0};
  mutable std::atomic<int64_t> stat_groups_pruned_{0};
  mutable std::atomic<int64_t> stat_exact_fallbacks_{0};
};

/// Serving-side Predict: the facade spelling of AssignBatch. Lives here
/// (not core/kmeans.h) so the training facade never depends upward on
/// the serving layer; unqualified calls resolve via ADL on CenterIndex.
Assignment Predict(const CenterIndex& index, const Dataset& data);
Assignment Predict(const CenterIndex& index, const DatasetSource& data);

}  // namespace kmeansll::serving

#endif  // KMEANSLL_SERVING_CENTER_INDEX_H_
