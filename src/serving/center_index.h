// CenterIndex: an immutable, shareable snapshot of a fitted center set,
// prepared for online nearest-center queries.
//
// Training produces centers; serving answers "which cluster is this
// point in" at high QPS. The index is the bridge: it owns a bitwise copy
// of the k × d centers together with everything the batch distance
// engine (distance/batch.h) needs precomputed — the packed CenterPanels
// and the center squared norms — so per-query work is pure scanning with
// zero packing or norm cost. Once built, a CenterIndex never changes;
// every query method is const and safe to call from any number of
// threads concurrently, which is what lets ModelServer publish snapshots
// RCU-style (readers hold a shared_ptr, writers build-then-swap — see
// serving/model_server.h).
//
// Determinism contract (extends distance/batch.h): AssignBatch runs the
// exact reduction ComputeAssignment runs (clustering/cost.h,
// ReduceNearestWithSearch) over this index's frozen panels, so its
// Assignment — indices, cost, and tie resolution — is bitwise identical
// to ComputeAssignment on the same centers at any pool size. AssignOne
// is the engine's scalar reference path (bitwise-consistent per pair),
// and AssignTopM's slot 0 is bitwise the AssignOne result.

#ifndef KMEANSLL_SERVING_CENTER_INDEX_H_
#define KMEANSLL_SERVING_CENTER_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "clustering/types.h"
#include "common/result.h"
#include "data/model_io.h"
#include "distance/nearest.h"
#include "matrix/dataset.h"
#include "matrix/dataset_view.h"
#include "matrix/matrix.h"
#include "parallel/thread_pool.h"

namespace kmeansll::serving {

class CenterIndex {
 public:
  /// Builds a snapshot from `centers` (copied/moved in; k >= 1, d >= 1).
  /// Packs the panels and computes the norms once, up front. `version`
  /// tags the snapshot (ModelServer bumps it per publish; it never
  /// affects results).
  static std::shared_ptr<const CenterIndex> Build(Matrix centers,
                                                  uint64_t version = 0);

  /// Builds from a loaded model artifact, adopting its metadata. The
  /// artifact's stored norms are already validated against the centers
  /// by data::LoadModel; Build recomputes with the same chain, so a
  /// FromModel index serves bitwise like a Build index over the same
  /// centers. Fails on an empty artifact.
  static Result<std::shared_ptr<const CenterIndex>> FromModel(
      const data::ModelArtifact& artifact, uint64_t version = 0);

  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(CenterIndex);

  int64_t k() const { return centers_.rows(); }
  int64_t dim() const { return centers_.cols(); }
  uint64_t version() const { return version_; }
  const Matrix& centers() const { return centers_; }
  /// Training provenance (empty for Build-from-Matrix snapshots).
  const data::ModelMetadata& metadata() const { return metadata_; }

  /// Nearest center for one point (`point` has dim() coordinates).
  /// Scalar engine path — the right call for a single ad-hoc query; high
  /// request rates should go through serving::RequestBatcher, which
  /// coalesces concurrent callers onto AssignRange.
  NearestResult AssignOne(const double* point) const;

  /// Nearest center + squared distance for rows [rows.begin, rows.end)
  /// of a borrowed contiguous block (the batcher's path). Output arrays
  /// are range-relative; `out_d2` may be null when only indices matter.
  void AssignRange(ConstMatrixView points, IndexRange rows,
                   int32_t* out_index, double* out_d2) const;

  /// Full-dataset assignment: bitwise identical to
  /// ComputeAssignment(data, centers(), pool, point_norms) — same
  /// reduction, same chunk grid, same Kahan fold — with the packing cost
  /// already paid at Build. `point_norms` (length data.n()) may be null.
  Assignment AssignBatch(const DatasetSource& data,
                         ThreadPool* pool = nullptr,
                         const double* point_norms = nullptr) const;
  Assignment AssignBatch(const Dataset& data, ThreadPool* pool = nullptr,
                         const double* point_norms = nullptr) const;

  /// The m nearest centers of one point, ascending by distance (exact
  /// ties: ascending center index). Writes min(m, k) entries and returns
  /// that count; slot 0 matches AssignOne bitwise. m >= 1.
  int64_t AssignTopM(const double* point, int64_t m,
                     std::vector<int32_t>* out_index,
                     std::vector<double>* out_d2) const;

  /// Batched top-m over a borrowed block: out_index/out_d2 hold m slots
  /// per row, row-major (see NearestCenterSearch::FindTopMRange; slots
  /// beyond k hold -1 / +infinity).
  void AssignTopMRange(ConstMatrixView points, IndexRange rows, int64_t m,
                       int32_t* out_index, double* out_d2) const;

 private:
  CenterIndex(Matrix centers, data::ModelMetadata metadata,
              uint64_t version);

  const Matrix centers_;  // declared before search_: search_ borrows it
  const data::ModelMetadata metadata_;
  const uint64_t version_;
  NearestCenterSearch search_;  // frozen in the constructor, never again
};

/// Serving-side Predict: the facade spelling of AssignBatch. Lives here
/// (not core/kmeans.h) so the training facade never depends upward on
/// the serving layer; unqualified calls resolve via ADL on CenterIndex.
Assignment Predict(const CenterIndex& index, const Dataset& data);
Assignment Predict(const CenterIndex& index, const DatasetSource& data);

}  // namespace kmeansll::serving

#endif  // KMEANSLL_SERVING_CENTER_INDEX_H_
