#include "serving/freshness.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <utility>

#include "clustering/cost.h"
#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/trace.h"
#include "data/model_io.h"
#include "rng/rng.h"
#include "rng/splitmix64.h"

namespace kmeansll::serving {

namespace {

constexpr char kMagic[8] = {'K', 'M', 'L', 'L', 'F', 'R', 'S', 'H'};
constexpr int32_t kVersion = 1;

struct RefineMetrics {
  Counter* cycles;
  Counter* minibatch_refines;
  Counter* reseeds;
  Counter* failures;
  Counter* checkpoint_retries;
  Counter* slo_misses;
};
const RefineMetrics& GetRefineMetrics() {
  static const RefineMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return new RefineMetrics{
        r.GetCounter("kmll_freshness_cycles_total",
                     "Refine cycles that republished a model."),
        r.GetCounter("kmll_freshness_minibatch_refines_total",
                     "Cycles repaired with minibatch SGD."),
        r.GetCounter("kmll_freshness_reseeds_total",
                     "Cycles that fell back to a full k-means|| reseed."),
        r.GetCounter("kmll_freshness_failures_total",
                     "Refine cycles that returned an error."),
        r.GetCounter("kmll_freshness_checkpoint_retries_total",
                     "Transient checkpoint-write failures retried."),
        r.GetCounter("kmll_freshness_slo_misses_total",
                     "Watchdog ticks that found the served model past "
                     "the freshness SLO."),
    };
  }();
  return *m;
}

template <typename T>
void AppendScalar(std::string* buf, T value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadScalar(const char** cursor, const char* end, T* value) {
  if (end - *cursor < static_cast<ptrdiff_t>(sizeof(T))) return false;
  std::memcpy(value, *cursor, sizeof(T));
  *cursor += sizeof(T);
  return true;
}

}  // namespace

RefineLoop::RefineLoop(ModelServer* server, const DatasetSource* data,
                       const RefineLoopOptions& options)
    : server_(server), data_(data), options_(options) {
  KMEANSLL_CHECK(server_ != nullptr);
  KMEANSLL_CHECK(data_ != nullptr);
}

RefineLoop::~RefineLoop() { Stop(); }

uint64_t RefineLoop::Fingerprint() const {
  // Binds the checkpoint to the job identity that determines the loop's
  // trajectory: the root seed and the data dimension. k is payload
  // shape, not identity (a reseed may legitimately change it).
  return rng::HashCombine(options_.seed,
                          static_cast<uint64_t>(data_->dim()));
}

Status RefineLoop::WriteCheckpointLocked(const Matrix& centers) {
  if (options_.checkpoint_path.empty()) return Status::OK();
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  AppendScalar(&buf, kVersion);
  AppendScalar(&buf, Fingerprint());
  AppendScalar(&buf, cycle_);
  AppendScalar(&buf, watermark_);
  AppendScalar(&buf, ewma_);
  AppendScalar(&buf, centers.rows());
  AppendScalar(&buf, centers.cols());
  AppendScalar(&buf, static_cast<int64_t>(cost_history_.size()));
  buf.append(reinterpret_cast<const char*>(centers.data()),
             static_cast<size_t>(centers.size()) * sizeof(double));
  buf.append(reinterpret_cast<const char*>(cost_history_.data()),
             cost_history_.size() * sizeof(double));
  AppendScalar(&buf, data::Crc32(buf.data(), buf.size()));
  const int64_t retries_before = stats_.checkpoint_retries;
  Status written = RetryTransient(
      RetryPolicy{},
      [&] {
        return AtomicWriteFile(options_.checkpoint_path, buf.data(),
                               buf.size(), "freshness.checkpoint");
      },
      &stats_.checkpoint_retries);
  GetRefineMetrics().checkpoint_retries->Increment(
      stats_.checkpoint_retries - retries_before);
  return written;
}

Status RefineLoop::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.checkpoint_path.empty() ||
      !FileExists(options_.checkpoint_path)) {
    return Status::OK();
  }
  std::ifstream in(options_.checkpoint_path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open freshness checkpoint '" +
                           options_.checkpoint_path + "'");
  }
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IOError("cannot read freshness checkpoint '" +
                           options_.checkpoint_path + "'");
  }

  // Validation failures below mean a stale or torn artifact: ignore it
  // and start fresh (the same never-trust-a-bad-checkpoint policy as
  // data/checkpoint_io.h), never resume from garbage.
  const char* cursor = buf.data();
  const char* end = buf.data() + buf.size();
  if (buf.size() < sizeof(kMagic) + sizeof(uint32_t) ||
      std::memcmp(cursor, kMagic, sizeof(kMagic)) != 0) {
    return Status::OK();
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, end - sizeof(uint32_t), sizeof(uint32_t));
  if (data::Crc32(buf.data(), buf.size() - sizeof(uint32_t)) !=
      stored_crc) {
    return Status::OK();
  }
  cursor += sizeof(kMagic);
  end -= sizeof(uint32_t);
  int32_t version = 0;
  uint64_t fingerprint = 0;
  int64_t cycle = 0, watermark = 0, k = 0, d = 0, history_len = 0;
  double ewma = 0;
  if (!ReadScalar(&cursor, end, &version) || version != kVersion ||
      !ReadScalar(&cursor, end, &fingerprint) ||
      fingerprint != Fingerprint() ||
      !ReadScalar(&cursor, end, &cycle) ||
      !ReadScalar(&cursor, end, &watermark) ||
      !ReadScalar(&cursor, end, &ewma) ||
      !ReadScalar(&cursor, end, &k) || !ReadScalar(&cursor, end, &d) ||
      !ReadScalar(&cursor, end, &history_len) || k <= 0 || d <= 0 ||
      history_len < 0 ||
      end - cursor !=
          static_cast<ptrdiff_t>((k * d + history_len) * sizeof(double))) {
    return Status::OK();
  }
  Matrix centers(k, d);
  std::memcpy(centers.data(), cursor,
              static_cast<size_t>(k * d) * sizeof(double));
  cursor += k * d * sizeof(double);
  std::vector<double> history(static_cast<size_t>(history_len));
  std::memcpy(history.data(), cursor, history.size() * sizeof(double));

  // Republish first: if the crash hit between checkpoint and publish,
  // this is the half that is missing; if it hit after, republishing the
  // same centers is harmless (version bumps, contents identical).
  Status published = server_->Refine(
      [&](const CenterIndex&) -> Result<Matrix> { return centers; });
  if (!published.ok()) return published;
  cycle_ = cycle;
  watermark_ = watermark;
  ewma_ = ewma;
  cost_history_ = std::move(history);
  ++stats_.recoveries;
  stats_.last_cost_per_point =
      cost_history_.empty() ? 0 : cost_history_.back();
  return Status::OK();
}

Status RefineLoop::RunOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  Status status = RunOnceLocked();
  if (!status.ok()) {
    ++stats_.failures;
    GetRefineMetrics().failures->Increment();
  }
  return status;
}

Status RefineLoop::RunOnceLocked() {
  KMEANSLL_TRACE_SPAN("freshness.refine_cycle");
  const int64_t n = data_->n();
  if (n <= 0 || n - watermark_ < std::max<int64_t>(options_.min_new_rows, 1)) {
    ++stats_.skipped;
    return Status::OK();
  }
  KMEANSLL_RETURN_NOT_OK(fault::Check("freshness.refine"));

  // Drift: the SERVED model's cost-per-point on the data as it is now,
  // against the EWMA of what this loop's own refinements achieve. The
  // ratio test fires exactly when serving quality fell off the baseline
  // — new rows alone don't trigger a reseed if the served centers still
  // explain them.
  const std::shared_ptr<const CenterIndex> snapshot = server_->Acquire();
  const double served_cpp =
      ComputeCost(*data_, snapshot->centers()) / static_cast<double>(n);
  const bool reseed =
      ewma_ > 0 && served_cpp > options_.drift_reseed_ratio * ewma_;
  const uint64_t cycle_seed =
      rng::HashCombine(options_.seed, static_cast<uint64_t>(cycle_));

  Matrix next;
  double post_cost = 0;
  if (reseed) {
    KMeansConfig config = options_.reseed;
    config.seed = cycle_seed;
    KMeans trainer(std::move(config));
    KMEANSLL_ASSIGN_OR_RETURN(KMeansReport report, trainer.Fit(*data_));
    next = std::move(report.centers);
    post_cost = report.final_cost;
  } else {
    KMEANSLL_ASSIGN_OR_RETURN(
        MiniBatchResult refined,
        RunMiniBatch(*data_, snapshot->centers(), options_.minibatch,
                     rng::Rng(cycle_seed)));
    next = std::move(refined.centers);
    post_cost = refined.final_cost;
  }
  const double post_cpp = post_cost / static_cast<double>(n);

  // Commit order: advance the loop state, persist it WITH the new
  // centers, and only then publish. A crash before the checkpoint
  // re-runs the cycle (same seed, same result); a crash after it is
  // exactly what Recover() repairs by republishing.
  cycle_ += 1;
  watermark_ = n;
  ewma_ = ewma_ == 0 ? post_cpp
                     : options_.ewma_alpha * post_cpp +
                           (1 - options_.ewma_alpha) * ewma_;
  cost_history_.push_back(post_cpp);
  KMEANSLL_RETURN_NOT_OK(WriteCheckpointLocked(next));
  KMEANSLL_RETURN_NOT_OK(server_->Refine(
      [&](const CenterIndex&) -> Result<Matrix> { return std::move(next); }));

  ++stats_.cycles;
  GetRefineMetrics().cycles->Increment();
  if (reseed) {
    ++stats_.reseeds;
    GetRefineMetrics().reseeds->Increment();
  } else {
    ++stats_.minibatch_refines;
    GetRefineMetrics().minibatch_refines->Increment();
  }
  stats_.last_cost_per_point = post_cpp;
  return Status::OK();
}

void RefineLoop::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(thread_mu_);
    while (!stop_) {
      tick_cv_.wait_for(lock,
                        std::chrono::milliseconds(
                            std::max<int64_t>(options_.tick_ms, 1)),
                        [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      if (options_.freshness_slo_ms > 0) {
        const ModelServer::Stats server_stats = server_->stats();
        if (server_stats.staleness_ms > options_.freshness_slo_ms) {
          server_->MarkStale(true);
          std::lock_guard<std::mutex> state_lock(mu_);
          ++stats_.slo_misses;
          GetRefineMetrics().slo_misses->Increment();
        }
      }
      // Failures are counted in stats_ and retried next tick — a broken
      // cycle must not kill the freshness watchdog.
      const Status cycle_status = RunOnce();
      (void)cycle_status;
      lock.lock();
    }
  });
}

void RefineLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stop_ = true;
  }
  tick_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  running_ = false;
}

RefineStats RefineLoop::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RefineStats out = stats_;
  out.ewma_cost_per_point = ewma_;
  out.watermark = watermark_;
  return out;
}

std::vector<double> RefineLoop::cost_history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cost_history_;
}

}  // namespace kmeansll::serving
