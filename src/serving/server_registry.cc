#include "serving/server_registry.h"

#include <mutex>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/timer.h"

namespace kmeansll::serving {

Status ServerRegistry::Register(const std::string& name,
                                std::shared_ptr<const CenterIndex> initial,
                                const TenantOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (initial == nullptr) {
    return Status::InvalidArgument("initial snapshot must be non-null");
  }
  auto tenant = std::make_unique<Tenant>(std::move(initial), options.batcher);
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto [it, inserted] = tenants_.emplace(name, std::move(tenant));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("model '" + name +
                                   "' is already registered");
  }
  return Status::OK();
}

Result<ServerRegistry::Tenant*> ServerRegistry::Find(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::InvalidArgument("unknown model '" + name + "'");
  }
  return it->second.get();
}

Result<NearestResult> ServerRegistry::Assign(const std::string& name,
                                             const double* point) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  WallTimer timer;
  Result<NearestResult> result = tenant->batcher.Assign(point);
  if (result.ok()) {
    tenant->latency.Record(timer.ElapsedNanos() / 1000);
  }
  return result;
}

Result<int64_t> ServerRegistry::AssignTopM(const std::string& name,
                                           const double* point, int64_t m,
                                           std::vector<int32_t>* out_index,
                                           std::vector<double>* out_d2) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  WallTimer timer;
  const std::shared_ptr<const CenterIndex> snapshot =
      tenant->server.Acquire();
  const int64_t filled = snapshot->AssignTopM(point, m, out_index, out_d2);
  tenant->topm_queries.fetch_add(1, std::memory_order_relaxed);
  tenant->latency.Record(timer.ElapsedNanos() / 1000);
  return filled;
}

Result<Assignment> ServerRegistry::AssignBulk(const std::string& name,
                                              const DatasetSource& data,
                                              ThreadPool* pool) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  const std::shared_ptr<const CenterIndex> snapshot =
      tenant->server.Acquire();
  tenant->bulk_queries.fetch_add(1, std::memory_order_relaxed);
  tenant->bulk_rows.fetch_add(data.n(), std::memory_order_relaxed);
  return snapshot->AssignBatch(data, pool);
}

Status ServerRegistry::Publish(const std::string& name,
                               std::shared_ptr<const CenterIndex> next) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  return tenant->server.Publish(std::move(next));
}

Status ServerRegistry::PublishFromFile(const std::string& name,
                                       const std::string& path) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  return tenant->server.PublishFromFile(path);
}

Status ServerRegistry::Refine(const std::string& name,
                              const ModelServer::RefineFn& fn) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  return tenant->server.Refine(fn);
}

Result<std::shared_ptr<const CenterIndex>> ServerRegistry::AcquireSnapshot(
    const std::string& name) const {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  return tenant->server.Acquire();
}

Result<ModelServer*> ServerRegistry::server(const std::string& name) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  return &tenant->server;
}

Result<ServerRegistry::TenantStats> ServerRegistry::stats(
    const std::string& name) const {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  TenantStats out;
  out.batcher = tenant->batcher.stats();
  out.server = tenant->server.stats();
  out.topm_queries = tenant->topm_queries.load(std::memory_order_relaxed);
  out.bulk_queries = tenant->bulk_queries.load(std::memory_order_relaxed);
  out.bulk_rows = tenant->bulk_rows.load(std::memory_order_relaxed);
  out.latency = tenant->latency.snapshot();
  const std::shared_ptr<const CenterIndex> snapshot =
      tenant->server.Acquire();
  out.pruned = snapshot->pruned();
  out.prune_groups = snapshot->num_groups();
  out.prune = snapshot->prune_stats();
  return out;
}

std::vector<std::string> ServerRegistry::model_names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    (void)tenant;
    names.push_back(name);
  }
  return names;
}

int64_t ServerRegistry::num_models() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(tenants_.size());
}

std::string ServerRegistry::DumpPrometheusText() const {
  // Snapshot every tenant first so each metric family lists all of its
  // `model="..."` samples under a single # TYPE header, as the text
  // format requires. Tenant pointers are stable and the per-tenant
  // reads are the same atomic/mutex-protected paths stats() uses, so
  // the shared lock is held only for the map walk.
  std::vector<std::pair<std::string, TenantStats>> snaps;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    snaps.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) {
      TenantStats s;
      s.batcher = tenant->batcher.stats();
      s.server = tenant->server.stats();
      s.topm_queries = tenant->topm_queries.load(std::memory_order_relaxed);
      s.bulk_queries = tenant->bulk_queries.load(std::memory_order_relaxed);
      s.bulk_rows = tenant->bulk_rows.load(std::memory_order_relaxed);
      s.latency = tenant->latency.snapshot();
      const std::shared_ptr<const CenterIndex> snapshot =
          tenant->server.Acquire();
      s.pruned = snapshot->pruned();
      s.prune_groups = snapshot->num_groups();
      s.prune = snapshot->prune_stats();
      snaps.emplace_back(name, std::move(s));
    }
  }

  std::string out;
  const auto family = [&](const std::string& name, const char* type,
                          const std::string& help,
                          int64_t (*value)(const TenantStats&)) {
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& [model, s] : snaps) {
      // Escape the three characters the format reserves in label values.
      std::string escaped;
      escaped.reserve(model.size());
      for (char c : model) {
        if (c == '\\') {
          escaped += "\\\\";
        } else if (c == '"') {
          escaped += "\\\"";
        } else if (c == '\n') {
          escaped += "\\n";
        } else {
          escaped += c;
        }
      }
      out += name + "{model=\"" + escaped + "\"} " +
             std::to_string(value(s)) + "\n";
    }
  };

  family("kmll_tenant_queries_total", "counter",
         "Batched Assign calls admitted or shed, per tenant.",
         [](const TenantStats& s) { return s.batcher.queries; });
  family("kmll_tenant_served_total", "counter",
         "Queries answered with a result, per tenant.",
         [](const TenantStats& s) { return s.batcher.served; });
  family("kmll_tenant_shed_total", "counter",
         "Queries rejected with kUnavailable, per tenant.",
         [](const TenantStats& s) { return s.batcher.shed; });
  family("kmll_tenant_deadline_misses_total", "counter",
         "Queries served past their latency deadline, per tenant.",
         [](const TenantStats& s) { return s.batcher.deadline_misses; });
  family("kmll_tenant_batches_total", "counter",
         "Engine passes flushed by the batcher, per tenant.",
         [](const TenantStats& s) { return s.batcher.batches; });
  family("kmll_tenant_batched_points_total", "counter",
         "Points across all flushed batches, per tenant.",
         [](const TenantStats& s) { return s.batcher.batched_points; });
  family("kmll_tenant_largest_batch", "gauge",
         "Largest coalesced batch seen, per tenant.",
         [](const TenantStats& s) { return s.batcher.largest_batch; });
  family("kmll_tenant_adaptive_batch_limit", "gauge",
         "Batch-full threshold the next batch opens with, per tenant.",
         [](const TenantStats& s) { return s.batcher.adaptive_batch_limit; });
  family("kmll_tenant_publishes_total", "counter",
         "Successful snapshot publishes, per tenant.",
         [](const TenantStats& s) { return s.server.publishes; });
  family("kmll_tenant_publish_failed_total", "counter",
         "Refused snapshot publishes, per tenant.",
         [](const TenantStats& s) { return s.server.publish_failed; });
  family("kmll_tenant_refines_total", "counter",
         "Successful refine passes, per tenant.",
         [](const TenantStats& s) { return s.server.refines; });
  family("kmll_tenant_refine_failed_total", "counter",
         "Refine passes that published nothing, per tenant.",
         [](const TenantStats& s) { return s.server.refine_failed; });
  family("kmll_tenant_serving_stale", "gauge",
         "1 when the freshness SLO is missed and the tenant serves the "
         "last good snapshot, else 0.",
         [](const TenantStats& s) {
           return static_cast<int64_t>(s.server.serving_stale ? 1 : 0);
         });
  family("kmll_tenant_staleness_ms", "gauge",
         "Milliseconds since the tenant's last successful publish.",
         [](const TenantStats& s) { return s.server.staleness_ms; });
  family("kmll_tenant_topm_queries_total", "counter",
         "AssignTopM calls, per tenant.",
         [](const TenantStats& s) { return s.topm_queries; });
  family("kmll_tenant_bulk_queries_total", "counter",
         "AssignBulk calls, per tenant.",
         [](const TenantStats& s) { return s.bulk_queries; });
  family("kmll_tenant_bulk_rows_total", "counter",
         "Rows assigned through AssignBulk, per tenant.",
         [](const TenantStats& s) { return s.bulk_rows; });
  family("kmll_tenant_prune_queries_total", "counter",
         "Queries answered via the pruned path on the current snapshot, "
         "per tenant (reset on publish).",
         [](const TenantStats& s) { return s.prune.queries; });
  family("kmll_tenant_prune_groups_scanned_total", "counter",
         "Coarse groups that reached the engine on the current snapshot, "
         "per tenant (reset on publish).",
         [](const TenantStats& s) { return s.prune.groups_scanned; });
  family("kmll_tenant_prune_groups_pruned_total", "counter",
         "Coarse groups skipped on the current snapshot, per tenant "
         "(reset on publish).",
         [](const TenantStats& s) { return s.prune.groups_pruned; });
  family("kmll_tenant_prune_exact_fallbacks_total", "counter",
         "Pruned-path queries served flat on the current snapshot, per "
         "tenant (reset on publish).",
         [](const TenantStats& s) { return s.prune.exact_fallbacks; });

  // Per-tenant served latency (Assign + TopM), cumulative bucket format.
  out +=
      "# HELP kmll_tenant_latency_us Served Assign/AssignTopM latency in "
      "microseconds, per tenant. Bucket bounds are HdrHistogram-style (8 "
      "linear sub-buckets per octave); percentile estimates report the "
      "bucket upper bound, conservative within 12.5% relative error.\n";
  out += "# TYPE kmll_tenant_latency_us histogram\n";
  for (const auto& [model, s] : snaps) {
    AppendPrometheusHistogram("kmll_tenant_latency_us", {{"model", model}},
                              s.latency, &out);
  }

  // The process-wide registry closes the scrape: shard I/O, oplog,
  // ingest, freshness, and training counters live there.
  out += MetricsRegistry::Global().DumpPrometheusText();
  return out;
}

}  // namespace kmeansll::serving
