#include "serving/server_registry.h"

#include <mutex>
#include <utility>

#include "common/timer.h"

namespace kmeansll::serving {

Status ServerRegistry::Register(const std::string& name,
                                std::shared_ptr<const CenterIndex> initial,
                                const TenantOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (initial == nullptr) {
    return Status::InvalidArgument("initial snapshot must be non-null");
  }
  auto tenant = std::make_unique<Tenant>(std::move(initial), options.batcher);
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto [it, inserted] = tenants_.emplace(name, std::move(tenant));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("model '" + name +
                                   "' is already registered");
  }
  return Status::OK();
}

Result<ServerRegistry::Tenant*> ServerRegistry::Find(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::InvalidArgument("unknown model '" + name + "'");
  }
  return it->second.get();
}

Result<NearestResult> ServerRegistry::Assign(const std::string& name,
                                             const double* point) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  WallTimer timer;
  Result<NearestResult> result = tenant->batcher.Assign(point);
  if (result.ok()) {
    tenant->latency.Record(timer.ElapsedNanos() / 1000);
  }
  return result;
}

Result<int64_t> ServerRegistry::AssignTopM(const std::string& name,
                                           const double* point, int64_t m,
                                           std::vector<int32_t>* out_index,
                                           std::vector<double>* out_d2) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  WallTimer timer;
  const std::shared_ptr<const CenterIndex> snapshot =
      tenant->server.Acquire();
  const int64_t filled = snapshot->AssignTopM(point, m, out_index, out_d2);
  tenant->topm_queries.fetch_add(1, std::memory_order_relaxed);
  tenant->latency.Record(timer.ElapsedNanos() / 1000);
  return filled;
}

Result<Assignment> ServerRegistry::AssignBulk(const std::string& name,
                                              const DatasetSource& data,
                                              ThreadPool* pool) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  const std::shared_ptr<const CenterIndex> snapshot =
      tenant->server.Acquire();
  tenant->bulk_queries.fetch_add(1, std::memory_order_relaxed);
  tenant->bulk_rows.fetch_add(data.n(), std::memory_order_relaxed);
  return snapshot->AssignBatch(data, pool);
}

Status ServerRegistry::Publish(const std::string& name,
                               std::shared_ptr<const CenterIndex> next) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  return tenant->server.Publish(std::move(next));
}

Status ServerRegistry::PublishFromFile(const std::string& name,
                                       const std::string& path) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  return tenant->server.PublishFromFile(path);
}

Status ServerRegistry::Refine(const std::string& name,
                              const ModelServer::RefineFn& fn) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  return tenant->server.Refine(fn);
}

Result<std::shared_ptr<const CenterIndex>> ServerRegistry::AcquireSnapshot(
    const std::string& name) const {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  return tenant->server.Acquire();
}

Result<ModelServer*> ServerRegistry::server(const std::string& name) {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  return &tenant->server;
}

Result<ServerRegistry::TenantStats> ServerRegistry::stats(
    const std::string& name) const {
  KMEANSLL_ASSIGN_OR_RETURN(Tenant * tenant, Find(name));
  TenantStats out;
  out.batcher = tenant->batcher.stats();
  out.server = tenant->server.stats();
  out.topm_queries = tenant->topm_queries.load(std::memory_order_relaxed);
  out.bulk_queries = tenant->bulk_queries.load(std::memory_order_relaxed);
  out.bulk_rows = tenant->bulk_rows.load(std::memory_order_relaxed);
  out.latency = tenant->latency.snapshot();
  const std::shared_ptr<const CenterIndex> snapshot =
      tenant->server.Acquire();
  out.pruned = snapshot->pruned();
  out.prune_groups = snapshot->num_groups();
  out.prune = snapshot->prune_stats();
  return out;
}

std::vector<std::string> ServerRegistry::model_names() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    (void)tenant;
    names.push_back(name);
  }
  return names;
}

int64_t ServerRegistry::num_models() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(tenants_.size());
}

}  // namespace kmeansll::serving
