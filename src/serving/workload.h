// YCSB-style workload generation for the multi-tenant serving layer.
//
// A workload is a deterministic stream of operations — which model,
// which operation (single-point assign / top-m / bulk), which query row
// — drawn from seeded zipf distributions, the methodology BonsaiKV's
// evaluation scheme and the YCSB family use: serving systems are only
// credible under SKEWED load (a few hot models and hot queries, a long
// uniform tail says nothing about contention) and MIXED operations (a
// read-only stream never exercises batching against bulk scans).
//
// Determinism contract: the op stream of WorkloadGenerator(spec, t) is
// a pure function of (spec.seed, t) — same pair, bitwise-identical
// stream; different stream_index, statistically independent stream (the
// generator forks the library Rng with StreamPurpose::kWorkload). The
// harness gives each load thread its own stream_index, so a multi-
// threaded run issues exactly the same multiset of operations at any
// thread count, and a single-threaded smoke can replay the exact stream
// a failure came from. tests/workload_test.cc pins the contract:
// bitwise replay, zipf frequency-vs-rank sanity against the exact model
// probabilities, and mix-ratio accounting.

#ifndef KMEANSLL_SERVING_WORKLOAD_H_
#define KMEANSLL_SERVING_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "rng/rng.h"
#include "rng/zipf.h"

namespace kmeansll::serving {

enum class WorkloadOpType : uint8_t {
  kAssignOne = 0,  ///< single-point nearest center (the QPS path)
  kAssignTopM = 1, ///< m nearest centers of one point
  kBulk = 2,       ///< batch assignment of bulk_rows points
};

/// One operation of the stream.
struct WorkloadOp {
  WorkloadOpType type = WorkloadOpType::kAssignOne;
  int32_t model = 0;  ///< model rank: 0 is the hottest tenant
  int32_t row = 0;    ///< query-pool rank: 0 is the hottest query
  bool operator==(const WorkloadOp&) const = default;
};

/// Operation mix by weight (normalized internally; must sum > 0).
struct WorkloadMix {
  double assign_one = 1.0;
  double top_m = 0.0;
  double bulk = 0.0;
};

struct WorkloadSpec {
  int64_t num_models = 1;    ///< tenants, ranked hot to cold
  double model_theta = 0.0;  ///< zipf skew across models (0 = uniform)
  int64_t query_pool = 1024; ///< distinct query points
  double query_theta = 0.0;  ///< zipf skew across query rows
  WorkloadMix mix;
  int64_t top_m = 4;         ///< m for kAssignTopM ops
  int64_t bulk_rows = 64;    ///< rows per kBulk op
  uint64_t seed = 0xC0FFEE;
};

/// Deterministic op stream; one instance per load thread. Not
/// thread-safe (each thread owns its own generator, which is the point).
class WorkloadGenerator {
 public:
  /// `stream_index` identifies the thread's substream; see the file
  /// comment for the determinism contract.
  WorkloadGenerator(const WorkloadSpec& spec, uint64_t stream_index);

  WorkloadOp Next();

  /// Convenience: the next `count` ops as a vector.
  std::vector<WorkloadOp> Take(int64_t count);

  const WorkloadSpec& spec() const { return spec_; }

 private:
  WorkloadSpec spec_;
  rng::ZipfGenerator models_;
  rng::ZipfGenerator rows_;
  rng::Rng rng_;
  double cut_assign_;  ///< normalized cumulative mix thresholds
  double cut_topm_;
};

}  // namespace kmeansll::serving

#endif  // KMEANSLL_SERVING_WORKLOAD_H_
