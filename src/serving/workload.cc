#include "serving/workload.h"

#include "common/macros.h"

namespace kmeansll::serving {

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec,
                                     uint64_t stream_index)
    : spec_(spec),
      models_(spec.num_models, spec.model_theta),
      rows_(spec.query_pool, spec.query_theta),
      rng_(rng::MakeRootRng(spec.seed)
               .Fork(rng::StreamPurpose::kWorkload, stream_index)) {
  KMEANSLL_CHECK_GE(spec_.top_m, 1);
  KMEANSLL_CHECK_GE(spec_.bulk_rows, 1);
  const double total =
      spec_.mix.assign_one + spec_.mix.top_m + spec_.mix.bulk;
  KMEANSLL_CHECK(spec_.mix.assign_one >= 0.0 && spec_.mix.top_m >= 0.0 &&
                 spec_.mix.bulk >= 0.0 && total > 0.0);
  cut_assign_ = spec_.mix.assign_one / total;
  cut_topm_ = cut_assign_ + spec_.mix.top_m / total;
}

WorkloadOp WorkloadGenerator::Next() {
  // Fixed draw order (op kind, model, row) keeps the stream bitwise
  // reproducible: every op consumes exactly three uniforms.
  WorkloadOp op;
  const double u = rng_.NextDouble();
  op.type = u < cut_assign_
                ? WorkloadOpType::kAssignOne
                : (u < cut_topm_ ? WorkloadOpType::kAssignTopM
                                 : WorkloadOpType::kBulk);
  op.model = static_cast<int32_t>(models_.Next(rng_));
  op.row = static_cast<int32_t>(rows_.Next(rng_));
  return op;
}

std::vector<WorkloadOp> WorkloadGenerator::Take(int64_t count) {
  KMEANSLL_CHECK_GE(count, 0);
  std::vector<WorkloadOp> ops;
  ops.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) ops.push_back(Next());
  return ops;
}

}  // namespace kmeansll::serving
