#include "serving/model_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace kmeansll::serving {

ModelServer::ModelServer(std::shared_ptr<const CenterIndex> initial) {
  KMEANSLL_CHECK(initial != nullptr);
  snapshot_.store(std::move(initial), std::memory_order_release);
}

Status ModelServer::Publish(std::shared_ptr<const CenterIndex> next) {
  if (next == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  const std::shared_ptr<const CenterIndex> current = Acquire();
  if (next->dim() != current->dim()) {
    return Status::InvalidArgument(
        "snapshot dimension " + std::to_string(next->dim()) +
        " does not match served dimension " +
        std::to_string(current->dim()));
  }
  snapshot_.store(std::move(next), std::memory_order_release);
  return Status::OK();
}

Status ModelServer::Refine(const RefineFn& fn) {
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  const std::shared_ptr<const CenterIndex> current = Acquire();
  KMEANSLL_ASSIGN_OR_RETURN(Matrix next_centers, fn(*current));
  if (next_centers.rows() <= 0) {
    return Status::InvalidArgument("refinement produced no centers");
  }
  if (next_centers.cols() != current->dim()) {
    return Status::InvalidArgument(
        "refinement changed the dimension from " +
        std::to_string(current->dim()) + " to " +
        std::to_string(next_centers.cols()));
  }
  // Build-then-swap: panels and norms are packed here, outside any
  // reader's path, and the finished index is installed in one store.
  snapshot_.store(CenterIndex::Build(std::move(next_centers),
                                     current->version() + 1),
                  std::memory_order_release);
  return Status::OK();
}

Status ModelServer::RefineWithMiniBatch(const DatasetSource& data,
                                        const MiniBatchOptions& options,
                                        uint64_t seed) {
  return Refine([&](const CenterIndex& current) -> Result<Matrix> {
    KMEANSLL_ASSIGN_OR_RETURN(
        MiniBatchResult refined,
        RunMiniBatch(data, current.centers(), options, rng::Rng(seed)));
    return std::move(refined.centers);
  });
}

RequestBatcher::RequestBatcher(const ModelServer* server,
                               const RequestBatcherOptions& options)
    : server_(server), options_(options) {
  KMEANSLL_CHECK(server_ != nullptr);
  KMEANSLL_CHECK_GE(options_.max_batch, 1);
  KMEANSLL_CHECK_GE(options_.max_delay_us, 0);
  KMEANSLL_CHECK_GE(options_.idle_close_us, 0);
  dim_ = server_->Acquire()->dim();
}

NearestResult RequestBatcher::Assign(const double* point) {
  std::shared_ptr<Batch> batch;
  int64_t slot = 0;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (open_ == nullptr) {
      open_ = std::make_shared<Batch>();
      open_->points.reserve(
          static_cast<size_t>(options_.max_batch * dim_));
      leader = true;
    }
    batch = open_;
    slot = batch->rows++;
    batch->points.insert(batch->points.end(), point, point + dim_);
    ++stats_.queries;
    if (batch->rows >= options_.max_batch) {
      // Full: stop accepting joins and wake the (possibly waiting)
      // leader so the flush happens now, not at the deadline.
      batch->closed = true;
      open_ = nullptr;
      leader_cv_.notify_all();
    }

    if (!leader) {
      done_cv_.wait(lock, [&] { return batch->done; });
      return batch->results[static_cast<size_t>(slot)];
    }

    // Leader: give followers up to max_delay_us to coalesce — the wait
    // releases the lock, which is exactly what lets them join — but
    // re-check every idle_close_us and flush early once joins go quiet
    // (see RequestBatcherOptions::idle_close_us).
    if (!batch->closed && options_.max_delay_us > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.max_delay_us);
      while (!batch->closed) {
        const int64_t joined = batch->rows;
        auto wake = deadline;
        if (options_.idle_close_us > 0) {
          wake = std::min(
              deadline, std::chrono::steady_clock::now() +
                            std::chrono::microseconds(
                                options_.idle_close_us));
        }
        leader_cv_.wait_until(lock, wake, [&] { return batch->closed; });
        if (batch->closed ||
            std::chrono::steady_clock::now() >= deadline) {
          break;
        }
        if (options_.idle_close_us > 0 && batch->rows == joined) {
          break;  // quiescent: nobody joined during the idle window
        }
      }
    }
    if (!batch->closed) {
      batch->closed = true;
      if (open_ == batch) open_ = nullptr;
    }
  }

  // Flush (outside the lock: followers of the *next* generation must be
  // able to coalesce while this batch scans). The snapshot is acquired
  // at flush time, so the whole batch is answered by one model version.
  const std::shared_ptr<const CenterIndex> snapshot = server_->Acquire();
  const int64_t rows = batch->rows;
  std::vector<int32_t> idx(static_cast<size_t>(rows));
  std::vector<double> d2(static_cast<size_t>(rows));
  snapshot->AssignRange(
      ConstMatrixView(batch->points.data(), rows, dim_),
      IndexRange{0, rows}, idx.data(), d2.data());
  batch->results.resize(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    batch->results[static_cast<size_t>(i)] = NearestResult{
        static_cast<int64_t>(idx[static_cast<size_t>(i)]),
        d2[static_cast<size_t>(i)]};
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    batch->done = true;
    ++stats_.batches;
    stats_.batched_points += rows;
    stats_.largest_batch = std::max(stats_.largest_batch, rows);
    done_cv_.notify_all();
  }
  return batch->results[static_cast<size_t>(slot)];
}

RequestBatcher::Stats RequestBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kmeansll::serving
