#include "serving/model_server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "data/model_io.h"

namespace kmeansll::serving {

namespace {
int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Process-wide serving totals, mirrored from the per-instance atomic
// cells (ModelServer::Stats / RequestBatcher::Stats stay the exact
// per-instance source of truth the tests assert on).
Counter* PublishesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "kmll_serving_publishes_total",
      "Model snapshots installed (publishes plus refines).");
  return c;
}
Counter* PublishFailedCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "kmll_serving_publish_failed_total",
      "Publish attempts rejected with the old snapshot left serving.");
  return c;
}
Counter* RefinesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "kmll_serving_refines_total",
      "In-place refinements built and swapped in.");
  return c;
}
Counter* RefineFailedCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "kmll_serving_refine_failed_total",
      "Refinements rejected before any swap.");
  return c;
}

struct BatcherMetrics {
  Counter* queries;
  Counter* batches;
  Counter* served;
  Counter* shed;
  Counter* deadline_misses;
};
const BatcherMetrics& GetBatcherMetrics() {
  static const BatcherMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return new BatcherMetrics{
        r.GetCounter("kmll_batcher_queries_total",
                     "Single-point queries entering request batchers."),
        r.GetCounter("kmll_batcher_batches_total",
                     "Coalesced batches flushed through AssignRange."),
        r.GetCounter("kmll_batcher_served_total",
                     "Queries answered by a flushed batch."),
        r.GetCounter("kmll_batcher_shed_total",
                     "Queries shed by admission control or shutdown."),
        r.GetCounter("kmll_batcher_deadline_misses_total",
                     "Served queries whose batch exceeded the latency "
                     "target."),
    };
  }();
  return *m;
}
}  // namespace

ModelServer::ModelServer(std::shared_ptr<const CenterIndex> initial) {
  KMEANSLL_CHECK(initial != nullptr);
  snapshot_.store(std::move(initial), std::memory_order_release);
  StampPublish();
}

void ModelServer::StampPublish() {
  last_publish_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  serving_stale_.store(false, std::memory_order_relaxed);
}

Status ModelServer::Publish(std::shared_ptr<const CenterIndex> next) {
  KMEANSLL_TRACE_SPAN("serving.publish");
  if (next == nullptr) {
    publish_failed_.fetch_add(1, std::memory_order_relaxed);
    PublishFailedCounter()->Increment();
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  const std::shared_ptr<const CenterIndex> current = Acquire();
  if (next->dim() != current->dim()) {
    publish_failed_.fetch_add(1, std::memory_order_relaxed);
    PublishFailedCounter()->Increment();
    return Status::InvalidArgument(
        "snapshot dimension " + std::to_string(next->dim()) +
        " does not match served dimension " +
        std::to_string(current->dim()));
  }
  snapshot_.store(std::move(next), std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  PublishesCounter()->Increment();
  StampPublish();
  return Status::OK();
}

Status ModelServer::PublishFromFile(const std::string& path) {
  // Load and build entirely outside the swap: every validation failure
  // (unreadable file, CRC mismatch from a torn write, empty artifact,
  // wrong dimension via Publish) returns here with the old snapshot
  // still installed and still serving.
  Result<data::ModelArtifact> artifact = data::LoadModel(path);
  if (!artifact.ok()) {
    publish_failed_.fetch_add(1, std::memory_order_relaxed);
    PublishFailedCounter()->Increment();
    return artifact.status();
  }
  // The replacement inherits the served snapshot's CenterIndexOptions, so
  // a tenant published onto a pruned index stays pruned across file swaps.
  Result<std::shared_ptr<const CenterIndex>> next = CenterIndex::FromModel(
      artifact.ValueOrDie(), Acquire()->options(), published_version() + 1);
  if (!next.ok()) {
    publish_failed_.fetch_add(1, std::memory_order_relaxed);
    PublishFailedCounter()->Increment();
    return next.status();
  }
  return Publish(std::move(next).ValueOrDie());
}

Status ModelServer::Refine(const RefineFn& fn) {
  KMEANSLL_TRACE_SPAN("serving.refine");
  std::lock_guard<std::mutex> writer_lock(writer_mu_);
  const std::shared_ptr<const CenterIndex> current = Acquire();
  Result<Matrix> refined = fn(*current);
  if (!refined.ok()) {
    refine_failed_.fetch_add(1, std::memory_order_relaxed);
    RefineFailedCounter()->Increment();
    return refined.status();
  }
  Matrix next_centers = std::move(refined).ValueOrDie();
  if (next_centers.rows() <= 0) {
    refine_failed_.fetch_add(1, std::memory_order_relaxed);
    RefineFailedCounter()->Increment();
    return Status::InvalidArgument("refinement produced no centers");
  }
  if (next_centers.cols() != current->dim()) {
    refine_failed_.fetch_add(1, std::memory_order_relaxed);
    RefineFailedCounter()->Increment();
    return Status::InvalidArgument(
        "refinement changed the dimension from " +
        std::to_string(current->dim()) + " to " +
        std::to_string(next_centers.cols()));
  }
  // Build-then-swap: panels, norms, and (when enabled) the pruned
  // two-level index are packed here, outside any reader's path, and the
  // finished index is installed in one store. Options carry over from
  // the current snapshot so refinement never silently drops pruning.
  snapshot_.store(CenterIndex::Build(std::move(next_centers),
                                     current->options(),
                                     current->version() + 1),
                  std::memory_order_release);
  refines_.fetch_add(1, std::memory_order_relaxed);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  RefinesCounter()->Increment();
  PublishesCounter()->Increment();
  StampPublish();
  return Status::OK();
}

ModelServer::Stats ModelServer::stats() const {
  Stats out;
  out.publishes = publishes_.load(std::memory_order_relaxed);
  out.publish_failed = publish_failed_.load(std::memory_order_relaxed);
  out.refines = refines_.load(std::memory_order_relaxed);
  out.refine_failed = refine_failed_.load(std::memory_order_relaxed);
  out.serving_stale = serving_stale_.load(std::memory_order_relaxed);
  out.staleness_ms =
      (SteadyNowNs() - last_publish_ns_.load(std::memory_order_relaxed)) /
      1000000;
  return out;
}

Status ModelServer::RefineWithMiniBatch(const DatasetSource& data,
                                        const MiniBatchOptions& options,
                                        uint64_t seed) {
  return Refine([&](const CenterIndex& current) -> Result<Matrix> {
    KMEANSLL_ASSIGN_OR_RETURN(
        MiniBatchResult refined,
        RunMiniBatch(data, current.centers(), options, rng::Rng(seed)));
    return std::move(refined.centers);
  });
}

RequestBatcher::RequestBatcher(const ModelServer* server,
                               const RequestBatcherOptions& options)
    : server_(server), options_(options) {
  KMEANSLL_CHECK(server_ != nullptr);
  KMEANSLL_CHECK_GE(options_.max_batch, 1);
  KMEANSLL_CHECK_GE(options_.max_delay_us, 0);
  KMEANSLL_CHECK_GE(options_.idle_close_us, 0);
  KMEANSLL_CHECK_GE(options_.max_pending, 0);
  KMEANSLL_CHECK_GE(options_.max_latency_us, 0);
  KMEANSLL_CHECK_GE(options_.min_batch, 1);
  KMEANSLL_CHECK_LE(options_.min_batch, options_.max_batch);
  dim_ = server_->Acquire()->dim();
}

RequestBatcher::~RequestBatcher() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;
  leader_cv_.notify_all();
  // Every caller inside Assign holds a +1 on pending_ until it is fully
  // done touching this object (leaders through their flush, followers
  // through their wakeup), so pending_ == 0 means no thread can touch a
  // member after we return and destruction proceeds.
  drain_cv_.wait(lock, [&] { return pending_ == 0; });
}

void RequestBatcher::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  // A parked leader re-checks shutdown_ in its wait predicate and
  // flushes what it has; there is nothing else to hand off.
  leader_cv_.notify_all();
}

int64_t RequestBatcher::EstimatedLatencyUs() const {
  // Coalescing delay plus one scan per full batch already ahead of a
  // query admitted now. Until the first flush lands there is no scan
  // estimate; treat it as free and let the EWMA take over.
  const int64_t batches_ahead = pending_ / std::max<int64_t>(
      options_.max_batch, 1) + 1;
  return options_.max_delay_us + ewma_scan_us_ * batches_ahead;
}

int64_t RequestBatcher::EffectiveBatchLimit() const {
  if (!options_.adaptive_batch || ewma_gap_ns_ <= 0) {
    return options_.max_batch;
  }
  // Expected joins over the leader's wait window at the observed
  // arrival rate, plus the leader itself. Gaps below 1us saturate to
  // the ceiling (the +1 guards the division, not the clamp).
  const int64_t expected =
      options_.max_delay_us * 1000 / ewma_gap_ns_ + 1;
  return std::clamp(expected, options_.min_batch, options_.max_batch);
}

Result<NearestResult> RequestBatcher::Assign(const double* point) {
  std::shared_ptr<Batch> batch;
  int64_t slot = 0;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.queries;
    GetBatcherMetrics().queries->Increment();
    // Admission control: shed before touching any batch state, so a
    // rejected query costs the caller one mutex round-trip and nothing
    // else. See RequestBatcherOptions::{max_pending, max_latency_us}.
    if (shutdown_) {
      ++stats_.shed;
      GetBatcherMetrics().shed->Increment();
      return Status::Unavailable("batcher is shut down");
    }
    if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
      ++stats_.shed;
      GetBatcherMetrics().shed->Increment();
      return Status::Unavailable(
          "batcher overloaded: " + std::to_string(pending_) +
          " queries pending (max_pending=" +
          std::to_string(options_.max_pending) + "); retry in ~" +
          std::to_string(EstimatedLatencyUs()) + "us");
    }
    if (options_.max_latency_us > 0 &&
        EstimatedLatencyUs() > options_.max_latency_us) {
      ++stats_.shed;
      GetBatcherMetrics().shed->Increment();
      return Status::Unavailable(
          "batcher cannot meet the " +
          std::to_string(options_.max_latency_us) +
          "us latency target (estimated ~" +
          std::to_string(EstimatedLatencyUs()) + "us); retry in ~" +
          std::to_string(EstimatedLatencyUs()) + "us");
    }
    const auto arrived = std::chrono::steady_clock::now();
    if (options_.adaptive_batch) {
      // Arrival-rate EWMA over admitted queries (1/4 weight on the
      // newest gap, like the scan EWMA): feeds EffectiveBatchLimit.
      if (last_arrival_.time_since_epoch().count() != 0) {
        const int64_t gap_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                arrived - last_arrival_).count();
        ewma_gap_ns_ =
            ewma_gap_ns_ == 0 ? gap_ns : (3 * ewma_gap_ns_ + gap_ns) / 4;
      }
      last_arrival_ = arrived;
    }
    if (open_ == nullptr) {
      open_ = std::make_shared<Batch>();
      open_->limit = EffectiveBatchLimit();
      open_->points.reserve(static_cast<size_t>(open_->limit * dim_));
      open_->opened = arrived;
      leader = true;
    }
    batch = open_;
    slot = batch->rows++;
    batch->last_join = arrived;
    batch->points.insert(batch->points.end(), point, point + dim_);
    ++pending_;
    if (batch->rows >= batch->limit) {
      // Full: stop accepting joins and wake the (possibly waiting)
      // leader so the flush happens now, not at the deadline.
      batch->closed = true;
      open_ = nullptr;
      leader_cv_.notify_all();
    }

    if (!leader) {
      done_cv_.wait(lock, [&] { return batch->done; });
      // Last touch of this object: the -1 on pending_ is what lets the
      // destructor proceed, so it must not happen before the result is
      // (about to be) read — the batch itself stays alive through our
      // shared_ptr either way.
      if (--pending_ == 0) drain_cv_.notify_all();
      return batch->results[static_cast<size_t>(slot)];
    }

    // Leader: give followers up to max_delay_us to coalesce — the wait
    // releases the lock, which is exactly what lets them join — and
    // flush early once the batch has been quiet for a full
    // idle_close_us window (measured from the newest join, so an early
    // or spurious wakeup re-arms the wait instead of closing a batch
    // whose idle window never elapsed). Shutdown wakes the leader and
    // flushes immediately: admitted queries are answered, not stranded
    // behind a deadline nobody will extend.
    if (!batch->closed && !shutdown_ && options_.max_delay_us > 0) {
      const auto deadline =
          batch->opened + std::chrono::microseconds(options_.max_delay_us);
      while (!batch->closed && !shutdown_) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        auto wake = deadline;
        if (options_.idle_close_us > 0) {
          const auto quiet_at =
              batch->last_join +
              std::chrono::microseconds(options_.idle_close_us);
          if (now >= quiet_at) break;  // true elapsed quiescence
          wake = std::min(deadline, quiet_at);
        }
        leader_cv_.wait_until(lock, wake,
                              [&] { return batch->closed || shutdown_; });
      }
    }
    if (!batch->closed) {
      batch->closed = true;
      if (open_ == batch) open_ = nullptr;
    }
  }

  // Flush (outside the lock: followers of the *next* generation must be
  // able to coalesce while this batch scans). The snapshot is acquired
  // at flush time, so the whole batch is answered by one model version.
  const auto scan_start = std::chrono::steady_clock::now();
  const std::shared_ptr<const CenterIndex> snapshot = server_->Acquire();
  const int64_t rows = batch->rows;
  std::vector<int32_t> idx(static_cast<size_t>(rows));
  std::vector<double> d2(static_cast<size_t>(rows));
  {
    KMEANSLL_TRACE_SPAN("batcher.flush");
    snapshot->AssignRange(
        ConstMatrixView(batch->points.data(), rows, dim_),
        IndexRange{0, rows}, idx.data(), d2.data());
  }
  batch->results.resize(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    batch->results[static_cast<size_t>(i)] = NearestResult{
        static_cast<int64_t>(idx[static_cast<size_t>(i)]),
        d2[static_cast<size_t>(i)]};
  }
  const auto flush_end = std::chrono::steady_clock::now();
  const int64_t scan_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          flush_end - scan_start).count();
  const int64_t batch_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          flush_end - batch->opened).count();

  {
    std::lock_guard<std::mutex> lock(mu_);
    batch->done = true;
    ++stats_.batches;
    stats_.batched_points += rows;
    stats_.largest_batch = std::max(stats_.largest_batch, rows);
    stats_.served += rows;
    GetBatcherMetrics().batches->Increment();
    GetBatcherMetrics().served->Increment(rows);
    // Misses are counted batch-wide against the leader's join time (the
    // oldest query in the batch); followers joined later, so this is
    // the conservative bound.
    if (options_.max_latency_us > 0 &&
        batch_us > options_.max_latency_us) {
      stats_.deadline_misses += rows;
      GetBatcherMetrics().deadline_misses->Increment(rows);
    }
    // pending_ counts callers still inside Assign, so the leader only
    // retires itself here; each follower retires itself as it wakes.
    // That makes pending_ == 0 a safe-to-destruct signal, not just a
    // backlog gauge (see ~RequestBatcher).
    if (--pending_ == 0) drain_cv_.notify_all();
    // EWMA with 1/4 weight on the newest scan: stable under jitter,
    // adapts within a few batches when load shifts.
    ewma_scan_us_ = ewma_scan_us_ == 0
                        ? scan_us
                        : (3 * ewma_scan_us_ + scan_us) / 4;
    done_cv_.notify_all();
  }
  return batch->results[static_cast<size_t>(slot)];
}

RequestBatcher::Stats RequestBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.adaptive_batch_limit = EffectiveBatchLimit();
  return out;
}

}  // namespace kmeansll::serving
