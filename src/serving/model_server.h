// ModelServer + RequestBatcher: the online query path over CenterIndex
// snapshots.
//
// ModelServer is an RCU-style snapshot holder. Readers acquire the
// current CenterIndex as a shared_ptr via std::atomic<std::shared_ptr>
// and keep serving from it for as long as they hold the reference.
// Precision about the read path: libstdc++ implements the atomic
// shared_ptr with an embedded lock-bit spin protocol (is_lock_free()
// reports false), so Acquire is "a few atomic ops, never an OS mutex,
// never blocked behind a writer's long critical section" rather than
// formally lock-free — the writer's store inside Publish is itself just
// a pointer swap, so the window a reader can spin on is a handful of
// instructions, and crucially the EXPENSIVE part of a swap (building
// the replacement index: packing panels, computing norms) happens
// entirely before the store. Writers build a complete replacement index
// off to the side and install it with that one swap
// ("build-then-swap"), so a hot model swap never blocks a reader behind
// index construction and a reader never observes a half-updated model:
// queries in flight finish on the old snapshot, queries that acquire
// after the swap see the new one, and the old index is freed when its
// last reader drops it. bench/bm_serving.cc's SwapUnderLoad measures
// the real cost: reader QPS under continuous swaps vs. undisturbed. This is the multi-version read
// path the serving layer needs when a background refinement pass
// (minibatch/streaming) periodically republishes centers (cf. snapshot-
// versioned index structures like MV-PBT: lookups proceed untouched
// while a writer installs the next version).
//
// RequestBatcher closes the throughput gap between "one point at a time"
// and the batch engine. Concurrent single-point queries coalesce into
// one contiguous block under a latency bound: the first caller in
// becomes the batch's leader and waits up to max_delay_us for followers,
// then runs ONE engine pass (CenterIndex::AssignRange over the frozen
// panels) for the whole batch and hands each caller its slot. Per-point
// work drops from a scalar k·d scan to a blocked, register-tiled scan
// amortized across the batch — bench/bm_serving.cc measures the
// difference. Every batch acquires its snapshot at flush time, so a
// batcher transparently follows hot swaps.
//
// Under sustained overload the batcher degrades gracefully instead of
// queueing without bound: RequestBatcherOptions::max_pending caps the
// admitted-but-unanswered backlog and max_latency_us adds
// deadline-aware admission, with over-limit queries shed immediately as
// kUnavailable plus a retry-after hint (see Assign). Shedding is the
// serving-side analogue of the training side's fail-clean I/O policy:
// overload surfaces as a clean, retryable error, never as unbounded
// latency or an aborted process.

#ifndef KMEANSLL_SERVING_MODEL_SERVER_H_
#define KMEANSLL_SERVING_MODEL_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "clustering/minibatch.h"
#include "common/result.h"
#include "distance/nearest.h"
#include "matrix/dataset_view.h"
#include "rng/rng.h"
#include "serving/center_index.h"

namespace kmeansll::serving {

/// Atomic holder of the currently served CenterIndex snapshot.
/// Reader methods (Acquire, published_version) never take a mutex and
/// are safe from any thread (see the file comment for the exact
/// guarantee); writer methods (Publish, Refine*) serialize among
/// themselves on an internal mutex that readers never touch.
class ModelServer {
 public:
  /// Starts serving `initial` (must be non-null).
  explicit ModelServer(std::shared_ptr<const CenterIndex> initial);

  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(ModelServer);

  /// The current snapshot. The returned reference keeps the snapshot
  /// alive across any number of queries; re-Acquire to observe swaps.
  /// High-QPS readers should hold one Acquire across many queries (the
  /// batcher acquires once per flushed batch, not per point).
  std::shared_ptr<const CenterIndex> Acquire() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Version tag of the current snapshot.
  uint64_t published_version() const { return Acquire()->version(); }

  /// Installs `next` as the served snapshot (build-then-swap; the swap
  /// itself is one atomic store). The replacement must match the current
  /// snapshot's dimension — in-flight batched queries were validated
  /// against it — but may change k freely. Fails on null or dim
  /// mismatch; on failure the served snapshot is unchanged.
  Status Publish(std::shared_ptr<const CenterIndex> next);

  /// Loads a KMLLMODL artifact from `path` and publishes it as the next
  /// snapshot (version = published_version() + 1). Any failure — the
  /// artifact is unreadable, corrupt (CRC), empty, or its dimension does
  /// not match the served model — leaves the current snapshot serving
  /// untouched and bumps stats().publish_failed: a torn or wrong file on
  /// disk degrades to a refused swap, never to a broken reader.
  Status PublishFromFile(const std::string& path);

  /// Builds the next model from the current one. The hook sees the
  /// current snapshot and returns refined centers (e.g. one
  /// minibatch/streaming pass); the server builds a fresh index tagged
  /// version + 1 and publishes it. Refiners are serialized; readers are
  /// never blocked. On hook failure nothing is published.
  using RefineFn = std::function<Result<Matrix>(const CenterIndex&)>;
  Status Refine(const RefineFn& fn);

  /// RefineLoop convenience: folds one mini-batch refinement pass over
  /// `data` (options.iterations stochastic updates starting from the
  /// served centers) into a fresh snapshot. Call periodically from a
  /// background thread to keep the served model tracking new data.
  Status RefineWithMiniBatch(const DatasetSource& data,
                             const MiniBatchOptions& options,
                             uint64_t seed);

  /// Freshness-SLO degrade signal: the refine loop (serving/freshness.h)
  /// sets this when it cannot republish within its SLO — the server
  /// keeps answering from the last good snapshot ("serving stale"), and
  /// the flag surfaces the degradation in stats()/TenantStats instead
  /// of hiding it. Any successful Publish/Refine clears it.
  void MarkStale(bool stale) {
    serving_stale_.store(stale, std::memory_order_relaxed);
  }
  bool serving_stale() const {
    return serving_stale_.load(std::memory_order_relaxed);
  }

  /// Writer-side telemetry (monotonic since construction). Each cell is
  /// an independent atomic counter, so stats() is safe from any thread
  /// and never touches writer_mu_; the snapshot is per-cell consistent,
  /// not cross-cell (a concurrent Publish may be counted in publishes
  /// before its sibling cells settle).
  struct Stats {
    int64_t publishes = 0;       ///< successful snapshot swaps
    int64_t publish_failed = 0;  ///< refused swaps (null/dim/corrupt file)
    int64_t refines = 0;         ///< successful Refine* passes
    int64_t refine_failed = 0;   ///< Refine* passes that published nothing
    bool serving_stale = false;  ///< freshness SLO missed (see MarkStale)
    int64_t staleness_ms = 0;    ///< ms since the last successful publish
                                 ///< (construction counts as a publish)
  };
  Stats stats() const;

 private:
  /// Stamps "a fresh snapshot was just installed" (publish time + clear
  /// the stale flag). Callers hold writer_mu_ or are the constructor.
  void StampPublish();

  std::atomic<std::shared_ptr<const CenterIndex>> snapshot_;
  std::mutex writer_mu_;  // serializes Publish/Refine, never readers
  std::atomic<int64_t> publishes_{0};
  std::atomic<int64_t> publish_failed_{0};
  std::atomic<int64_t> refines_{0};
  std::atomic<int64_t> refine_failed_{0};
  std::atomic<bool> serving_stale_{false};
  std::atomic<int64_t> last_publish_ns_{0};  ///< steady_clock nanos
};

/// Tuning knobs for RequestBatcher.
struct RequestBatcherOptions {
  /// Flush as soon as this many queries have coalesced.
  int64_t max_batch = 64;
  /// Leader's wait bound: a query is answered at most ~this much later
  /// than it would be unbatched (plus the batch's own scan time).
  int64_t max_delay_us = 200;
  /// Quiescence flush: the leader closes the batch once no new query
  /// has joined for this long, instead of sitting out the whole
  /// max_delay_us. In the common regime — a bounded set of serving
  /// threads that all re-enter the batcher as soon as their previous
  /// query completes — the batch reaches the natural concurrency within
  /// microseconds and then goes quiet; waiting further only adds
  /// latency. The window is measured from the batch's most recent join
  /// (a spurious or early leader wakeup re-arms the wait rather than
  /// closing a batch whose idle window has not actually elapsed).
  /// 0 disables (wait for full or deadline).
  int64_t idle_close_us = 20;
  /// Adaptive sizing: when true, the batch-full threshold tracks the
  /// observed arrival rate instead of sitting at max_batch. Each batch
  /// opens with limit clamp(expected arrivals within max_delay_us,
  /// min_batch, max_batch), where the expectation comes from an EWMA of
  /// admitted inter-arrival gaps. Under light load batches close at the
  /// handful of queries that will realistically coalesce (no pointless
  /// tail-waiting); under heavy load the limit grows back to max_batch
  /// and the engine gets full panels. max_batch stays the hard ceiling;
  /// results are unaffected (batch splits never change per-pair values).
  bool adaptive_batch = false;
  /// Floor for the adaptive limit (only read when adaptive_batch).
  int64_t min_batch = 1;
  /// Backpressure: upper bound on queries admitted but not yet answered
  /// (queued in an open batch or in a batch being scanned). At the
  /// bound, Assign sheds the query with kUnavailable instead of letting
  /// the backlog — and therefore every caller's latency — grow without
  /// limit. 0 disables (admit everything; the pre-backpressure
  /// behavior).
  int64_t max_pending = 0;
  /// Deadline-aware admission: target end-to-end latency in
  /// microseconds. A query is shed with kUnavailable when the batcher
  /// estimates it cannot be answered within this budget — the estimate
  /// is the coalescing delay plus an EWMA of recent batch scan times,
  /// scaled by how many full batches are already queued ahead. Saying
  /// "no" immediately beats saying "here is your answer, late": the
  /// caller can retry, fall back, or shed its own load. 0 disables.
  int64_t max_latency_us = 0;
};

/// Coalesces concurrent single-point Assign calls into batch-engine
/// passes against a ModelServer's current snapshot. Thread-safe; one
/// batcher is meant to be shared by all serving threads.
class RequestBatcher {
 public:
  /// Binds to `server` (borrowed; must outlive the batcher). The point
  /// dimension is fixed from the current snapshot — Publish enforces
  /// that it never changes.
  RequestBatcher(const ModelServer* server,
                 const RequestBatcherOptions& options);

  /// Drains safely: marks the batcher shut down (equivalent to
  /// Shutdown()) and blocks until every in-flight Assign has returned.
  /// Callers must not START a new Assign concurrently with destruction
  /// (standard object lifetime), but calls already inside Assign are
  /// answered, woken, and fully out of the object before members are
  /// torn down.
  ~RequestBatcher();

  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(RequestBatcher);

  /// Stops admitting: every later Assign is shed with kUnavailable, and
  /// a leader currently parked waiting for followers is woken to flush
  /// its batch immediately. Queries admitted before the call are still
  /// answered (the "admitted queries are always answered" contract
  /// holds across shutdown). Idempotent; safe from any thread.
  void Shutdown();

  /// Nearest center of `point` (dim() coordinates) under the snapshot
  /// current at the batch's flush. Blocks until the result is ready —
  /// at most ~max_delay_us of coalescing plus one batched scan. Results
  /// are bitwise the unbatched AssignOne answers: the engine's per-pair
  /// values do not depend on which batch a point lands in.
  ///
  /// Under overload (see RequestBatcherOptions::max_pending /
  /// max_latency_us) the query may be shed instead: the call returns
  /// kUnavailable immediately, without queuing, and the message carries
  /// a retry-after-style hint ("retry in ~Nus") derived from the
  /// current backlog. Admitted queries are always answered.
  Result<NearestResult> Assign(const double* point);

  int64_t dim() const { return dim_; }

  /// Telemetry (monotonic since construction). queries = served + shed
  /// once the batcher is quiescent; deadline_misses counts admitted
  /// queries whose batch finished past max_latency_us anyway (the
  /// admission estimate is a heuristic, so misses are possible — they
  /// are telemetry for tuning, not a correctness signal).
  struct Stats {
    int64_t queries = 0;          ///< Assign calls (admitted + shed)
    int64_t batches = 0;          ///< engine passes flushed
    int64_t batched_points = 0;   ///< points across all flushed batches
    int64_t largest_batch = 0;    ///< max coalesced batch size seen
    int64_t served = 0;           ///< queries answered with a result
    int64_t shed = 0;             ///< queries rejected with kUnavailable
    int64_t deadline_misses = 0;  ///< served but past max_latency_us
    /// Batch-full threshold the next batch would open with: max_batch
    /// when adaptive sizing is off, the current rate-derived limit in
    /// [min_batch, max_batch] when it is on.
    int64_t adaptive_batch_limit = 0;
  };
  Stats stats() const;

 private:
  /// One coalescing generation, shared by its leader and followers; the
  /// batcher itself only references the currently joinable one.
  struct Batch {
    std::vector<double> points;          ///< rows · dim, contiguous
    std::vector<NearestResult> results;  ///< filled by the leader
    int64_t rows = 0;
    int64_t limit = 0;    ///< batch-full threshold fixed at open
    bool closed = false;  ///< no further joins (full or deadline)
    bool done = false;    ///< results ready for pickup
    std::chrono::steady_clock::time_point opened;     ///< leader's join time
    std::chrono::steady_clock::time_point last_join;  ///< newest join time
  };

  /// Estimated microseconds until a query admitted now is answered;
  /// also the retry hint quoted in shed errors. Callers hold mu_.
  int64_t EstimatedLatencyUs() const;

  /// Batch-full threshold for a batch opening now (see
  /// RequestBatcherOptions::adaptive_batch). Callers hold mu_.
  int64_t EffectiveBatchLimit() const;

  const ModelServer* server_;  // borrowed
  RequestBatcherOptions options_;
  int64_t dim_;

  mutable std::mutex mu_;  // mutable: stats() is a const reader
  std::condition_variable leader_cv_;  ///< wakes leaders (fill/shutdown)
  std::condition_variable done_cv_;    ///< wakes followers when results land
  std::condition_variable drain_cv_;   ///< wakes ~RequestBatcher at drain
  std::shared_ptr<Batch> open_;        ///< batch currently accepting joins
  Stats stats_;
  bool shutdown_ = false;     ///< set by Shutdown(); sheds new arrivals
  int64_t pending_ = 0;       ///< callers inside Assign, admitted not done
  int64_t ewma_scan_us_ = 0;  ///< smoothed batch scan time (0 until seen)
  int64_t ewma_gap_ns_ = 0;   ///< smoothed admitted inter-arrival gap
  std::chrono::steady_clock::time_point last_arrival_;  ///< newest admit
};

}  // namespace kmeansll::serving

#endif  // KMEANSLL_SERVING_MODEL_SERVER_H_
