// RefineLoop: the freshness leg of the continuous-ingest pipeline
// (docs/ARCHITECTURE.md "Ingest & freshness").
//
// A LiveDataset keeps growing while a ModelServer keeps answering from
// a snapshot trained on yesterday's rows. The RefineLoop closes that
// gap: each cycle it measures the served model's cost-per-point on the
// CURRENT data, compares it against an EWMA of the loop's own
// post-refine baseline, and picks the cheapest repair that restores
// freshness —
//
//   drift small:  mini-batch SGD from the served centers (Sculley's
//                 Algorithm 1 — a few sampled batches, no full pass)
//   drift large:  full k-means|| re-seed + Lloyd (the paper's
//                 pipeline), because SGD from a stale basin cannot
//                 escape it once the data has genuinely moved
//
// The result republishes through ModelServer::Refine, so readers are
// never blocked (RCU snapshot swap) and the version advances.
//
// Crash safety mirrors the training checkpoints: each cycle persists a
// small "KMLLFRSH" artifact (cycle counter, data watermark, EWMA, the
// new centers, cost history; CRC-framed, temp+fsync+rename) BEFORE
// publishing. Recover() republishes the checkpointed centers and
// restores the loop state, so the sequence
//     checkpoint → crash → Recover
// converges to the same served model as checkpoint → publish: the
// publish is idempotent and the cycle counter (which seeds each
// cycle's RNG) never reuses a seed. Cycle seeds derive from
// (options.seed, cycle), never wall clock, so a recovered loop's
// future refinements are bitwise the uninterrupted run's.
//
// Freshness SLO: the background thread (Start/Stop) also watches the
// server's time-since-last-publish; past options.freshness_slo_ms it
// flips ModelServer::MarkStale, which surfaces in TenantStats as
// "serving stale" — the tenant degrades visibly to the last good
// snapshot instead of silently serving drift.
//
// Fault sites: "freshness.refine" (cycle entry) and
// "freshness.checkpoint" (the checkpoint's AtomicWriteFile; transient
// failures are retried and counted in stats().checkpoint_retries).

#ifndef KMEANSLL_SERVING_FRESHNESS_H_
#define KMEANSLL_SERVING_FRESHNESS_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "clustering/minibatch.h"
#include "common/result.h"
#include "core/kmeans.h"
#include "matrix/dataset_view.h"
#include "serving/model_server.h"

namespace kmeansll::serving {

struct RefineLoopOptions {
  /// Root seed; cycle c refines with HashCombine(seed, c), so the
  /// trajectory is a pure function of (seed, cycle history) and a
  /// crash-recovered loop continues bitwise.
  uint64_t seed = 42;

  /// A cycle is a no-op (skipped, not failed) unless at least this many
  /// rows arrived since the last refined watermark.
  int64_t min_new_rows = 1;

  /// Reseed trigger: run the full pipeline when the served model's
  /// cost-per-point exceeds ratio * EWMA(post-refine cost-per-point).
  /// Until the first cycle establishes a baseline, minibatch is used.
  double drift_reseed_ratio = 1.5;
  /// EWMA weight on the newest post-refine cost-per-point.
  double ewma_alpha = 0.25;

  /// The cheap repair: mini-batch SGD from the served centers.
  MiniBatchOptions minibatch;
  /// The expensive repair: a full re-seed pipeline (k, k-means||
  /// options, Lloyd budget). `reseed.seed` is overridden per cycle.
  KMeansConfig reseed;

  /// Crash-resume checkpoint path; empty disables checkpointing (and
  /// Recover() becomes a no-op).
  std::string checkpoint_path;

  /// Mark the server stale once this many ms pass without a publish
  /// (0 disables). Only the background thread enforces it.
  int64_t freshness_slo_ms = 0;
  /// Background thread poll interval.
  int64_t tick_ms = 20;
};

/// Loop telemetry. A copy under the loop's mutex: cross-field
/// consistent, taken between (never during) cycles.
struct RefineStats {
  int64_t cycles = 0;             ///< RunOnce calls that refined
  int64_t skipped = 0;            ///< RunOnce calls below min_new_rows
  int64_t minibatch_refines = 0;  ///< cycles repaired by SGD
  int64_t reseeds = 0;            ///< cycles repaired by full re-seed
  int64_t failures = 0;           ///< cycles that returned non-OK
  int64_t checkpoint_retries = 0; ///< transient checkpoint-write retries
  int64_t recoveries = 0;         ///< Recover() calls that restored state
  int64_t slo_misses = 0;         ///< ticks that found the SLO blown
  double last_cost_per_point = 0; ///< post-refine, newest cycle
  double ewma_cost_per_point = 0; ///< the drift baseline
  int64_t watermark = 0;          ///< rows covered by the served model
};

/// Binds one ModelServer to one growing DatasetSource. Both pointers
/// must outlive the loop. RunOnce/Recover are serialized internally and
/// safe to call concurrently with the background thread; the server and
/// dataset are only touched through their own thread-safe interfaces.
class RefineLoop {
 public:
  RefineLoop(ModelServer* server, const DatasetSource* data,
             const RefineLoopOptions& options);
  ~RefineLoop();  // Stops the background thread.

  RefineLoop(const RefineLoop&) = delete;
  RefineLoop& operator=(const RefineLoop&) = delete;

  /// Restores loop state from the checkpoint (if any) and republishes
  /// its centers — the crash-recovery entry point, called before
  /// Start(). A missing, corrupt, or mismatched-fingerprint checkpoint
  /// is ignored (the loop starts fresh); only I/O-level read failures
  /// and a failed republish surface as errors.
  Status Recover();

  /// One deterministic refine cycle: measure drift, repair (minibatch
  /// or reseed), checkpoint, republish, advance the watermark. OK when
  /// the cycle was skipped for lack of new rows.
  Status RunOnce();

  /// Starts/stops the background thread (idempotent). Each tick it
  /// enforces the freshness SLO and runs a cycle when enough new rows
  /// arrived.
  void Start();
  void Stop();

  RefineStats stats() const;
  /// Post-refine cost-per-point of every completed cycle, oldest first
  /// (persisted in the checkpoint, so it survives crashes).
  std::vector<double> cost_history() const;

 private:
  Status RunOnceLocked();
  Status WriteCheckpointLocked(const Matrix& centers);
  uint64_t Fingerprint() const;

  ModelServer* const server_;
  const DatasetSource* const data_;
  const RefineLoopOptions options_;

  mutable std::mutex mu_;  // loop state + cycle serialization
  int64_t cycle_ = 0;
  int64_t watermark_ = 0;
  double ewma_ = 0;
  std::vector<double> cost_history_;
  RefineStats stats_;

  std::mutex thread_mu_;  // Start/Stop + tick wakeup
  std::condition_variable tick_cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
};

}  // namespace kmeansll::serving

#endif  // KMEANSLL_SERVING_FRESHNESS_H_
