#include "serving/center_index.h"

#include <algorithm>
#include <utility>

#include "clustering/cost.h"

namespace kmeansll::serving {

CenterIndex::CenterIndex(Matrix centers, data::ModelMetadata metadata,
                         uint64_t version)
    : centers_(std::move(centers)),
      metadata_(std::move(metadata)),
      version_(version),
      search_(centers_) {
  KMEANSLL_CHECK_GT(centers_.rows(), 0);
  KMEANSLL_CHECK_GT(centers_.cols(), 0);
  search_.Freeze();
}

std::shared_ptr<const CenterIndex> CenterIndex::Build(Matrix centers,
                                                      uint64_t version) {
  // Plain new rather than make_shared: the constructor is private.
  return std::shared_ptr<const CenterIndex>(
      new CenterIndex(std::move(centers), data::ModelMetadata{}, version));
}

Result<std::shared_ptr<const CenterIndex>> CenterIndex::FromModel(
    const data::ModelArtifact& artifact, uint64_t version) {
  if (artifact.centers.rows() <= 0 || artifact.centers.cols() <= 0) {
    return Status::InvalidArgument("model artifact has no centers");
  }
  return std::shared_ptr<const CenterIndex>(new CenterIndex(
      artifact.centers, artifact.metadata, version));
}

NearestResult CenterIndex::AssignOne(const double* point) const {
  return search_.Find(point);
}

void CenterIndex::AssignRange(ConstMatrixView points, IndexRange rows,
                              int32_t* out_index, double* out_d2) const {
  KMEANSLL_CHECK_EQ(points.cols(), dim());
  if (out_d2 != nullptr) {
    search_.FindRange(points, rows, /*point_norms=*/nullptr, out_index,
                      out_d2);
    return;
  }
  std::vector<double> d2(static_cast<size_t>(rows.size()));
  search_.FindRange(points, rows, /*point_norms=*/nullptr, out_index,
                    d2.data());
}

Assignment CenterIndex::AssignBatch(const DatasetSource& data,
                                    ThreadPool* pool,
                                    const double* point_norms) const {
  KMEANSLL_CHECK_EQ(data.dim(), dim());
  Assignment out;
  out.cluster.assign(static_cast<size_t>(data.n()), -1);
  out.cost = ReduceNearestWithSearch(data, search_, pool, point_norms,
                                     out.cluster.data());
  return out;
}

Assignment CenterIndex::AssignBatch(const Dataset& data, ThreadPool* pool,
                                    const double* point_norms) const {
  InMemorySource source = data.AsSource();
  return AssignBatch(source, pool, point_norms);
}

int64_t CenterIndex::AssignTopM(const double* point, int64_t m,
                                std::vector<int32_t>* out_index,
                                std::vector<double>* out_d2) const {
  KMEANSLL_CHECK_GT(m, 0);
  std::vector<int32_t> idx(static_cast<size_t>(m));
  std::vector<double> d2(static_cast<size_t>(m));
  ConstMatrixView one(point, 1, dim());
  search_.FindTopMRange(one, IndexRange{0, 1}, /*point_norms=*/nullptr, m,
                        idx.data(), d2.data());
  const int64_t filled = std::min<int64_t>(m, k());
  idx.resize(static_cast<size_t>(filled));
  d2.resize(static_cast<size_t>(filled));
  *out_index = std::move(idx);
  *out_d2 = std::move(d2);
  return filled;
}

void CenterIndex::AssignTopMRange(ConstMatrixView points, IndexRange rows,
                                  int64_t m, int32_t* out_index,
                                  double* out_d2) const {
  KMEANSLL_CHECK_EQ(points.cols(), dim());
  search_.FindTopMRange(points, rows, /*point_norms=*/nullptr, m,
                        out_index, out_d2);
}

Assignment Predict(const CenterIndex& index, const Dataset& data) {
  return index.AssignBatch(data);
}

Assignment Predict(const CenterIndex& index, const DatasetSource& data) {
  return index.AssignBatch(data);
}

}  // namespace kmeansll::serving
