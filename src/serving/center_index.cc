#include "serving/center_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "clustering/cost.h"
#include "clustering/init_kmeansll.h"
#include "clustering/lloyd.h"
#include "common/math_util.h"
#include "common/metrics.h"
#include "distance/batch.h"
#include "distance/l2.h"
#include "parallel/parallel_for.h"
#include "rng/rng.h"

namespace kmeansll::serving {

namespace {

// Process-wide prune-effectiveness totals, mirrored from the per-index
// atomic cells (PruneStats stays the per-snapshot source of truth).
struct PruneMetrics {
  Counter* queries;
  Counter* groups_scanned;
  Counter* groups_pruned;
  Counter* exact_fallbacks;
};
const PruneMetrics& GetPruneMetrics() {
  static const PruneMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return new PruneMetrics{
        r.GetCounter("kmll_prune_queries_total",
                     "Queries answered via the two-level pruned path."),
        r.GetCounter("kmll_prune_groups_scanned_total",
                     "Coarse groups that reached the distance engine."),
        r.GetCounter("kmll_prune_groups_pruned_total",
                     "Coarse groups skipped by bounds or probe caps."),
        r.GetCounter("kmll_prune_exact_fallbacks_total",
                     "Queries served by the flat scan instead of the "
                     "pruned path."),
    };
  }();
  return *m;
}

// Query rows per coarse-distance tile: bounds the per-call scratch
// (tile × g doubles) while amortizing the coarse scan's panel traffic.
constexpr int64_t kQueryTile = 64;

// Relative slack subtracted from every group lower bound before the
// strict skip comparison, scaled by (2 + max center length + query
// length) — an upper bound on every magnitude entering the triangle
// inequality. The engine's worst per-distance rounding is the expanded
// kernel's cancellation, ~d·eps ≈ 3e-14 relative to those magnitudes
// squared (≈ 2e-7 after the sqrt); 1e-6 dominates it with an order of
// magnitude to spare while costing effectively no prune power (real
// inter-group margins are O(scale), not O(1e-6 · scale)). With the
// slack, a skipped group's members are provably STRICTLY farther than
// the running best in exact arithmetic and in the engine's floats, so
// skipping perturbs neither values nor tie resolution.
constexpr double kPruneSlackRel = 1e-6;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

CenterIndex::CenterIndex(Matrix centers, data::ModelMetadata metadata,
                         CenterIndexOptions options,
                         std::vector<double> validated_norms,
                         uint64_t version, ThreadPool* pool)
    : centers_(std::move(centers)),
      metadata_(std::move(metadata)),
      options_(options),
      version_(version),
      search_(centers_) {
  KMEANSLL_CHECK_GT(centers_.rows(), 0);
  KMEANSLL_CHECK_GT(centers_.cols(), 0);
  if (!validated_norms.empty()) {
    // FromModel path: the artifact's norms passed LoadModel's bitwise
    // check against the stored centers, so the Freeze-time
    // recomputation is pure waste — adopt them (re-asserted bitwise
    // inside FreezeWithNorms).
    search_.FreezeWithNorms(std::move(validated_norms));
  } else {
    search_.Freeze();
  }
  if (options_.enable_pruning && centers_.rows() >= options_.min_prune_k) {
    BuildPruned(pool);
  }
}

std::shared_ptr<const CenterIndex> CenterIndex::Build(Matrix centers,
                                                      uint64_t version) {
  return Build(std::move(centers), CenterIndexOptions{}, version,
               /*pool=*/nullptr);
}

std::shared_ptr<const CenterIndex> CenterIndex::Build(
    Matrix centers, const CenterIndexOptions& options, uint64_t version,
    ThreadPool* pool) {
  // Plain new rather than make_shared: the constructor is private.
  return std::shared_ptr<const CenterIndex>(
      new CenterIndex(std::move(centers), data::ModelMetadata{}, options,
                      /*validated_norms=*/{}, version, pool));
}

Result<std::shared_ptr<const CenterIndex>> CenterIndex::FromModel(
    const data::ModelArtifact& artifact, uint64_t version) {
  return FromModel(artifact, CenterIndexOptions{}, version,
                   /*pool=*/nullptr);
}

Result<std::shared_ptr<const CenterIndex>> CenterIndex::FromModel(
    const data::ModelArtifact& artifact, const CenterIndexOptions& options,
    uint64_t version, ThreadPool* pool) {
  if (artifact.centers.rows() <= 0 || artifact.centers.cols() <= 0) {
    return Status::InvalidArgument("model artifact has no centers");
  }
  return std::shared_ptr<const CenterIndex>(
      new CenterIndex(artifact.centers, artifact.metadata, options,
                      artifact.center_norms, version, pool));
}

void CenterIndex::BuildPruned(ThreadPool* pool) {
  const int64_t k = centers_.rows();
  const int64_t d = centers_.cols();
  int64_t g = options_.num_groups > 0
                  ? options_.num_groups
                  : static_cast<int64_t>(
                        std::ceil(std::sqrt(static_cast<double>(k))));
  g = std::clamp<int64_t>(g, 1, k);

  // Coarse k-means over the centers themselves, with the repo's own
  // seeding. Reduced rounds and oversampling keep the build cheap:
  // grouping quality only moves scan counts, never exact-mode results,
  // so a slightly worse coarse clustering costs QPS, not correctness.
  Dataset center_data{Matrix(centers_)};
  KMeansLLOptions seed_opts;
  seed_opts.oversampling = static_cast<double>(g);
  seed_opts.rounds = std::max<int64_t>(1, options_.coarse_rounds);
  Result<InitResult> init = KMeansLLInit(
      center_data, g, rng::Rng(options_.coarse_seed), seed_opts, pool);
  if (!init.ok()) return;  // flat serving; counted as exact_fallbacks
  Matrix coarse = std::move(init.ValueOrDie().centers);
  if (options_.coarse_iterations > 0 && coarse.rows() > 0) {
    LloydOptions lloyd_opts;
    lloyd_opts.max_iterations = options_.coarse_iterations;
    Result<LloydResult> refined =
        RunLloyd(center_data, coarse, lloyd_opts, pool);
    if (refined.ok()) coarse = std::move(refined.ValueOrDie().centers);
  }
  if (coarse.rows() <= 0) return;

  auto p = std::make_unique<PrunedIndex>();
  p->coarse_centers = std::move(coarse);
  p->coarse = std::make_unique<NearestCenterSearch>(p->coarse_centers);
  p->coarse->Freeze();
  const int64_t gg = p->coarse_centers.rows();

  // Member assignment and member→coarse distances from the engine's own
  // chains (any deterministic chain works — these only feed bounds).
  const double* center_row_norms = search_.uses_expanded_kernel()
                                       ? search_.center_norms().data()
                                       : nullptr;
  std::vector<int32_t> member_group(static_cast<size_t>(k));
  std::vector<double> member_d2(static_cast<size_t>(k));
  p->coarse->FindRange(centers_.view(), IndexRange{0, k}, center_row_norms,
                       member_group.data(), member_d2.data());

  // Permute group-major with ascending ORIGINAL index inside each group:
  // the in-group strict-< merges then resolve exact ties exactly like
  // the flat ascending scan, and cross-group winners merge
  // lexicographically on (d², original index) at query time.
  p->group_begin.assign(static_cast<size_t>(gg + 1), 0);
  for (int64_t i = 0; i < k; ++i) {
    ++p->group_begin[static_cast<size_t>(member_group[i]) + 1];
  }
  for (int64_t j = 0; j < gg; ++j) {
    p->group_begin[static_cast<size_t>(j + 1)] +=
        p->group_begin[static_cast<size_t>(j)];
  }
  std::vector<int64_t> order(static_cast<size_t>(k));
  std::vector<int64_t> cursor(p->group_begin.begin(),
                              p->group_begin.end() - 1);
  for (int64_t i = 0; i < k; ++i) {
    order[static_cast<size_t>(
        cursor[static_cast<size_t>(member_group[i])]++)] = i;
  }

  Matrix permuted = centers_.GatherRows(order);
  p->panels.Pack(permuted);
  p->perm_to_orig.resize(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    p->perm_to_orig[static_cast<size_t>(i)] =
        static_cast<int32_t>(order[static_cast<size_t>(i)]);
  }
  if (search_.uses_expanded_kernel()) {
    // Reorder the already-computed norms: per-row pure function, so the
    // gathered values are bitwise the permuted rows' RowSquaredNorms.
    p->norms.resize(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
      p->norms[static_cast<size_t>(i)] =
          search_.center_norms()[static_cast<size_t>(
              order[static_cast<size_t>(i)])];
    }
    p->kernel = BatchKernel::kExpanded;
  } else {
    p->kernel = BatchKernel::kPlain;
  }

  // Member radii in sqrt space (the triangle inequality is linear in
  // unsquared distances) and the slack's magnitude scale.
  p->group_radius.assign(static_cast<size_t>(gg), 0.0);
  for (int64_t i = 0; i < k; ++i) {
    const double r = std::sqrt(member_d2[static_cast<size_t>(i)]);
    double& slot = p->group_radius[static_cast<size_t>(member_group[i])];
    if (r > slot) slot = r;
  }
  for (int64_t j = 0; j < gg; ++j) {
    if (p->group_begin[static_cast<size_t>(j)] <
        p->group_begin[static_cast<size_t>(j + 1)]) {
      p->active_groups.push_back(static_cast<int32_t>(j));
    }
  }
  double max_len = 0.0;
  for (int64_t c = 0; c < k; ++c) {
    max_len = std::max(max_len, std::sqrt(SquaredNorm(centers_.Row(c), d)));
  }
  for (int64_t j = 0; j < gg; ++j) {
    max_len = std::max(
        max_len, std::sqrt(SquaredNorm(p->coarse_centers.Row(j), d)));
  }
  p->max_center_len = max_len;

  pruned_ = std::move(p);
}

int64_t CenterIndex::num_groups() const {
  return pruned_ != nullptr ? pruned_->coarse_centers.rows() : 0;
}

PruneStats CenterIndex::prune_stats() const {
  PruneStats s;
  s.queries = stat_queries_.load(std::memory_order_relaxed);
  s.groups_scanned = stat_groups_scanned_.load(std::memory_order_relaxed);
  s.groups_pruned = stat_groups_pruned_.load(std::memory_order_relaxed);
  s.exact_fallbacks = stat_exact_fallbacks_.load(std::memory_order_relaxed);
  return s;
}

void CenterIndex::PrunedFindRange(ConstMatrixView points, IndexRange rows,
                                  const double* point_norms,
                                  int32_t* out_index,
                                  double* out_d2) const {
  const PrunedIndex& p = *pruned_;
  const int64_t d = dim();
  const int64_t n = rows.size();
  if (n <= 0) return;
  const int64_t g = p.coarse_centers.rows();
  const double* group_norms = p.norms.empty() ? nullptr : p.norms.data();
  const int64_t probe_limit = options_.approx_probes > 0
                                  ? options_.approx_probes
                                  : std::numeric_limits<int64_t>::max();

  int64_t scanned_total = 0;
  int64_t pruned_total = 0;
  std::vector<double> pn_storage;
  std::vector<double> coarse_d2(
      static_cast<size_t>(std::min<int64_t>(n, kQueryTile) * g));
  std::vector<std::pair<double, int32_t>> order;
  order.reserve(p.active_groups.size());

  for (int64_t tb = 0; tb < n; tb += kQueryTile) {
    const int64_t te = std::min(tb + kQueryTile, n);
    const int64_t tn = te - tb;
    // Tile point norms with the shared SquaredNorm chain. The slack term
    // needs ||x|| even under the plain kernel, so they are always
    // materialized (bitwise interchangeable with caller-provided norms
    // per the engine contract).
    const double* pn;
    if (point_norms != nullptr) {
      pn = point_norms + tb;
    } else {
      pn_storage.resize(static_cast<size_t>(tn));
      for (int64_t i = 0; i < tn; ++i) {
        pn_storage[static_cast<size_t>(i)] =
            SquaredNorm(points.Row(rows.begin + tb + i), d);
      }
      pn = pn_storage.data();
    }
    p.coarse->DistancesRange(points,
                             IndexRange{rows.begin + tb, rows.begin + te},
                             pn, coarse_d2.data());
    for (int64_t i = 0; i < tn; ++i) {
      const double* cd = coarse_d2.data() + i * g;
      const double row_norm = pn[i];
      const double slack =
          kPruneSlackRel * (2.0 + p.max_center_len + std::sqrt(row_norm));
      // Visit groups in ascending lower-bound order; once one group's
      // bound clears the running best, every later group's does too, so
      // the scan stops (break, not continue).
      order.clear();
      for (const int32_t j : p.active_groups) {
        order.emplace_back(std::sqrt(cd[j]) -
                               p.group_radius[static_cast<size_t>(j)],
                           j);
      }
      std::sort(order.begin(), order.end());

      double best_d2 = kInf;
      int32_t best_orig = -1;
      int64_t scanned = 0;
      ConstMatrixView row_view(points.Row(rows.begin + tb + i), 1, d);
      for (size_t oi = 0; oi < order.size(); ++oi) {
        if (scanned >= probe_limit ||
            (best_orig >= 0 &&
             order[oi].first - slack > std::sqrt(best_d2))) {
          pruned_total += static_cast<int64_t>(order.size() - oi);
          break;
        }
        const int32_t j = order[oi].second;
        double gd2 = kInf;
        int32_t gidx = -1;
        BatchNearestMergeSubset(
            row_view, IndexRange{0, 1}, &row_norm, p.panels, group_norms,
            p.kernel,
            IndexRange{p.group_begin[static_cast<size_t>(j)],
                       p.group_begin[static_cast<size_t>(j) + 1]},
            &gd2, &gidx);
        ++scanned;
        // The group winner is already the in-group lexicographic min
        // (strict-< over ascending original order); merge group winners
        // lexicographically on (d², original index) since groups arrive
        // in bound order, not index order.
        const int32_t orig = p.perm_to_orig[static_cast<size_t>(gidx)];
        if (gd2 < best_d2 || (gd2 == best_d2 && orig < best_orig)) {
          best_d2 = gd2;
          best_orig = orig;
        }
      }
      scanned_total += scanned;
      if (out_index != nullptr) out_index[tb + i] = best_orig;
      out_d2[tb + i] = best_d2;
    }
  }
  stat_queries_.fetch_add(n, std::memory_order_relaxed);
  GetPruneMetrics().queries->Increment(static_cast<int64_t>(n));
  stat_groups_scanned_.fetch_add(scanned_total, std::memory_order_relaxed);
  GetPruneMetrics().groups_scanned->Increment(static_cast<int64_t>(scanned_total));
  stat_groups_pruned_.fetch_add(pruned_total, std::memory_order_relaxed);
  GetPruneMetrics().groups_pruned->Increment(static_cast<int64_t>(pruned_total));
}

void CenterIndex::PrunedFindTopMRange(ConstMatrixView points,
                                      IndexRange rows,
                                      const double* point_norms, int64_t m,
                                      int32_t* out_index,
                                      double* out_d2) const {
  const PrunedIndex& p = *pruned_;
  const int64_t d = dim();
  const int64_t n = rows.size();
  if (n <= 0) return;
  const int64_t g = p.coarse_centers.rows();
  const double* group_norms = p.norms.empty() ? nullptr : p.norms.data();
  const int64_t probe_limit = options_.approx_probes > 0
                                  ? options_.approx_probes
                                  : std::numeric_limits<int64_t>::max();
  // Slot-displacement order: lexicographic on (d², original index), with
  // empty slots at (+inf, -1). This is exactly the flat BatchTopM
  // outcome — ascending visit + strict-< keeps the m lexicographically
  // smallest pairs — restated so it holds under out-of-order group
  // visits.
  const auto entry_less = [](double vd, int32_t vi, double sd, int32_t si) {
    return vd < sd || (vd == sd && si >= 0 && vi < si);
  };

  int64_t scanned_total = 0;
  int64_t pruned_total = 0;
  std::vector<double> pn_storage;
  std::vector<double> coarse_d2(
      static_cast<size_t>(std::min<int64_t>(n, kQueryTile) * g));
  std::vector<std::pair<double, int32_t>> order;
  order.reserve(p.active_groups.size());
  std::vector<int32_t> gi(static_cast<size_t>(m));
  std::vector<double> gd(static_cast<size_t>(m));

  for (int64_t tb = 0; tb < n; tb += kQueryTile) {
    const int64_t te = std::min(tb + kQueryTile, n);
    const int64_t tn = te - tb;
    const double* pn;
    if (point_norms != nullptr) {
      pn = point_norms + tb;
    } else {
      pn_storage.resize(static_cast<size_t>(tn));
      for (int64_t i = 0; i < tn; ++i) {
        pn_storage[static_cast<size_t>(i)] =
            SquaredNorm(points.Row(rows.begin + tb + i), d);
      }
      pn = pn_storage.data();
    }
    p.coarse->DistancesRange(points,
                             IndexRange{rows.begin + tb, rows.begin + te},
                             pn, coarse_d2.data());
    for (int64_t i = 0; i < tn; ++i) {
      const double* cd = coarse_d2.data() + i * g;
      const double row_norm = pn[i];
      const double slack =
          kPruneSlackRel * (2.0 + p.max_center_len + std::sqrt(row_norm));
      order.clear();
      for (const int32_t j : p.active_groups) {
        order.emplace_back(std::sqrt(cd[j]) -
                               p.group_radius[static_cast<size_t>(j)],
                           j);
      }
      std::sort(order.begin(), order.end());

      double* pd = out_d2 + (tb + i) * m;
      int32_t* pi = out_index + (tb + i) * m;
      for (int64_t s = 0; s < m; ++s) {
        pd[s] = kInf;
        pi[s] = -1;
      }
      int64_t scanned = 0;
      ConstMatrixView row_view(points.Row(rows.begin + tb + i), 1, d);
      for (size_t oi = 0; oi < order.size(); ++oi) {
        // Skip only once all m slots are real (pd[m-1] < inf guarantees
        // it) AND the bound proves no member can displace the worst
        // slot; comparisons stay strict with the slack margin.
        if (scanned >= probe_limit ||
            (pd[m - 1] < kInf &&
             order[oi].first - slack > std::sqrt(pd[m - 1]))) {
          pruned_total += static_cast<int64_t>(order.size() - oi);
          break;
        }
        const int32_t j = order[oi].second;
        BatchTopMSubset(
            row_view, IndexRange{0, 1}, &row_norm, p.panels, group_norms,
            p.kernel,
            IndexRange{p.group_begin[static_cast<size_t>(j)],
                       p.group_begin[static_cast<size_t>(j) + 1]},
            m, gi.data(), gd.data());
        ++scanned;
        for (int64_t s = 0; s < m; ++s) {
          if (gi[static_cast<size_t>(s)] < 0) break;
          const double v = gd[static_cast<size_t>(s)];
          const int32_t orig =
              p.perm_to_orig[static_cast<size_t>(gi[static_cast<size_t>(s)])];
          // Group entries ascend lexicographically; once one fails to
          // displace the worst slot, the rest cannot either.
          if (!entry_less(v, orig, pd[m - 1], pi[m - 1])) break;
          int64_t s2 = m - 1;
          while (s2 > 0 && entry_less(v, orig, pd[s2 - 1], pi[s2 - 1])) {
            pd[s2] = pd[s2 - 1];
            pi[s2] = pi[s2 - 1];
            --s2;
          }
          pd[s2] = v;
          pi[s2] = orig;
        }
      }
      scanned_total += scanned;
    }
  }
  stat_queries_.fetch_add(n, std::memory_order_relaxed);
  GetPruneMetrics().queries->Increment(static_cast<int64_t>(n));
  stat_groups_scanned_.fetch_add(scanned_total, std::memory_order_relaxed);
  GetPruneMetrics().groups_scanned->Increment(static_cast<int64_t>(scanned_total));
  stat_groups_pruned_.fetch_add(pruned_total, std::memory_order_relaxed);
  GetPruneMetrics().groups_pruned->Increment(static_cast<int64_t>(pruned_total));
}

NearestResult CenterIndex::AssignOne(const double* point) const {
  if (pruned_ != nullptr) {
    int32_t idx = -1;
    double d2 = kInf;
    PrunedFindRange(ConstMatrixView(point, 1, dim()), IndexRange{0, 1},
                    /*point_norms=*/nullptr, &idx, &d2);
    NearestResult r;
    r.index = idx;
    r.distance2 = d2;
    return r;
  }
  if (options_.enable_pruning) {
    stat_exact_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    GetPruneMetrics().exact_fallbacks->Increment(static_cast<int64_t>(1));
  }
  return search_.Find(point);
}

void CenterIndex::AssignRange(ConstMatrixView points, IndexRange rows,
                              int32_t* out_index, double* out_d2) const {
  KMEANSLL_CHECK_EQ(points.cols(), dim());
  if (pruned_ != nullptr) {
    if (out_d2 != nullptr) {
      PrunedFindRange(points, rows, /*point_norms=*/nullptr, out_index,
                      out_d2);
      return;
    }
    std::vector<double> d2(static_cast<size_t>(rows.size()));
    PrunedFindRange(points, rows, /*point_norms=*/nullptr, out_index,
                    d2.data());
    return;
  }
  if (options_.enable_pruning) {
    stat_exact_fallbacks_.fetch_add(rows.size(), std::memory_order_relaxed);
    GetPruneMetrics().exact_fallbacks->Increment(static_cast<int64_t>(rows.size()));
  }
  if (out_d2 != nullptr) {
    search_.FindRange(points, rows, /*point_norms=*/nullptr, out_index,
                      out_d2);
    return;
  }
  std::vector<double> d2(static_cast<size_t>(rows.size()));
  search_.FindRange(points, rows, /*point_norms=*/nullptr, out_index,
                    d2.data());
}

Assignment CenterIndex::AssignBatch(const DatasetSource& data,
                                    ThreadPool* pool,
                                    const double* point_norms) const {
  KMEANSLL_CHECK_EQ(data.dim(), dim());
  Assignment out;
  out.cluster.assign(static_cast<size_t>(data.n()), -1);
  if (pruned_ == nullptr) {
    if (options_.enable_pruning) {
      stat_exact_fallbacks_.fetch_add(data.n(), std::memory_order_relaxed);
      GetPruneMetrics().exact_fallbacks->Increment(static_cast<int64_t>(data.n()));
    }
    out.cost = ReduceNearestWithSearch(data, search_, pool, point_norms,
                                       out.cluster.data());
    return out;
  }
  // Pruned reduction mirroring ReduceNearestWithSearch's skeleton — same
  // chunk grid, same block walk, same per-chunk Kahan chains combined in
  // chunk order. The pruned per-row d² are bitwise the flat scan's (in
  // exact mode), so the whole fold — indices AND cost — is too.
  const ScanSchedule schedule = MakeScanSchedule(data, data.n(), pool);
  auto map = [&](IndexRange r) {
    KahanSum partial;
    ForEachBlock(data, r.begin, r.end, [&](const DatasetView& v) {
      const int64_t first = v.first_row();
      std::vector<double> d2(static_cast<size_t>(v.rows()));
      PrunedFindRange(v.points(), IndexRange{0, v.rows()},
                      point_norms == nullptr ? nullptr
                                             : point_norms + first,
                      out.cluster.data() + first, d2.data());
      for (int64_t i = 0; i < v.rows(); ++i) {
        partial.Add(v.Weight(i) * d2[static_cast<size_t>(i)]);
      }
    });
    return partial;
  };
  auto combine = [](KahanSum a, KahanSum b) {
    a.Merge(b);
    return a;
  };
  out.cost = ParallelReduce<KahanSum>(pool, data.n(), KahanSum(), map,
                                      combine, &schedule)
                 .Total();
  return out;
}

Assignment CenterIndex::AssignBatch(const Dataset& data, ThreadPool* pool,
                                    const double* point_norms) const {
  InMemorySource source = data.AsSource();
  return AssignBatch(source, pool, point_norms);
}

int64_t CenterIndex::AssignTopM(const double* point, int64_t m,
                                std::vector<int32_t>* out_index,
                                std::vector<double>* out_d2) const {
  KMEANSLL_CHECK_GT(m, 0);
  std::vector<int32_t> idx(static_cast<size_t>(m));
  std::vector<double> d2(static_cast<size_t>(m));
  ConstMatrixView one(point, 1, dim());
  if (pruned_ != nullptr) {
    PrunedFindTopMRange(one, IndexRange{0, 1}, /*point_norms=*/nullptr, m,
                        idx.data(), d2.data());
  } else {
    if (options_.enable_pruning) {
      stat_exact_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      GetPruneMetrics().exact_fallbacks->Increment(static_cast<int64_t>(1));
    }
    search_.FindTopMRange(one, IndexRange{0, 1}, /*point_norms=*/nullptr, m,
                          idx.data(), d2.data());
  }
  const int64_t filled = std::min<int64_t>(m, k());
  idx.resize(static_cast<size_t>(filled));
  d2.resize(static_cast<size_t>(filled));
  *out_index = std::move(idx);
  *out_d2 = std::move(d2);
  return filled;
}

void CenterIndex::AssignTopMRange(ConstMatrixView points, IndexRange rows,
                                  int64_t m, int32_t* out_index,
                                  double* out_d2) const {
  KMEANSLL_CHECK_EQ(points.cols(), dim());
  if (pruned_ != nullptr) {
    PrunedFindTopMRange(points, rows, /*point_norms=*/nullptr, m, out_index,
                        out_d2);
    return;
  }
  if (options_.enable_pruning) {
    stat_exact_fallbacks_.fetch_add(rows.size(), std::memory_order_relaxed);
    GetPruneMetrics().exact_fallbacks->Increment(static_cast<int64_t>(rows.size()));
  }
  search_.FindTopMRange(points, rows, /*point_norms=*/nullptr, m, out_index,
                        out_d2);
}

double CenterIndex::MeasureApproxRecall(ConstMatrixView queries) const {
  KMEANSLL_CHECK_EQ(queries.cols(), dim());
  const int64_t n = queries.rows();
  if (n <= 0 || pruned_ == nullptr) return 1.0;
  std::vector<int32_t> exact_idx(static_cast<size_t>(n));
  std::vector<int32_t> served_idx(static_cast<size_t>(n));
  std::vector<double> d2(static_cast<size_t>(n));
  search_.FindRange(queries, IndexRange{0, n}, /*point_norms=*/nullptr,
                    exact_idx.data(), d2.data());
  PrunedFindRange(queries, IndexRange{0, n}, /*point_norms=*/nullptr,
                  served_idx.data(), d2.data());
  int64_t matched = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (exact_idx[static_cast<size_t>(i)] ==
        served_idx[static_cast<size_t>(i)]) {
      ++matched;
    }
  }
  return static_cast<double>(matched) / static_cast<double>(n);
}

Assignment Predict(const CenterIndex& index, const Dataset& data) {
  return index.AssignBatch(data);
}

Assignment Predict(const CenterIndex& index, const DatasetSource& data) {
  return index.AssignBatch(data);
}

}  // namespace kmeansll::serving
