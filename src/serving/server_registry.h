// ServerRegistry: the multi-tenant serving front end.
//
// One ModelServer serves one model; production traffic is many models
// behind one endpoint, with heavily skewed per-model load (a handful of
// hot tenants, a long tail of cold ones) and per-tenant latency
// expectations. The registry routes named queries to per-model serving
// stacks, each an independent column:
//
//   name ──► Tenant { ModelServer (RCU snapshot holder)
//                     RequestBatcher (per-model coalescing + admission)
//                     LatencyHistogram (per-model percentile telemetry)
//                     op counters (atomic cells) }
//
// Isolation is structural, not scheduled: tenants share NOTHING mutable
// — no common queue, no common mutex on the query path, no common
// snapshot — so an overloaded tenant shedding at its max_pending /
// max_latency_us bound cannot add a cycle of latency to any other
// tenant, and a Publish to one model cannot perturb another model's
// snapshot pointer or version (the isolation regression tests in
// tests/serving_test.cc assert exactly that, bitwise). The registry map
// itself is registration-time state: Register takes the writer lock,
// the per-query lookup takes a shared lock just long enough to resolve
// the name to a Tenant*, and tenants are never removed, so the pointer
// stays valid for the registry's lifetime.
//
// Each tenant's batcher can run with adaptive sizing
// (RequestBatcherOptions::adaptive_batch): the batch-full threshold
// tracks that tenant's observed arrival rate, so a cold tenant's
// occasional query flushes at once while a hot tenant's flood coalesces
// into full engine panels — per-tenant, because arrival rates differ
// per tenant. Per-query end-to-end latency (admission through answer)
// is recorded into the tenant's LatencyHistogram, whose snapshot() is
// per-cell tear-free on the IoStats atomic-cell pattern; stats(name)
// bundles it with the batcher/server counters so a scraper gets QPS,
// shed counts, and p50/p95/p99 without touching any query-path lock.
//
// bench/workload_harness.cc drives this front end with seeded zipf
// model- and query-skew (YCSB-style mixed operation streams) and prints
// thread-scaling tables; its --smoke mode asserts exact served/shed
// counts deterministically under ctest.

#ifndef KMEANSLL_SERVING_SERVER_REGISTRY_H_
#define KMEANSLL_SERVING_SERVER_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/telemetry.h"
#include "serving/center_index.h"
#include "serving/model_server.h"

namespace kmeansll::serving {

/// Per-model serving configuration supplied at Register time.
struct TenantOptions {
  /// Batching + admission for this model's single-point query path.
  /// max_pending / max_latency_us are the tenant's overload contract:
  /// exceeding them sheds THIS tenant's queries (kUnavailable with a
  /// retry hint) and nobody else's.
  RequestBatcherOptions batcher;
};

/// Named-model routing front end. Thread-safe: any number of threads
/// may query, publish, and read stats concurrently; Register may run
/// concurrently with queries to other models.
class ServerRegistry {
 public:
  ServerRegistry() = default;
  KMEANSLL_DISALLOW_COPY_AND_ASSIGN(ServerRegistry);

  /// Creates the tenant `name` serving `initial` (non-null). Fails on a
  /// duplicate name or an empty one. Tenants live until the registry is
  /// destroyed; destruction drains each tenant's in-flight batcher
  /// queries (~RequestBatcher), but callers must have RETURNED from
  /// registry methods before the registry itself is destroyed (standard
  /// object lifetime).
  Status Register(const std::string& name,
                  std::shared_ptr<const CenterIndex> initial,
                  const TenantOptions& options = TenantOptions{});

  /// Nearest center of `point` under `name`'s current snapshot, through
  /// that tenant's batcher (coalescing + admission control). Unknown
  /// names fail kInvalidArgument; overload sheds kUnavailable. Served
  /// queries record end-to-end latency into the tenant's histogram.
  Result<NearestResult> Assign(const std::string& name, const double* point);

  /// The m nearest centers of one point (see CenterIndex::AssignTopM).
  /// Unbatched: runs on an acquired snapshot directly, bypassing the
  /// batcher's queue (and therefore its admission bounds — top-m is the
  /// low-rate analytical path, not the QPS path).
  Result<int64_t> AssignTopM(const std::string& name, const double* point,
                             int64_t m, std::vector<int32_t>* out_index,
                             std::vector<double>* out_d2);

  /// Bulk assignment of a whole dataset under `name`'s snapshot
  /// (bitwise ComputeAssignment over that snapshot's centers).
  Result<Assignment> AssignBulk(const std::string& name,
                                const DatasetSource& data,
                                ThreadPool* pool = nullptr);

  /// Writer-side pass-throughs to the tenant's ModelServer. A publish
  /// to one model never touches any other model's snapshot.
  Status Publish(const std::string& name,
                 std::shared_ptr<const CenterIndex> next);
  Status PublishFromFile(const std::string& name, const std::string& path);
  Status Refine(const std::string& name, const ModelServer::RefineFn& fn);

  /// The tenant's current snapshot (reader-side; lock-free once the
  /// name resolves). Mostly for tests and bulk callers that want to pin
  /// one version across several operations.
  Result<std::shared_ptr<const CenterIndex>> AcquireSnapshot(
      const std::string& name) const;

  /// The tenant's ModelServer, for long-lived writer-side attachments —
  /// the freshness RefineLoop (serving/freshness.h) binds to a tenant
  /// through this. The pointer stays valid for the registry's lifetime
  /// (tenants are never removed).
  Result<ModelServer*> server(const std::string& name);

  /// One tenant's full telemetry: batcher counters (queries / served /
  /// shed / batches / adaptive limit), server counters (publishes /
  /// refines, plus the freshness signal — `server.serving_stale` and
  /// `server.staleness_ms` surface a refine loop that missed its SLO
  /// while the tenant keeps answering from the last good snapshot),
  /// op-mix counters, and the latency-percentile snapshot.
  /// Assembled from atomic cells and the batcher's stats mutex — never
  /// from a lock a query holds across engine work.
  struct TenantStats {
    RequestBatcher::Stats batcher;
    ModelServer::Stats server;
    int64_t topm_queries = 0;
    int64_t bulk_queries = 0;
    int64_t bulk_rows = 0;
    LatencyHistogram::Snapshot latency;  ///< served Assign/TopM, in us
    /// Pruned-index telemetry of the CURRENT snapshot (counters live on
    /// the snapshot, so a Publish/Refine swap starts them fresh —
    /// per-version prune effectiveness, which is what a tuner wants).
    bool pruned = false;          ///< current snapshot serves pruned
    int64_t prune_groups = 0;     ///< coarse groups in the current index
    PruneStats prune;             ///< scans / prunes / fallbacks
  };
  Result<TenantStats> stats(const std::string& name) const;

  /// Registered names, sorted (the map order).
  std::vector<std::string> model_names() const;
  int64_t num_models() const;

  /// One-call Prometheus scrape for the whole process: every tenant's
  /// serving telemetry as `kmll_tenant_*` families labeled
  /// `model="<name>"` (batcher admit/serve/shed counters, publish and
  /// refine counters, freshness gauges, op-mix counters, the per-tenant
  /// Assign/TopM latency histogram in cumulative bucket format, and the
  /// current snapshot's prune counters), followed by the process-wide
  /// MetricsRegistry::Global() exposition. Values are tear-free per
  /// cell, same contract as stats().
  std::string DumpPrometheusText() const;

 private:
  /// One model's serving column. The members form a dependency chain
  /// (batcher borrows server and is declared LAST so its destructor —
  /// which drains in-flight queries — runs while the server and the
  /// telemetry cells are still alive), so declaration order matters and
  /// the struct is neither movable nor copyable.
  struct Tenant {
    Tenant(std::shared_ptr<const CenterIndex> initial,
           const RequestBatcherOptions& options)
        : server(std::move(initial)), batcher(&server, options) {}
    ModelServer server;
    LatencyHistogram latency;
    std::atomic<int64_t> topm_queries{0};
    std::atomic<int64_t> bulk_queries{0};
    std::atomic<int64_t> bulk_rows{0};
    RequestBatcher batcher;  // destroyed first: drains in-flight Assigns
  };

  /// Resolves a name under the shared lock. The returned pointer stays
  /// valid forever (tenants are never removed), so callers drop the
  /// lock before doing any real work.
  Result<Tenant*> Find(const std::string& name) const;

  mutable std::shared_mutex mu_;  ///< guards the map, never query work
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace kmeansll::serving

#endif  // KMEANSLL_SERVING_SERVER_REGISTRY_H_
