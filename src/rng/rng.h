// Deterministic, splittable pseudo-random streams.
//
// Every stochastic component of the library draws from an explicit Rng.
// Substreams derived via Fork(purpose, index) are statistically independent
// and depend only on (root seed, purpose, index) — never on thread count or
// execution order — which is what makes the parallel algorithms
// bit-reproducible (DESIGN.md §5.7).
//
// Generator: xoshiro256** (Blackman & Vigna 2018), period 2^256 - 1.

#ifndef KMEANSLL_RNG_RNG_H_
#define KMEANSLL_RNG_RNG_H_

#include <cstdint>
#include <limits>

#include "common/macros.h"
#include "rng/splitmix64.h"

namespace kmeansll::rng {

/// Purpose tags keep substreams for different algorithm stages disjoint
/// even when they share an index (e.g. round number).
enum class StreamPurpose : uint64_t {
  kGeneral = 0,
  kInitialCenter = 1,
  kRoundSampling = 2,
  kRecluster = 3,
  kDataGeneration = 4,
  kShuffle = 5,
  kLloydRepair = 6,
  kPartitionGroup = 7,
  kTrial = 8,
  kWorkload = 9,
};

/// xoshiro256** stream with convenience draws. Copyable (copies fork the
/// full state — use Fork() for independent streams instead).
class Rng {
 public:
  /// Seeds the state by running SplitMix64 from `seed`.
  explicit Rng(uint64_t seed = 0xC0FFEE123456789ULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    root_key_ = seed;
    uint64_t sm = seed;
    for (int i = 0; i < 4; ++i) state_[i] = SplitMix64Next(&sm);
    // All-zero state is the one invalid xoshiro state; SplitMix64 cannot
    // produce four zero outputs from any seed, but keep the guard explicit.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
      state_[0] = 1;
    }
    cached_gaussian_valid_ = false;
  }

  /// Uniform 64-bit draw.
  uint64_t NextUInt64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) {
    KMEANSLL_DCHECK(bound > 0);
    unsigned __int128 m =
        static_cast<unsigned __int128>(NextUInt64()) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (-bound) % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>(NextUInt64()) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble() {
    return static_cast<double>(NextUInt64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli draw; p <= 0 is always false, p >= 1 always true.
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Standard normal via Marsaglia's polar method (pairs are cached).
  double NextGaussian() {
    if (cached_gaussian_valid_) {
      cached_gaussian_valid_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = NextDouble(-1.0, 1.0);
      v = NextDouble(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double scale = Sqrt(-2.0 * Log(s) / s);
    cached_gaussian_ = v * scale;
    cached_gaussian_valid_ = true;
    return u * scale;
  }

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Exponential with rate `lambda` (mean 1/lambda).
  double NextExponential(double lambda) {
    // 1 - NextDouble() is in (0, 1], so the log is finite.
    return -Log(1.0 - NextDouble()) / lambda;
  }

  /// Derives an independent substream keyed by (this stream's root,
  /// purpose, index). Deterministic: the same tuple always yields the same
  /// stream regardless of how much this stream has been consumed.
  Rng Fork(StreamPurpose purpose, uint64_t index = 0) const {
    uint64_t derived = HashCombine(
        root_key_, HashCombine(static_cast<uint64_t>(purpose), index));
    return Rng(derived);
  }

  /// The key identifying this stream's derivation point.
  uint64_t root_key() const { return root_key_; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  // Wrappers keep <cmath> out of this hot header's public surface.
  static double Sqrt(double x);
  static double Log(double x);

  uint64_t state_[4];
  uint64_t root_key_ = 0xC0FFEE123456789ULL;
  double cached_gaussian_ = 0.0;
  bool cached_gaussian_valid_ = false;

  friend class RngFactory;
};

/// Produces the root stream for a given user seed.
inline Rng MakeRootRng(uint64_t seed) {
  Rng r(Mix64(seed));
  return r;
}

}  // namespace kmeansll::rng

#endif  // KMEANSLL_RNG_RNG_H_
