#include "rng/reservoir.h"

#include <cmath>

namespace kmeansll::rng {

UniformReservoir::UniformReservoir(int64_t capacity, Rng rng)
    : capacity_(capacity), rng_(rng) {
  KMEANSLL_CHECK_GE(capacity, 1);
  items_.reserve(static_cast<size_t>(capacity));
}

void UniformReservoir::Offer(int64_t item) {
  ++seen_;
  if (static_cast<int64_t>(items_.size()) < capacity_) {
    items_.push_back(item);
    return;
  }
  int64_t j = static_cast<int64_t>(rng_.NextBounded(seen_));
  if (j < capacity_) items_[static_cast<size_t>(j)] = item;
}

WeightedReservoir::WeightedReservoir(int64_t capacity, Rng rng)
    : capacity_(capacity), rng_(rng) {
  KMEANSLL_CHECK_GE(capacity, 1);
}

void WeightedReservoir::Offer(int64_t item, double weight) {
  if (!(weight > 0.0)) return;
  // Key log(u)/w is a monotone transform of u^(1/w); working in log space
  // avoids underflow for the tiny per-point D² fractions of huge datasets.
  double u = rng_.NextDouble();
  while (u == 0.0) u = rng_.NextDouble();
  Push(Entry{std::log(u) / weight, item});
}

void WeightedReservoir::OfferWithUniform(int64_t item, double weight,
                                         double u) {
  if (!(weight > 0.0)) return;
  KMEANSLL_CHECK(u > 0.0 && u < 1.0);
  Push(Entry{std::log(u) / weight, item});
}

void WeightedReservoir::Push(Entry e) {
  if (static_cast<int64_t>(heap_.size()) < capacity_) {
    heap_.push(e);
    return;
  }
  if (e.key > heap_.top().key) {
    heap_.pop();
    heap_.push(e);
  }
}

void WeightedReservoir::Merge(const WeightedReservoir& other) {
  auto copy = other.heap_;
  while (!copy.empty()) {
    Push(copy.top());
    copy.pop();
  }
}

std::vector<int64_t> WeightedReservoir::Items() const {
  std::vector<int64_t> out;
  out.reserve(heap_.size());
  auto copy = heap_;
  while (!copy.empty()) {
    out.push_back(copy.top().item);
    copy.pop();
  }
  return out;
}

}  // namespace kmeansll::rng
