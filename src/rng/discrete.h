// Sampling from a discrete distribution given unnormalized non-negative
// weights. Two implementations with different build/draw trade-offs:
//
//  * PrefixSumSampler: O(n) build, O(log n) per draw. Used by k-means++
//    (Algorithm 1), where the weights change after every single draw, and
//    by the exact-ℓ mode of k-means||.
//  * AliasTable (Vose 1991): O(n) build, O(1) per draw. Used when many
//    draws are taken from a frozen distribution (Partition baseline,
//    workload generators). Ablated against PrefixSumSampler in bench/bm_rng.

#ifndef KMEANSLL_RNG_DISCRETE_H_
#define KMEANSLL_RNG_DISCRETE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rng/rng.h"

namespace kmeansll::rng {

/// Cumulative-sum sampler over unnormalized weights.
class PrefixSumSampler {
 public:
  /// Builds from `weights`; entries must be >= 0 and finite, and their sum
  /// must be > 0.
  static Result<PrefixSumSampler> Build(const std::vector<double>& weights);

  /// Index drawn with probability weights[i] / sum(weights).
  int64_t Sample(Rng& rng) const;

  /// Total weight mass.
  double total() const { return cumulative_.empty() ? 0.0 : cumulative_.back(); }
  int64_t size() const { return static_cast<int64_t>(cumulative_.size()); }

 private:
  explicit PrefixSumSampler(std::vector<double> cumulative)
      : cumulative_(std::move(cumulative)) {}

  std::vector<double> cumulative_;  // inclusive prefix sums
};

/// Vose alias-method sampler over unnormalized weights.
class AliasTable {
 public:
  /// Builds from `weights`; entries must be >= 0 and finite, and their sum
  /// must be > 0.
  static Result<AliasTable> Build(const std::vector<double>& weights);

  /// Index drawn with probability weights[i] / sum(weights).
  int64_t Sample(Rng& rng) const;

  int64_t size() const { return static_cast<int64_t>(prob_.size()); }

 private:
  AliasTable(std::vector<double> prob, std::vector<int64_t> alias)
      : prob_(std::move(prob)), alias_(std::move(alias)) {}

  std::vector<double> prob_;     // acceptance probability per bucket
  std::vector<int64_t> alias_;   // fallback index per bucket
};

/// Validates a weight vector: non-empty, all finite and >= 0, positive sum.
Status ValidateWeights(const std::vector<double>& weights);

}  // namespace kmeansll::rng

#endif  // KMEANSLL_RNG_DISCRETE_H_
