// SplitMix64: a tiny, high-quality 64-bit mixer (Steele, Lea, Flood 2014).
// Used to expand user seeds into xoshiro state and to derive independent
// substreams by hashing (seed, purpose, index) tuples.

#ifndef KMEANSLL_RNG_SPLITMIX64_H_
#define KMEANSLL_RNG_SPLITMIX64_H_

#include <cstdint>

namespace kmeansll::rng {

/// One step of the SplitMix64 sequence starting at `state`; advances state.
inline uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless avalanche mix of a single value.
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64Next(&s);
}

/// Order-sensitive combination of two 64-bit values into one well-mixed
/// value; used to derive substream seeds from (seed, purpose, index).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (Mix64(b) + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

/// Uniform double in [0, 1) that is a pure function of (seed, index).
/// This is how the samplers obtain per-point randomness that does not
/// depend on iteration order, threads, or partitioning.
inline double UniformAtIndex(uint64_t seed, uint64_t index) {
  return static_cast<double>(HashCombine(seed, index) >> 11) * 0x1.0p-53;
}

}  // namespace kmeansll::rng

#endif  // KMEANSLL_RNG_SPLITMIX64_H_
