#include "rng/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace kmeansll::rng {

namespace {
double Zeta(int64_t n, double theta) {
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    sum += std::pow(1.0 / static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(int64_t n, double theta)
    : n_(n), theta_(theta) {
  KMEANSLL_CHECK_GE(n, 1);
  KMEANSLL_CHECK_GE(theta, 0.0);
  KMEANSLL_CHECK_LT(theta, 1.0);
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  half_pow_ = std::pow(0.5, theta_);
  // eta degenerates at n == 1 (the only draw is rank 0 regardless).
  eta_ = n_ == 1 ? 0.0
                 : (1.0 - std::pow(2.0 / static_cast<double>(n_),
                                   1.0 - theta_)) /
                       (1.0 - Zeta(2, theta_) / zetan_);
}

int64_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  if (n_ == 1) return 0;
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + half_pow_) return 1;
  const auto rank = static_cast<int64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::clamp<int64_t>(rank, 0, n_ - 1);
}

double ZipfGenerator::ItemProbability(int64_t rank) const {
  KMEANSLL_DCHECK(rank >= 0 && rank < n_);
  return std::pow(1.0 / static_cast<double>(rank + 1), theta_) / zetan_;
}

}  // namespace kmeansll::rng
