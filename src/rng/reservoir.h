// Reservoir sampling: select a fixed-size sample from a stream in one pass.
//
//  * UniformReservoir: Vitter's Algorithm R — k uniform samples without
//    replacement.
//  * WeightedReservoir: Efraimidis–Spirakis A-ExpJ — k samples without
//    replacement with inclusion probability proportional to weight.
//
// The weighted variant implements the exact-ℓ selection mode of k-means||
// (paper §5.3): in each round, exactly ℓ points are drawn D²-proportionally.
// Being one-pass and mergeable per partition, it preserves the algorithm's
// MapReduce-friendliness.

#ifndef KMEANSLL_RNG_RESERVOIR_H_
#define KMEANSLL_RNG_RESERVOIR_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/macros.h"
#include "rng/rng.h"

namespace kmeansll::rng {

/// k uniform samples without replacement from a stream of unknown length.
class UniformReservoir {
 public:
  /// `capacity` is the sample size k; must be >= 1.
  UniformReservoir(int64_t capacity, Rng rng);

  /// Offers the next stream element (identified by caller-side index).
  void Offer(int64_t item);

  /// Items currently held (k, or fewer if the stream was shorter).
  const std::vector<int64_t>& items() const { return items_; }
  int64_t seen() const { return seen_; }

 private:
  int64_t capacity_;
  int64_t seen_ = 0;
  std::vector<int64_t> items_;
  Rng rng_;
};

/// k samples without replacement, probability proportional to weight
/// (Efraimidis–Spirakis A-ExpJ: keep the k largest keys u^(1/w)).
class WeightedReservoir {
 public:
  /// `capacity` is the sample size k; must be >= 1.
  WeightedReservoir(int64_t capacity, Rng rng);

  /// Offers an element with the given weight; weight <= 0 is never chosen.
  void Offer(int64_t item, double weight);

  /// Offer with a caller-supplied uniform draw u in (0, 1); use when the
  /// randomness must be a pure function of the item (e.g. hashed per-point
  /// uniforms for partition-independent selection). Requires u > 0.
  void OfferWithUniform(int64_t item, double weight, double u);

  /// Merges another reservoir built from a disjoint part of the stream.
  /// Keys are comparable across reservoirs, so the union's top-k is exact.
  void Merge(const WeightedReservoir& other);

  /// Selected items, unordered. Size is min(k, #positive-weight offers).
  std::vector<int64_t> Items() const;

 private:
  struct Entry {
    double key;     // log(u)/w; larger is better
    int64_t item;
    bool operator>(const Entry& rhs) const { return key > rhs.key; }
  };

  void Push(Entry e);

  int64_t capacity_;
  // Min-heap on key: the root is the weakest survivor.
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  Rng rng_;

  friend class WeightedReservoirTestPeer;
};

}  // namespace kmeansll::rng

#endif  // KMEANSLL_RNG_RESERVOIR_H_
