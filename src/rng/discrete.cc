#include "rng/discrete.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace kmeansll::rng {

Status ValidateWeights(const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("weight vector is empty");
  }
  KahanSum sum;
  for (size_t i = 0; i < weights.size(); ++i) {
    double w = weights[i];
    if (!std::isfinite(w)) {
      return Status::InvalidArgument("weight " + std::to_string(i) +
                                     " is not finite");
    }
    if (w < 0.0) {
      return Status::InvalidArgument("weight " + std::to_string(i) +
                                     " is negative");
    }
    sum.Add(w);
  }
  if (!(sum.Total() > 0.0)) {
    return Status::InvalidArgument("weights sum to zero");
  }
  return Status::OK();
}

Result<PrefixSumSampler> PrefixSumSampler::Build(
    const std::vector<double>& weights) {
  KMEANSLL_RETURN_NOT_OK(ValidateWeights(weights));
  std::vector<double> cumulative(weights.size());
  KahanSum sum;
  for (size_t i = 0; i < weights.size(); ++i) {
    sum.Add(weights[i]);
    cumulative[i] = sum.Total();
  }
  return PrefixSumSampler(std::move(cumulative));
}

int64_t PrefixSumSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble() * cumulative_.back();
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;  // guard against u == total
  // Skip zero-weight entries that share a prefix value with a predecessor:
  // upper_bound already lands on the first index whose cumulative exceeds
  // u, which necessarily has positive weight, so no adjustment is needed.
  return static_cast<int64_t>(it - cumulative_.begin());
}

Result<AliasTable> AliasTable::Build(const std::vector<double>& weights) {
  KMEANSLL_RETURN_NOT_OK(ValidateWeights(weights));
  const int64_t n = static_cast<int64_t>(weights.size());
  KahanSum total;
  for (double w : weights) total.Add(w);
  const double scale = static_cast<double>(n) / total.Total();

  std::vector<double> prob(n);
  std::vector<int64_t> alias(n);
  // Scaled weights; < 1 go to `small`, >= 1 to `large`.
  std::vector<double> scaled(n);
  std::vector<int64_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * scale;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    int64_t s = small.back();
    small.pop_back();
    int64_t l = large.back();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are numerically 1.0.
  for (int64_t l : large) {
    prob[l] = 1.0;
    alias[l] = l;
  }
  for (int64_t s : small) {
    prob[s] = 1.0;
    alias[s] = s;
  }
  return AliasTable(std::move(prob), std::move(alias));
}

int64_t AliasTable::Sample(Rng& rng) const {
  const int64_t n = static_cast<int64_t>(prob_.size());
  int64_t bucket = static_cast<int64_t>(rng.NextBounded(n));
  return rng.NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace kmeansll::rng
