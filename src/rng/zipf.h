// Seeded zipfian rank sampling for skewed-workload generation.
//
// ZipfGenerator draws ranks in [0, n) with P(rank r) proportional to
// 1/(r+1)^theta — rank 0 is the hottest item — using the classic
// Gray et al. rejection-free inversion (the algorithm YCSB's
// ZipfianGenerator uses): the zeta normalizer and the inversion
// constants are precomputed once at construction, so Next() is two
// pow() calls per draw and consumes exactly one uniform from the
// caller's Rng. Determinism therefore composes with the library's rng
// contract: the sampled rank sequence is a pure function of the Rng
// stream, so seeded workloads replay bitwise (the workload harness and
// tests/workload_test.cc rely on this).
//
// theta = 0 degenerates to the uniform distribution; theta in
// [0.9, 0.99] is the YCSB-conventional "skewed" range (at theta = 0.99
// and n = 100 the hottest rank alone carries ~19% of the draws).
// theta >= 1 is rejected (the inversion constants diverge).

#ifndef KMEANSLL_RNG_ZIPF_H_
#define KMEANSLL_RNG_ZIPF_H_

#include <cstdint>

#include "rng/rng.h"

namespace kmeansll::rng {

class ZipfGenerator {
 public:
  /// Precomputes the inversion constants for `n` items (n >= 1) with
  /// skew `theta` in [0, 1). O(n) once, for the zeta sum.
  ZipfGenerator(int64_t n, double theta);

  /// Draws one rank in [0, n); consumes exactly one uniform from `rng`.
  int64_t Next(Rng& rng) const;

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Exact model probability of `rank` (for statistical tests):
  /// (1/(rank+1)^theta) / zeta(n, theta).
  double ItemProbability(int64_t rank) const;

 private:
  int64_t n_;
  double theta_;
  double alpha_;     ///< 1 / (1 - theta)
  double zetan_;     ///< sum_{i=1..n} 1/i^theta
  double eta_;       ///< inversion constant (Gray et al.)
  double half_pow_;  ///< 0.5^theta, the rank-1 branch threshold
};

}  // namespace kmeansll::rng

#endif  // KMEANSLL_RNG_ZIPF_H_
