#include "rng/rng.h"

#include <cmath>

namespace kmeansll::rng {

double Rng::Sqrt(double x) { return std::sqrt(x); }
double Rng::Log(double x) { return std::log(x); }

}  // namespace kmeansll::rng
