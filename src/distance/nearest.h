// Nearest-center search and incremental min-distance maintenance.
//
// NearestCenterSearch answers "which center is closest to x, and at what
// squared distance" for a frozen center set, optionally using the
// norm-expanded kernel.
//
// MinDistanceTracker maintains d²(x, C) for every point x while C grows —
// the data structure behind both k-means++ (Algorithm 1) and each round of
// k-means|| (Algorithm 2): after centers are added, one pass updates
// min(d_old², d²(x, c_new)) instead of rescanning all of C. This is what
// keeps the total initializer cost at O(nkd) as the paper states.

#ifndef KMEANSLL_DISTANCE_NEAREST_H_
#define KMEANSLL_DISTANCE_NEAREST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "matrix/dataset.h"
#include "matrix/matrix.h"

namespace kmeansll {

/// Result of a nearest-center query.
struct NearestResult {
  int64_t index = -1;    ///< row of the closest center
  double distance2 = 0;  ///< squared distance to it
};

/// Search over a frozen k × d center matrix.
class NearestCenterSearch {
 public:
  /// Kernel selection; kAuto picks expanded for d >= 16 (where the dot
  /// product formulation wins; see bench/bm_distance).
  enum class Kernel { kAuto, kPlain, kExpanded };

  explicit NearestCenterSearch(const Matrix& centers,
                               Kernel kernel = Kernel::kAuto);

  /// Closest center to `point` (dim must match). Centers must be
  /// non-empty.
  NearestResult Find(const double* point) const;

  /// Closest center given the caller-precomputed ||point||² (only used by
  /// the expanded kernel; ignored otherwise).
  NearestResult FindWithNorm(const double* point, double point_norm2) const;

  int64_t num_centers() const { return centers_.rows(); }
  bool uses_expanded_kernel() const { return use_expanded_; }

 private:
  const Matrix& centers_;  // not owned; must outlive the search
  std::vector<double> center_norms_;
  bool use_expanded_;
};

/// Maintains per-point d²(x, C) and the index of the closest center while
/// C grows. All costs are weighted by the dataset's point weights, so the
/// same tracker drives the weighted reclustering step.
class MinDistanceTracker {
 public:
  /// Starts with an empty center set: all distances are +infinity and the
  /// potential is undefined until the first center is added.
  explicit MinDistanceTracker(const Dataset& data);

  /// Accounts rows [first, centers.rows()) of `centers` as newly added,
  /// updating every point's min distance. Returns the new potential
  /// φ_X(C) = Σ_x w_x · d²(x, C).
  double AddCenters(const Matrix& centers, int64_t first);

  /// Squared distance from point i to the current center set.
  double Distance2(int64_t i) const {
    return min_d2_[static_cast<size_t>(i)];
  }
  /// Index (into the accumulated center matrix) of point i's closest
  /// center; -1 before any center is added.
  int64_t ClosestCenter(int64_t i) const {
    return closest_[static_cast<size_t>(i)];
  }

  /// Current potential φ_X(C) (weighted).
  double Potential() const { return potential_; }

  /// Vector of weighted contributions w_x · d²(x, C) — the D² sampling
  /// weights of Algorithms 1 and 2.
  std::vector<double> WeightedContributions() const;

  const std::vector<double>& distances2() const { return min_d2_; }

  int64_t n() const { return static_cast<int64_t>(min_d2_.size()); }

 private:
  const Dataset& data_;  // not owned; must outlive the tracker
  std::vector<double> min_d2_;
  std::vector<int64_t> closest_;
  double potential_ = 0.0;

  void RecomputePotential();
};

/// Per-row squared norms of a matrix (used by the expanded kernel).
std::vector<double> RowSquaredNorms(const Matrix& m);

}  // namespace kmeansll

#endif  // KMEANSLL_DISTANCE_NEAREST_H_
