// Nearest-center search and incremental min-distance maintenance.
//
// NearestCenterSearch answers "which center is closest to x, and at what
// squared distance" for a frozen center set. The single-point Find is the
// scalar reference path; FindRange/FindAll (and the two-nearest /
// all-distances variants feeding the accelerated Lloyd bounds) route
// whole blocks of points through the blocked batch engine
// (distance/batch.h), which is what every O(n·k·d) consumer in the
// library uses. Freeze() additionally caches the engine's packed center
// panels inside the search, so repeated batch queries against the same
// centers — chunked parallel passes, minibatch iterations, streaming
// blocks — stop re-packing the panels per call.
//
// MinDistanceTracker maintains d²(x, C) for every point x while C grows —
// the data structure behind both k-means++ (Algorithm 1) and each round of
// k-means|| (Algorithm 2): after centers are added, one blocked pass
// updates min(d_old², d²(x, c_new)) instead of rescanning all of C. This
// is what keeps the total initializer cost at O(nkd) as the paper states.
// The pass runs on an optional thread pool with fixed deterministic
// chunking, folds the potential φ into the scan's per-chunk partials, and
// caches per-point norms across rounds for the expanded kernel.

#ifndef KMEANSLL_DISTANCE_NEAREST_H_
#define KMEANSLL_DISTANCE_NEAREST_H_

#include <cstdint>
#include <utility>
#include <vector>

#include <optional>

#include "distance/batch.h"
#include "matrix/dataset.h"
#include "matrix/dataset_view.h"
#include "matrix/matrix.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"

namespace kmeansll {

/// Result of a nearest-center query.
struct NearestResult {
  int64_t index = -1;    ///< row of the closest center
  double distance2 = 0;  ///< squared distance to it
};

/// Search over a frozen k × d center matrix.
///
/// Determinism: the scalar Find path and every batched path evaluate
/// distances with the engine's per-pair accumulation chains
/// (PairSquaredL2 / PairDotProduct match the panel kernels bitwise), so
/// Find, FindRange, FindAll, and the two-nearest/all-distances variants
/// agree bitwise on values and argmin ties for the same kernel choice.
class NearestCenterSearch {
 public:
  /// Kernel selection; kAuto picks expanded for
  /// d >= kExpandedKernelMinDim (where the dot-product formulation wins;
  /// threshold measured in bench/bm_batch_distance).
  enum class Kernel { kAuto, kPlain, kExpanded };

  /// Binds the search to `centers` (not owned; must outlive the search
  /// and stay unchanged between queries unless Freeze() is re-run — see
  /// below). Computes the k center norms when the expanded kernel is
  /// selected; does not pack panels (see Freeze).
  explicit NearestCenterSearch(const Matrix& centers,
                               Kernel kernel = Kernel::kAuto);

  /// Packs the center panels (and refreshes the center norms) once, so
  /// every subsequent batch query reuses them instead of re-packing per
  /// call. Call before handing the search to concurrent FindRange
  /// callers (Freeze itself is not thread-safe; the frozen queries are).
  ///
  /// Invalidation contract: the panels are a bitwise snapshot. After
  /// mutating the bound center matrix in place, call Freeze() again to
  /// re-validate (or Unfreeze() to fall back to per-call packing);
  /// queries between the mutation and the re-Freeze see the stale
  /// snapshot.
  void Freeze();

  /// Freeze() variant for callers holding externally validated row norms
  /// of the bound centers — e.g. a LoadModel-checked artifact's, which
  /// are already proven bitwise equal to RowSquaredNorms of the stored
  /// rows. Adopts `norms` and packs the panels without the O(k·d)
  /// norm recomputation Freeze() pays; the adopted values are
  /// bitwise-asserted against the constructor's snapshot (so the centers
  /// must be unchanged since construction — unlike Freeze(), this is NOT
  /// a re-validation point after in-place mutation). Under the plain
  /// kernel the norms are unused and simply discarded.
  void FreezeWithNorms(std::vector<double> norms);

  /// Drops the cached panels; batch queries pack per call again.
  void Unfreeze();

  /// True while a packed-panel snapshot is cached.
  bool frozen() const { return frozen_; }

  /// Closest center to `point` (dim must match). Centers must be
  /// non-empty. Scalar reference path — one point, one center at a time,
  /// bitwise-consistent with the batched paths (see class comment).
  NearestResult Find(const double* point) const;

  /// Closest center given the caller-precomputed ||point||² (only used by
  /// the expanded kernel; ignored otherwise). The norm must come from
  /// SquaredNorm/RowSquaredNorms to stay bitwise-consistent with the
  /// batched paths.
  NearestResult FindWithNorm(const double* point, double point_norm2) const;

  /// Batched: nearest center for rows [rows.begin, rows.end) of `points`
  /// via the blocked engine. Writes out_index[i - rows.begin] (center row)
  /// and out_d2[i - rows.begin]; the output arrays need no
  /// initialization. `point_norms` (indexed i - rows.begin) may be null,
  /// as may `out_index` for distance-only callers. Uses the frozen panel
  /// snapshot when present, else packs per call.
  void FindRange(ConstMatrixView points, IndexRange rows,
                 const double* point_norms, int32_t* out_index,
                 double* out_d2) const;
  void FindRange(const Matrix& points, IndexRange rows,
                 const double* point_norms, int32_t* out_index,
                 double* out_d2) const {
    FindRange(points.view(), rows, point_norms, out_index, out_d2);
  }

  /// Batched over a (possibly disk-resident) source: nearest center for
  /// global rows [rows.begin, rows.end), pinning and scanning each
  /// resident block in ascending row order. Output arrays and
  /// `point_norms` are indexed i - rows.begin exactly as above; per-row
  /// results are bitwise identical to scanning the same rows in memory
  /// (engine values do not depend on block placement).
  void FindRange(const DatasetSource& data, IndexRange rows,
                 const double* point_norms, int32_t* out_index,
                 double* out_d2) const;

  /// Batched: nearest center for every row of `points`, chunked over
  /// `pool` (null runs inline). Results are bitwise identical at any
  /// thread count (fixed kDeterministicChunks chunking). `out_index` may
  /// be null for distance-only callers; `point_norms` (indexed by row of
  /// `points`, length points.rows()) may be null. Packs panels at most
  /// once per call even when not frozen.
  void FindAll(const Matrix& points, std::vector<int32_t>* out_index,
               std::vector<double>* out_d2, ThreadPool* pool = nullptr,
               const double* point_norms = nullptr) const;

  /// FindAll over a source: every row of `data`, chunked on the same
  /// deterministic grid (results bitwise identical to the in-memory
  /// FindAll over the same rows at any thread count).
  void FindAll(const DatasetSource& data, std::vector<int32_t>* out_index,
               std::vector<double>* out_d2, ThreadPool* pool = nullptr,
               const double* point_norms = nullptr) const;

  /// Batched two-nearest (fresh scan): for rows [rows.begin, rows.end)
  /// writes the nearest center's row (out_index), its squared distance
  /// (out_d1), and the second-smallest squared distance (out_d2), all
  /// range-relative and uninitialized on entry. Exact ties resolve like
  /// the sequential ascending scan (lowest index wins; k = 1 leaves
  /// out_d2 at +infinity). This feeds the Hamerly bounds.
  void FindTwoNearestRange(ConstMatrixView points, IndexRange rows,
                           const double* point_norms, int32_t* out_index,
                           double* out_d1, double* out_d2) const;
  void FindTwoNearestRange(const Matrix& points, IndexRange rows,
                           const double* point_norms, int32_t* out_index,
                           double* out_d1, double* out_d2) const {
    FindTwoNearestRange(points.view(), rows, point_norms, out_index, out_d1,
                        out_d2);
  }
  /// Source variant (global rows; outputs indexed i - rows.begin).
  void FindTwoNearestRange(const DatasetSource& data, IndexRange rows,
                           const double* point_norms, int32_t* out_index,
                           double* out_d1, double* out_d2) const;

  /// Batched top-m (fresh scan): for rows [rows.begin, rows.end) writes
  /// each point's m nearest centers in ascending distance order —
  /// out_index[(i - rows.begin) · m + s] / out_d2[...] are the
  /// (s+1)-th nearest center row and its squared distance. Slot 0 is
  /// bitwise the FindRange result; exact ties sort by ascending center
  /// index; m > k leaves trailing slots at index -1 / +infinity. This is
  /// the serving layer's AssignTopM primitive (see BatchTopM).
  void FindTopMRange(ConstMatrixView points, IndexRange rows,
                     const double* point_norms, int64_t m,
                     int32_t* out_index, double* out_d2) const;
  void FindTopMRange(const Matrix& points, IndexRange rows,
                     const double* point_norms, int64_t m,
                     int32_t* out_index, double* out_d2) const {
    FindTopMRange(points.view(), rows, point_norms, m, out_index, out_d2);
  }

  /// Batched dense distances: out_d2[(i - rows.begin) · k + c] =
  /// d²(points row i, center c) for every center, with the engine's
  /// values (expanded results clamped at zero). This feeds the Elkan
  /// bounds and the k × k center-separation table.
  void DistancesRange(ConstMatrixView points, IndexRange rows,
                      const double* point_norms, double* out_d2) const;
  void DistancesRange(const Matrix& points, IndexRange rows,
                      const double* point_norms, double* out_d2) const {
    DistancesRange(points.view(), rows, point_norms, out_d2);
  }
  /// Source variant (global rows; outputs indexed i - rows.begin).
  void DistancesRange(const DatasetSource& data, IndexRange rows,
                      const double* point_norms, double* out_d2) const;

  int64_t num_centers() const { return centers_.rows(); }
  bool uses_expanded_kernel() const { return use_expanded_; }

  /// The cached ||center||² row norms (empty under the plain kernel).
  /// Computed with RowSquaredNorms, so callers that need the same values
  /// for scalar probes (the accelerated Lloyd variants) can share this
  /// vector instead of recomputing it. Refreshed by Freeze().
  const std::vector<double>& center_norms() const { return center_norms_; }

 private:
  /// Engine kernel matching use_expanded_.
  BatchKernel batch_kernel() const {
    return use_expanded_ ? BatchKernel::kExpanded : BatchKernel::kPlain;
  }
  const double* center_norms_or_null() const {
    return use_expanded_ ? center_norms_.data() : nullptr;
  }

  const Matrix& centers_;  // not owned; must outlive the search
  std::vector<double> center_norms_;
  CenterPanels panels_;  // packed snapshot; valid iff frozen_
  bool frozen_ = false;
  bool use_expanded_;
};

/// Maintains per-point d²(x, C) and the index of the closest center while
/// C grows. All costs are weighted by the dataset's point weights, so the
/// same tracker drives the weighted reclustering step.
class MinDistanceTracker {
 public:
  /// Starts with an empty center set: all distances are +infinity and the
  /// potential is undefined until the first center is added. `pool` (may
  /// be null — the sequential initializers pass none and every internal
  /// pass handles that uniformly; no ThreadPool is ever dereferenced on
  /// the null path) parallelizes AddCenters; the fixed chunking keeps
  /// results bitwise identical across thread counts.
  explicit MinDistanceTracker(const Dataset& data,
                              ThreadPool* pool = nullptr);

  /// As above over a DatasetSource — the same tracker streams
  /// disk-resident shards (the source must outlive the tracker).
  explicit MinDistanceTracker(const DatasetSource& data,
                              ThreadPool* pool = nullptr);

  /// Non-copyable/non-movable: the Dataset constructor points data_ at
  /// the tracker's own owned_source_ member, so a byte-wise copy or
  /// move would leave the new object referencing the old one's storage.
  MinDistanceTracker(const MinDistanceTracker&) = delete;
  MinDistanceTracker& operator=(const MinDistanceTracker&) = delete;

  /// Accounts rows [first, centers.rows()) of `centers` as newly added,
  /// updating every point's min distance in one blocked parallel pass that
  /// also folds the new potential into per-chunk partials (no separate
  /// O(n) re-summation). The new rows are packed into panels once per
  /// call (not once per chunk) and shared by all chunks. Returns the new
  /// potential φ_X(C) = Σ_x w_x · d²(x, C).
  double AddCenters(const Matrix& centers, int64_t first);

  /// Squared distance from point i to the current center set.
  double Distance2(int64_t i) const {
    return min_d2_[static_cast<size_t>(i)];
  }
  /// Index (into the accumulated center matrix) of point i's closest
  /// center; -1 before any center is added.
  int64_t ClosestCenter(int64_t i) const {
    return closest_[static_cast<size_t>(i)];
  }

  /// Current potential φ_X(C) (weighted).
  double Potential() const { return potential_; }

  /// Vector of weighted contributions w_x · d²(x, C) — the D² sampling
  /// weights of Algorithms 1 and 2.
  std::vector<double> WeightedContributions() const;

  const std::vector<double>& distances2() const { return min_d2_; }

  int64_t n() const { return static_cast<int64_t>(min_d2_.size()); }

 private:
  std::optional<InMemorySource> owned_source_;  // backs the Dataset ctor
  const DatasetSource* data_;  // not owned; must outlive the tracker
  ThreadPool* pool_;           // not owned; may be null (sequential pass)
  ScanSchedule schedule_;  // shard-aware execution plan, built once and
                           // reused by every AddCenters round (empty for
                           // in-memory sources; timing only — see
                           // parallel/parallel_for.h)
  std::vector<double> min_d2_;
  std::vector<int32_t> closest_;
  std::vector<double> point_norms_;  // lazily cached across rounds
  double potential_ = 0.0;
};

/// Per-row squared norms of a matrix (used by the expanded kernel),
/// computed in parallel over `pool` (null runs inline; results identical).
/// Uses the SquaredNorm chain, so these norms are the ones every engine
/// entry point expects (and computes itself when passed null).
std::vector<double> RowSquaredNorms(const Matrix& m,
                                    ThreadPool* pool = nullptr);

/// Per-row squared norms of every point in a source (same SquaredNorm
/// chain and deterministic chunking as the Matrix overload, so the values
/// are bitwise those of the in-memory pass over the same rows).
std::vector<double> RowSquaredNorms(const DatasetSource& data,
                                    ThreadPool* pool = nullptr);

}  // namespace kmeansll

#endif  // KMEANSLL_DISTANCE_NEAREST_H_
