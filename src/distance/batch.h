// Blocked batch-distance engine: the shared O(n·k·d) kernel layer.
//
// Every hot path in the library — k-means|| round updates, k-means++
// seeding, Lloyd assignment (standard, Hamerly, and Elkan), cost
// evaluation, minibatch, streaming compression, and the MapReduce map
// phases — reduces to the same scan: "for a block of points and a block
// of centers, compute each point's distances and reduce them". This
// header provides that scan once, tiled for cache reuse and
// register-blocked for ILP, instead of the one-point × one-center loops
// each call site used to carry. Three reductions share one loop nest and
// one set of micro-kernels: nearest (argmin merge), two-nearest (for the
// Hamerly bound), and store-all (for the Elkan bound matrix).
//
// Design (see docs/ARCHITECTURE.md and README.md "Distance engine" for
// the full rationale):
//  * Norm-expanded arithmetic: ||x - c||² = ||x||² + ||c||² - 2·x·c with
//    precomputed row norms turns the inner loop into dot products — one
//    load per operand instead of load+subtract — at the price of
//    catastrophic cancellation for near-identical points, so results are
//    clamped at zero (SquaredL2Expanded). A plain tiled kernel remains
//    for small dimensions where the expansion does not pay.
//  * Two-level blocking: every kCenterTile center rows are packed into a
//    t-major panel that is revisited for each point in a kPointTile row
//    block, so panels stay L1-resident while points stream through
//    exactly once per panel. Panels can be packed once and reused across
//    calls (CenterPanels) — the packing cost matters when callers scan
//    few rows per call (minibatch batches, streaming blocks, the
//    per-chunk ranges of a parallel pass).
//  * Register micro-kernel: kMicroPoints points × one panel of
//    kCenterTile centers are accumulated simultaneously in independent
//    chains (explicit AVX2+FMA on capable x86-64, selected once at
//    startup; portable scalar otherwise), giving the FMA units enough
//    ILP to run at throughput instead of latency.
//
// Determinism contract: each (point, center) distance is accumulated in a
// single chain in coordinate order, identical in the micro-kernel and in
// the edge/tail paths, and center blocks are visited in ascending index
// order with strict-< argmin updates. A point's result therefore depends
// only on its own row and the center set — never on tile placement or
// thread count — so parallel callers chunking by kDeterministicChunks get
// bitwise-identical outputs at any parallelism. PairSquaredL2 and
// PairDotProduct reproduce that per-pair chain (including the FMA
// contraction of the AVX2 kernels) one pair at a time, so code that must
// interleave single distances with batched scans — the accelerated Lloyd
// variants — stays bitwise-consistent with the engine.

#ifndef KMEANSLL_DISTANCE_BATCH_H_
#define KMEANSLL_DISTANCE_BATCH_H_

#include <cstdint>
#include <vector>

#include "matrix/matrix.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

// --- Tiling constants (fixed: results must not depend on tuning) -----------
//
// kCenterTile is the packed-panel width: each block of 16 center rows is
// transposed into a t-major panel so the innermost step updates 16
// contiguous per-center accumulators. At 4 doubles per AVX2 register
// that is 4 accumulator vectors per point; the micro-kernel processes
// kMicroPoints = 2 point rows at once, giving 8 independent FMA chains —
// enough to hide the ~4-cycle FMA latency at 2 ops/cycle — while the
// live set (8 accumulators + 4 panel loads + 2 broadcasts) stays within
// the 16 SIMD registers of x86-64 without spilling.
//
// kPointTile bounds the rows streamed per panel visit: one panel
// (kCenterTile · d doubles, 16 KiB at d = 128) stays L1-resident across
// the whole point tile, and each point tile re-reads panels from L2 at
// worst. Larger point tiles stopped helping in bench/bm_batch_distance;
// larger panels double the merge state without speeding up the dot loop.
inline constexpr int64_t kPointTile = 64;
inline constexpr int64_t kCenterTile = 16;
inline constexpr int64_t kMicroPoints = 2;

// Dimension at which the norm-expanded kernels overtake the plain
// subtract-square kernels (shared by the batch engine and
// NearestCenterSearch::Kernel::kAuto). Measured with
// bench/bm_batch_distance (4096 points, k ∈ {64, 256}) on the build
// machine: blocked-plain wins up to d = 24 (the per-center norm
// bookkeeping in the merge step outweighs the saved subtractions when the
// dot loop is short), the two are within noise for d ∈ [32, 48], and
// expanded pulls ahead from d = 64 (91 vs 79 Mpairs/s at d = 128).
// Expanded is preferred at the tie because its callers additionally reuse
// cached point norms across k-means|| rounds, which this microbenchmark
// does not credit.
inline constexpr int64_t kExpandedKernelMinDim = 32;

/// Kernel selection for the batch engine. kAuto picks expanded when
/// cols >= kExpandedKernelMinDim.
enum class BatchKernel { kAuto, kPlain, kExpanded };

/// Center rows packed into the engine's t-major panel layout, reusable
/// across scans while the packed centers are unchanged.
///
/// Packing is O(k·d) — trivial next to one n·k·d scan, but a scan that
/// covers only a small row range pays it in full, and a chunked parallel
/// pass used to pay it once per chunk (~kDeterministicChunks times per
/// pass). Callers with a frozen center set (Lloyd assignment, minibatch,
/// streaming compression) pack once and hand the panels to every
/// FindRange-style call; NearestCenterSearch::Freeze wraps exactly that.
///
/// Panels hold bitwise copies of the center coordinates, so scanning via
/// packed panels is bitwise identical to scanning the source matrix.
/// The panels do NOT track the source matrix: mutating or destroying the
/// packed rows leaves the panels stale, and it is the caller's job to
/// Pack() again (see NearestCenterSearch::Freeze on invalidation).
class CenterPanels {
 public:
  CenterPanels() = default;

  /// Packs rows [first_center, centers.rows()) of `centers`. Full panels
  /// use stride kCenterTile; the final residue panel (k mod kCenterTile
  /// rows) is packed at its own width so small-k callers pay exact flops.
  /// Repacking an already-packed object replaces its contents.
  void Pack(const Matrix& centers, int64_t first_center = 0);

  /// Returns to the empty (unpacked) state.
  void Clear();

  /// True when nothing is packed (also the state after Clear()).
  bool empty() const { return num_centers_ == 0; }

  /// Number of packed center rows.
  int64_t num_centers() const { return num_centers_; }
  /// Coordinate count of each packed row.
  int64_t dim() const { return dim_; }
  /// Row index (in the source matrix) of the first packed center; merged
  /// argmin indices are absolute, i.e. offset by this.
  int64_t first_center() const { return first_center_; }

  /// Raw panel storage (layout documented in Pack); kernel use only.
  const double* data() const { return packed_.data(); }

 private:
  std::vector<double> packed_;
  int64_t num_centers_ = 0;
  int64_t dim_ = 0;
  int64_t first_center_ = 0;
};

/// Merges "nearest of centers rows [first_center, centers.rows())" into
/// (best_d2, best_index) for every point row in [rows.begin, rows.end).
///
/// Output/input arrays are indexed relative to the range: entry
/// i - rows.begin describes point row i. Callers start a fresh query by
/// pre-filling best_d2 with +infinity (and best_index with -1); passing
/// arrays that already hold a previous scan's results performs the
/// incremental min-merge that MinDistanceTracker relies on. best_index
/// receives absolute center row indices; distance-only callers may pass
/// null to skip the argmin bookkeeping. Ties keep the existing value
/// (strict-< update), matching a sequential ascending scan.
///
/// `point_norms` (entry i - rows.begin = ||row i||²) and `center_norms`
/// (entry c - first_center = ||center c||²) are only read by the expanded
/// kernel and may be null, in which case they are computed internally
/// with SquaredNorm (so provided and internally-computed norms are
/// bitwise interchangeable).
///
/// Packs the centers on every call; callers that reuse a frozen center
/// set should pack once into CenterPanels and use the overload below.
void BatchNearestMerge(ConstMatrixView points, IndexRange rows,
                       const double* point_norms, const Matrix& centers,
                       int64_t first_center, const double* center_norms,
                       BatchKernel kernel, double* best_d2,
                       int32_t* best_index);

/// As above, but scanning pre-packed panels. Bitwise identical to the
/// matrix overload for the same centers and kernel.
///
/// Preconditions: panels.dim() == points.cols(); when the resolved
/// kernel is expanded, `center_norms` must be non-null (entry c =
/// ||panel center c||², i.e. indexed relative to panels.first_center()) —
/// panels store coordinates t-major, so norms cannot be recomputed here
/// with the caller-visible SquaredNorm chain.
void BatchNearestMerge(ConstMatrixView points, IndexRange rows,
                       const double* point_norms,
                       const CenterPanels& panels,
                       const double* center_norms, BatchKernel kernel,
                       double* best_d2, int32_t* best_index);

/// Panel-subset variant of the panels overload: merges only packed
/// centers [centers.begin, centers.end) (packed-relative, i.e. offsets
/// into panels.num_centers()) instead of the whole packed set. This is
/// the pruned-index primitive (serving/center_index.h): a two-level
/// index keeps ONE packed panel set whose rows are grouped contiguously
/// and scans only the groups its bounds could not eliminate.
///
/// Panels that straddle the subset boundary are computed at full panel
/// width and clipped at the merge — bitwise-free under the engine
/// contract, since a (point, center) value never depends on which other
/// centers share its panel. Merge semantics, tie resolution, norm
/// indexing (packed-relative), and the absolute best_index values are
/// exactly the full-set overload's; scanning {0, panels.num_centers()}
/// is bitwise the full scan.
void BatchNearestMergeSubset(ConstMatrixView points, IndexRange rows,
                             const double* point_norms,
                             const CenterPanels& panels,
                             const double* center_norms, BatchKernel kernel,
                             IndexRange centers, double* best_d2,
                             int32_t* best_index);

/// Fresh two-nearest scan over pre-packed panels: for every point row in
/// [rows.begin, rows.end) writes the absolute index of the nearest packed
/// center (out_index), its squared distance (out_d1), and the
/// second-smallest squared distance over the packed centers (out_d2).
/// Output arrays are range-relative and need no initialization. Centers
/// are visited in ascending index order with strict-< updates, so exact
/// ties resolve exactly like the sequential reference scan
/// (lowest-index center wins; an equal later distance only ever lands in
/// out_d2). With a single packed center, out_d2 is +infinity.
///
/// This is the Hamerly-bound primitive: d1 seeds the upper bound and d2
/// the lower bound of the full-scan points. Same kernel/norm
/// preconditions as the panels overload of BatchNearestMerge.
void BatchTwoNearest(ConstMatrixView points, IndexRange rows,
                     const double* point_norms, const CenterPanels& panels,
                     const double* center_norms, BatchKernel kernel,
                     int32_t* out_index, double* out_d1, double* out_d2);

/// Small-m top-m merge over pre-packed panels: for every point row in
/// [rows.begin, rows.end) writes its m nearest packed centers in
/// ascending distance order — out_index[(i - rows.begin) · m + s] is the
/// absolute index of the (s+1)-th nearest center and out_d2[...] its
/// squared distance. Output arrays are range-relative and need no
/// initialization; when m > panels.num_centers() the unused trailing
/// slots hold index -1 and distance +infinity.
///
/// Merge semantics extend the engine's argmin contract to m slots:
/// centers are visited in ascending index order and inserted with
/// strict-< comparisons, so among exactly-tied distances the
/// lowest-index center sorts first and slot 0 is bitwise the
/// BatchNearestMerge result (value and argmin). The per-center insertion
/// is O(m) — this is the serving-layer primitive ("give me the m best
/// clusters for this query"), meant for small m, not a full sort
/// (m == k degenerates to insertion sort; use BatchDistances + sort
/// instead). Same kernel/norm preconditions as the panels overload of
/// BatchNearestMerge.
void BatchTopM(ConstMatrixView points, IndexRange rows,
               const double* point_norms, const CenterPanels& panels,
               const double* center_norms, BatchKernel kernel, int64_t m,
               int32_t* out_index, double* out_d2);

/// Panel-subset variant of BatchTopM: the m nearest among packed centers
/// [centers.begin, centers.end) only (packed-relative), with the same
/// initialization, slot, and tie semantics — slot 0 is bitwise the
/// BatchNearestMergeSubset result over the same subset, and trailing
/// slots beyond the subset size hold -1 / +infinity. See
/// BatchNearestMergeSubset for the boundary-panel clipping rationale.
void BatchTopMSubset(ConstMatrixView points, IndexRange rows,
                     const double* point_norms, const CenterPanels& panels,
                     const double* center_norms, BatchKernel kernel,
                     IndexRange centers, int64_t m, int32_t* out_index,
                     double* out_d2);

/// Dense distance rows over pre-packed panels: out_d2[(i - rows.begin) ·
/// panels.num_centers() + c] = ||points row i − packed center c||² for
/// every point row in the range and every packed center. The values are
/// the engine's (expanded results clamped at zero), bitwise identical to
/// what the merge entry points reduce over. This is the Elkan-bound
/// primitive (per-(point, center) lower bounds, k×k center separations).
/// Same kernel/norm preconditions as the panels overload of
/// BatchNearestMerge.
void BatchDistances(ConstMatrixView points, IndexRange rows,
                    const double* point_norms, const CenterPanels& panels,
                    const double* center_norms, BatchKernel kernel,
                    double* out_d2);

/// Single-pair ||a − b||² evaluated with the engine's plain-kernel
/// accumulation chain: one accumulator, coordinate order, fused
/// multiply-add on machines where the AVX2+FMA micro-kernels are
/// dispatched. Bitwise identical to the plain batch kernels' per-pair
/// values — unlike SquaredL2 (distance/l2.h), whose 4-way unrolled chains
/// differ in final ulps. Use this (not SquaredL2) wherever a single
/// distance must agree exactly with a batched scan, e.g. the
/// bound-tightening probes of the accelerated Lloyd variants.
double PairSquaredL2(const double* a, const double* b, int64_t dim);

/// Single-pair dot product with the engine's expanded-kernel chain (see
/// PairSquaredL2). SquaredL2Expanded(||a||², ||b||², PairDotProduct(a, b,
/// d)) reproduces the expanded batch kernels' per-pair value bitwise,
/// provided the norms come from SquaredNorm/RowSquaredNorms like the
/// engine's.
double PairDotProduct(const double* a, const double* b, int64_t dim);

/// Matrix conveniences: the engine scans any contiguous row-major block
/// (ConstMatrixView) so memory-mapped shard views and owned matrices take
/// the same path; these shims keep Matrix call sites terse.
inline void BatchNearestMerge(const Matrix& points, IndexRange rows,
                              const double* point_norms,
                              const Matrix& centers, int64_t first_center,
                              const double* center_norms, BatchKernel kernel,
                              double* best_d2, int32_t* best_index) {
  BatchNearestMerge(points.view(), rows, point_norms, centers, first_center,
                    center_norms, kernel, best_d2, best_index);
}
inline void BatchNearestMerge(const Matrix& points, IndexRange rows,
                              const double* point_norms,
                              const CenterPanels& panels,
                              const double* center_norms, BatchKernel kernel,
                              double* best_d2, int32_t* best_index) {
  BatchNearestMerge(points.view(), rows, point_norms, panels, center_norms,
                    kernel, best_d2, best_index);
}
inline void BatchTwoNearest(const Matrix& points, IndexRange rows,
                            const double* point_norms,
                            const CenterPanels& panels,
                            const double* center_norms, BatchKernel kernel,
                            int32_t* out_index, double* out_d1,
                            double* out_d2) {
  BatchTwoNearest(points.view(), rows, point_norms, panels, center_norms,
                  kernel, out_index, out_d1, out_d2);
}
inline void BatchDistances(const Matrix& points, IndexRange rows,
                           const double* point_norms,
                           const CenterPanels& panels,
                           const double* center_norms, BatchKernel kernel,
                           double* out_d2) {
  BatchDistances(points.view(), rows, point_norms, panels, center_norms,
                 kernel, out_d2);
}
inline void BatchTopM(const Matrix& points, IndexRange rows,
                      const double* point_norms, const CenterPanels& panels,
                      const double* center_norms, BatchKernel kernel,
                      int64_t m, int32_t* out_index, double* out_d2) {
  BatchTopM(points.view(), rows, point_norms, panels, center_norms, kernel,
            m, out_index, out_d2);
}

/// Resolves kAuto against the dimension: expanded iff
/// dim >= kExpandedKernelMinDim. All engine entry points and
/// NearestCenterSearch share this rule.
inline bool ResolveExpandedKernel(BatchKernel kernel, int64_t dim) {
  return kernel == BatchKernel::kExpanded ||
         (kernel == BatchKernel::kAuto && dim >= kExpandedKernelMinDim);
}

}  // namespace kmeansll

#endif  // KMEANSLL_DISTANCE_BATCH_H_
