// Blocked batch-distance engine: the shared O(n·k·d) kernel layer.
//
// Every hot path in the library — k-means|| round updates, k-means++
// seeding, Lloyd assignment, cost evaluation, minibatch, streaming
// compression, and the MapReduce map phases — reduces to the same scan:
// "for a block of points and a block of centers, find each point's
// nearest center and its squared distance". This header provides that
// scan once, tiled for cache reuse and register-blocked for ILP, instead
// of the one-point × one-center loops each call site used to carry.
//
// Design (see README.md "Distance engine" for the full rationale):
//  * Norm-expanded arithmetic: ||x - c||² = ||x||² + ||c||² - 2·x·c with
//    precomputed row norms turns the inner loop into dot products — one
//    load per operand instead of load+subtract — at the price of
//    catastrophic cancellation for near-identical points, so results are
//    clamped at zero (SquaredL2Expanded). A plain tiled kernel remains
//    for small dimensions where the expansion does not pay.
//  * Two-level blocking: every kCenterTile center rows are packed into a
//    t-major panel that is revisited for each point in a kPointTile row
//    block, so panels stay L1-resident while points stream through
//    exactly once per panel.
//  * Register micro-kernel: kMicroPoints points × one panel of
//    kCenterTile centers are accumulated simultaneously in independent
//    chains (explicit AVX2+FMA on capable x86-64, selected once at
//    startup; portable scalar otherwise), giving the FMA units enough
//    ILP to run at throughput instead of latency.
//
// Determinism contract: each (point, center) distance is accumulated in a
// single chain in coordinate order, identical in the micro-kernel and in
// the edge/tail paths, and center blocks are visited in ascending index
// order with strict-< argmin updates. A point's result therefore depends
// only on its own row and the center set — never on tile placement or
// thread count — so parallel callers chunking by kDeterministicChunks get
// bitwise-identical outputs at any parallelism.

#ifndef KMEANSLL_DISTANCE_BATCH_H_
#define KMEANSLL_DISTANCE_BATCH_H_

#include <cstdint>

#include "matrix/matrix.h"
#include "parallel/parallel_for.h"

namespace kmeansll {

// --- Tiling constants (fixed: results must not depend on tuning) -----------
//
// kCenterTile is the packed-panel width: each block of 16 center rows is
// transposed into a t-major panel so the innermost step updates 16
// contiguous per-center accumulators. At 4 doubles per AVX2 register
// that is 4 accumulator vectors per point; the micro-kernel processes
// kMicroPoints = 2 point rows at once, giving 8 independent FMA chains —
// enough to hide the ~4-cycle FMA latency at 2 ops/cycle — while the
// live set (8 accumulators + 4 panel loads + 2 broadcasts) stays within
// the 16 SIMD registers of x86-64 without spilling.
//
// kPointTile bounds the rows streamed per panel visit: one panel
// (kCenterTile · d doubles, 16 KiB at d = 128) stays L1-resident across
// the whole point tile, and each point tile re-reads panels from L2 at
// worst. Larger point tiles stopped helping in bench/bm_batch_distance;
// larger panels double the merge state without speeding up the dot loop.
inline constexpr int64_t kPointTile = 64;
inline constexpr int64_t kCenterTile = 16;
inline constexpr int64_t kMicroPoints = 2;

// Dimension at which the norm-expanded kernels overtake the plain
// subtract-square kernels (shared by the batch engine and
// NearestCenterSearch::Kernel::kAuto). Measured with
// bench/bm_batch_distance (4096 points, k ∈ {64, 256}) on the build
// machine: blocked-plain wins up to d = 24 (the per-center norm
// bookkeeping in the merge step outweighs the saved subtractions when the
// dot loop is short), the two are within noise for d ∈ [32, 48], and
// expanded pulls ahead from d = 64 (91 vs 79 Mpairs/s at d = 128).
// Expanded is preferred at the tie because its callers additionally reuse
// cached point norms across k-means|| rounds, which this microbenchmark
// does not credit.
inline constexpr int64_t kExpandedKernelMinDim = 32;

/// Kernel selection for the batch engine. kAuto picks expanded when
/// cols >= kExpandedKernelMinDim.
enum class BatchKernel { kAuto, kPlain, kExpanded };

/// Merges "nearest of centers rows [first_center, centers.rows())" into
/// (best_d2, best_index) for every point row in [rows.begin, rows.end).
///
/// Output/input arrays are indexed relative to the range: entry
/// i - rows.begin describes point row i. Callers start a fresh query by
/// pre-filling best_d2 with +infinity (and best_index with -1); passing
/// arrays that already hold a previous scan's results performs the
/// incremental min-merge that MinDistanceTracker relies on. best_index
/// receives absolute center row indices; distance-only callers may pass
/// null to skip the argmin bookkeeping. Ties keep the existing value
/// (strict-< update), matching a sequential ascending scan.
///
/// `point_norms` (entry i - rows.begin = ||row i||²) and `center_norms`
/// (entry c - first_center = ||center c||²) are only read by the expanded
/// kernel and may be null, in which case they are computed internally.
void BatchNearestMerge(const Matrix& points, IndexRange rows,
                       const double* point_norms, const Matrix& centers,
                       int64_t first_center, const double* center_norms,
                       BatchKernel kernel, double* best_d2,
                       int32_t* best_index);

}  // namespace kmeansll

#endif  // KMEANSLL_DISTANCE_BATCH_H_
