#include "distance/batch.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/macros.h"
#include "distance/l2.h"

namespace kmeansll {

namespace {

// The engine packs each block of kCenterTile center rows into a t-major
// "panel": panel[t * kCenterTile + j] = centers(c_begin + j, t). In the
// packed layout the innermost step touches kCenterTile contiguous
// accumulators — per-center chains that are mutually independent — so the
// SIMD kernels below get full-width FMA without reordering any one
// chain's additions. Each (point, center) value is still accumulated in a
// single chain in coordinate order, so results do not depend on tile
// placement, panel residue, or thread count.
//
// Two implementations are provided per kernel: a portable scalar version
// and an AVX2+FMA version selected once at startup via
// __builtin_cpu_supports — the default build stays baseline-ISA while
// capable machines get 4-wide FMA. The dispatch is constant per machine,
// preserving run-to-run and thread-count determinism.

// Dot products of two point rows against one full packed panel:
// acc{0,1}[j] += x{0,1}[t] * panel[t][j]. 2 points × 4 vector
// accumulators gives the FMA units 8 independent chains — enough to run
// at throughput instead of latency — while staying within 16 registers.
void DotPanel2Generic(const double* x0, const double* x1,
                      const double* panel, int64_t d, double* acc0,
                      double* acc1) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const double x0t = x0[t];
    const double x1t = x1[t];
    for (int64_t j = 0; j < kCenterTile; ++j) {
      acc0[j] += x0t * row[j];
      acc1[j] += x1t * row[j];
    }
  }
}

void DotPanel1Generic(const double* x, const double* panel, int64_t d,
                      double* acc) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const double xt = x[t];
    for (int64_t j = 0; j < kCenterTile; ++j) acc[j] += xt * row[j];
  }
}

// Plain subtract-square panels: acc[j] += (x[t] - panel[t][j])².
void SqPanel2Generic(const double* x0, const double* x1,
                     const double* panel, int64_t d, double* acc0,
                     double* acc1) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const double x0t = x0[t];
    const double x1t = x1[t];
    for (int64_t j = 0; j < kCenterTile; ++j) {
      double e0 = x0t - row[j];
      acc0[j] += e0 * e0;
      double e1 = x1t - row[j];
      acc1[j] += e1 * e1;
    }
  }
}

void SqPanel1Generic(const double* x, const double* panel, int64_t d,
                     double* acc) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const double xt = x[t];
    for (int64_t j = 0; j < kCenterTile; ++j) {
      double e = xt - row[j];
      acc[j] += e * e;
    }
  }
}

// Narrow-panel variants for the trailing k % kCenterTile centers (panel
// stride = width). Runtime trip count; padding the residue to a full
// panel would make small-k callers (k-means++ adds one center at a time)
// pay kCenterTile× the flops, so the residue is computed exactly.
void DotPanelTail(const double* x, const double* panel, int64_t d,
                  int64_t width, double* acc) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * width;
    const double xt = x[t];
    for (int64_t j = 0; j < width; ++j) acc[j] += xt * row[j];
  }
}

void SqPanelTail(const double* x, const double* panel, int64_t d,
                 int64_t width, double* acc) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * width;
    const double xt = x[t];
    for (int64_t j = 0; j < width; ++j) {
      double e = xt - row[j];
      acc[j] += e * e;
    }
  }
}

#if defined(__x86_64__)

static_assert(kCenterTile == 16,
              "AVX2 panel kernels assume 4 × 4-double accumulators");

__attribute__((target("avx2,fma"))) void DotPanel2Avx2(
    const double* x0, const double* x1, const double* panel, int64_t d,
    double* acc0, double* acc1) {
  __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
  __m256d a02 = _mm256_setzero_pd(), a03 = _mm256_setzero_pd();
  __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
  __m256d a12 = _mm256_setzero_pd(), a13 = _mm256_setzero_pd();
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const __m256d r0 = _mm256_loadu_pd(row);
    const __m256d r1 = _mm256_loadu_pd(row + 4);
    const __m256d r2 = _mm256_loadu_pd(row + 8);
    const __m256d r3 = _mm256_loadu_pd(row + 12);
    const __m256d xv0 = _mm256_broadcast_sd(x0 + t);
    const __m256d xv1 = _mm256_broadcast_sd(x1 + t);
    a00 = _mm256_fmadd_pd(xv0, r0, a00);
    a01 = _mm256_fmadd_pd(xv0, r1, a01);
    a02 = _mm256_fmadd_pd(xv0, r2, a02);
    a03 = _mm256_fmadd_pd(xv0, r3, a03);
    a10 = _mm256_fmadd_pd(xv1, r0, a10);
    a11 = _mm256_fmadd_pd(xv1, r1, a11);
    a12 = _mm256_fmadd_pd(xv1, r2, a12);
    a13 = _mm256_fmadd_pd(xv1, r3, a13);
  }
  _mm256_storeu_pd(acc0, a00);
  _mm256_storeu_pd(acc0 + 4, a01);
  _mm256_storeu_pd(acc0 + 8, a02);
  _mm256_storeu_pd(acc0 + 12, a03);
  _mm256_storeu_pd(acc1, a10);
  _mm256_storeu_pd(acc1 + 4, a11);
  _mm256_storeu_pd(acc1 + 8, a12);
  _mm256_storeu_pd(acc1 + 12, a13);
}

__attribute__((target("avx2,fma"))) void DotPanel1Avx2(const double* x,
                                                       const double* panel,
                                                       int64_t d,
                                                       double* acc) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const __m256d xv = _mm256_broadcast_sd(x + t);
    a0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(row), a0);
    a1 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(row + 4), a1);
    a2 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(row + 8), a2);
    a3 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(row + 12), a3);
  }
  _mm256_storeu_pd(acc, a0);
  _mm256_storeu_pd(acc + 4, a1);
  _mm256_storeu_pd(acc + 8, a2);
  _mm256_storeu_pd(acc + 12, a3);
}

__attribute__((target("avx2,fma"))) void SqPanel2Avx2(
    const double* x0, const double* x1, const double* panel, int64_t d,
    double* acc0, double* acc1) {
  __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
  __m256d a02 = _mm256_setzero_pd(), a03 = _mm256_setzero_pd();
  __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
  __m256d a12 = _mm256_setzero_pd(), a13 = _mm256_setzero_pd();
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const __m256d r0 = _mm256_loadu_pd(row);
    const __m256d r1 = _mm256_loadu_pd(row + 4);
    const __m256d r2 = _mm256_loadu_pd(row + 8);
    const __m256d r3 = _mm256_loadu_pd(row + 12);
    const __m256d xv0 = _mm256_broadcast_sd(x0 + t);
    const __m256d xv1 = _mm256_broadcast_sd(x1 + t);
    __m256d e;
    e = _mm256_sub_pd(xv0, r0);
    a00 = _mm256_fmadd_pd(e, e, a00);
    e = _mm256_sub_pd(xv0, r1);
    a01 = _mm256_fmadd_pd(e, e, a01);
    e = _mm256_sub_pd(xv0, r2);
    a02 = _mm256_fmadd_pd(e, e, a02);
    e = _mm256_sub_pd(xv0, r3);
    a03 = _mm256_fmadd_pd(e, e, a03);
    e = _mm256_sub_pd(xv1, r0);
    a10 = _mm256_fmadd_pd(e, e, a10);
    e = _mm256_sub_pd(xv1, r1);
    a11 = _mm256_fmadd_pd(e, e, a11);
    e = _mm256_sub_pd(xv1, r2);
    a12 = _mm256_fmadd_pd(e, e, a12);
    e = _mm256_sub_pd(xv1, r3);
    a13 = _mm256_fmadd_pd(e, e, a13);
  }
  _mm256_storeu_pd(acc0, a00);
  _mm256_storeu_pd(acc0 + 4, a01);
  _mm256_storeu_pd(acc0 + 8, a02);
  _mm256_storeu_pd(acc0 + 12, a03);
  _mm256_storeu_pd(acc1, a10);
  _mm256_storeu_pd(acc1 + 4, a11);
  _mm256_storeu_pd(acc1 + 8, a12);
  _mm256_storeu_pd(acc1 + 12, a13);
}

__attribute__((target("avx2,fma"))) void SqPanel1Avx2(const double* x,
                                                      const double* panel,
                                                      int64_t d,
                                                      double* acc) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const __m256d xv = _mm256_broadcast_sd(x + t);
    __m256d e;
    e = _mm256_sub_pd(xv, _mm256_loadu_pd(row));
    a0 = _mm256_fmadd_pd(e, e, a0);
    e = _mm256_sub_pd(xv, _mm256_loadu_pd(row + 4));
    a1 = _mm256_fmadd_pd(e, e, a1);
    e = _mm256_sub_pd(xv, _mm256_loadu_pd(row + 8));
    a2 = _mm256_fmadd_pd(e, e, a2);
    e = _mm256_sub_pd(xv, _mm256_loadu_pd(row + 12));
    a3 = _mm256_fmadd_pd(e, e, a3);
  }
  _mm256_storeu_pd(acc, a0);
  _mm256_storeu_pd(acc + 4, a1);
  _mm256_storeu_pd(acc + 8, a2);
  _mm256_storeu_pd(acc + 12, a3);
}

bool DetectAvx2Fma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
const bool kUseAvx2 = DetectAvx2Fma();

#else
constexpr bool kUseAvx2 = false;
inline void DotPanel2Avx2(const double*, const double*, const double*,
                          int64_t, double*, double*) {}
inline void DotPanel1Avx2(const double*, const double*, int64_t, double*) {}
inline void SqPanel2Avx2(const double*, const double*, const double*,
                         int64_t, double*, double*) {}
inline void SqPanel1Avx2(const double*, const double*, int64_t, double*) {}
#endif  // defined(__x86_64__)

// Dispatch wrappers. The AVX2 kernels store their register accumulators
// over `acc`; the generic kernels accumulate in place, so the wrappers
// zero-fill for them.
inline void DotPanel2(const double* x0, const double* x1,
                      const double* panel, int64_t d, double* acc0,
                      double* acc1) {
  if (kUseAvx2) {
    DotPanel2Avx2(x0, x1, panel, d, acc0, acc1);
  } else {
    std::memset(acc0, 0, kCenterTile * sizeof(double));
    std::memset(acc1, 0, kCenterTile * sizeof(double));
    DotPanel2Generic(x0, x1, panel, d, acc0, acc1);
  }
}

inline void DotPanel1(const double* x, const double* panel, int64_t d,
                      double* acc) {
  if (kUseAvx2) {
    DotPanel1Avx2(x, panel, d, acc);
  } else {
    std::memset(acc, 0, kCenterTile * sizeof(double));
    DotPanel1Generic(x, panel, d, acc);
  }
}

inline void SqPanel2(const double* x0, const double* x1,
                     const double* panel, int64_t d, double* acc0,
                     double* acc1) {
  if (kUseAvx2) {
    SqPanel2Avx2(x0, x1, panel, d, acc0, acc1);
  } else {
    std::memset(acc0, 0, kCenterTile * sizeof(double));
    std::memset(acc1, 0, kCenterTile * sizeof(double));
    SqPanel2Generic(x0, x1, panel, d, acc0, acc1);
  }
}

inline void SqPanel1(const double* x, const double* panel, int64_t d,
                     double* acc) {
  if (kUseAvx2) {
    SqPanel1Avx2(x, panel, d, acc);
  } else {
    std::memset(acc, 0, kCenterTile * sizeof(double));
    SqPanel1Generic(x, panel, d, acc);
  }
}

// Folds one point's panel accumulators into its (best_d2, best_index).
// Centers are visited in ascending index order with strict-< updates, so
// ties keep the lowest index / the existing value — identical to a
// sequential scan.
inline void MergeExpanded(const double* acc, int64_t count, double pn,
                          const double* cn, int64_t c_base, double* best_d2,
                          int32_t* best_index) {
  // Branchless distance pass (vectorizable) ahead of the scalar argmin.
  double d2v[kCenterTile];
  for (int64_t j = 0; j < count; ++j) {
    double v = pn + cn[j] - 2.0 * acc[j];
    d2v[j] = v > 0.0 ? v : 0.0;
  }
  if (best_index == nullptr) {  // distance-only caller
    for (int64_t j = 0; j < count; ++j) {
      if (d2v[j] < *best_d2) *best_d2 = d2v[j];
    }
    return;
  }
  for (int64_t j = 0; j < count; ++j) {
    if (d2v[j] < *best_d2) {
      *best_d2 = d2v[j];
      *best_index = static_cast<int32_t>(c_base + j);
    }
  }
}

inline void MergePlain(const double* acc, int64_t count, int64_t c_base,
                       double* best_d2, int32_t* best_index) {
  if (best_index == nullptr) {  // distance-only caller
    for (int64_t j = 0; j < count; ++j) {
      if (acc[j] < *best_d2) *best_d2 = acc[j];
    }
    return;
  }
  for (int64_t j = 0; j < count; ++j) {
    if (acc[j] < *best_d2) {
      *best_d2 = acc[j];
      *best_index = static_cast<int32_t>(c_base + j);
    }
  }
}

}  // namespace

void BatchNearestMerge(const Matrix& points, IndexRange rows,
                       const double* point_norms, const Matrix& centers,
                       int64_t first_center, const double* center_norms,
                       BatchKernel kernel, double* best_d2,
                       int32_t* best_index) {
  const int64_t d = points.cols();
  KMEANSLL_CHECK_EQ(centers.cols(), d);
  KMEANSLL_CHECK(rows.begin >= 0 && rows.end <= points.rows());
  KMEANSLL_CHECK(first_center >= 0 && first_center <= centers.rows());
  const int64_t n = rows.size();
  const int64_t k = centers.rows() - first_center;
  if (n <= 0 || k <= 0) return;

  const bool expanded =
      kernel == BatchKernel::kExpanded ||
      (kernel == BatchKernel::kAuto && d >= kExpandedKernelMinDim);

  // Materialize any norms the caller did not provide (amortized over the
  // whole n × k scan, so per-call vectors are fine).
  std::vector<double> pn_storage;
  std::vector<double> cn_storage;
  if (expanded) {
    if (point_norms == nullptr) {
      pn_storage.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        pn_storage[static_cast<size_t>(i)] =
            SquaredNorm(points.Row(rows.begin + i), d);
      }
      point_norms = pn_storage.data();
    }
    if (center_norms == nullptr) {
      cn_storage.resize(static_cast<size_t>(k));
      for (int64_t c = 0; c < k; ++c) {
        cn_storage[static_cast<size_t>(c)] =
            SquaredNorm(centers.Row(first_center + c), d);
      }
      center_norms = cn_storage.data();
    }
  }

  // Pack every center panel once per call: panel p holds centers
  // [first_center + p·kCenterTile, ...) in t-major order. Full panels use
  // stride kCenterTile; the final residue panel uses its own width.
  const int64_t full_panels = k / kCenterTile;
  const int64_t tail_width = k % kCenterTile;
  std::vector<double> packed(static_cast<size_t>(k * d));
  for (int64_t c = 0; c < k; ++c) {
    const int64_t panel = c / kCenterTile;
    const bool in_tail = panel == full_panels;
    const int64_t stride = in_tail ? tail_width : kCenterTile;
    double* base = packed.data() + panel * kCenterTile * d;
    const double* row = centers.Row(first_center + c);
    const int64_t j = c % kCenterTile;
    for (int64_t t = 0; t < d; ++t) base[t * stride + j] = row[t];
  }

  double acc0[kCenterTile];
  double acc1[kCenterTile];

  // best_index may be null (distance-only callers); keep pointer
  // arithmetic off the null base.
  const auto idx_at = [best_index](int64_t p) {
    return best_index == nullptr ? nullptr : best_index + p;
  };

  // Loop nest: point tiles stream while each ~kCenterTile·d-double panel
  // stays L1-resident across the whole tile.
  for (int64_t pb = 0; pb < n; pb += kPointTile) {
    const int64_t pe = std::min(pb + kPointTile, n);
    for (int64_t panel = 0; panel * kCenterTile < k; ++panel) {
      const int64_t c_off = panel * kCenterTile;
      const int64_t count = std::min<int64_t>(kCenterTile, k - c_off);
      const double* panel_data = packed.data() + c_off * d;
      const int64_t c_base = first_center + c_off;
      const double* cn = expanded ? center_norms + c_off : nullptr;
      int64_t p = pb;
      if (count == kCenterTile) {
        for (; p + 2 <= pe; p += 2) {
          if (expanded) {
            DotPanel2(points.Row(rows.begin + p),
                      points.Row(rows.begin + p + 1), panel_data, d, acc0,
                      acc1);
            MergeExpanded(acc0, count, point_norms[p], cn, c_base,
                          best_d2 + p, idx_at(p));
            MergeExpanded(acc1, count, point_norms[p + 1], cn, c_base,
                          best_d2 + p + 1, idx_at(p + 1));
          } else {
            SqPanel2(points.Row(rows.begin + p),
                     points.Row(rows.begin + p + 1), panel_data, d, acc0,
                     acc1);
            MergePlain(acc0, count, c_base, best_d2 + p, idx_at(p));
            MergePlain(acc1, count, c_base, best_d2 + p + 1,
                       idx_at(p + 1));
          }
        }
        for (; p < pe; ++p) {
          if (expanded) {
            DotPanel1(points.Row(rows.begin + p), panel_data, d, acc0);
            MergeExpanded(acc0, count, point_norms[p], cn, c_base,
                          best_d2 + p, idx_at(p));
          } else {
            SqPanel1(points.Row(rows.begin + p), panel_data, d, acc0);
            MergePlain(acc0, count, c_base, best_d2 + p, idx_at(p));
          }
        }
      } else {
        for (; p < pe; ++p) {
          std::memset(acc0, 0, sizeof(acc0));
          if (expanded) {
            DotPanelTail(points.Row(rows.begin + p), panel_data, d, count,
                         acc0);
            MergeExpanded(acc0, count, point_norms[p], cn, c_base,
                          best_d2 + p, idx_at(p));
          } else {
            SqPanelTail(points.Row(rows.begin + p), panel_data, d, count,
                        acc0);
            MergePlain(acc0, count, c_base, best_d2 + p, idx_at(p));
          }
        }
      }
    }
  }
}

}  // namespace kmeansll
