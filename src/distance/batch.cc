#include "distance/batch.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/macros.h"
#include "distance/l2.h"

namespace kmeansll {

namespace {

// The engine packs each block of kCenterTile center rows into a t-major
// "panel": panel[t * kCenterTile + j] = centers(c_begin + j, t). In the
// packed layout the innermost step touches kCenterTile contiguous
// accumulators — per-center chains that are mutually independent — so the
// SIMD kernels below get full-width FMA without reordering any one
// chain's additions. Each (point, center) value is still accumulated in a
// single chain in coordinate order, so results do not depend on tile
// placement, panel residue, or thread count.
//
// Two implementations are provided per kernel: a portable scalar version
// and an AVX2+FMA version selected once at startup via
// __builtin_cpu_supports — the default build stays baseline-ISA while
// capable machines get 4-wide FMA. The dispatch is constant per machine,
// preserving run-to-run and thread-count determinism.

// Dot products of two point rows against one full packed panel:
// acc{0,1}[j] += x{0,1}[t] * panel[t][j]. 2 points × 4 vector
// accumulators gives the FMA units 8 independent chains — enough to run
// at throughput instead of latency — while staying within 16 registers.
void DotPanel2Generic(const double* x0, const double* x1,
                      const double* panel, int64_t d, double* acc0,
                      double* acc1) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const double x0t = x0[t];
    const double x1t = x1[t];
    for (int64_t j = 0; j < kCenterTile; ++j) {
      acc0[j] += x0t * row[j];
      acc1[j] += x1t * row[j];
    }
  }
}

void DotPanel1Generic(const double* x, const double* panel, int64_t d,
                      double* acc) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const double xt = x[t];
    for (int64_t j = 0; j < kCenterTile; ++j) acc[j] += xt * row[j];
  }
}

// Plain subtract-square panels: acc[j] += (x[t] - panel[t][j])².
void SqPanel2Generic(const double* x0, const double* x1,
                     const double* panel, int64_t d, double* acc0,
                     double* acc1) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const double x0t = x0[t];
    const double x1t = x1[t];
    for (int64_t j = 0; j < kCenterTile; ++j) {
      double e0 = x0t - row[j];
      acc0[j] += e0 * e0;
      double e1 = x1t - row[j];
      acc1[j] += e1 * e1;
    }
  }
}

void SqPanel1Generic(const double* x, const double* panel, int64_t d,
                     double* acc) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const double xt = x[t];
    for (int64_t j = 0; j < kCenterTile; ++j) {
      double e = xt - row[j];
      acc[j] += e * e;
    }
  }
}

// Narrow-panel variants for the trailing k % kCenterTile centers (panel
// stride = width). Runtime trip count; padding the residue to a full
// panel would make small-k callers (k-means++ adds one center at a time)
// pay kCenterTile× the flops, so the residue is computed exactly. Like
// the full panels they come in a portable version and an FMA version
// (below) so the per-pair chain is the same in the residue as in the
// micro-kernel on every machine.
void DotPanelTailGeneric(const double* x, const double* panel, int64_t d,
                         int64_t width, double* acc) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * width;
    const double xt = x[t];
    for (int64_t j = 0; j < width; ++j) acc[j] += xt * row[j];
  }
}

void SqPanelTailGeneric(const double* x, const double* panel, int64_t d,
                        int64_t width, double* acc) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * width;
    const double xt = x[t];
    for (int64_t j = 0; j < width; ++j) {
      double e = xt - row[j];
      acc[j] += e * e;
    }
  }
}

#if defined(__x86_64__)

static_assert(kCenterTile == 16,
              "AVX2 panel kernels assume 4 × 4-double accumulators");

__attribute__((target("avx2,fma"))) void DotPanel2Avx2(
    const double* x0, const double* x1, const double* panel, int64_t d,
    double* acc0, double* acc1) {
  __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
  __m256d a02 = _mm256_setzero_pd(), a03 = _mm256_setzero_pd();
  __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
  __m256d a12 = _mm256_setzero_pd(), a13 = _mm256_setzero_pd();
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const __m256d r0 = _mm256_loadu_pd(row);
    const __m256d r1 = _mm256_loadu_pd(row + 4);
    const __m256d r2 = _mm256_loadu_pd(row + 8);
    const __m256d r3 = _mm256_loadu_pd(row + 12);
    const __m256d xv0 = _mm256_broadcast_sd(x0 + t);
    const __m256d xv1 = _mm256_broadcast_sd(x1 + t);
    a00 = _mm256_fmadd_pd(xv0, r0, a00);
    a01 = _mm256_fmadd_pd(xv0, r1, a01);
    a02 = _mm256_fmadd_pd(xv0, r2, a02);
    a03 = _mm256_fmadd_pd(xv0, r3, a03);
    a10 = _mm256_fmadd_pd(xv1, r0, a10);
    a11 = _mm256_fmadd_pd(xv1, r1, a11);
    a12 = _mm256_fmadd_pd(xv1, r2, a12);
    a13 = _mm256_fmadd_pd(xv1, r3, a13);
  }
  _mm256_storeu_pd(acc0, a00);
  _mm256_storeu_pd(acc0 + 4, a01);
  _mm256_storeu_pd(acc0 + 8, a02);
  _mm256_storeu_pd(acc0 + 12, a03);
  _mm256_storeu_pd(acc1, a10);
  _mm256_storeu_pd(acc1 + 4, a11);
  _mm256_storeu_pd(acc1 + 8, a12);
  _mm256_storeu_pd(acc1 + 12, a13);
}

__attribute__((target("avx2,fma"))) void DotPanel1Avx2(const double* x,
                                                       const double* panel,
                                                       int64_t d,
                                                       double* acc) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const __m256d xv = _mm256_broadcast_sd(x + t);
    a0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(row), a0);
    a1 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(row + 4), a1);
    a2 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(row + 8), a2);
    a3 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(row + 12), a3);
  }
  _mm256_storeu_pd(acc, a0);
  _mm256_storeu_pd(acc + 4, a1);
  _mm256_storeu_pd(acc + 8, a2);
  _mm256_storeu_pd(acc + 12, a3);
}

__attribute__((target("avx2,fma"))) void SqPanel2Avx2(
    const double* x0, const double* x1, const double* panel, int64_t d,
    double* acc0, double* acc1) {
  __m256d a00 = _mm256_setzero_pd(), a01 = _mm256_setzero_pd();
  __m256d a02 = _mm256_setzero_pd(), a03 = _mm256_setzero_pd();
  __m256d a10 = _mm256_setzero_pd(), a11 = _mm256_setzero_pd();
  __m256d a12 = _mm256_setzero_pd(), a13 = _mm256_setzero_pd();
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const __m256d r0 = _mm256_loadu_pd(row);
    const __m256d r1 = _mm256_loadu_pd(row + 4);
    const __m256d r2 = _mm256_loadu_pd(row + 8);
    const __m256d r3 = _mm256_loadu_pd(row + 12);
    const __m256d xv0 = _mm256_broadcast_sd(x0 + t);
    const __m256d xv1 = _mm256_broadcast_sd(x1 + t);
    __m256d e;
    e = _mm256_sub_pd(xv0, r0);
    a00 = _mm256_fmadd_pd(e, e, a00);
    e = _mm256_sub_pd(xv0, r1);
    a01 = _mm256_fmadd_pd(e, e, a01);
    e = _mm256_sub_pd(xv0, r2);
    a02 = _mm256_fmadd_pd(e, e, a02);
    e = _mm256_sub_pd(xv0, r3);
    a03 = _mm256_fmadd_pd(e, e, a03);
    e = _mm256_sub_pd(xv1, r0);
    a10 = _mm256_fmadd_pd(e, e, a10);
    e = _mm256_sub_pd(xv1, r1);
    a11 = _mm256_fmadd_pd(e, e, a11);
    e = _mm256_sub_pd(xv1, r2);
    a12 = _mm256_fmadd_pd(e, e, a12);
    e = _mm256_sub_pd(xv1, r3);
    a13 = _mm256_fmadd_pd(e, e, a13);
  }
  _mm256_storeu_pd(acc0, a00);
  _mm256_storeu_pd(acc0 + 4, a01);
  _mm256_storeu_pd(acc0 + 8, a02);
  _mm256_storeu_pd(acc0 + 12, a03);
  _mm256_storeu_pd(acc1, a10);
  _mm256_storeu_pd(acc1 + 4, a11);
  _mm256_storeu_pd(acc1 + 8, a12);
  _mm256_storeu_pd(acc1 + 12, a13);
}

__attribute__((target("avx2,fma"))) void SqPanel1Avx2(const double* x,
                                                      const double* panel,
                                                      int64_t d,
                                                      double* acc) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * kCenterTile;
    const __m256d xv = _mm256_broadcast_sd(x + t);
    __m256d e;
    e = _mm256_sub_pd(xv, _mm256_loadu_pd(row));
    a0 = _mm256_fmadd_pd(e, e, a0);
    e = _mm256_sub_pd(xv, _mm256_loadu_pd(row + 4));
    a1 = _mm256_fmadd_pd(e, e, a1);
    e = _mm256_sub_pd(xv, _mm256_loadu_pd(row + 8));
    a2 = _mm256_fmadd_pd(e, e, a2);
    e = _mm256_sub_pd(xv, _mm256_loadu_pd(row + 12));
    a3 = _mm256_fmadd_pd(e, e, a3);
  }
  _mm256_storeu_pd(acc, a0);
  _mm256_storeu_pd(acc + 4, a1);
  _mm256_storeu_pd(acc + 8, a2);
  _mm256_storeu_pd(acc + 12, a3);
}

// Single-pair chains matching the panel kernels lane-for-lane: one
// accumulator, coordinate order, hardware FMA. A lane of the AVX2 panel
// kernels performs acc = fma(x[t], c[t], acc) (dot) or
// acc = fma(e, e, acc) with e = x[t] − c[t] (plain) per coordinate;
// __builtin_fma inside a target("fma") function lowers to the same
// vfmadd, so these reproduce the batched values bitwise.
__attribute__((target("fma"))) double PairDotFma(const double* a,
                                                 const double* b,
                                                 int64_t dim) {
  double acc = 0.0;
  for (int64_t t = 0; t < dim; ++t) acc = __builtin_fma(a[t], b[t], acc);
  return acc;
}

__attribute__((target("fma"))) double PairSqFma(const double* a,
                                                const double* b,
                                                int64_t dim) {
  double acc = 0.0;
  for (int64_t t = 0; t < dim; ++t) {
    double e = a[t] - b[t];
    acc = __builtin_fma(e, e, acc);
  }
  return acc;
}

// FMA tail variants: on machines where the full panels run the AVX2+FMA
// micro-kernels, the residue must accumulate with the same fused chain,
// or a pair's value would depend on which panel its center landed in.
__attribute__((target("fma"))) void DotPanelTailFma(const double* x,
                                                    const double* panel,
                                                    int64_t d,
                                                    int64_t width,
                                                    double* acc) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * width;
    const double xt = x[t];
    for (int64_t j = 0; j < width; ++j) {
      acc[j] = __builtin_fma(xt, row[j], acc[j]);
    }
  }
}

__attribute__((target("fma"))) void SqPanelTailFma(const double* x,
                                                   const double* panel,
                                                   int64_t d,
                                                   int64_t width,
                                                   double* acc) {
  for (int64_t t = 0; t < d; ++t) {
    const double* row = panel + t * width;
    const double xt = x[t];
    for (int64_t j = 0; j < width; ++j) {
      double e = xt - row[j];
      acc[j] = __builtin_fma(e, e, acc[j]);
    }
  }
}

bool DetectAvx2Fma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
const bool kUseAvx2 = DetectAvx2Fma();

#else
constexpr bool kUseAvx2 = false;
inline void DotPanel2Avx2(const double*, const double*, const double*,
                          int64_t, double*, double*) {}
inline void DotPanel1Avx2(const double*, const double*, int64_t, double*) {}
inline void SqPanel2Avx2(const double*, const double*, const double*,
                         int64_t, double*, double*) {}
inline void SqPanel1Avx2(const double*, const double*, int64_t, double*) {}
inline double PairDotFma(const double*, const double*, int64_t) {
  return 0.0;
}
inline double PairSqFma(const double*, const double*, int64_t) {
  return 0.0;
}
inline void DotPanelTailFma(const double*, const double*, int64_t, int64_t,
                            double*) {}
inline void SqPanelTailFma(const double*, const double*, int64_t, int64_t,
                           double*) {}
#endif  // defined(__x86_64__)

// Dispatch wrappers. The AVX2 kernels store their register accumulators
// over `acc`; the generic kernels accumulate in place, so the wrappers
// zero-fill for them.
inline void DotPanel2(const double* x0, const double* x1,
                      const double* panel, int64_t d, double* acc0,
                      double* acc1) {
  if (kUseAvx2) {
    DotPanel2Avx2(x0, x1, panel, d, acc0, acc1);
  } else {
    std::memset(acc0, 0, kCenterTile * sizeof(double));
    std::memset(acc1, 0, kCenterTile * sizeof(double));
    DotPanel2Generic(x0, x1, panel, d, acc0, acc1);
  }
}

inline void DotPanel1(const double* x, const double* panel, int64_t d,
                      double* acc) {
  if (kUseAvx2) {
    DotPanel1Avx2(x, panel, d, acc);
  } else {
    std::memset(acc, 0, kCenterTile * sizeof(double));
    DotPanel1Generic(x, panel, d, acc);
  }
}

inline void SqPanel2(const double* x0, const double* x1,
                     const double* panel, int64_t d, double* acc0,
                     double* acc1) {
  if (kUseAvx2) {
    SqPanel2Avx2(x0, x1, panel, d, acc0, acc1);
  } else {
    std::memset(acc0, 0, kCenterTile * sizeof(double));
    std::memset(acc1, 0, kCenterTile * sizeof(double));
    SqPanel2Generic(x0, x1, panel, d, acc0, acc1);
  }
}

inline void SqPanel1(const double* x, const double* panel, int64_t d,
                     double* acc) {
  if (kUseAvx2) {
    SqPanel1Avx2(x, panel, d, acc);
  } else {
    std::memset(acc, 0, kCenterTile * sizeof(double));
    SqPanel1Generic(x, panel, d, acc);
  }
}

// Tail dispatch (accumulates in place; the caller zero-fills).
inline void DotPanelTail(const double* x, const double* panel, int64_t d,
                         int64_t width, double* acc) {
  if (kUseAvx2) {
    DotPanelTailFma(x, panel, d, width, acc);
  } else {
    DotPanelTailGeneric(x, panel, d, width, acc);
  }
}

inline void SqPanelTail(const double* x, const double* panel, int64_t d,
                        int64_t width, double* acc) {
  if (kUseAvx2) {
    SqPanelTailFma(x, panel, d, width, acc);
  } else {
    SqPanelTailGeneric(x, panel, d, width, acc);
  }
}

// --- Shared loop nest --------------------------------------------------
//
// PanelScan drives the tiling and micro-kernel dispatch once for every
// reduction. For each (point, panel) visit it produces the panel's final
// squared distances (expanded values converted and clamped exactly like
// the legacy merge step) in a stack buffer and hands them to `merge` as
//   merge(p, c_off, count, d2v)
// where p is the range-relative point row, c_off the panel's first
// center relative to the packed set, count the panel width, and d2v the
// per-center squared distances. Panels are visited in ascending center
// order within each point tile, so a merge that scans d2v left-to-right
// observes centers exactly like a sequential ascending scan.
//
// `centers` restricts the visit to panels intersecting that
// packed-relative range (the Subset entry points); boundary panels are
// still computed at full width — per-pair chains are placement-
// independent, so the extra lanes are bitwise-identical values the
// subset merges simply do not read. Full-set callers pass
// {0, panels.num_centers()}.
template <typename Merge>
void PanelScan(ConstMatrixView points, IndexRange rows,
               const double* point_norms, const CenterPanels& panels,
               const double* center_norms, bool expanded,
               IndexRange centers, Merge&& merge) {
  const int64_t d = panels.dim();
  const int64_t n = rows.size();
  const int64_t k = panels.num_centers();
  const int64_t panel_lo = centers.begin / kCenterTile;
  const double* packed = panels.data();

  double acc0[kCenterTile];
  double acc1[kCenterTile];
  double d2v0[kCenterTile];
  double d2v1[kCenterTile];

  // Branchless distance conversion (vectorizable) ahead of the merge.
  auto convert = [&](const double* acc, int64_t count, double pn,
                     const double* cn, double* d2v) {
    for (int64_t j = 0; j < count; ++j) {
      double v = pn + cn[j] - 2.0 * acc[j];
      d2v[j] = v > 0.0 ? v : 0.0;
    }
  };

  // Loop nest: point tiles stream while each ~kCenterTile·d-double panel
  // stays L1-resident across the whole tile.
  for (int64_t pb = 0; pb < n; pb += kPointTile) {
    const int64_t pe = std::min(pb + kPointTile, n);
    for (int64_t panel = panel_lo; panel * kCenterTile < centers.end;
         ++panel) {
      const int64_t c_off = panel * kCenterTile;
      const int64_t count = std::min<int64_t>(kCenterTile, k - c_off);
      const double* panel_data = packed + c_off * d;
      const double* cn = expanded ? center_norms + c_off : nullptr;
      int64_t p = pb;
      if (count == kCenterTile) {
        for (; p + 2 <= pe; p += 2) {
          if (expanded) {
            DotPanel2(points.Row(rows.begin + p),
                      points.Row(rows.begin + p + 1), panel_data, d, acc0,
                      acc1);
            convert(acc0, count, point_norms[p], cn, d2v0);
            convert(acc1, count, point_norms[p + 1], cn, d2v1);
            merge(p, c_off, count, d2v0);
            merge(p + 1, c_off, count, d2v1);
          } else {
            SqPanel2(points.Row(rows.begin + p),
                     points.Row(rows.begin + p + 1), panel_data, d, acc0,
                     acc1);
            merge(p, c_off, count, acc0);
            merge(p + 1, c_off, count, acc1);
          }
        }
        for (; p < pe; ++p) {
          if (expanded) {
            DotPanel1(points.Row(rows.begin + p), panel_data, d, acc0);
            convert(acc0, count, point_norms[p], cn, d2v0);
            merge(p, c_off, count, d2v0);
          } else {
            SqPanel1(points.Row(rows.begin + p), panel_data, d, acc0);
            merge(p, c_off, count, acc0);
          }
        }
      } else {
        for (; p < pe; ++p) {
          std::memset(acc0, 0, sizeof(acc0));
          if (expanded) {
            DotPanelTail(points.Row(rows.begin + p), panel_data, d, count,
                         acc0);
            convert(acc0, count, point_norms[p], cn, d2v0);
            merge(p, c_off, count, d2v0);
          } else {
            SqPanelTail(points.Row(rows.begin + p), panel_data, d, count,
                        acc0);
            merge(p, c_off, count, acc0);
          }
        }
      }
    }
  }
}

// Validates shared preconditions and reports whether there is anything to
// scan; resolves the kernel choice into *expanded.
bool PrepareScan(ConstMatrixView points, IndexRange rows,
                 const CenterPanels& panels, const double* center_norms,
                 BatchKernel kernel, bool* expanded) {
  KMEANSLL_CHECK_EQ(panels.dim(), points.cols());
  KMEANSLL_CHECK(rows.begin >= 0 && rows.end <= points.rows());
  if (rows.size() <= 0 || panels.num_centers() <= 0) return false;
  *expanded = ResolveExpandedKernel(kernel, points.cols());
  if (*expanded) {
    // Panels are t-major: norms cannot be recomputed here with the
    // caller-visible SquaredNorm chain, so expanded scans require them.
    KMEANSLL_CHECK(center_norms != nullptr);
  }
  return true;
}

// Point norms the caller did not provide, materialized with the shared
// SquaredNorm chain (amortized over the whole n × k scan, so a per-call
// vector is fine). One definition: this chain is the bitwise-consistency
// linchpin between provided and internal norms.
const double* EnsurePointNorms(ConstMatrixView points, IndexRange rows,
                               bool expanded, const double* point_norms,
                               std::vector<double>* storage) {
  if (!expanded || point_norms != nullptr) return point_norms;
  const int64_t n = rows.size();
  storage->resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    (*storage)[static_cast<size_t>(i)] =
        SquaredNorm(points.Row(rows.begin + i), points.cols());
  }
  return storage->data();
}

}  // namespace

void CenterPanels::Pack(const Matrix& centers, int64_t first_center) {
  KMEANSLL_CHECK(first_center >= 0 && first_center <= centers.rows());
  dim_ = centers.cols();
  first_center_ = first_center;
  num_centers_ = centers.rows() - first_center;
  const int64_t k = num_centers_;
  const int64_t d = dim_;
  const int64_t full_panels = k / kCenterTile;
  const int64_t tail_width = k % kCenterTile;
  packed_.resize(static_cast<size_t>(k * d));
  for (int64_t c = 0; c < k; ++c) {
    const int64_t panel = c / kCenterTile;
    const bool in_tail = panel == full_panels;
    const int64_t stride = in_tail ? tail_width : kCenterTile;
    double* base = packed_.data() + panel * kCenterTile * d;
    const double* row = centers.Row(first_center + c);
    const int64_t j = c % kCenterTile;
    for (int64_t t = 0; t < d; ++t) base[t * stride + j] = row[t];
  }
}

void CenterPanels::Clear() {
  packed_.clear();
  num_centers_ = 0;
  dim_ = 0;
  first_center_ = 0;
}

void BatchNearestMerge(ConstMatrixView points, IndexRange rows,
                       const double* point_norms,
                       const CenterPanels& panels,
                       const double* center_norms, BatchKernel kernel,
                       double* best_d2, int32_t* best_index) {
  bool expanded = false;
  if (!PrepareScan(points, rows, panels, center_norms, kernel, &expanded)) {
    return;
  }
  std::vector<double> pn_storage;
  point_norms =
      EnsurePointNorms(points, rows, expanded, point_norms, &pn_storage);
  const int64_t base = panels.first_center();
  const IndexRange all{0, panels.num_centers()};
  if (best_index == nullptr) {
    // Distance-only caller: skip the argmin bookkeeping.
    PanelScan(points, rows, point_norms, panels, center_norms, expanded, all,
              [&](int64_t p, int64_t, int64_t count, const double* d2v) {
                double* bd = best_d2 + p;
                for (int64_t j = 0; j < count; ++j) {
                  if (d2v[j] < *bd) *bd = d2v[j];
                }
              });
    return;
  }
  // Centers are visited in ascending index order with strict-< updates,
  // so ties keep the lowest index / the existing value — identical to a
  // sequential scan.
  PanelScan(points, rows, point_norms, panels, center_norms, expanded, all,
            [&](int64_t p, int64_t c_off, int64_t count,
                const double* d2v) {
              double* bd = best_d2 + p;
              int32_t* bi = best_index + p;
              for (int64_t j = 0; j < count; ++j) {
                if (d2v[j] < *bd) {
                  *bd = d2v[j];
                  *bi = static_cast<int32_t>(base + c_off + j);
                }
              }
            });
}

void BatchNearestMerge(ConstMatrixView points, IndexRange rows,
                       const double* point_norms, const Matrix& centers,
                       int64_t first_center, const double* center_norms,
                       BatchKernel kernel, double* best_d2,
                       int32_t* best_index) {
  const int64_t d = points.cols();
  KMEANSLL_CHECK_EQ(centers.cols(), d);
  KMEANSLL_CHECK(rows.begin >= 0 && rows.end <= points.rows());
  KMEANSLL_CHECK(first_center >= 0 && first_center <= centers.rows());
  const int64_t k = centers.rows() - first_center;
  if (rows.size() <= 0 || k <= 0) return;

  const bool expanded = ResolveExpandedKernel(kernel, d);
  // Center norms the caller did not provide — computed from the matrix
  // rows with the same SquaredNorm chain callers use, so provided and
  // internal norms are bitwise interchangeable.
  std::vector<double> cn_storage;
  if (expanded && center_norms == nullptr) {
    cn_storage.resize(static_cast<size_t>(k));
    for (int64_t c = 0; c < k; ++c) {
      cn_storage[static_cast<size_t>(c)] =
          SquaredNorm(centers.Row(first_center + c), d);
    }
    center_norms = cn_storage.data();
  }
  CenterPanels panels;
  panels.Pack(centers, first_center);
  BatchNearestMerge(points, rows, point_norms, panels, center_norms,
                    kernel, best_d2, best_index);
}

void BatchTwoNearest(ConstMatrixView points, IndexRange rows,
                     const double* point_norms, const CenterPanels& panels,
                     const double* center_norms, BatchKernel kernel,
                     int32_t* out_index, double* out_d1, double* out_d2) {
  const int64_t n = rows.size();
  for (int64_t i = 0; i < n; ++i) {
    out_index[i] = -1;
    out_d1[i] = std::numeric_limits<double>::infinity();
    out_d2[i] = std::numeric_limits<double>::infinity();
  }
  bool expanded = false;
  if (!PrepareScan(points, rows, panels, center_norms, kernel, &expanded)) {
    return;
  }
  std::vector<double> pn_storage;
  point_norms =
      EnsurePointNorms(points, rows, expanded, point_norms, &pn_storage);
  const int64_t base = panels.first_center();
  // Two-best update with the sequential scan's tie semantics: a later
  // equal distance never displaces the best (strict <) but does take the
  // second slot only if strictly smaller than the incumbent second.
  PanelScan(points, rows, point_norms, panels, center_norms, expanded,
            IndexRange{0, panels.num_centers()},
            [&](int64_t p, int64_t c_off, int64_t count,
                const double* d2v) {
              for (int64_t j = 0; j < count; ++j) {
                const double v = d2v[j];
                if (v < out_d1[p]) {
                  out_d2[p] = out_d1[p];
                  out_d1[p] = v;
                  out_index[p] = static_cast<int32_t>(base + c_off + j);
                } else if (v < out_d2[p]) {
                  out_d2[p] = v;
                }
              }
            });
}

void BatchTopM(ConstMatrixView points, IndexRange rows,
               const double* point_norms, const CenterPanels& panels,
               const double* center_norms, BatchKernel kernel, int64_t m,
               int32_t* out_index, double* out_d2) {
  KMEANSLL_CHECK_GT(m, 0);
  const int64_t n = rows.size();
  for (int64_t s = 0; s < n * m; ++s) {
    out_index[s] = -1;
    out_d2[s] = std::numeric_limits<double>::infinity();
  }
  bool expanded = false;
  if (!PrepareScan(points, rows, panels, center_norms, kernel, &expanded)) {
    return;
  }
  std::vector<double> pn_storage;
  point_norms =
      EnsurePointNorms(points, rows, expanded, point_norms, &pn_storage);
  const int64_t base = panels.first_center();
  // Sorted-insertion merge: slots hold the m best distances ascending.
  // Strict-< at every comparison means an equal later distance never
  // displaces or outranks an earlier center, so tied centers sort by
  // ascending index and slot 0 reproduces BatchNearestMerge exactly.
  PanelScan(points, rows, point_norms, panels, center_norms, expanded,
            IndexRange{0, panels.num_centers()},
            [&](int64_t p, int64_t c_off, int64_t count,
                const double* d2v) {
              double* pd = out_d2 + p * m;
              int32_t* pi = out_index + p * m;
              for (int64_t j = 0; j < count; ++j) {
                const double v = d2v[j];
                if (!(v < pd[m - 1])) continue;
                int64_t s = m - 1;
                while (s > 0 && v < pd[s - 1]) {
                  pd[s] = pd[s - 1];
                  pi[s] = pi[s - 1];
                  --s;
                }
                pd[s] = v;
                pi[s] = static_cast<int32_t>(base + c_off + j);
              }
            });
}

void BatchNearestMergeSubset(ConstMatrixView points, IndexRange rows,
                             const double* point_norms,
                             const CenterPanels& panels,
                             const double* center_norms, BatchKernel kernel,
                             IndexRange centers, double* best_d2,
                             int32_t* best_index) {
  KMEANSLL_CHECK(centers.begin >= 0 && centers.end <= panels.num_centers());
  if (centers.size() <= 0) return;
  bool expanded = false;
  if (!PrepareScan(points, rows, panels, center_norms, kernel, &expanded)) {
    return;
  }
  std::vector<double> pn_storage;
  point_norms =
      EnsurePointNorms(points, rows, expanded, point_norms, &pn_storage);
  const int64_t base = panels.first_center();
  // Same strict-< ascending merge as the full-set overload, with the
  // lane window clipped to the subset on the boundary panels.
  PanelScan(points, rows, point_norms, panels, center_norms, expanded,
            centers,
            [&](int64_t p, int64_t c_off, int64_t count,
                const double* d2v) {
              const int64_t j_lo = std::max<int64_t>(0, centers.begin - c_off);
              const int64_t j_hi =
                  std::min<int64_t>(count, centers.end - c_off);
              double* bd = best_d2 + p;
              int32_t* bi = best_index + p;
              for (int64_t j = j_lo; j < j_hi; ++j) {
                if (d2v[j] < *bd) {
                  *bd = d2v[j];
                  *bi = static_cast<int32_t>(base + c_off + j);
                }
              }
            });
}

void BatchTopMSubset(ConstMatrixView points, IndexRange rows,
                     const double* point_norms, const CenterPanels& panels,
                     const double* center_norms, BatchKernel kernel,
                     IndexRange centers, int64_t m, int32_t* out_index,
                     double* out_d2) {
  KMEANSLL_CHECK_GT(m, 0);
  KMEANSLL_CHECK(centers.begin >= 0 && centers.end <= panels.num_centers());
  const int64_t n = rows.size();
  for (int64_t s = 0; s < n * m; ++s) {
    out_index[s] = -1;
    out_d2[s] = std::numeric_limits<double>::infinity();
  }
  if (centers.size() <= 0) return;
  bool expanded = false;
  if (!PrepareScan(points, rows, panels, center_norms, kernel, &expanded)) {
    return;
  }
  std::vector<double> pn_storage;
  point_norms =
      EnsurePointNorms(points, rows, expanded, point_norms, &pn_storage);
  const int64_t base = panels.first_center();
  // BatchTopM's sorted-insertion merge, lane-clipped to the subset.
  PanelScan(points, rows, point_norms, panels, center_norms, expanded,
            centers,
            [&](int64_t p, int64_t c_off, int64_t count,
                const double* d2v) {
              const int64_t j_lo = std::max<int64_t>(0, centers.begin - c_off);
              const int64_t j_hi =
                  std::min<int64_t>(count, centers.end - c_off);
              double* pd = out_d2 + p * m;
              int32_t* pi = out_index + p * m;
              for (int64_t j = j_lo; j < j_hi; ++j) {
                const double v = d2v[j];
                if (!(v < pd[m - 1])) continue;
                int64_t s = m - 1;
                while (s > 0 && v < pd[s - 1]) {
                  pd[s] = pd[s - 1];
                  pi[s] = pi[s - 1];
                  --s;
                }
                pd[s] = v;
                pi[s] = static_cast<int32_t>(base + c_off + j);
              }
            });
}

void BatchDistances(ConstMatrixView points, IndexRange rows,
                    const double* point_norms, const CenterPanels& panels,
                    const double* center_norms, BatchKernel kernel,
                    double* out_d2) {
  bool expanded = false;
  if (!PrepareScan(points, rows, panels, center_norms, kernel, &expanded)) {
    return;
  }
  std::vector<double> pn_storage;
  point_norms =
      EnsurePointNorms(points, rows, expanded, point_norms, &pn_storage);
  const int64_t k = panels.num_centers();
  PanelScan(points, rows, point_norms, panels, center_norms, expanded,
            IndexRange{0, k},
            [&](int64_t p, int64_t c_off, int64_t count,
                const double* d2v) {
              std::memcpy(out_d2 + p * k + c_off, d2v,
                          static_cast<size_t>(count) * sizeof(double));
            });
}

double PairSquaredL2(const double* a, const double* b, int64_t dim) {
  if (kUseAvx2) return PairSqFma(a, b, dim);
  double acc = 0.0;
  for (int64_t t = 0; t < dim; ++t) {
    double e = a[t] - b[t];
    acc += e * e;
  }
  return acc;
}

double PairDotProduct(const double* a, const double* b, int64_t dim) {
  if (kUseAvx2) return PairDotFma(a, b, dim);
  double acc = 0.0;
  for (int64_t t = 0; t < dim; ++t) acc += a[t] * b[t];
  return acc;
}

}  // namespace kmeansll
