// Squared Euclidean distance kernels. Everything in the paper runs on
// d²(x, y) = ||x - y||²; these kernels are the innermost loops of all
// initializers and of Lloyd's iteration.
//
// Two formulations are provided and tested against each other:
//  * Plain: sum of squared coordinate differences. Branch-free, exact,
//    best for small d.
//  * Norm-expanded: ||x||² + ||y||² - 2·x·y with precomputed norms; turns
//    the k-center scan into dot products (fewer loads per candidate) at
//    the price of cancellation for near-identical points, so results are
//    clamped at zero. Ablated in bench/bm_distance.

#ifndef KMEANSLL_DISTANCE_L2_H_
#define KMEANSLL_DISTANCE_L2_H_

#include <cstdint>

namespace kmeansll {

/// ||a - b||² over `dim` coordinates.
double SquaredL2(const double* a, const double* b, int64_t dim);

/// ||a||² over `dim` coordinates.
double SquaredNorm(const double* a, int64_t dim);

/// a · b over `dim` coordinates.
double DotProduct(const double* a, const double* b, int64_t dim);

/// max(0, a_norm + b_norm - 2·a·b): norm-expanded ||a - b||².
inline double SquaredL2Expanded(double a_norm, double b_norm, double dot) {
  double d2 = a_norm + b_norm - 2.0 * dot;
  return d2 > 0.0 ? d2 : 0.0;
}

}  // namespace kmeansll

#endif  // KMEANSLL_DISTANCE_L2_H_
