#include "distance/nearest.h"

#include <limits>

#include "common/math_util.h"
#include "distance/l2.h"

namespace kmeansll {

std::vector<double> RowSquaredNorms(const Matrix& m, ThreadPool* pool) {
  std::vector<double> norms(static_cast<size_t>(m.rows()));
  ParallelFor(pool, m.rows(), [&](IndexRange r) {
    for (int64_t i = r.begin; i < r.end; ++i) {
      norms[static_cast<size_t>(i)] = SquaredNorm(m.Row(i), m.cols());
    }
  });
  return norms;
}

std::vector<double> RowSquaredNorms(const DatasetSource& data,
                                    ThreadPool* pool) {
  std::vector<double> norms(static_cast<size_t>(data.n()));
  const int64_t d = data.dim();
  const ScanSchedule schedule = MakeScanSchedule(data, data.n(), pool);
  ParallelFor(
      pool, data.n(),
      [&](IndexRange r) {
        ForEachBlock(data, r.begin, r.end, [&](const DatasetView& v) {
          for (int64_t i = 0; i < v.rows(); ++i) {
            norms[static_cast<size_t>(v.first_row() + i)] =
                SquaredNorm(v.Point(i), d);
          }
        });
      },
      &schedule);
  return norms;
}

NearestCenterSearch::NearestCenterSearch(const Matrix& centers, Kernel kernel)
    : centers_(centers) {
  switch (kernel) {
    case Kernel::kPlain:
      use_expanded_ = false;
      break;
    case Kernel::kExpanded:
      use_expanded_ = true;
      break;
    case Kernel::kAuto:
      use_expanded_ = centers.cols() >= kExpandedKernelMinDim;
      break;
  }
  if (use_expanded_) center_norms_ = RowSquaredNorms(centers_);
}

void NearestCenterSearch::Freeze() {
  // Re-validation point: Freeze() must refresh the norms alongside the
  // panels so both snapshots describe the same center values — even on
  // the first Freeze, where the centers may have been mutated since
  // construction. The redundant O(k·d) norm pass in the common
  // construct-then-immediately-Freeze pattern is noise next to any scan
  // that follows; a silent stale-norm snapshot would corrupt every
  // expanded-kernel distance with no check firing.
  if (use_expanded_) center_norms_ = RowSquaredNorms(centers_);
  panels_.Pack(centers_);
  frozen_ = true;
}

void NearestCenterSearch::FreezeWithNorms(std::vector<double> norms) {
  if (use_expanded_) {
    KMEANSLL_CHECK_EQ(static_cast<int64_t>(norms.size()), centers_.rows());
    // The adopted norms must be the local SquaredNorm chain's values for
    // the bound rows, or every expanded-kernel distance would silently
    // shift; the constructor's snapshot is exactly that chain, so a
    // bitwise compare against it is a complete check at O(k) cost.
    for (size_t c = 0; c < norms.size(); ++c) {
      KMEANSLL_CHECK(norms[c] == center_norms_[c]);
    }
    center_norms_ = std::move(norms);
  }
  panels_.Pack(centers_);
  frozen_ = true;
}

void NearestCenterSearch::Unfreeze() {
  panels_.Clear();
  frozen_ = false;
}

NearestResult NearestCenterSearch::Find(const double* point) const {
  if (use_expanded_) {
    return FindWithNorm(point, SquaredNorm(point, centers_.cols()));
  }
  return FindWithNorm(point, 0.0);
}

NearestResult NearestCenterSearch::FindWithNorm(const double* point,
                                                double point_norm2) const {
  KMEANSLL_DCHECK(centers_.rows() > 0);
  NearestResult best;
  best.distance2 = std::numeric_limits<double>::infinity();
  const int64_t k = centers_.rows();
  const int64_t d = centers_.cols();
  // Pair* evaluators, not SquaredL2/DotProduct: the scalar reference path
  // must produce the engine's per-pair values bitwise (see batch.h).
  if (use_expanded_) {
    for (int64_t c = 0; c < k; ++c) {
      double d2 = SquaredL2Expanded(
          point_norm2, center_norms_[static_cast<size_t>(c)],
          PairDotProduct(point, centers_.Row(c), d));
      if (d2 < best.distance2) {
        best.distance2 = d2;
        best.index = c;
      }
    }
  } else {
    for (int64_t c = 0; c < k; ++c) {
      double d2 = PairSquaredL2(point, centers_.Row(c), d);
      if (d2 < best.distance2) {
        best.distance2 = d2;
        best.index = c;
      }
    }
  }
  return best;
}

void NearestCenterSearch::FindRange(ConstMatrixView points, IndexRange rows,
                                    const double* point_norms,
                                    int32_t* out_index,
                                    double* out_d2) const {
  KMEANSLL_DCHECK(centers_.rows() > 0);
  const int64_t n = rows.size();
  for (int64_t i = 0; i < n; ++i) {
    out_d2[i] = std::numeric_limits<double>::infinity();
  }
  if (out_index != nullptr) {
    for (int64_t i = 0; i < n; ++i) out_index[i] = -1;
  }
  if (frozen_) {
    BatchNearestMerge(points, rows, point_norms, panels_,
                      center_norms_or_null(), batch_kernel(), out_d2,
                      out_index);
    return;
  }
  BatchNearestMerge(points, rows, point_norms, centers_,
                    /*first_center=*/0, center_norms_or_null(),
                    batch_kernel(), out_d2, out_index);
}

void NearestCenterSearch::FindRange(const DatasetSource& data,
                                    IndexRange rows,
                                    const double* point_norms,
                                    int32_t* out_index,
                                    double* out_d2) const {
  ForEachBlock(data, rows.begin, rows.end, [&](const DatasetView& v) {
    const int64_t off = v.first_row() - rows.begin;
    FindRange(v.points(), IndexRange{0, v.rows()},
              point_norms == nullptr ? nullptr : point_norms + off,
              out_index == nullptr ? nullptr : out_index + off,
              out_d2 + off);
  });
}

void NearestCenterSearch::FindAll(const Matrix& points,
                                  std::vector<int32_t>* out_index,
                                  std::vector<double>* out_d2,
                                  ThreadPool* pool,
                                  const double* point_norms) const {
  const int64_t n = points.rows();
  if (out_index != nullptr) out_index->resize(static_cast<size_t>(n));
  out_d2->resize(static_cast<size_t>(n));
  // Pack at most once per call: without a frozen snapshot the chunks
  // below would otherwise each re-pack the full center set.
  CenterPanels local;
  const CenterPanels* panels = &panels_;
  if (!frozen_) {
    local.Pack(centers_);
    panels = &local;
  }
  // Chunk on the fixed deterministic grid in the sequential path too, so
  // tile origins — and therefore results — are identical with and without
  // a pool even when codegen contracts the kernels differently.
  std::vector<IndexRange> chunks = MakeChunks(n, kDeterministicChunks);
  auto body = [&](IndexRange r) {
    const int64_t len = r.size();
    double* d2 = out_d2->data() + r.begin;
    for (int64_t i = 0; i < len; ++i) {
      d2[i] = std::numeric_limits<double>::infinity();
    }
    int32_t* idx = nullptr;
    if (out_index != nullptr) {
      idx = out_index->data() + r.begin;
      for (int64_t i = 0; i < len; ++i) idx[i] = -1;
    }
    BatchNearestMerge(points, r,
                      point_norms == nullptr ? nullptr
                                             : point_norms + r.begin,
                      *panels, center_norms_or_null(), batch_kernel(), d2,
                      idx);
  };
  if (pool == nullptr) {
    for (const IndexRange& r : chunks) body(r);
  } else {
    for (const IndexRange& r : chunks) {
      pool->Submit([&body, r] { body(r); });
    }
    pool->Wait();
  }
}

void NearestCenterSearch::FindAll(const DatasetSource& data,
                                  std::vector<int32_t>* out_index,
                                  std::vector<double>* out_d2,
                                  ThreadPool* pool,
                                  const double* point_norms) const {
  const int64_t n = data.n();
  if (out_index != nullptr) out_index->resize(static_cast<size_t>(n));
  out_d2->resize(static_cast<size_t>(n));
  // Pack at most once per call (as in the Matrix FindAll): the chunk fan-
  // out below reuses one snapshot whether or not the search is frozen.
  CenterPanels local;
  const CenterPanels* panels = &panels_;
  if (!frozen_) {
    local.Pack(centers_);
    panels = &local;
  }
  auto body = [&](IndexRange r) {
    ForEachBlock(data, r.begin, r.end, [&](const DatasetView& v) {
      const int64_t first = v.first_row();
      const int64_t len = v.rows();
      double* d2 = out_d2->data() + first;
      for (int64_t i = 0; i < len; ++i) {
        d2[i] = std::numeric_limits<double>::infinity();
      }
      int32_t* idx = nullptr;
      if (out_index != nullptr) {
        idx = out_index->data() + first;
        for (int64_t i = 0; i < len; ++i) idx[i] = -1;
      }
      BatchNearestMerge(v.points(), IndexRange{0, len},
                        point_norms == nullptr ? nullptr
                                               : point_norms + first,
                        *panels, center_norms_or_null(), batch_kernel(), d2,
                        idx);
    });
  };
  // Shard-aware submission + next-shard hints over out-of-core sources;
  // per-row writes are independent, so the schedule only changes timing
  // (see ScanSchedule). Passing the schedule also keeps the sequential
  // path on the fixed deterministic chunk grid (as in the Matrix
  // FindAll), so tile origins match the pooled path at any pool size.
  const ScanSchedule schedule = MakeScanSchedule(data, n, pool);
  ParallelFor(pool, n, body, &schedule);
}

void NearestCenterSearch::FindTwoNearestRange(ConstMatrixView points,
                                              IndexRange rows,
                                              const double* point_norms,
                                              int32_t* out_index,
                                              double* out_d1,
                                              double* out_d2) const {
  KMEANSLL_DCHECK(centers_.rows() > 0);
  if (frozen_) {
    BatchTwoNearest(points, rows, point_norms, panels_,
                    center_norms_or_null(), batch_kernel(), out_index,
                    out_d1, out_d2);
    return;
  }
  CenterPanels local;
  local.Pack(centers_);
  BatchTwoNearest(points, rows, point_norms, local, center_norms_or_null(),
                  batch_kernel(), out_index, out_d1, out_d2);
}

void NearestCenterSearch::FindTwoNearestRange(const DatasetSource& data,
                                              IndexRange rows,
                                              const double* point_norms,
                                              int32_t* out_index,
                                              double* out_d1,
                                              double* out_d2) const {
  ForEachBlock(data, rows.begin, rows.end, [&](const DatasetView& v) {
    const int64_t off = v.first_row() - rows.begin;
    FindTwoNearestRange(v.points(), IndexRange{0, v.rows()},
                        point_norms == nullptr ? nullptr : point_norms + off,
                        out_index + off, out_d1 + off, out_d2 + off);
  });
}

void NearestCenterSearch::FindTopMRange(ConstMatrixView points,
                                        IndexRange rows,
                                        const double* point_norms,
                                        int64_t m, int32_t* out_index,
                                        double* out_d2) const {
  KMEANSLL_DCHECK(centers_.rows() > 0);
  if (frozen_) {
    BatchTopM(points, rows, point_norms, panels_, center_norms_or_null(),
              batch_kernel(), m, out_index, out_d2);
    return;
  }
  CenterPanels local;
  local.Pack(centers_);
  BatchTopM(points, rows, point_norms, local, center_norms_or_null(),
            batch_kernel(), m, out_index, out_d2);
}

void NearestCenterSearch::DistancesRange(ConstMatrixView points,
                                         IndexRange rows,
                                         const double* point_norms,
                                         double* out_d2) const {
  KMEANSLL_DCHECK(centers_.rows() > 0);
  if (frozen_) {
    BatchDistances(points, rows, point_norms, panels_,
                   center_norms_or_null(), batch_kernel(), out_d2);
    return;
  }
  CenterPanels local;
  local.Pack(centers_);
  BatchDistances(points, rows, point_norms, local, center_norms_or_null(),
                 batch_kernel(), out_d2);
}

void NearestCenterSearch::DistancesRange(const DatasetSource& data,
                                         IndexRange rows,
                                         const double* point_norms,
                                         double* out_d2) const {
  const int64_t k = centers_.rows();
  ForEachBlock(data, rows.begin, rows.end, [&](const DatasetView& v) {
    const int64_t off = v.first_row() - rows.begin;
    DistancesRange(v.points(), IndexRange{0, v.rows()},
                   point_norms == nullptr ? nullptr : point_norms + off,
                   out_d2 + off * k);
  });
}

MinDistanceTracker::MinDistanceTracker(const Dataset& data, ThreadPool* pool)
    : owned_source_(data.AsSource()),
      data_(&*owned_source_),
      pool_(pool),
      min_d2_(static_cast<size_t>(data.n()),
              std::numeric_limits<double>::infinity()),
      closest_(static_cast<size_t>(data.n()), -1),
      potential_(std::numeric_limits<double>::infinity()) {}

MinDistanceTracker::MinDistanceTracker(const DatasetSource& data,
                                       ThreadPool* pool)
    : data_(&data),
      pool_(pool),
      schedule_(MakeScanSchedule(data, data.n(), pool)),
      min_d2_(static_cast<size_t>(data.n()),
              std::numeric_limits<double>::infinity()),
      closest_(static_cast<size_t>(data.n()), -1),
      potential_(std::numeric_limits<double>::infinity()) {}

double MinDistanceTracker::AddCenters(const Matrix& centers, int64_t first) {
  KMEANSLL_CHECK_EQ(centers.cols(), data_->dim());
  KMEANSLL_CHECK(first >= 0 && first <= centers.rows());
  const int64_t d = data_->dim();
  const bool expanded = d >= kExpandedKernelMinDim;

  // Point norms are a pure function of the (immutable) dataset: computed
  // once on first use and reused by every subsequent round.
  if (expanded && point_norms_.empty() && data_->n() > 0) {
    point_norms_ = RowSquaredNorms(*data_, pool_);
  }
  // Normalized base pointer: never form `data() + offset` on an empty
  // vector (the plain kernel keeps no norms; an empty dataset keeps
  // none either).
  const double* norms_base =
      point_norms_.empty() ? nullptr : point_norms_.data();

  // Norms for just the newly added center rows (tiny next to the n·k·d
  // scan; indexed relative to `first` as the engine expects).
  std::vector<double> new_center_norms;
  if (expanded) {
    const int64_t added = centers.rows() - first;
    new_center_norms.resize(static_cast<size_t>(added > 0 ? added : 0));
    for (int64_t c = first; c < centers.rows(); ++c) {
      new_center_norms[static_cast<size_t>(c - first)] =
          SquaredNorm(centers.Row(c), d);
    }
  }
  // Pack the new rows once per call; every chunk of the parallel pass
  // below scans the same panels instead of re-packing them.
  CenterPanels panels;
  panels.Pack(centers, first);

  // One blocked pass: merge the new centers into (min_d2, closest) and
  // fold the updated potential into per-chunk Kahan partials, combined in
  // chunk order — bitwise identical for any thread count.
  // Per-chunk body: merge the new centers block by block (per-row values
  // are placement-invariant), then fold the weighted potential over the
  // chunk's rows in ascending order — the identical Kahan chain whether
  // the rows arrive as one in-memory block or several pinned shards.
  auto map = [&](IndexRange r) {
    KahanSum partial;
    ForEachBlock(*data_, r.begin, r.end, [&](const DatasetView& v) {
      const int64_t first_row = v.first_row();
      BatchNearestMerge(
          v.points(), IndexRange{0, v.rows()},
          norms_base == nullptr ? nullptr : norms_base + first_row, panels,
          expanded ? new_center_norms.data() : nullptr,
          expanded ? BatchKernel::kExpanded : BatchKernel::kPlain,
          min_d2_.data() + first_row, closest_.data() + first_row);
      for (int64_t i = 0; i < v.rows(); ++i) {
        partial.Add(v.Weight(i) *
                    min_d2_[static_cast<size_t>(first_row + i)]);
      }
    });
    return partial;
  };
  auto combine = [](KahanSum a, KahanSum b) {
    a.Merge(b);
    return a;
  };
  potential_ = ParallelReduce<KahanSum>(pool_, data_->n(), KahanSum(), map,
                                        combine, &schedule_)
                   .Total();
  return potential_;
}

std::vector<double> MinDistanceTracker::WeightedContributions() const {
  std::vector<double> out(min_d2_.size());
  ForEachBlock(*data_, 0, data_->n(), [&](const DatasetView& v) {
    for (int64_t i = 0; i < v.rows(); ++i) {
      const int64_t g = v.first_row() + i;
      out[static_cast<size_t>(g)] =
          v.Weight(i) * min_d2_[static_cast<size_t>(g)];
    }
  });
  return out;
}

}  // namespace kmeansll
