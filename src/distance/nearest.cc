#include "distance/nearest.h"

#include <limits>

#include "common/math_util.h"
#include "distance/l2.h"

namespace kmeansll {

std::vector<double> RowSquaredNorms(const Matrix& m, ThreadPool* pool) {
  std::vector<double> norms(static_cast<size_t>(m.rows()));
  ParallelFor(pool, m.rows(), [&](IndexRange r) {
    for (int64_t i = r.begin; i < r.end; ++i) {
      norms[static_cast<size_t>(i)] = SquaredNorm(m.Row(i), m.cols());
    }
  });
  return norms;
}

NearestCenterSearch::NearestCenterSearch(const Matrix& centers, Kernel kernel)
    : centers_(centers) {
  switch (kernel) {
    case Kernel::kPlain:
      use_expanded_ = false;
      break;
    case Kernel::kExpanded:
      use_expanded_ = true;
      break;
    case Kernel::kAuto:
      use_expanded_ = centers.cols() >= kExpandedKernelMinDim;
      break;
  }
  if (use_expanded_) center_norms_ = RowSquaredNorms(centers_);
}

NearestResult NearestCenterSearch::Find(const double* point) const {
  if (use_expanded_) {
    return FindWithNorm(point, SquaredNorm(point, centers_.cols()));
  }
  return FindWithNorm(point, 0.0);
}

NearestResult NearestCenterSearch::FindWithNorm(const double* point,
                                                double point_norm2) const {
  KMEANSLL_DCHECK(centers_.rows() > 0);
  NearestResult best;
  best.distance2 = std::numeric_limits<double>::infinity();
  const int64_t k = centers_.rows();
  const int64_t d = centers_.cols();
  if (use_expanded_) {
    for (int64_t c = 0; c < k; ++c) {
      double d2 = SquaredL2Expanded(
          point_norm2, center_norms_[static_cast<size_t>(c)],
          DotProduct(point, centers_.Row(c), d));
      if (d2 < best.distance2) {
        best.distance2 = d2;
        best.index = c;
      }
    }
  } else {
    for (int64_t c = 0; c < k; ++c) {
      double d2 = SquaredL2(point, centers_.Row(c), d);
      if (d2 < best.distance2) {
        best.distance2 = d2;
        best.index = c;
      }
    }
  }
  return best;
}

void NearestCenterSearch::FindRange(const Matrix& points, IndexRange rows,
                                    const double* point_norms,
                                    int32_t* out_index,
                                    double* out_d2) const {
  KMEANSLL_DCHECK(centers_.rows() > 0);
  const int64_t n = rows.size();
  for (int64_t i = 0; i < n; ++i) {
    out_d2[i] = std::numeric_limits<double>::infinity();
  }
  if (out_index != nullptr) {
    for (int64_t i = 0; i < n; ++i) out_index[i] = -1;
  }
  BatchNearestMerge(
      points, rows, point_norms, centers_, /*first_center=*/0,
      use_expanded_ ? center_norms_.data() : nullptr,
      use_expanded_ ? BatchKernel::kExpanded : BatchKernel::kPlain, out_d2,
      out_index);
}

void NearestCenterSearch::FindAll(const Matrix& points,
                                  std::vector<int32_t>* out_index,
                                  std::vector<double>* out_d2,
                                  ThreadPool* pool) const {
  const int64_t n = points.rows();
  if (out_index != nullptr) out_index->resize(static_cast<size_t>(n));
  out_d2->resize(static_cast<size_t>(n));
  // Chunk on the fixed deterministic grid in the sequential path too, so
  // tile origins — and therefore results — are identical with and without
  // a pool even when codegen contracts the kernels differently.
  std::vector<IndexRange> chunks = MakeChunks(n, kDeterministicChunks);
  auto body = [&](IndexRange r) {
    FindRange(points, r, nullptr,
              out_index == nullptr ? nullptr
                                   : out_index->data() + r.begin,
              out_d2->data() + r.begin);
  };
  if (pool == nullptr) {
    for (const IndexRange& r : chunks) body(r);
  } else {
    for (const IndexRange& r : chunks) {
      pool->Submit([&body, r] { body(r); });
    }
    pool->Wait();
  }
}

MinDistanceTracker::MinDistanceTracker(const Dataset& data, ThreadPool* pool)
    : data_(data),
      pool_(pool),
      min_d2_(static_cast<size_t>(data.n()),
              std::numeric_limits<double>::infinity()),
      closest_(static_cast<size_t>(data.n()), -1),
      potential_(std::numeric_limits<double>::infinity()) {}

double MinDistanceTracker::AddCenters(const Matrix& centers, int64_t first) {
  KMEANSLL_CHECK_EQ(centers.cols(), data_.dim());
  KMEANSLL_CHECK(first >= 0 && first <= centers.rows());
  const int64_t d = data_.dim();
  const bool expanded = d >= kExpandedKernelMinDim;

  // Point norms are a pure function of the (immutable) dataset: computed
  // once on first use and reused by every subsequent round.
  if (expanded && point_norms_.empty() && data_.n() > 0) {
    point_norms_ = RowSquaredNorms(data_.points(), pool_);
  }
  // Norms for just the newly added center rows (tiny next to the n·k·d
  // scan; indexed relative to `first` as BatchNearestMerge expects).
  std::vector<double> new_center_norms;
  if (expanded) {
    const int64_t added = centers.rows() - first;
    new_center_norms.resize(static_cast<size_t>(added > 0 ? added : 0));
    for (int64_t c = first; c < centers.rows(); ++c) {
      new_center_norms[static_cast<size_t>(c - first)] =
          SquaredNorm(centers.Row(c), d);
    }
  }

  // One blocked pass: merge the new centers into (min_d2, closest) and
  // fold the updated potential into per-chunk Kahan partials, combined in
  // chunk order — bitwise identical for any thread count.
  auto map = [&](IndexRange r) {
    BatchNearestMerge(
        data_.points(), r,
        expanded ? point_norms_.data() + r.begin : nullptr, centers, first,
        expanded ? new_center_norms.data() : nullptr,
        expanded ? BatchKernel::kExpanded : BatchKernel::kPlain,
        min_d2_.data() + r.begin, closest_.data() + r.begin);
    KahanSum partial;
    for (int64_t i = r.begin; i < r.end; ++i) {
      partial.Add(data_.Weight(i) * min_d2_[static_cast<size_t>(i)]);
    }
    return partial;
  };
  auto combine = [](KahanSum a, KahanSum b) {
    a.Merge(b);
    return a;
  };
  potential_ = ParallelReduce<KahanSum>(pool_, data_.n(), KahanSum(), map,
                                        combine)
                   .Total();
  return potential_;
}

std::vector<double> MinDistanceTracker::WeightedContributions() const {
  std::vector<double> out(min_d2_.size());
  for (int64_t i = 0; i < data_.n(); ++i) {
    out[static_cast<size_t>(i)] =
        data_.Weight(i) * min_d2_[static_cast<size_t>(i)];
  }
  return out;
}

}  // namespace kmeansll
