#include "distance/nearest.h"

#include <limits>

#include "common/math_util.h"
#include "distance/l2.h"

namespace kmeansll {

std::vector<double> RowSquaredNorms(const Matrix& m) {
  std::vector<double> norms(static_cast<size_t>(m.rows()));
  for (int64_t i = 0; i < m.rows(); ++i) {
    norms[static_cast<size_t>(i)] = SquaredNorm(m.Row(i), m.cols());
  }
  return norms;
}

NearestCenterSearch::NearestCenterSearch(const Matrix& centers, Kernel kernel)
    : centers_(centers) {
  switch (kernel) {
    case Kernel::kPlain:
      use_expanded_ = false;
      break;
    case Kernel::kExpanded:
      use_expanded_ = true;
      break;
    case Kernel::kAuto:
      use_expanded_ = centers.cols() >= 16;
      break;
  }
  if (use_expanded_) center_norms_ = RowSquaredNorms(centers_);
}

NearestResult NearestCenterSearch::Find(const double* point) const {
  if (use_expanded_) {
    return FindWithNorm(point, SquaredNorm(point, centers_.cols()));
  }
  return FindWithNorm(point, 0.0);
}

NearestResult NearestCenterSearch::FindWithNorm(const double* point,
                                                double point_norm2) const {
  KMEANSLL_DCHECK(centers_.rows() > 0);
  NearestResult best;
  best.distance2 = std::numeric_limits<double>::infinity();
  const int64_t k = centers_.rows();
  const int64_t d = centers_.cols();
  if (use_expanded_) {
    for (int64_t c = 0; c < k; ++c) {
      double d2 = SquaredL2Expanded(
          point_norm2, center_norms_[static_cast<size_t>(c)],
          DotProduct(point, centers_.Row(c), d));
      if (d2 < best.distance2) {
        best.distance2 = d2;
        best.index = c;
      }
    }
  } else {
    for (int64_t c = 0; c < k; ++c) {
      double d2 = SquaredL2(point, centers_.Row(c), d);
      if (d2 < best.distance2) {
        best.distance2 = d2;
        best.index = c;
      }
    }
  }
  return best;
}

MinDistanceTracker::MinDistanceTracker(const Dataset& data)
    : data_(data),
      min_d2_(static_cast<size_t>(data.n()),
              std::numeric_limits<double>::infinity()),
      closest_(static_cast<size_t>(data.n()), -1),
      potential_(std::numeric_limits<double>::infinity()) {}

double MinDistanceTracker::AddCenters(const Matrix& centers, int64_t first) {
  KMEANSLL_CHECK_EQ(centers.cols(), data_.dim());
  KMEANSLL_CHECK(first >= 0 && first <= centers.rows());
  const int64_t d = data_.dim();
  for (int64_t c = first; c < centers.rows(); ++c) {
    const double* center = centers.Row(c);
    for (int64_t i = 0; i < data_.n(); ++i) {
      double d2 = SquaredL2(data_.Point(i), center, d);
      if (d2 < min_d2_[static_cast<size_t>(i)]) {
        min_d2_[static_cast<size_t>(i)] = d2;
        closest_[static_cast<size_t>(i)] = c;
      }
    }
  }
  RecomputePotential();
  return potential_;
}

void MinDistanceTracker::RecomputePotential() {
  KahanSum sum;
  for (int64_t i = 0; i < data_.n(); ++i) {
    sum.Add(data_.Weight(i) * min_d2_[static_cast<size_t>(i)]);
  }
  potential_ = sum.Total();
}

std::vector<double> MinDistanceTracker::WeightedContributions() const {
  std::vector<double> out(min_d2_.size());
  for (int64_t i = 0; i < data_.n(); ++i) {
    out[static_cast<size_t>(i)] =
        data_.Weight(i) * min_d2_[static_cast<size_t>(i)];
  }
  return out;
}

}  // namespace kmeansll
