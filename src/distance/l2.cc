#include "distance/l2.h"

namespace kmeansll {

// The 4-way manual unroll gives gcc independent accumulation chains to
// vectorize; with a single accumulator the loop-carried dependence caps
// throughput at one fma per cycle.

double SquaredL2(const double* a, const double* b, int64_t dim) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    double d0 = a[i] - b[i];
    double d1 = a[i + 1] - b[i + 1];
    double d2 = a[i + 2] - b[i + 2];
    double d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    double d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

double SquaredNorm(const double* a, int64_t dim) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * a[i];
    acc1 += a[i + 1] * a[i + 1];
    acc2 += a[i + 2] * a[i + 2];
    acc3 += a[i + 3] * a[i + 3];
  }
  for (; i < dim; ++i) acc0 += a[i] * a[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

double DotProduct(const double* a, const double* b, int64_t dim) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

}  // namespace kmeansll
