#include "data/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "data/model_io.h"  // for data::Crc32

namespace kmeansll::data {

namespace {

constexpr char kMagic[8] = {'K', 'M', 'L', 'L', 'D', 'A', 'T', 'A'};
// v1: header + payload only. v2 adds kFlagPayloadCrc and a trailing
// little-endian uint32 CRC-32 over every preceding byte of the file
// (header included), so silent payload corruption is detected at read
// time the same way header corruption already is. The writer always
// emits v2 with the CRC; v1 files remain readable.
constexpr int32_t kVersion = 2;
constexpr int32_t kMinVersion = 1;
constexpr uint32_t kFlagWeights = 1u << 0;
constexpr uint32_t kFlagLabels = 1u << 1;
constexpr uint32_t kFlagPayloadCrc = 1u << 2;
constexpr uint32_t kKnownFlags =
    kFlagWeights | kFlagLabels | kFlagPayloadCrc;

}  // namespace

Status WriteBinaryRange(const Dataset& dataset, int64_t begin, int64_t end,
                        const std::string& path) {
  if (begin < 0 || begin > end || end > dataset.n()) {
    return Status::InvalidArgument(
        "row range [" + std::to_string(begin) + ", " + std::to_string(end) +
        ") out of bounds for n=" + std::to_string(dataset.n()));
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  int64_t n = end - begin;
  int64_t d = dataset.dim();
  uint32_t flags = kFlagPayloadCrc;
  if (dataset.has_weights()) flags |= kFlagWeights;
  if (dataset.has_labels()) flags |= kFlagLabels;

  // Every byte that hits the stream also folds into the running CRC so
  // the trailing checksum covers the whole file without a second pass.
  uint32_t crc = 0;
  auto put = [&out, &crc](const void* bytes, size_t size) {
    out.write(static_cast<const char*>(bytes),
              static_cast<std::streamsize>(size));
    crc = Crc32(bytes, size, crc);
  };

  put(kMagic, sizeof(kMagic));
  int32_t version = kVersion;
  put(&version, sizeof(version));
  put(&n, sizeof(n));
  put(&d, sizeof(d));
  put(&flags, sizeof(flags));
  put(dataset.points().data() + begin * d,
      static_cast<size_t>(n * d) * sizeof(double));
  if (dataset.has_weights()) {
    put(dataset.weights().data() + begin,
        static_cast<size_t>(n) * sizeof(double));
  }
  if (dataset.has_labels()) {
    put(dataset.labels().data() + begin,
        static_cast<size_t>(n) * sizeof(int32_t));
  }
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (!out.good()) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Status WriteBinary(const Dataset& dataset, const std::string& path) {
  return WriteBinaryRange(dataset, 0, dataset.n(), path);
}

Result<Dataset> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a kmeansll dataset file");
  }
  int32_t version = 0;
  int64_t n = 0, d = 0;
  uint32_t flags = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&d), sizeof(d));
  in.read(reinterpret_cast<char*>(&flags), sizeof(flags));
  if (!in.good() || version < kMinVersion || version > kVersion) {
    return Status::InvalidArgument("unsupported dataset version in '" +
                                   path + "'");
  }
  if ((flags & ~kKnownFlags) != 0 ||
      (version < 2 && (flags & kFlagPayloadCrc) != 0)) {
    return Status::InvalidArgument("unknown flags in '" + path + "'");
  }
  if (n <= 0 || d <= 0 || n > (int64_t{1} << 40) ||
      d > (int64_t{1} << 24)) {
    return Status::InvalidArgument("implausible dataset shape in '" + path +
                                   "'");
  }
  // Fold everything read so far (and every section below) into a running
  // CRC; v2 files carry the expected value in their final four bytes.
  uint32_t crc = Crc32(kMagic, sizeof(kMagic));
  crc = Crc32(&version, sizeof(version), crc);
  crc = Crc32(&n, sizeof(n), crc);
  crc = Crc32(&d, sizeof(d), crc);
  crc = Crc32(&flags, sizeof(flags), crc);

  Matrix points(n, d);
  in.read(reinterpret_cast<char*>(points.data()),
          static_cast<std::streamsize>(n * d * sizeof(double)));
  if (!in.good()) return Status::IOError("'" + path + "' is truncated");
  crc = Crc32(points.data(), static_cast<size_t>(n * d) * sizeof(double),
              crc);

  std::vector<double> weights;
  if ((flags & kFlagWeights) != 0) {
    weights.resize(static_cast<size_t>(n));
    in.read(reinterpret_cast<char*>(weights.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
    if (!in.good()) return Status::IOError("'" + path + "' is truncated");
    crc = Crc32(weights.data(), weights.size() * sizeof(double), crc);
  }
  std::vector<int32_t> labels;
  if ((flags & kFlagLabels) != 0) {
    labels.resize(static_cast<size_t>(n));
    in.read(reinterpret_cast<char*>(labels.data()),
            static_cast<std::streamsize>(n * sizeof(int32_t)));
    if (!in.good()) return Status::IOError("'" + path + "' is truncated");
    crc = Crc32(labels.data(), labels.size() * sizeof(int32_t), crc);
  }
  if ((flags & kFlagPayloadCrc) != 0) {
    uint32_t stored = 0;
    in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!in.good()) return Status::IOError("'" + path + "' is truncated");
    if (stored != crc) {
      return Status::InvalidArgument("payload CRC mismatch in '" + path +
                                     "'");
    }
  }

  if (!weights.empty() && !labels.empty()) {
    return Dataset::WithWeightsAndLabels(std::move(points),
                                         std::move(weights),
                                         std::move(labels));
  }
  if (!weights.empty()) {
    return Dataset::WithWeights(std::move(points), std::move(weights));
  }
  if (!labels.empty()) {
    return Dataset::WithLabels(std::move(points), std::move(labels));
  }
  return Dataset(std::move(points));
}

}  // namespace kmeansll::data
