#include "data/binary_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace kmeansll::data {

namespace {

constexpr char kMagic[8] = {'K', 'M', 'L', 'L', 'D', 'A', 'T', 'A'};
constexpr int32_t kVersion = 1;
constexpr uint32_t kFlagWeights = 1u << 0;
constexpr uint32_t kFlagLabels = 1u << 1;

}  // namespace

Status WriteBinaryRange(const Dataset& dataset, int64_t begin, int64_t end,
                        const std::string& path) {
  if (begin < 0 || begin > end || end > dataset.n()) {
    return Status::InvalidArgument(
        "row range [" + std::to_string(begin) + ", " + std::to_string(end) +
        ") out of bounds for n=" + std::to_string(dataset.n()));
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  int64_t n = end - begin;
  int64_t d = dataset.dim();
  uint32_t flags = 0;
  if (dataset.has_weights()) flags |= kFlagWeights;
  if (dataset.has_labels()) flags |= kFlagLabels;

  out.write(kMagic, sizeof(kMagic));
  int32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  out.write(reinterpret_cast<const char*>(&flags), sizeof(flags));
  out.write(reinterpret_cast<const char*>(dataset.points().data() +
                                          begin * d),
            static_cast<std::streamsize>(n * d * sizeof(double)));
  if (dataset.has_weights()) {
    out.write(reinterpret_cast<const char*>(dataset.weights().data() +
                                            begin),
              static_cast<std::streamsize>(n * sizeof(double)));
  }
  if (dataset.has_labels()) {
    out.write(reinterpret_cast<const char*>(dataset.labels().data() +
                                            begin),
              static_cast<std::streamsize>(n * sizeof(int32_t)));
  }
  if (!out.good()) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Status WriteBinary(const Dataset& dataset, const std::string& path) {
  return WriteBinaryRange(dataset, 0, dataset.n(), path);
}

Result<Dataset> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a kmeansll dataset file");
  }
  int32_t version = 0;
  int64_t n = 0, d = 0;
  uint32_t flags = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&d), sizeof(d));
  in.read(reinterpret_cast<char*>(&flags), sizeof(flags));
  if (!in.good() || version != kVersion) {
    return Status::InvalidArgument("unsupported dataset version in '" +
                                   path + "'");
  }
  if (n <= 0 || d <= 0 || n > (int64_t{1} << 40) ||
      d > (int64_t{1} << 24)) {
    return Status::InvalidArgument("implausible dataset shape in '" + path +
                                   "'");
  }
  Matrix points(n, d);
  in.read(reinterpret_cast<char*>(points.data()),
          static_cast<std::streamsize>(n * d * sizeof(double)));
  if (!in.good()) return Status::IOError("'" + path + "' is truncated");

  std::vector<double> weights;
  if ((flags & kFlagWeights) != 0) {
    weights.resize(static_cast<size_t>(n));
    in.read(reinterpret_cast<char*>(weights.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
    if (!in.good()) return Status::IOError("'" + path + "' is truncated");
  }
  std::vector<int32_t> labels;
  if ((flags & kFlagLabels) != 0) {
    labels.resize(static_cast<size_t>(n));
    in.read(reinterpret_cast<char*>(labels.data()),
            static_cast<std::streamsize>(n * sizeof(int32_t)));
    if (!in.good()) return Status::IOError("'" + path + "' is truncated");
  }

  if (!weights.empty() && !labels.empty()) {
    return Dataset::WithWeightsAndLabels(std::move(points),
                                         std::move(weights),
                                         std::move(labels));
  }
  if (!weights.empty()) {
    return Dataset::WithWeights(std::move(points), std::move(weights));
  }
  if (!labels.empty()) {
    return Dataset::WithLabels(std::move(points), std::move(labels));
  }
  return Dataset(std::move(points));
}

}  // namespace kmeansll::data
