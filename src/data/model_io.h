// Fitted-model artifact format ("KMLLMODL"): the persistence leg of the
// serving layer (see docs/ARCHITECTURE.md "Serving layer").
//
// A model artifact is everything an online server needs to answer
// nearest-center queries without recomputation: the k × d centers, their
// precomputed squared norms (the expanded kernel's center-side input,
// stored so a loaded model serves its first query with the exact bytes
// the trainer computed), and the training metadata worth auditing in
// production (init method, seed, iterations, costs, row count).
//
// Wire format (little-endian, version 2):
//   magic[8] "KMLLMODL" | i32 version | i64 k | i64 d | u32 flags
//   | u64 seed | i64 lloyd_iterations | i64 trained_rows
//   | f64 seed_cost | f64 final_cost | i32 len + init_method bytes
//   | f64 centers[k*d] | f64 center_norms[k] | u32 crc32
// The trailing CRC-32 (IEEE, reflected) covers every byte before it, so
// any torn write, bit rot, or partial copy is detected at load time, not
// at query time. Version 1 (the pre-serving SaveCenters layout, no
// norms/metadata/CRC) is not readable; loads fail with a version error.
//
// Validation discipline matches KMLLDATA (data/binary_io.h): every load
// eagerly checks magic, version, shape plausibility, truncation, the
// CRC, coordinate finiteness, and that the stored norms are bitwise the
// RowSquaredNorms of the stored centers — a model that passes Load is
// servable as-is.
//
// Portability caveat of the bitwise norm check: the SquaredNorm chain's
// bits depend on the build's floating-point contraction (e.g.
// KMEANSLL_NATIVE_ARCH may fuse the accumulate). An artifact loads
// anywhere the loader's chain matches the producer's — any two default
// builds on the same ISA agree — but a producer and consumer compiled
// with different contraction must re-emit the artifact rather than
// share it. This is deliberate: the repo's determinism contract is
// bitwise, and a model whose stored norms disagree with what every
// local scan will recompute is not "the same model" under that
// contract. (Serving correctness never depends on the stored bytes —
// serving::CenterIndex adopts the loader-validated norms at build and
// re-asserts them bitwise against its own chain, so a mismatch aborts
// at Freeze rather than serving silently different distances.)

#ifndef KMEANSLL_DATA_MODEL_IO_H_
#define KMEANSLL_DATA_MODEL_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "matrix/matrix.h"

namespace kmeansll::data {

/// Training provenance stored alongside the centers. Free-form but
/// bounded: the init_method string is capped at 4 KiB on load.
struct ModelMetadata {
  std::string init_method;     ///< e.g. "k-means||" (InitMethodName)
  uint64_t seed = 0;           ///< root RNG seed of the training run
  int64_t lloyd_iterations = 0;
  int64_t trained_rows = 0;    ///< n of the training dataset
  double seed_cost = 0.0;      ///< φ after initialization
  double final_cost = 0.0;     ///< φ after refinement
};

/// A servable fitted model: centers + their squared norms + provenance.
struct ModelArtifact {
  Matrix centers;                    ///< k × d
  std::vector<double> center_norms;  ///< length k, RowSquaredNorms chain
  ModelMetadata metadata;
};

/// Builds an artifact from freshly trained centers: computes the norms
/// with the engine's RowSquaredNorms chain (so the saved bytes are the
/// ones every expanded-kernel scan expects).
ModelArtifact MakeModelArtifact(Matrix centers, ModelMetadata metadata);

/// Writes `artifact` at `path`. The artifact must be consistent
/// (norms length == centers.rows()); Save fails on shape mismatch or I/O
/// error and never leaves a file that passes LoadModel validation partial.
/// Transient write failures are retried; `*out_retries` (optional)
/// accumulates how many retries the save burned, feeding the
/// write-retry telemetry counters (KMeansReport::model_write_retries).
Status SaveModel(const ModelArtifact& artifact, const std::string& path,
                 int64_t* out_retries = nullptr);

/// Reads a model saved by SaveModel. Fails eagerly on bad magic,
/// unsupported version, implausible or inconsistent shape, truncation,
/// CRC mismatch, non-finite coordinates, or stored norms that are not
/// bitwise the norms of the stored centers.
Result<ModelArtifact> LoadModel(const std::string& path);

/// CRC-32 (IEEE 802.3, reflected, init/final-xor 0xFFFFFFFF) over
/// `size` bytes, resumable via `seed` (pass a previous return value to
/// extend). Exposed so tests and external tooling can recompute the
/// artifact checksum without reimplementing it.
uint32_t Crc32(const void* bytes, size_t size, uint32_t seed = 0);

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_MODEL_IO_H_
