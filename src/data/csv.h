// CSV import/export so real datasets (e.g. the actual UCI Spam or
// KDDCup1999 extracts, when available) can be dropped in for the bundled
// synthetic stand-ins.

#ifndef KMEANSLL_DATA_CSV_H_
#define KMEANSLL_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "matrix/dataset.h"
#include "matrix/matrix.h"

namespace kmeansll::data {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = false;   ///< skip the first line
  int64_t label_column = -1; ///< column holding an integer label, -1 = none
};

/// Reads a numeric CSV file into a Dataset. Every row must have the same
/// number of fields; all non-label fields must parse as doubles.
Result<Dataset> ReadCsv(const std::string& path, const CsvOptions& options);

/// Writes `m` as CSV (no header).
Status WriteCsv(const Matrix& m, const std::string& path,
                char delimiter = ',');

/// Writes points (and the label column last, when present).
Status WriteCsv(const Dataset& data, const std::string& path,
                char delimiter = ',');

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_CSV_H_
