// LiveDataset: a DatasetSource that accepts writes — the continuous-
// ingest layer composing a sealed ShardedDataset with a write-ahead
// oplog tail (data/oplog.h).
//
//   Append ──► oplog record (WAL: durability first)
//          └─► in-memory tail segment (visible to readers)
//   Seal   ──► full tail segments compacted into KMLLDATA shards via
//              ShardWriter::OpenForAppend; one atomic manifest rename
//              is the commit point; the oplog is then GC'd (Compact)
//   Open   ──► open the manifest (if any), scan + torn-tail-truncate
//              the oplog, replay records past the sealed frontier
//
// Write path invariants:
//   - Log-before-apply: a batch lands in the oplog before it becomes
//     visible, so every acknowledged row is recoverable.
//   - Seal only cuts FULL shards (rows_per_shard each); the remainder
//     stays in the tail + log. Shard files are therefore a pure
//     function of (row stream, rows_per_shard) — independent of when
//     seals happen or how often the process crashed — which is what
//     makes the kill-point matrix's bitwise assertions possible at the
//     file level, not just the row level.
//   - Records are tagged with their global first_row; recovery replays
//     exactly the records past the manifest's n, bitwise. A crash
//     between the manifest rename and the log GC replays nothing twice.
//   - Append returns Unavailable (backpressure) when the unsealed tail
//     reaches max_unsealed_rows: the log has outrun compaction and the
//     caller must Seal() (or shed) before appending more.
//
// Read path: readers are never blocked by writes. Pin() snapshots the
// sealed dataset pointer and the tail's visible row counts under a
// brief mutex, then serves sealed rows from the mmap'd shards and tail
// rows from append-only segments whose storage never reallocates;
// sealing swaps the sealed pointer RCU-style (old shards stay alive
// until their last pin drops). Concurrent scans see a consistent
// prefix: rows become visible in append order, and a scan over [0, n)
// captured at time t sees exactly the rows acknowledged before t.

#ifndef KMEANSLL_DATA_LIVE_DATASET_H_
#define KMEANSLL_DATA_LIVE_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "data/oplog.h"
#include "data/shard_store.h"
#include "matrix/dataset_view.h"

namespace kmeansll::data {

struct LiveDatasetOptions {
  /// Seal granularity: every sealed shard holds exactly this many rows.
  int64_t rows_per_shard = 4096;
  /// Backpressure: Append rejects (Unavailable) once the unsealed tail
  /// holds this many rows. 0 = 4 * rows_per_shard.
  int64_t max_unsealed_rows = 0;
  /// Group-commit knobs for the write-ahead log.
  OpLogOptions oplog;
  /// Residency policy for the sealed shards.
  ShardedDatasetOptions sharded;
};

/// Ingest telemetry; exact counts (the workload harness smoke gate
/// asserts them deterministically).
struct IngestStats {
  int64_t appended_batches = 0;
  int64_t appended_rows = 0;
  int64_t backpressure_rejections = 0;
  int64_t seals = 0;          ///< Seal() calls that cut >= 1 shard
  int64_t sealed_rows = 0;    ///< rows moved from tail to shards
  int64_t recovered_rows = 0; ///< tail rows rebuilt by Open's replay
  int64_t torn_bytes = 0;     ///< oplog bytes truncated at Open
};

/// Writable dataset: sealed shards + oplog-backed in-memory tail.
/// Append/Seal are serialized internally (one logical writer); all
/// DatasetSource methods are thread-safe against both and against each
/// other. Weights optional, labels unsupported. Movable, not copyable.
class LiveDataset final : public DatasetSource {
 public:
  /// Opens (or starts) the live dataset rooted at `base_path`: the
  /// sealed manifest lives at "<base_path>.manifest", the oplog at
  /// "<base_path>.oplog". Recovery happens here — see file comment.
  static Result<LiveDataset> Open(const std::string& base_path, int64_t dim,
                                  bool has_weights,
                                  const LiveDatasetOptions& options);

  LiveDataset(LiveDataset&&) noexcept;
  LiveDataset& operator=(LiveDataset&&) noexcept;
  LiveDataset(const LiveDataset&) = delete;
  LiveDataset& operator=(const LiveDataset&) = delete;
  ~LiveDataset() override;

  /// Appends `rows` points (row-major, rows*dim; `weights` non-null iff
  /// the dataset has weights). Acknowledged (OK) batches are in the log
  /// and visible to readers. Unavailable = backpressure (Seal first);
  /// IOError from a poisoned log means reopen-and-recover.
  Status Append(const double* points, int64_t rows,
                const double* weights = nullptr);

  /// Compacts every FULL tail segment into sealed shards and publishes
  /// the combined manifest atomically; the partial remainder stays in
  /// the tail. No-op (OK) when no full segment exists. Readers are
  /// never blocked; concurrent Appends briefly queue on the writer
  /// lock.
  Status Seal();

  /// Forces the oplog's group commit (fsync) now.
  Status SyncLog();

  // DatasetSource:
  int64_t n() const override;
  int64_t dim() const override;
  bool has_weights() const override;
  bool has_labels() const override { return false; }
  double TotalWeight() const override;
  PinnedBlock Pin(int64_t begin, int64_t end) const override;
  void PrefetchHint(int64_t begin, int64_t end) const override;
  std::vector<std::pair<int64_t, int64_t>> ResidencyRanges() const override;
  int64_t ResidentUnitCapacity() const override;
  /// Sticky: first error from the log, the sealed shards, or a failed
  /// seal. A non-OK live dataset still serves reads; writes fail.
  Status status() const override;

  int64_t sealed_rows() const;
  int64_t unsealed_rows() const;
  const std::string& manifest_path() const;
  IngestStats ingest_stats() const;

 private:
  struct Impl;
  explicit LiveDataset(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_LIVE_DATASET_H_
