#include "data/checkpoint_io.h"

#include <cstring>
#include <fstream>

#include "common/file_util.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "data/model_io.h"

namespace kmeansll::data {

namespace {

constexpr char kCheckpointMagic[8] = {'K', 'M', 'L', 'L', 'C', 'K',
                                      'P', 'T'};
constexpr int32_t kCheckpointVersion = 1;
constexpr int64_t kMaxHistoryLen = int64_t{1} << 24;

void Put(std::string* out, const void* bytes, size_t size) {
  out->append(static_cast<const char*>(bytes), size);
}

template <typename T>
void PutScalar(std::string* out, T value) {
  Put(out, &value, sizeof(T));
}

// Bounds-checked cursor, same discipline as model_io's loader.
class Reader {
 public:
  Reader(const std::string& bytes, const std::string& path)
      : bytes_(bytes), path_(path) {}

  Status Read(void* dst, size_t size) {
    if (offset_ + size > bytes_.size()) {
      return Status::IOError("'" + path_ + "' is truncated");
    }
    std::memcpy(dst, bytes_.data() + offset_, size);
    offset_ += size;
    return Status::OK();
  }

  template <typename T>
  Status ReadScalar(T* value) {
    return Read(value, sizeof(T));
  }

  size_t offset() const { return offset_; }

 private:
  const std::string& bytes_;
  const std::string& path_;
  size_t offset_ = 0;
};

}  // namespace

uint64_t HashBytes(const void* bytes, size_t size) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

Status SaveCheckpoint(const TrainingCheckpoint& checkpoint,
                      const std::string& path, int64_t* out_retries) {
  const int64_t k = checkpoint.centers.rows();
  const int64_t d = checkpoint.centers.cols();
  const int64_t prev_k = checkpoint.prev_centers.rows();
  if (k <= 0 || d <= 0) {
    return Status::InvalidArgument("checkpoint has no centers");
  }
  if (prev_k > 0 && checkpoint.prev_centers.cols() != d) {
    return Status::InvalidArgument(
        "checkpoint prev_centers dimension mismatch");
  }
  const auto history_len =
      static_cast<int64_t>(checkpoint.cost_history.size());

  std::string buf;
  buf.reserve(static_cast<size_t>(
      128 + ((k + prev_k) * d + history_len) * 8));
  Put(&buf, kCheckpointMagic, sizeof(kCheckpointMagic));
  PutScalar<int32_t>(&buf, kCheckpointVersion);
  PutScalar<int32_t>(&buf, static_cast<int32_t>(checkpoint.phase));
  PutScalar<uint64_t>(&buf, checkpoint.fingerprint);
  PutScalar<int64_t>(&buf, checkpoint.iteration);
  PutScalar<int64_t>(&buf, checkpoint.empty_cluster_repairs);
  PutScalar<int64_t>(&buf, checkpoint.data_passes);
  PutScalar<int64_t>(&buf, k);
  PutScalar<int64_t>(&buf, d);
  PutScalar<int64_t>(&buf, prev_k);
  PutScalar<int64_t>(&buf, history_len);
  Put(&buf, checkpoint.centers.data(),
      static_cast<size_t>(k * d) * sizeof(double));
  if (prev_k > 0) {
    Put(&buf, checkpoint.prev_centers.data(),
        static_cast<size_t>(prev_k * d) * sizeof(double));
  }
  if (history_len > 0) {
    Put(&buf, checkpoint.cost_history.data(),
        static_cast<size_t>(history_len) * sizeof(double));
  }
  PutScalar<uint32_t>(&buf, Crc32(buf.data(), buf.size()));

  // Crash-safe: the rename is the commit point, so an interrupted save
  // leaves the previous checkpoint (or none), never a torn file.
  int64_t retries = 0;
  Status written = RetryTransient(
      RetryPolicy{},
      [&] {
        return AtomicWriteFile(path, buf.data(), buf.size(),
                               "checkpoint.write");
      },
      &retries);
  if (out_retries != nullptr) *out_retries += retries;
  MetricsRegistry::Global()
      .GetCounter("kmll_train_checkpoint_retries_total",
                  "Transient training-checkpoint write failures retried.")
      ->Increment(retries);
  return written;
}

Result<TrainingCheckpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IOError("read of '" + path + "' failed");
  }

  Reader reader(bytes, path);
  char magic[8];
  KMEANSLL_RETURN_NOT_OK(reader.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(
        "'" + path + "' is not a kmeansll checkpoint file");
  }
  int32_t version = 0;
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&version));
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) +
        " in '" + path + "'");
  }
  TrainingCheckpoint ckpt;
  int32_t phase = 0;
  int64_t k = 0, d = 0, prev_k = 0, history_len = 0;
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&phase));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&ckpt.fingerprint));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&ckpt.iteration));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&ckpt.empty_cluster_repairs));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&ckpt.data_passes));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&k));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&d));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&prev_k));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&history_len));
  if (phase != static_cast<int32_t>(TrainingCheckpoint::Phase::kSeeding) &&
      phase != static_cast<int32_t>(TrainingCheckpoint::Phase::kLloyd)) {
    return Status::InvalidArgument("unknown checkpoint phase in '" + path +
                                   "'");
  }
  ckpt.phase = static_cast<TrainingCheckpoint::Phase>(phase);
  if (k <= 0 || d <= 0 || prev_k < 0 || history_len < 0 ||
      ckpt.iteration < 0 || ckpt.empty_cluster_repairs < 0 ||
      ckpt.data_passes < 0 || k > (int64_t{1} << 32) ||
      d > (int64_t{1} << 24) || prev_k > (int64_t{1} << 32) ||
      history_len > kMaxHistoryLen) {
    return Status::InvalidArgument("implausible checkpoint shape in '" +
                                   path + "'");
  }

  const size_t payload_bytes =
      static_cast<size_t>((k + prev_k) * d + history_len) * 8;
  const size_t expected = reader.offset() + payload_bytes + 4;
  if (bytes.size() < expected) {
    return Status::IOError("'" + path + "' is truncated");
  }
  if (bytes.size() > expected) {
    return Status::InvalidArgument(
        "'" + path + "' has trailing bytes after the checkpoint");
  }

  ckpt.centers = Matrix(k, d);
  KMEANSLL_RETURN_NOT_OK(
      reader.Read(ckpt.centers.data(), static_cast<size_t>(k * d) * 8));
  if (prev_k > 0) {
    ckpt.prev_centers = Matrix(prev_k, d);
    KMEANSLL_RETURN_NOT_OK(reader.Read(
        ckpt.prev_centers.data(), static_cast<size_t>(prev_k * d) * 8));
  }
  if (history_len > 0) {
    ckpt.cost_history.resize(static_cast<size_t>(history_len));
    KMEANSLL_RETURN_NOT_OK(reader.Read(
        ckpt.cost_history.data(), static_cast<size_t>(history_len) * 8));
  }

  uint32_t stored_crc = 0;
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&stored_crc));
  if (stored_crc != Crc32(bytes.data(), bytes.size() - 4)) {
    return Status::InvalidArgument("CRC mismatch in '" + path +
                                   "': the checkpoint is corrupt");
  }
  return ckpt;
}

}  // namespace kmeansll::data
