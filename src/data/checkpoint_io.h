// Training-checkpoint artifact format ("KMLLCKPT"): the crash-recovery
// leg of the fault-tolerance layer (docs/ARCHITECTURE.md "Fault
// tolerance").
//
// A checkpoint captures everything a deterministic trainer needs to
// continue a run bitwise-identically after a crash. Because every source
// of randomness in the library is a pure function of the root seed (see
// rng/rng.h), no generator state needs to be persisted — the fingerprint
// binds the artifact to the exact job (data shape, k, seed-derived
// identity, option bits) and the payload carries only the accumulated
// numeric state:
//   * Lloyd refinement: the centers entering and leaving the
//     checkpointed iteration (the resumer recomputes the previous
//     assignment from the entering set — one data pass — instead of
//     storing O(n) assignment state), the iteration count, repairs, and
//     the cost history.
//   * k-means|| seeding: the candidate set after the checkpointed round
//     plus the per-round potentials (round_potentials[0] = ψ re-derives
//     the round schedule); the distance tracker is rebuilt by replaying
//     all candidates, which is bitwise the incremental update sequence.
//
// Wire format (little-endian, version 1):
//   magic[8] "KMLLCKPT" | i32 version | i32 phase | u64 fingerprint
//   | i64 iteration | i64 empty_cluster_repairs | i64 data_passes
//   | i64 k | i64 d | i64 prev_k | i64 history_len
//   | f64 centers[k*d] | f64 prev_centers[prev_k*d]
//   | f64 cost_history[history_len] | u32 crc32
// The trailing CRC-32 is data/model_io.h's Crc32 over every preceding
// byte. Saves go through AtomicWriteFile (temp + fsync + rename), so a
// crash mid-save leaves the previous checkpoint intact; loads validate
// magic, version, shape, truncation, surplus bytes, and the CRC. A
// checkpoint that fails validation — or whose fingerprint does not match
// the job — is *ignored* (the run restarts from scratch), never trusted.

#ifndef KMEANSLL_DATA_CHECKPOINT_IO_H_
#define KMEANSLL_DATA_CHECKPOINT_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "matrix/matrix.h"

namespace kmeansll::data {

/// Resumable training state: one of these is the whole artifact.
struct TrainingCheckpoint {
  /// Which trainer wrote the artifact; a Lloyd resume never consumes a
  /// seeding checkpoint (and vice versa) even at the same path.
  enum class Phase : int32_t { kSeeding = 0, kLloyd = 1 };
  Phase phase = Phase::kLloyd;

  /// Job identity: a hash of everything that determines the run's
  /// trajectory (data shape, k, initial centers or root seed, option
  /// bits). Computed by the trainer; a mismatch makes the checkpoint
  /// stale and the loader's caller must discard it.
  uint64_t fingerprint = 0;

  /// Lloyd iterations completed / seeding rounds completed.
  int64_t iteration = 0;

  /// Lloyd: centers *after* the checkpointed iteration.
  /// Seeding: the candidate set after the checkpointed round.
  Matrix centers;

  /// Lloyd only: centers *entering* the checkpointed iteration — the
  /// resumer recomputes the previous assignment (and previous cost)
  /// against these, restoring the convergence tests bitwise. Empty for
  /// seeding checkpoints.
  Matrix prev_centers;

  /// Lloyd: cost_history (empty unless track_history).
  /// Seeding: round_potentials, so [0] is ψ.
  std::vector<double> cost_history;

  int64_t empty_cluster_repairs = 0;  ///< Lloyd only
  int64_t data_passes = 0;            ///< seeding telemetry only
};

/// Atomically persists `checkpoint` at `path` (temp + fsync + rename,
/// transient failures retried). Fault-injection site: "checkpoint.write".
/// `*out_retries` (optional) accumulates the retries burned, feeding the
/// trainers' checkpoint_write_retries telemetry.
Status SaveCheckpoint(const TrainingCheckpoint& checkpoint,
                      const std::string& path,
                      int64_t* out_retries = nullptr);

/// Reads a checkpoint saved by SaveCheckpoint. Fails on bad magic,
/// version, implausible shape, truncation, surplus bytes, or CRC
/// mismatch. Callers must additionally check phase and fingerprint
/// before resuming from the result.
Result<TrainingCheckpoint> LoadCheckpoint(const std::string& path);

/// FNV-1a 64 over raw bytes — the building block trainers use (with
/// rng::HashCombine) to derive checkpoint fingerprints from matrices and
/// option values.
uint64_t HashBytes(const void* bytes, size_t size);

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_CHECKPOINT_IO_H_
