#include "data/live_dataset.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <optional>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/macros.h"
#include "common/math_util.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace kmeansll::data {

struct LiveDataset::Impl {
  /// One preallocated tail block of rows_per_shard capacity. Storage
  /// never reallocates, so readers hold raw pointers into it safely;
  /// `visible` (guarded by snap_mu) is the publication frontier — bytes
  /// past it are writer-private until the bump.
  struct TailSegment {
    int64_t first_row = 0;  // global row index of local row 0
    int64_t capacity = 0;
    int64_t visible = 0;  // guarded by snap_mu
    std::vector<double> points;
    std::vector<double> weights;
  };

  std::string base_path;
  std::string manifest_path;
  std::string oplog_path;
  int64_t dim = 0;
  bool weighted = false;
  LiveDatasetOptions options;

  // Writer state: Append/Seal/SyncLog serialize on write_mu. The oplog
  // is only touched under it.
  std::mutex write_mu;
  std::optional<OpLog> oplog;

  // Snapshot state: readers copy pointers and counts under snap_mu and
  // then work lock-free on immutable (or append-only) storage. Held
  // only for pointer/counter work — never across I/O.
  mutable std::mutex snap_mu;
  std::shared_ptr<ShardedDataset> sealed;  // null until the first seal
  int64_t sealed_n = 0;
  std::vector<std::shared_ptr<TailSegment>> tail;
  int64_t tail_rows = 0;
  Status failure;  // sticky first write-path error (guarded by snap_mu)

  // Exact-count telemetry (atomic cells: queried concurrently).
  std::atomic<int64_t> appended_batches{0};
  std::atomic<int64_t> appended_rows{0};
  std::atomic<int64_t> backpressure_rejections{0};
  std::atomic<int64_t> seals{0};
  std::atomic<int64_t> sealed_rows_total{0};
  int64_t recovered_rows = 0;  // written once at Open
  int64_t torn_bytes = 0;      // written once at Open

  void RecordFailure(const Status& status) {
    std::lock_guard<std::mutex> lock(snap_mu);
    if (failure.ok()) failure = status;
  }

  /// Copies `rows` points into tail segments and publishes them. Only
  /// the writer calls this (write_mu held); snap_mu is taken briefly
  /// around each visibility bump so a concurrent reader either sees a
  /// row completely or not at all.
  void ApplyToTail(const double* points, int64_t rows,
                   const double* weights) {
    int64_t done = 0;
    while (done < rows) {
      std::shared_ptr<TailSegment> seg;
      int64_t base = 0;
      {
        std::lock_guard<std::mutex> lock(snap_mu);
        if (tail.empty() || tail.back()->visible == tail.back()->capacity) {
          seg = std::make_shared<TailSegment>();
          seg->first_row = sealed_n + tail_rows;
          seg->capacity = options.rows_per_shard;
          seg->points.resize(
              static_cast<size_t>(seg->capacity * dim));
          if (weighted) {
            seg->weights.resize(static_cast<size_t>(seg->capacity));
          }
          tail.push_back(seg);
        } else {
          seg = tail.back();
        }
        base = seg->visible;
      }
      const int64_t take =
          std::min(rows - done, seg->capacity - base);
      std::memcpy(seg->points.data() + base * dim,
                  points + done * dim,
                  static_cast<size_t>(take * dim) * sizeof(double));
      if (weighted) {
        std::memcpy(seg->weights.data() + base, weights + done,
                    static_cast<size_t>(take) * sizeof(double));
      }
      {
        std::lock_guard<std::mutex> lock(snap_mu);
        seg->visible += take;
        tail_rows += take;
      }
      done += take;
    }
  }
};

LiveDataset::LiveDataset(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
LiveDataset::LiveDataset(LiveDataset&&) noexcept = default;
LiveDataset& LiveDataset::operator=(LiveDataset&&) noexcept = default;
LiveDataset::~LiveDataset() = default;

Result<LiveDataset> LiveDataset::Open(const std::string& base_path,
                                      int64_t dim, bool has_weights,
                                      const LiveDatasetOptions& options) {
  if (dim <= 0) return Status::InvalidArgument("dim must be positive");
  if (options.rows_per_shard <= 0) {
    return Status::InvalidArgument("rows_per_shard must be positive");
  }
  auto impl = std::make_unique<Impl>();
  impl->base_path = base_path;
  impl->manifest_path = base_path + ".manifest";
  impl->oplog_path = base_path + ".oplog";
  impl->dim = dim;
  impl->weighted = has_weights;
  impl->options = options;
  if (impl->options.max_unsealed_rows <= 0) {
    impl->options.max_unsealed_rows = 4 * options.rows_per_shard;
  }
  impl->options.oplog.has_weights = has_weights;

  // Sealed half: the manifest is the commit point, so its absence just
  // means nothing has been sealed yet.
  if (FileExists(impl->manifest_path)) {
    KMEANSLL_ASSIGN_OR_RETURN(
        ShardedDataset ds,
        ShardedDataset::Open(impl->manifest_path, options.sharded));
    if (ds.dim() != dim || ds.has_weights() != has_weights ||
        ds.has_labels()) {
      return Status::InvalidArgument("sealed manifest '" +
                                     impl->manifest_path +
                                     "' shape disagrees with the request");
    }
    impl->sealed_n = ds.n();
    impl->sealed = std::make_shared<ShardedDataset>(std::move(ds));
  }

  // Unsealed half: scan the log (truncating any torn tail) and replay
  // the rows past the sealed frontier into fresh tail segments. A batch
  // may straddle the frontier — a seal cuts at shard boundaries, not
  // record boundaries — so the sealed prefix of a record is skipped
  // row-wise, not record-wise.
  KMEANSLL_ASSIGN_OR_RETURN(
      OpLog log, OpLog::Open(impl->oplog_path, dim, impl->options.oplog));
  impl->torn_bytes = log.stats().torn_bytes;
  Impl* raw = impl.get();
  KMEANSLL_RETURN_NOT_OK(log.Replay(
      0, [raw](int64_t first_row, int64_t rows, const double* points,
               const double* weights) -> Status {
        if (first_row + rows <= raw->sealed_n) return Status::OK();
        const int64_t skip = std::max<int64_t>(0, raw->sealed_n - first_row);
        const int64_t effective_first = first_row + skip;
        if (effective_first != raw->sealed_n + raw->tail_rows) {
          return Status::InvalidArgument(
              "oplog replay gap: record at row " +
              std::to_string(effective_first) + " but frontier is " +
              std::to_string(raw->sealed_n + raw->tail_rows));
        }
        raw->ApplyToTail(points + skip * raw->dim, rows - skip,
                         weights == nullptr ? nullptr : weights + skip);
        raw->recovered_rows += rows - skip;
        return Status::OK();
      }));
  impl->oplog.emplace(std::move(log));
  return LiveDataset(std::move(impl));
}

Status LiveDataset::Append(const double* points, int64_t rows,
                           const double* weights) {
  Impl* impl = impl_.get();
  if (rows <= 0) return Status::InvalidArgument("rows must be positive");
  if ((weights != nullptr) != impl->weighted) {
    return Status::InvalidArgument(
        impl->weighted ? "weighted live dataset requires weights"
                       : "weight-less live dataset cannot take weights");
  }
  std::lock_guard<std::mutex> wlock(impl->write_mu);
  int64_t first_row = 0;
  {
    std::lock_guard<std::mutex> lock(impl->snap_mu);
    if (!impl->failure.ok()) return impl->failure;
    if (impl->tail_rows + rows > impl->options.max_unsealed_rows) {
      impl->backpressure_rejections.fetch_add(1,
                                              std::memory_order_relaxed);
      MetricsRegistry::Global()
          .GetCounter("kmll_ingest_backpressure_rejections_total",
                      "Appends rejected because the unsealed tail was "
                      "full.")
          ->Increment();
      return Status::Unavailable(
          "unsealed tail is full (" + std::to_string(impl->tail_rows) +
          " rows); Seal() to drain before appending");
    }
    first_row = impl->sealed_n + impl->tail_rows;
  }

  // WAL discipline: the record must be in the log before any reader
  // can see the rows, so everything visible is recoverable.
  Status logged = impl->oplog->Append(first_row, rows, points, weights);
  if (!logged.ok()) {
    // A poisoned log (torn write, failed fsync) is a sticky, reopen-
    // and-recover condition; a clean pre-write failure is retryable.
    if (!impl->oplog->status().ok()) impl->RecordFailure(logged);
    return logged;
  }
  impl->ApplyToTail(points, rows, weights);
  impl->appended_batches.fetch_add(1, std::memory_order_relaxed);
  impl->appended_rows.fetch_add(rows, std::memory_order_relaxed);
  {
    static Counter* batches = MetricsRegistry::Global().GetCounter(
        "kmll_ingest_appended_batches_total",
        "Batches applied to live-dataset tails (post-WAL).");
    static Counter* ingested_rows = MetricsRegistry::Global().GetCounter(
        "kmll_ingest_appended_rows_total",
        "Rows applied to live-dataset tails (post-WAL).");
    batches->Increment();
    ingested_rows->Increment(rows);
  }
  return Status::OK();
}

Status LiveDataset::Seal() {
  Impl* impl = impl_.get();
  std::lock_guard<std::mutex> wlock(impl->write_mu);
  KMEANSLL_TRACE_SPAN("ingest.seal");
  // Crash site at the seal entry: nothing has happened yet, recovery
  // replays the whole tail.
  KMEANSLL_RETURN_NOT_OK(fault::Check("oplog.seal"));

  // Snapshot the full segments (the prefix of the tail; the last,
  // partial segment stays). Their `visible` counts are final: only the
  // writer grows them, and the writer is us.
  std::vector<std::shared_ptr<Impl::TailSegment>> full;
  int64_t base_n = 0;
  {
    std::lock_guard<std::mutex> lock(impl->snap_mu);
    if (!impl->failure.ok()) return impl->failure;
    base_n = impl->sealed_n;
    for (const auto& seg : impl->tail) {
      if (seg->visible == seg->capacity) {
        full.push_back(seg);
      } else {
        break;
      }
    }
  }
  if (full.empty()) return Status::OK();
  int64_t seal_rows = 0;
  for (const auto& seg : full) seal_rows += seg->visible;

  // The rows being sealed must be durable in the log first: a crash
  // during compaction recovers them from the log, not the shards.
  Status synced = impl->oplog->Sync();
  if (!synced.ok()) {
    if (!impl->oplog->status().ok()) impl->RecordFailure(synced);
    return synced;
  }

  // Compact the full segments into shards. Orphan shard files from a
  // crash here are harmless: the manifest never referenced them, and a
  // retried seal rewrites byte-identical files under the same names
  // (shard contents are a pure function of the row stream).
  ShardWriter::Options wopts;
  wopts.rows_per_shard = impl->options.rows_per_shard;
  wopts.has_weights = impl->weighted;
  wopts.has_labels = false;
  Result<ShardWriter> writer =
      FileExists(impl->manifest_path)
          ? ShardWriter::OpenForAppend(impl->manifest_path, impl->dim,
                                       wopts)
          : ShardWriter::Open(impl->manifest_path, impl->dim, wopts);
  KMEANSLL_RETURN_NOT_OK(writer.status());
  for (const auto& seg : full) {
    KMEANSLL_RETURN_NOT_OK(fault::Check("ingest.compact"));
    DatasetView view(
        ConstMatrixView(seg->points.data(), seg->visible, impl->dim),
        seg->first_row,
        impl->weighted ? seg->weights.data() : nullptr, nullptr);
    KMEANSLL_RETURN_NOT_OK(writer->Append(view));
  }
  // Finalize publishes the combined manifest with one atomic rename —
  // THE commit point: before it the old dataset is intact, after it
  // the new one is, and recovery replays relative to whichever landed.
  KMEANSLL_RETURN_NOT_OK(writer->Finalize().status());

  KMEANSLL_ASSIGN_OR_RETURN(
      ShardedDataset reopened,
      ShardedDataset::Open(impl->manifest_path, impl->options.sharded));
  auto fresh = std::make_shared<ShardedDataset>(std::move(reopened));

  {
    std::lock_guard<std::mutex> lock(impl->snap_mu);
    impl->sealed = std::move(fresh);  // old shards live until last pin
    impl->sealed_n = base_n + seal_rows;
    impl->tail.erase(impl->tail.begin(),
                     impl->tail.begin() + static_cast<int64_t>(full.size()));
    impl->tail_rows -= seal_rows;
  }
  impl->seals.fetch_add(1, std::memory_order_relaxed);
  impl->sealed_rows_total.fetch_add(seal_rows, std::memory_order_relaxed);
  {
    static Counter* seal_count = MetricsRegistry::Global().GetCounter(
        "kmll_ingest_seals_total",
        "Seal compactions of full tail segments into shards.");
    static Counter* sealed_rows = MetricsRegistry::Global().GetCounter(
        "kmll_ingest_sealed_rows_total",
        "Rows compacted from the tail into sealed shards.");
    seal_count->Increment();
    sealed_rows->Increment(seal_rows);
  }

  // GC the log past the new frontier. Failure here loses no data (the
  // old log replays fine — recovery skips sealed rows); surface it so
  // the owner can decide to reopen.
  bool tail_empty = false;
  {
    std::lock_guard<std::mutex> lock(impl->snap_mu);
    tail_empty = impl->tail_rows == 0;
  }
  Status gc = tail_empty ? impl->oplog->Reset()
                         : impl->oplog->Compact(base_n + seal_rows);
  if (!gc.ok() && !impl->oplog->status().ok()) impl->RecordFailure(gc);
  return gc;
}

Status LiveDataset::SyncLog() {
  Impl* impl = impl_.get();
  std::lock_guard<std::mutex> wlock(impl->write_mu);
  Status synced = impl->oplog->Sync();
  if (!synced.ok() && !impl->oplog->status().ok()) {
    impl->RecordFailure(synced);
  }
  return synced;
}

int64_t LiveDataset::n() const {
  std::lock_guard<std::mutex> lock(impl_->snap_mu);
  return impl_->sealed_n + impl_->tail_rows;
}

int64_t LiveDataset::dim() const { return impl_->dim; }
bool LiveDataset::has_weights() const { return impl_->weighted; }

double LiveDataset::TotalWeight() const {
  const int64_t total = n();
  if (!impl_->weighted) return static_cast<double>(total);
  KahanSum sum;
  ForEachBlock(*this, 0, total, [&](const DatasetView& v) {
    for (int64_t i = 0; i < v.rows(); ++i) sum.Add(v.Weight(i));
  });
  return sum.Total();
}

PinnedBlock LiveDataset::Pin(int64_t begin, int64_t end) const {
  Impl* impl = impl_.get();
  std::shared_ptr<ShardedDataset> sealed_sp;
  std::shared_ptr<Impl::TailSegment> seg;
  int64_t sealed_end = 0;
  int64_t seg_visible = 0;
  {
    std::lock_guard<std::mutex> lock(impl->snap_mu);
    const int64_t total = impl->sealed_n + impl->tail_rows;
    KMEANSLL_CHECK(begin >= 0 && begin < end && end <= total);
    sealed_end = impl->sealed_n;
    if (begin < sealed_end) {
      sealed_sp = impl->sealed;
    } else {
      // Binary search the segment owning `begin` (segments are sorted
      // by first_row and contiguous).
      size_t lo = 0, hi = impl->tail.size() - 1;
      while (lo < hi) {
        const size_t mid = (lo + hi + 1) / 2;
        if (impl->tail[mid]->first_row <= begin) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      seg = impl->tail[lo];
      seg_visible = seg->visible;
    }
  }

  if (sealed_sp != nullptr) {
    // Serve sealed rows from the shards; the wrapper pin keeps both the
    // inner pin and the sealed dataset itself alive, so an RCU swap by
    // a concurrent Seal can never unmap rows under a reader.
    PinnedBlock inner = sealed_sp->Pin(begin, std::min(end, sealed_end));
    DatasetView view = inner.view();
    auto holder = std::make_shared<PinnedBlock>(std::move(inner));
    return PinnedBlock(view, [sealed_sp, holder] {});
  }

  const int64_t local = begin - seg->first_row;
  const int64_t local_end =
      std::min(end - seg->first_row, seg_visible);
  DatasetView view(
      ConstMatrixView(seg->points.data(), seg_visible, impl->dim),
      seg->first_row, impl->weighted ? seg->weights.data() : nullptr,
      nullptr);
  // The release closure owns the segment: sealing may drop it from the
  // tail, but the storage outlives every pin.
  return PinnedBlock(view.Slice(local, local_end), [seg] {});
}

void LiveDataset::PrefetchHint(int64_t begin, int64_t end) const {
  Impl* impl = impl_.get();
  std::shared_ptr<ShardedDataset> sealed_sp;
  int64_t sealed_end = 0;
  {
    std::lock_guard<std::mutex> lock(impl->snap_mu);
    sealed_sp = impl->sealed;
    sealed_end = impl->sealed_n;
  }
  if (sealed_sp != nullptr && begin < sealed_end) {
    sealed_sp->PrefetchHint(begin, std::min(end, sealed_end));
  }
}

std::vector<std::pair<int64_t, int64_t>> LiveDataset::ResidencyRanges()
    const {
  Impl* impl = impl_.get();
  std::shared_ptr<ShardedDataset> sealed_sp;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  std::vector<std::pair<int64_t, int64_t>> tail_ranges;
  {
    std::lock_guard<std::mutex> lock(impl->snap_mu);
    sealed_sp = impl->sealed;
    for (const auto& seg : impl->tail) {
      if (seg->visible > 0) {
        tail_ranges.emplace_back(seg->first_row,
                                 seg->first_row + seg->visible);
      }
    }
  }
  if (sealed_sp != nullptr) ranges = sealed_sp->ShardRanges();
  ranges.insert(ranges.end(), tail_ranges.begin(), tail_ranges.end());
  return ranges;
}

int64_t LiveDataset::ResidentUnitCapacity() const {
  std::shared_ptr<ShardedDataset> sealed_sp;
  {
    std::lock_guard<std::mutex> lock(impl_->snap_mu);
    sealed_sp = impl_->sealed;
  }
  return sealed_sp == nullptr ? 0 : sealed_sp->ResidentUnitCapacity();
}

Status LiveDataset::status() const {
  std::shared_ptr<ShardedDataset> sealed_sp;
  {
    std::lock_guard<std::mutex> lock(impl_->snap_mu);
    if (!impl_->failure.ok()) return impl_->failure;
    sealed_sp = impl_->sealed;
  }
  return sealed_sp == nullptr ? Status::OK() : sealed_sp->status();
}

int64_t LiveDataset::sealed_rows() const {
  std::lock_guard<std::mutex> lock(impl_->snap_mu);
  return impl_->sealed_n;
}

int64_t LiveDataset::unsealed_rows() const {
  std::lock_guard<std::mutex> lock(impl_->snap_mu);
  return impl_->tail_rows;
}

const std::string& LiveDataset::manifest_path() const {
  return impl_->manifest_path;
}

IngestStats LiveDataset::ingest_stats() const {
  const Impl* impl = impl_.get();
  IngestStats out;
  out.appended_batches =
      impl->appended_batches.load(std::memory_order_relaxed);
  out.appended_rows = impl->appended_rows.load(std::memory_order_relaxed);
  out.backpressure_rejections =
      impl->backpressure_rejections.load(std::memory_order_relaxed);
  out.seals = impl->seals.load(std::memory_order_relaxed);
  out.sealed_rows = impl->sealed_rows_total.load(std::memory_order_relaxed);
  out.recovered_rows = impl->recovered_rows;
  out.torn_bytes = impl->torn_bytes;
  return out;
}

}  // namespace kmeansll::data
