// Append-only write-ahead log for continuous point ingest ("KMLLOPLG").
//
// The oplog is the durability frontier of a live dataset: a point batch
// is acknowledged only after its record is framed, CRC'd, and written to
// the log (group-commit fsync amortizes the flush across records, like
// a database WAL). Sealed data lives in KMLLDATA shards; the oplog
// holds exactly the unsealed tail, and recovery replays it.
//
// File layout:
//
//   header:  magic[8] "KMLLOPLG" | i32 version | i64 dim | u32 flags
//   record:  u32 crc | u32 len | body[len]
//   body:    i64 first_row | i64 rows | rows*dim f64 points
//            [| rows f64 weights]
//
// `crc` is CRC-32 over (len || body), so a record is valid iff its
// length field and every body byte survived. `first_row` is the global
// row index of the record's first row — replay after a seal skips
// records the sealed manifest already covers, which is what makes the
// seal commit point (one atomic manifest rename) idempotent: the log
// can be GC'd lazily after the rename, and a crash between the two
// replays nothing twice.
//
// Crash semantics (the recovery argument):
//   - Records are written strictly append-only; bytes before the last
//     fsync horizon are never modified.
//   - A crash mid-append leaves a torn suffix: a record whose length
//     field, body, or CRC is incomplete or wrong. Open() scans the log
//     front to back, keeps the longest valid prefix of whole records,
//     and TRUNCATES the rest (ftruncate) — a torn tail is never
//     replayed as data, and after truncation the log bytes are exactly
//     the bytes of some uninterrupted run's log.
//   - Replay is a pure function of the (truncated) log bytes: same
//     bytes, same replayed batches, bitwise.
//
// Fault sites: "oplog.append" (kTornWrite persists a prefix of the
// record then poisons the log, simulating a writer that died mid-write;
// kWriteFail fails before any byte lands, so the append is retryable)
// and "oplog.fsync" (a failed flush leaves durability unknown, so the
// log poisons itself — the owner must reopen and recover, the same
// discipline PostgreSQL adopted after fsyncgate).

#ifndef KMEANSLL_DATA_OPLOG_H_
#define KMEANSLL_DATA_OPLOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"

namespace kmeansll::data {

struct OpLogOptions {
  bool has_weights = false;
  /// Group commit: Append fsyncs when either this many bytes or this
  /// many records have accumulated since the last flush (<=0 disables
  /// that trigger; both disabled means the caller drives Sync itself).
  int64_t group_commit_bytes = 1 << 20;
  int64_t group_commit_records = 64;
};

/// Counters for telemetry and exact-count test gates. A snapshot, not
/// atomic cells: the oplog itself is externally synchronized (one
/// writer; see class comment).
struct OpLogStats {
  int64_t records_appended = 0;  ///< since open
  int64_t rows_appended = 0;     ///< since open
  int64_t syncs = 0;             ///< fsyncs issued (group + explicit)
  int64_t recovered_records = 0; ///< valid records found by Open's scan
  int64_t recovered_rows = 0;    ///< rows in those records
  int64_t torn_bytes = 0;        ///< trailing bytes Open truncated
};

/// Single-writer append-only log. NOT internally synchronized: the
/// owner (LiveDataset) serializes Append/Sync/Reset under its own
/// write lock; Replay re-reads the file independently. Movable, not
/// copyable.
class OpLog {
 public:
  /// One replayed record: `points` is rows*dim row-major, `weights` is
  /// rows long or nullptr for a weight-less log.
  using ReplayFn = std::function<Status(
      int64_t first_row, int64_t rows, const double* points,
      const double* weights)>;

  /// Creates a fresh log at `path` (truncating any existing file).
  static Result<OpLog> Create(const std::string& path, int64_t dim,
                              const OpLogOptions& options);

  /// Opens `path`, creating it if missing. Scans existing records,
  /// validates each frame's CRC, and truncates the torn tail (if any)
  /// so the log ends on a whole record; appends continue from there.
  static Result<OpLog> Open(const std::string& path, int64_t dim,
                            const OpLogOptions& options);

  OpLog(OpLog&&) noexcept;
  OpLog& operator=(OpLog&&) noexcept;
  OpLog(const OpLog&) = delete;
  OpLog& operator=(const OpLog&) = delete;
  ~OpLog();

  /// Appends one batch record. `points` is rows*dim row-major;
  /// `weights` must be non-null iff the log has weights. The record is
  /// durable once a Sync (group-commit or explicit) covers it. After a
  /// poisoning failure (torn write, failed fsync) every call returns
  /// the sticky error: reopen via Open() to recover.
  Status Append(int64_t first_row, int64_t rows, const double* points,
                const double* weights);

  /// Flushes buffered records to stable storage (fsync).
  Status Sync();

  /// Truncates the log back to its header — called after a seal has
  /// compacted the tail into shards and published the manifest. Pure
  /// GC: a crash that skips Reset is handled by replay's first_row
  /// skip, so ordering it after the manifest rename is safe.
  Status Reset();

  /// Crash-safe GC: rewrites the log keeping only records that still
  /// contain unsealed rows — first_row + rows > min_first_row, so a
  /// record straddling the seal boundary survives whole (replay
  /// re-skips its sealed prefix row-wise). Frames are copied verbatim,
  /// with the temp+fsync+rename protocol — a crash anywhere leaves
  /// either the old complete log (replay skips the sealed prefix) or
  /// the new one, never a torn file. Used after a seal that leaves a
  /// partial-shard remainder in the log; Compact of everything is
  /// Reset by rename.
  Status Compact(int64_t min_first_row);

  /// Re-reads the log file and invokes `fn` for every valid record
  /// whose first_row >= min_first_row, in log order. Pure function of
  /// the log bytes; does not disturb the append cursor. Stops and
  /// returns the first non-OK status from `fn`.
  Status Replay(int64_t min_first_row, const ReplayFn& fn) const;

  /// Sticky health: OK, or the poisoning error (torn write / failed
  /// fsync) every later Append/Sync also returns.
  Status status() const;

  const std::string& path() const;
  int64_t dim() const;
  bool has_weights() const;
  /// Log payload bytes past the header that are not yet Reset() away —
  /// the backpressure signal LiveDataset compares against its cap.
  int64_t tail_bytes() const;
  OpLogStats stats() const;

 private:
  struct Impl;
  explicit OpLog(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_OPLOG_H_
