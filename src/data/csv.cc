#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace kmeansll::data {

Result<Dataset> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  int64_t line_number = 0;
  if (options.has_header) {
    std::getline(in, line);
    ++line_number;
  }

  Matrix points;
  std::vector<int32_t> labels;
  int64_t expected_fields = -1;
  std::vector<double> row;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, options.delimiter);
    if (expected_fields < 0) {
      expected_fields = static_cast<int64_t>(fields.size());
      if (options.label_column >= expected_fields) {
        return Status::InvalidArgument(
            "label_column " + std::to_string(options.label_column) +
            " out of range for " + std::to_string(expected_fields) +
            " fields");
      }
      int64_t dim = expected_fields - (options.label_column >= 0 ? 1 : 0);
      points = Matrix(dim);
    } else if (static_cast<int64_t>(fields.size()) != expected_fields) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": expected " +
          std::to_string(expected_fields) + " fields, got " +
          std::to_string(fields.size()));
    }
    row.clear();
    int32_t label = 0;
    for (int64_t f = 0; f < expected_fields; ++f) {
      const std::string& field = fields[static_cast<size_t>(f)];
      if (f == options.label_column) {
        int64_t v = 0;
        if (!ParseInt64(field, &v)) {
          return Status::InvalidArgument(
              path + ":" + std::to_string(line_number) +
              ": label field '" + field + "' is not an integer");
        }
        label = static_cast<int32_t>(v);
      } else {
        double v = 0;
        if (!ParseDouble(field, &v)) {
          return Status::InvalidArgument(
              path + ":" + std::to_string(line_number) + ": field '" +
              field + "' is not numeric");
        }
        row.push_back(v);
      }
    }
    points.AppendRow(row.data());
    if (options.label_column >= 0) labels.push_back(label);
  }
  if (points.rows() == 0) {
    return Status::InvalidArgument("'" + path + "' contains no data rows");
  }
  if (options.label_column >= 0) {
    return Dataset::WithLabels(std::move(points), std::move(labels));
  }
  return Dataset(std::move(points));
}

namespace {

Status WriteRows(const Matrix& m, const std::vector<int32_t>* labels,
                 const std::string& path, char delimiter) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.precision(17);
  for (int64_t i = 0; i < m.rows(); ++i) {
    const double* row = m.Row(i);
    for (int64_t j = 0; j < m.cols(); ++j) {
      if (j > 0) out << delimiter;
      out << row[j];
    }
    if (labels != nullptr) {
      out << delimiter << (*labels)[static_cast<size_t>(i)];
    }
    out << '\n';
  }
  if (!out.good()) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace

Status WriteCsv(const Matrix& m, const std::string& path, char delimiter) {
  return WriteRows(m, nullptr, path, delimiter);
}

Status WriteCsv(const Dataset& data, const std::string& path,
                char delimiter) {
  return WriteRows(data.points(),
                   data.has_labels() ? &data.labels() : nullptr, path,
                   delimiter);
}

}  // namespace kmeansll::data
