#include "data/oplog.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "data/model_io.h"  // for data::Crc32

namespace kmeansll::data {

namespace {

constexpr char kMagic[8] = {'K', 'M', 'L', 'L', 'O', 'P', 'L', 'G'};
constexpr int32_t kVersion = 1;
constexpr uint32_t kFlagWeights = 1u << 0;
// magic(8) + version(4) + dim(8) + flags(4).
constexpr int64_t kHeaderBytes = 24;
// body = first_row(8) + rows(8) + payload.
constexpr int64_t kBodyFixedBytes = 16;
// frame = crc(4) + len(4) + body.
constexpr int64_t kFrameFixedBytes = 8;

void AppendRaw(std::string* out, const void* bytes, size_t size) {
  out->append(static_cast<const char*>(bytes), size);
}

template <typename T>
void AppendScalar(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

int64_t RowBytes(int64_t dim, bool has_weights) {
  return dim * static_cast<int64_t>(sizeof(double)) +
         (has_weights ? static_cast<int64_t>(sizeof(double)) : 0);
}

Status FlushAndFsync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) {
    return Status::IOError("fflush of oplog '" + path + "' failed");
  }
#if !defined(_WIN32)
  if (::fsync(::fileno(f)) != 0) {
    return Status::IOError("fsync of oplog '" + path + "' failed");
  }
#endif
  return Status::OK();
}

bool FileExistsAt(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

struct OpLog::Impl {
  std::string path;
  int64_t dim = 0;
  OpLogOptions options;
  std::FILE* file = nullptr;  // positioned at file_end for appends
  int64_t file_end = kHeaderBytes;
  int64_t unsynced_bytes = 0;
  int64_t unsynced_records = 0;
  Status poison;  // sticky: set by torn writes / failed fsyncs
  OpLogStats stats;

  ~Impl() {
    if (file != nullptr) std::fclose(file);
  }

  /// Marks the log unusable until reopened. The error is sticky on
  /// purpose: after a torn write or a failed fsync the on-disk state is
  /// unknown, and the only sound continuation is Open()'s scan.
  Status Poison(Status status) {
    if (poison.ok()) poison = status;
    return poison;
  }

  Status DoSync() {
    KMEANSLL_RETURN_NOT_OK(FlushAndFsync(file, path));
    unsynced_bytes = 0;
    unsynced_records = 0;
    ++stats.syncs;
    MetricsRegistry::Global()
        .GetCounter("kmll_oplog_syncs_total",
                    "Oplog fsync batches (group commits plus explicit "
                    "Sync calls).")
        ->Increment();
    return Status::OK();
  }

  /// Serializes one record frame: crc | len | first_row | rows | data.
  std::string BuildFrame(int64_t first_row, int64_t rows,
                         const double* points,
                         const double* weights) const {
    std::string body;
    const int64_t payload = rows * RowBytes(dim, options.has_weights);
    body.reserve(static_cast<size_t>(kBodyFixedBytes + payload));
    AppendScalar(&body, first_row);
    AppendScalar(&body, rows);
    AppendRaw(&body, points,
              static_cast<size_t>(rows * dim) * sizeof(double));
    if (options.has_weights) {
      AppendRaw(&body, weights, static_cast<size_t>(rows) * sizeof(double));
    }
    const auto len = static_cast<uint32_t>(body.size());
    uint32_t crc = Crc32(&len, sizeof(len));
    crc = Crc32(body.data(), body.size(), crc);
    std::string frame;
    frame.reserve(kFrameFixedBytes + body.size());
    AppendScalar(&frame, crc);
    AppendScalar(&frame, len);
    frame.append(body);
    return frame;
  }
};

OpLog::OpLog(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
OpLog::OpLog(OpLog&&) noexcept = default;
OpLog& OpLog::operator=(OpLog&&) noexcept = default;
OpLog::~OpLog() = default;

Result<OpLog> OpLog::Create(const std::string& path, int64_t dim,
                            const OpLogOptions& options) {
  if (dim <= 0) return Status::InvalidArgument("dim must be positive");
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IOError("cannot create oplog '" + path + "'");
  }
  std::string header;
  AppendRaw(&header, kMagic, sizeof(kMagic));
  AppendScalar(&header, kVersion);
  AppendScalar(&header, dim);
  AppendScalar(&header, options.has_weights ? kFlagWeights : 0u);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    std::fclose(f);
    return Status::IOError("cannot write oplog header to '" + path + "'");
  }
  if (Status st = FlushAndFsync(f, path); !st.ok()) {
    std::fclose(f);
    return st;
  }
  auto impl = std::make_unique<Impl>();
  impl->path = path;
  impl->dim = dim;
  impl->options = options;
  impl->file = f;
  impl->file_end = kHeaderBytes;
  return OpLog(std::move(impl));
}

Result<OpLog> OpLog::Open(const std::string& path, int64_t dim,
                          const OpLogOptions& options) {
  if (dim <= 0) return Status::InvalidArgument("dim must be positive");
  if (!FileExistsAt(path)) return Create(path, dim, options);

  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError("cannot open oplog '" + path + "'");
  }
  auto impl = std::make_unique<Impl>();
  impl->path = path;
  impl->dim = dim;
  impl->options = options;
  impl->file = f;  // Impl now owns f; early returns close it

  std::fseek(f, 0, SEEK_END);
  const int64_t file_size = static_cast<int64_t>(std::ftell(f));
  std::fseek(f, 0, SEEK_SET);

  char header[kHeaderBytes];
  if (file_size < kHeaderBytes ||
      std::fread(header, 1, sizeof(header), f) != sizeof(header) ||
      std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a kmeansll oplog");
  }
  int32_t version = 0;
  int64_t file_dim = 0;
  uint32_t flags = 0;
  std::memcpy(&version, header + 8, sizeof(version));
  std::memcpy(&file_dim, header + 12, sizeof(file_dim));
  std::memcpy(&flags, header + 20, sizeof(flags));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported oplog version in '" + path +
                                   "'");
  }
  if (file_dim != dim ||
      ((flags & kFlagWeights) != 0) != options.has_weights) {
    return Status::InvalidArgument("oplog '" + path +
                                   "' shape disagrees with the request");
  }

  // Scan: keep the longest valid prefix of whole records, truncate the
  // rest. Every exit from the loop sets `good_end` to a record
  // boundary, so the surviving bytes are exactly some uninterrupted
  // writer's log — the property replay's bitwise contract rests on.
  const int64_t row_bytes = RowBytes(dim, options.has_weights);
  int64_t good_end = kHeaderBytes;
  std::vector<char> body;
  while (good_end < file_size) {
    const int64_t remaining = file_size - good_end;
    if (remaining < kFrameFixedBytes) break;  // torn frame header
    uint32_t crc = 0, len = 0;
    if (std::fread(&crc, 1, sizeof(crc), f) != sizeof(crc) ||
        std::fread(&len, 1, sizeof(len), f) != sizeof(len)) {
      break;
    }
    if (len < kBodyFixedBytes ||
        static_cast<int64_t>(len) > remaining - kFrameFixedBytes) {
      break;  // torn or corrupt length
    }
    body.resize(len);
    if (std::fread(body.data(), 1, len, f) != len) break;
    uint32_t actual = Crc32(&len, sizeof(len));
    actual = Crc32(body.data(), len, actual);
    if (actual != crc) break;  // torn or corrupt body
    int64_t first_row = 0, rows = 0;
    std::memcpy(&first_row, body.data(), sizeof(first_row));
    std::memcpy(&rows, body.data() + 8, sizeof(rows));
    if (rows <= 0 || first_row < 0 ||
        static_cast<int64_t>(len) != kBodyFixedBytes + rows * row_bytes) {
      break;  // frame checks out but the record is not self-consistent
    }
    good_end += kFrameFixedBytes + len;
    ++impl->stats.recovered_records;
    impl->stats.recovered_rows += rows;
    MetricsRegistry::Global()
        .GetCounter("kmll_oplog_recovered_records_total",
                    "Intact record frames replayed from oplogs on reopen.")
        ->Increment();
  }

  if (good_end < file_size) {
    impl->stats.torn_bytes = file_size - good_end;
    MetricsRegistry::Global()
        .GetCounter("kmll_oplog_torn_bytes_total",
                    "Bytes truncated from torn oplog tails on reopen.")
        ->Increment(impl->stats.torn_bytes);
#if !defined(_WIN32)
    if (::ftruncate(::fileno(f), static_cast<off_t>(good_end)) != 0) {
      return Status::IOError("cannot truncate torn tail of oplog '" + path +
                             "'");
    }
    if (::fsync(::fileno(f)) != 0) {
      return Status::IOError("fsync of oplog '" + path + "' failed");
    }
#else
    return Status::IOError("torn oplog tail truncation unsupported here");
#endif
  }
  std::fseek(f, static_cast<long>(good_end), SEEK_SET);
  impl->file_end = good_end;
  return OpLog(std::move(impl));
}

Status OpLog::Append(int64_t first_row, int64_t rows, const double* points,
                     const double* weights) {
  Impl* impl = impl_.get();
  if (!impl->poison.ok()) return impl->poison;
  if (rows <= 0) return Status::InvalidArgument("rows must be positive");
  if ((weights != nullptr) != impl->options.has_weights) {
    return Status::InvalidArgument(
        impl->options.has_weights
            ? "weighted oplog append requires weights"
            : "weight-less oplog cannot take weights");
  }

  const std::string frame = impl->BuildFrame(first_row, rows, points,
                                             weights);
  fault::FaultKind kind;
  if (fault::CheckKind("oplog.append", &kind)) {
    if (kind == fault::FaultKind::kSlowIo) {
      std::this_thread::sleep_for(std::chrono::microseconds(1000));
    } else if (kind == fault::FaultKind::kTornWrite) {
      // Crash mid-record: a prefix of the frame reaches the disk, then
      // the writer dies. The log poisons itself — the torn tail is
      // Open()'s problem now, which is the whole point of the test.
      const size_t torn = frame.size() / 2;
      (void)std::fwrite(frame.data(), 1, torn, impl->file);
      (void)FlushAndFsync(impl->file, impl->path);
      return impl->Poison(
          Status::IOError("injected torn write at oplog.append"));
    } else {
      // Fails BEFORE any byte lands, so the caller may simply retry.
      return Status::IOError("injected " +
                             std::string(fault::FaultKindToString(kind)) +
                             " at oplog.append");
    }
  }

  if (std::fwrite(frame.data(), 1, frame.size(), impl->file) !=
      frame.size()) {
    // A short stdio write may have pushed a prefix into the file: the
    // on-disk state is unknown, so poison (same as a torn write).
    return impl->Poison(
        Status::IOError("short write to oplog '" + impl->path + "'"));
  }
  impl->file_end += static_cast<int64_t>(frame.size());
  impl->unsynced_bytes += static_cast<int64_t>(frame.size());
  ++impl->unsynced_records;
  ++impl->stats.records_appended;
  impl->stats.rows_appended += rows;
  {
    static Counter* records = MetricsRegistry::Global().GetCounter(
        "kmll_oplog_records_appended_total",
        "Record frames appended to write-ahead oplogs.");
    static Counter* appended_rows = MetricsRegistry::Global().GetCounter(
        "kmll_oplog_rows_appended_total",
        "Data rows appended through the write-ahead oplog.");
    records->Increment();
    appended_rows->Increment(rows);
  }

  const bool commit =
      (impl->options.group_commit_bytes > 0 &&
       impl->unsynced_bytes >= impl->options.group_commit_bytes) ||
      (impl->options.group_commit_records > 0 &&
       impl->unsynced_records >= impl->options.group_commit_records);
  if (commit) return Sync();
  return Status::OK();
}

Status OpLog::Sync() {
  Impl* impl = impl_.get();
  if (!impl->poison.ok()) return impl->poison;
  if (Status st = fault::Check("oplog.fsync"); !st.ok()) {
    // Durability of everything since the last successful sync is now
    // unknown; poison so the owner reopens instead of acking blind.
    return impl->Poison(st);
  }
  if (Status st = impl->DoSync(); !st.ok()) return impl->Poison(st);
  return Status::OK();
}

Status OpLog::Reset() {
  Impl* impl = impl_.get();
  if (!impl->poison.ok()) return impl->poison;
  if (std::fflush(impl->file) != 0) {
    return impl->Poison(
        Status::IOError("fflush of oplog '" + impl->path + "' failed"));
  }
#if !defined(_WIN32)
  if (::ftruncate(::fileno(impl->file), static_cast<off_t>(kHeaderBytes)) !=
      0) {
    return impl->Poison(
        Status::IOError("cannot reset oplog '" + impl->path + "'"));
  }
  if (::fsync(::fileno(impl->file)) != 0) {
    return impl->Poison(
        Status::IOError("fsync of oplog '" + impl->path + "' failed"));
  }
#else
  return Status::IOError("oplog reset unsupported here");
#endif
  std::fseek(impl->file, static_cast<long>(kHeaderBytes), SEEK_SET);
  impl->file_end = kHeaderBytes;
  impl->unsynced_bytes = 0;
  impl->unsynced_records = 0;
  return Status::OK();
}

Status OpLog::Compact(int64_t min_first_row) {
  Impl* impl = impl_.get();
  if (!impl->poison.ok()) return impl->poison;
  if (std::fflush(impl->file) != 0) {
    return impl->Poison(
        Status::IOError("fflush of oplog '" + impl->path + "' failed"));
  }

  // Assemble the survivor log in memory: header + surviving frames
  // copied verbatim (same bytes an uninterrupted writer would hold).
  std::string buf;
  {
    std::ifstream in(impl->path, std::ios::binary);
    if (!in.is_open()) {
      return Status::IOError("cannot open oplog '" + impl->path +
                             "' for compaction");
    }
    std::vector<char> header(kHeaderBytes);
    in.read(header.data(), kHeaderBytes);
    if (!in.good()) {
      return Status::IOError("oplog '" + impl->path +
                             "' changed under compaction");
    }
    buf.append(header.data(), header.size());
    int64_t offset = kHeaderBytes;
    std::vector<char> frame;
    while (offset < impl->file_end) {
      uint32_t crc = 0, len = 0;
      in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
      in.read(reinterpret_cast<char*>(&len), sizeof(len));
      if (!in.good()) {
        return Status::IOError("oplog '" + impl->path +
                               "' changed under compaction");
      }
      frame.resize(len);
      in.read(frame.data(), len);
      if (!in.good()) {
        return Status::IOError("oplog '" + impl->path +
                               "' changed under compaction");
      }
      int64_t first_row = 0, rows = 0;
      std::memcpy(&first_row, frame.data(), sizeof(first_row));
      std::memcpy(&rows, frame.data() + 8, sizeof(rows));
      // Keep any record with rows PAST the frontier — a batch may
      // straddle a seal boundary, and its unsealed suffix must survive.
      if (first_row + rows > min_first_row) {
        AppendScalar(&buf, crc);
        AppendScalar(&buf, len);
        buf.append(frame.data(), frame.size());
      }
      offset += kFrameFixedBytes + static_cast<int64_t>(len);
    }
  }

  KMEANSLL_RETURN_NOT_OK(
      AtomicWriteFile(impl->path, buf.data(), buf.size()));
  // The handle still references the pre-rename inode; reopen.
  std::fclose(impl->file);
  impl->file = std::fopen(impl->path.c_str(), "rb+");
  if (impl->file == nullptr) {
    return impl->Poison(
        Status::IOError("cannot reopen oplog '" + impl->path +
                        "' after compaction"));
  }
  std::fseek(impl->file, 0, SEEK_END);
  impl->file_end = static_cast<int64_t>(std::ftell(impl->file));
  impl->unsynced_bytes = 0;
  impl->unsynced_records = 0;
  return Status::OK();
}

Status OpLog::Replay(int64_t min_first_row, const ReplayFn& fn) const {
  Impl* impl = impl_.get();
  // Make buffered appends visible to the independent read below (plain
  // flush, not fsync — replay reads the OS view, durability unchanged).
  if (impl->file != nullptr) std::fflush(impl->file);

  std::ifstream in(impl->path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open oplog '" + impl->path +
                           "' for replay");
  }
  in.seekg(kHeaderBytes);
  const int64_t row_bytes = RowBytes(impl->dim, impl->options.has_weights);
  int64_t offset = kHeaderBytes;
  std::vector<char> body;
  while (offset < impl->file_end) {
    uint32_t crc = 0, len = 0;
    in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in.good()) {
      return Status::IOError("oplog '" + impl->path +
                             "' changed under replay");
    }
    body.resize(len);
    in.read(body.data(), len);
    if (!in.good()) {
      return Status::IOError("oplog '" + impl->path +
                             "' changed under replay");
    }
    uint32_t actual = Crc32(&len, sizeof(len));
    actual = Crc32(body.data(), len, actual);
    if (actual != crc) {
      return Status::InvalidArgument("oplog '" + impl->path +
                                     "' record failed its CRC on replay");
    }
    int64_t first_row = 0, rows = 0;
    std::memcpy(&first_row, body.data(), sizeof(first_row));
    std::memcpy(&rows, body.data() + 8, sizeof(rows));
    if (static_cast<int64_t>(len) != kBodyFixedBytes + rows * row_bytes) {
      return Status::InvalidArgument("oplog '" + impl->path +
                                     "' record shape is corrupt");
    }
    offset += kFrameFixedBytes + static_cast<int64_t>(len);
    if (first_row < min_first_row) continue;  // sealed already
    const auto* points =
        reinterpret_cast<const double*>(body.data() + kBodyFixedBytes);
    const double* weights =
        impl->options.has_weights
            ? reinterpret_cast<const double*>(body.data() + kBodyFixedBytes +
                                              rows * impl->dim *
                                                  static_cast<int64_t>(
                                                      sizeof(double)))
            : nullptr;
    KMEANSLL_RETURN_NOT_OK(fn(first_row, rows, points, weights));
  }
  return Status::OK();
}

Status OpLog::status() const { return impl_->poison; }
const std::string& OpLog::path() const { return impl_->path; }
int64_t OpLog::dim() const { return impl_->dim; }
bool OpLog::has_weights() const { return impl_->options.has_weights; }
int64_t OpLog::tail_bytes() const {
  return impl_->file_end - kHeaderBytes;
}
OpLogStats OpLog::stats() const { return impl_->stats; }

}  // namespace kmeansll::data
