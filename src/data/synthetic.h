// Synthetic dataset generators.
//
// GaussMixture reproduces the paper's §4.1 construction exactly: k centers
// drawn from a d-dimensional spherical Gaussian with variance R ∈
// {1, 10, 100}, unit-variance Gaussian clouds around each center, equal
// weights.
//
// SpamLike and KddLike are offline stand-ins for the UCI Spam and
// KDDCup1999 datasets (see DESIGN.md §2 for the substitution argument):
// they preserve the properties the experiments depend on — uneven cluster
// masses (power-law for KDD), feature scales spanning orders of magnitude,
// and a small fraction of far outliers that "confuse" k-means++ (paper
// §5.1).

#ifndef KMEANSLL_DATA_SYNTHETIC_H_
#define KMEANSLL_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "matrix/dataset.h"
#include "matrix/matrix.h"
#include "rng/rng.h"

namespace kmeansll::data {

/// A generated dataset together with its ground truth.
struct LabeledData {
  Dataset data;          ///< points with labels attached
  Matrix true_centers;   ///< the generating centers (k × d)
};

/// Parameters of the paper's GaussMixture dataset (§4.1).
struct GaussMixtureParams {
  int64_t n = 10000;            ///< points sampled from the mixture
  int64_t k = 50;               ///< number of Gaussians
  int64_t dim = 15;             ///< dimensionality
  double center_stddev = 1.0;   ///< sqrt(R): center distribution stddev
  double cluster_stddev = 1.0;  ///< within-cluster stddev (paper: 1)
};

/// Generates GaussMixture. Fails if n < k or any size is non-positive.
Result<LabeledData> GenerateGaussMixture(const GaussMixtureParams& params,
                                         rng::Rng rng);

/// Parameters of the Spam stand-in (UCI Spambase is 4601 × 58).
struct SpamLikeParams {
  int64_t n = 4601;
  int64_t dim = 58;
  int64_t num_clusters = 12;      ///< latent cluster count
  double outlier_fraction = 0.01; ///< points placed far out on few features
  double scale_base = 4.0;        ///< per-feature scale ~ base^U(0,1)-ish
};

/// Generates the Spam-like dataset.
Result<LabeledData> GenerateSpamLike(const SpamLikeParams& params,
                                     rng::Rng rng);

/// Parameters of the KDDCup1999 stand-in (42 numeric features; cluster
/// sizes follow a power law, as network traffic categories do).
struct KddLikeParams {
  int64_t n = 65536;
  int64_t dim = 42;
  int64_t num_clusters = 23;       ///< KDD has 23 traffic classes
  double size_power = 1.6;         ///< cluster-size power-law exponent
  double outlier_fraction = 0.003; ///< extreme flows
  double scale_spread = 1e4;       ///< max/min feature scale ratio
};

/// Generates the KDD-like dataset.
Result<LabeledData> GenerateKddLike(const KddLikeParams& params,
                                    rng::Rng rng);

/// Uniform noise in [lo, hi]^dim — used by tests as an unclusterable
/// baseline.
Result<Dataset> GenerateUniform(int64_t n, int64_t dim, double lo, double hi,
                                rng::Rng rng);

/// `k` well-separated unit-variance clusters with `per_cluster` points
/// each, centers on a scaled integer grid. The optimum is known to be near
/// the grid centers; used by property tests on approximation quality.
Result<LabeledData> GenerateSeparatedClusters(int64_t k, int64_t per_cluster,
                                              int64_t dim, double separation,
                                              rng::Rng rng);

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_SYNTHETIC_H_
