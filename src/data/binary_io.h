// Compact binary dataset format ("KMLLDATA"): magic, version, n, d,
// flags, then row-major doubles, optional weights, optional labels.
// Loads ~10x faster than CSV for the large synthetic workloads, and
// round-trips weights/labels losslessly (CSV drops weights).
//
// Version 2 appends a CRC-32 over every preceding file byte (flagged
// via the payload-CRC flag bit) so silent payload corruption fails
// cleanly at read time; version 1 files (no checksum) remain readable.

#ifndef KMEANSLL_DATA_BINARY_IO_H_
#define KMEANSLL_DATA_BINARY_IO_H_

#include <string>

#include "common/result.h"
#include "matrix/dataset.h"

namespace kmeansll::data {

/// Writes `dataset` (points, weights if any, labels if any).
Status WriteBinary(const Dataset& dataset, const std::string& path);

/// Writes rows [begin, end) of `dataset` as a self-contained KMLLDATA
/// file (the slice reads back with ReadBinary like any dataset). This is
/// the primitive the shard writer (data/shard_store.h) uses: each shard
/// is one range write, so shards are individually loadable and the
/// full-file format is the one-shard special case.
Status WriteBinaryRange(const Dataset& dataset, int64_t begin, int64_t end,
                        const std::string& path);

/// Reads a dataset written by WriteBinary. Fails on bad magic, version
/// mismatch, implausible shape, or truncation.
Result<Dataset> ReadBinary(const std::string& path);

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_BINARY_IO_H_
