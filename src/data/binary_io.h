// Compact binary dataset format ("KMLLDATA"): magic, version, n, d,
// flags, then row-major doubles, optional weights, optional labels.
// Loads ~10x faster than CSV for the large synthetic workloads, and
// round-trips weights/labels losslessly (CSV drops weights).

#ifndef KMEANSLL_DATA_BINARY_IO_H_
#define KMEANSLL_DATA_BINARY_IO_H_

#include <string>

#include "common/result.h"
#include "matrix/dataset.h"

namespace kmeansll::data {

/// Writes `dataset` (points, weights if any, labels if any).
Status WriteBinary(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by WriteBinary. Fails on bad magic, version
/// mismatch, implausible shape, or truncation.
Result<Dataset> ReadBinary(const std::string& path);

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_BINARY_IO_H_
