#include "data/shard_store.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <mutex>

#if defined(_WIN32)
#include <cstdlib>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/macros.h"
#include "common/math_util.h"
#include "data/binary_io.h"

namespace kmeansll::data {

namespace {

constexpr char kManifestMagic[8] = {'K', 'M', 'L', 'L', 'S', 'H', 'R', 'D'};
constexpr int32_t kManifestVersion = 1;

// KMLLDATA shard header (see data/binary_io.cc): magic(8) + version(4) +
// n(8) + d(8) + flags(4).
constexpr int64_t kShardHeaderBytes = 32;
constexpr char kShardMagic[8] = {'K', 'M', 'L', 'L', 'D', 'A', 'T', 'A'};
constexpr int32_t kShardVersion = 1;
constexpr uint32_t kFlagWeights = 1u << 0;
constexpr uint32_t kFlagLabels = 1u << 1;

/// Bytes a shard file must hold for `rows` rows of the manifest's shape.
int64_t ShardFileBytes(int64_t rows, int64_t dim, bool weights,
                       bool labels) {
  int64_t bytes = kShardHeaderBytes +
                  rows * dim * static_cast<int64_t>(sizeof(double));
  if (weights) bytes += rows * static_cast<int64_t>(sizeof(double));
  if (labels) bytes += rows * static_cast<int64_t>(sizeof(int32_t));
  return bytes;
}

/// Directory prefix of `path` including the trailing separator ("" when
/// the path has no directory component).
std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string()
                                    : path.substr(0, slash + 1);
}

std::string BaseNameOf(const std::string& path) {
  size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int64_t FileSizeOf(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return -1;
  return static_cast<int64_t>(in.tellg());
}

}  // namespace

Result<ShardManifest> WriteShards(const Dataset& dataset,
                                  const std::string& manifest_path,
                                  const ShardWriteOptions& options) {
  if ((options.num_shards > 0) == (options.rows_per_shard > 0)) {
    return Status::InvalidArgument(
        "exactly one of num_shards and rows_per_shard must be positive");
  }
  if (dataset.n() <= 0 || dataset.dim() <= 0) {
    return Status::InvalidArgument("cannot shard an empty dataset");
  }

  std::vector<std::pair<int64_t, int64_t>> ranges;
  if (options.num_shards > 0) {
    if (options.num_shards > dataset.n()) {
      return Status::InvalidArgument(
          "num_shards " + std::to_string(options.num_shards) +
          " exceeds row count " + std::to_string(dataset.n()));
    }
    ranges = dataset.SplitRanges(options.num_shards);
  } else {
    for (int64_t begin = 0; begin < dataset.n();
         begin += options.rows_per_shard) {
      ranges.emplace_back(begin, std::min(begin + options.rows_per_shard,
                                          dataset.n()));
    }
  }

  ShardManifest manifest;
  manifest.n = dataset.n();
  manifest.dim = dataset.dim();
  manifest.has_weights = dataset.has_weights();
  manifest.has_labels = dataset.has_labels();

  const std::string base = BaseNameOf(manifest_path);
  const std::string dir = DirOf(manifest_path);
  for (size_t s = 0; s < ranges.size(); ++s) {
    const auto& [begin, end] = ranges[s];
    ShardInfo info;
    info.file = base + ".shard" + std::to_string(s);
    info.rows = end - begin;
    info.first_row = begin;
    KMEANSLL_RETURN_NOT_OK(
        WriteBinaryRange(dataset, begin, end, dir + info.file));
    manifest.shards.push_back(std::move(info));
  }

  std::ofstream out(manifest_path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + manifest_path +
                           "' for writing");
  }
  out.write(kManifestMagic, sizeof(kManifestMagic));
  int32_t version = kManifestVersion;
  uint32_t flags = 0;
  if (manifest.has_weights) flags |= kFlagWeights;
  if (manifest.has_labels) flags |= kFlagLabels;
  auto num_shards = static_cast<int32_t>(manifest.shards.size());
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&manifest.n),
            sizeof(manifest.n));
  out.write(reinterpret_cast<const char*>(&manifest.dim),
            sizeof(manifest.dim));
  out.write(reinterpret_cast<const char*>(&flags), sizeof(flags));
  out.write(reinterpret_cast<const char*>(&num_shards),
            sizeof(num_shards));
  for (const ShardInfo& info : manifest.shards) {
    out.write(reinterpret_cast<const char*>(&info.rows),
              sizeof(info.rows));
    auto len = static_cast<int32_t>(info.file.size());
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(info.file.data(), len);
  }
  if (!out.good()) {
    return Status::IOError("write to '" + manifest_path + "' failed");
  }
  return manifest;
}

Result<ShardManifest> ReadShardManifest(const std::string& manifest_path) {
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + manifest_path +
                           "' for reading");
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() ||
      std::memcmp(magic, kManifestMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + manifest_path +
                                   "' is not a kmeansll shard manifest");
  }
  int32_t version = 0;
  int32_t num_shards = 0;
  uint32_t flags = 0;
  ShardManifest manifest;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&manifest.n), sizeof(manifest.n));
  in.read(reinterpret_cast<char*>(&manifest.dim), sizeof(manifest.dim));
  in.read(reinterpret_cast<char*>(&flags), sizeof(flags));
  in.read(reinterpret_cast<char*>(&num_shards), sizeof(num_shards));
  if (!in.good() || version != kManifestVersion) {
    return Status::InvalidArgument("unsupported shard manifest version in '" +
                                   manifest_path + "'");
  }
  if (manifest.n <= 0 || manifest.dim <= 0 ||
      manifest.n > (int64_t{1} << 40) ||
      manifest.dim > (int64_t{1} << 24) || num_shards <= 0 ||
      num_shards > (1 << 24)) {
    return Status::InvalidArgument("implausible shard manifest shape in '" +
                                   manifest_path + "'");
  }
  manifest.has_weights = (flags & kFlagWeights) != 0;
  manifest.has_labels = (flags & kFlagLabels) != 0;

  int64_t next_row = 0;
  for (int32_t s = 0; s < num_shards; ++s) {
    ShardInfo info;
    int32_t len = 0;
    in.read(reinterpret_cast<char*>(&info.rows), sizeof(info.rows));
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in.good() || info.rows <= 0 || len <= 0 || len > (1 << 16)) {
      return Status::InvalidArgument("corrupt shard table in '" +
                                     manifest_path + "'");
    }
    info.file.resize(static_cast<size_t>(len));
    in.read(info.file.data(), len);
    if (!in.good()) {
      return Status::IOError("'" + manifest_path + "' is truncated");
    }
    info.first_row = next_row;
    next_row += info.rows;
    manifest.shards.push_back(std::move(info));
  }
  if (next_row != manifest.n) {
    return Status::InvalidArgument(
        "shard rows sum to " + std::to_string(next_row) + " but '" +
        manifest_path + "' declares n=" + std::to_string(manifest.n));
  }
  return manifest;
}

// ---------------------------------------------------------------------------
// ShardedDataset
// ---------------------------------------------------------------------------

struct ShardedDataset::Impl {
  struct Shard {
    std::string path;     // resolved (manifest dir + relative name)
    int64_t rows = 0;
    int64_t first_row = 0;
    int64_t file_bytes = 0;  // exact bytes the mapping covers

    // Mutable residency state, guarded by `mutex`.
    const char* base = nullptr;  // mapping base (null = not resident)
    int64_t pin_count = 0;
    uint64_t last_use = 0;
  };

  ShardManifest manifest;
  ShardedDatasetOptions options;
  std::vector<Shard> shards;

  mutable std::mutex mutex;
  mutable uint64_t use_tick = 0;
  mutable IoStats stats;
  mutable bool total_weight_cached = false;
  mutable double total_weight = 0.0;

  ~Impl() {
    for (Shard& shard : shards) {
      if (shard.base != nullptr) Unmap(shard);
    }
  }

  static void Unmap(Shard& shard) {
#if defined(_WIN32)
    std::free(const_cast<char*>(shard.base));
#else
    ::munmap(const_cast<char*>(shard.base),
             static_cast<size_t>(shard.file_bytes));
#endif
    shard.base = nullptr;
  }

  /// Maps `shard` read-only. Caller holds `mutex`.
  Status Map(Shard& shard) {
#if defined(_WIN32)
    // Portability fallback: read the file into a heap buffer. Same view
    // semantics, no mmap.
    std::ifstream in(shard.path, std::ios::binary);
    if (!in.is_open()) {
      return Status::IOError("cannot open shard '" + shard.path + "'");
    }
    char* buffer = static_cast<char*>(
        std::malloc(static_cast<size_t>(shard.file_bytes)));
    if (buffer == nullptr) return Status::IOError("out of memory");
    in.read(buffer, static_cast<std::streamsize>(shard.file_bytes));
    if (!in.good()) {
      std::free(buffer);
      return Status::IOError("shard '" + shard.path + "' is truncated");
    }
    shard.base = buffer;
#else
    int fd = ::open(shard.path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError("cannot open shard '" + shard.path + "'");
    }
    void* mapping = ::mmap(nullptr, static_cast<size_t>(shard.file_bytes),
                           PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (mapping == MAP_FAILED) {
      return Status::IOError("mmap of shard '" + shard.path + "' failed");
    }
    shard.base = static_cast<const char*>(mapping);
#endif
    ++stats.maps;
    stats.resident_bytes += shard.file_bytes;
    stats.peak_resident_bytes =
        std::max(stats.peak_resident_bytes, stats.resident_bytes);
    return Status::OK();
  }

  /// Evicts least-recently-used unpinned shards while over budget.
  /// Caller holds `mutex`.
  void EvictOverBudget() {
    if (options.max_resident_bytes <= 0) return;
    while (stats.resident_bytes > options.max_resident_bytes) {
      Shard* victim = nullptr;
      for (Shard& shard : shards) {
        if (shard.base == nullptr || shard.pin_count > 0) continue;
        if (victim == nullptr || shard.last_use < victim->last_use) {
          victim = &shard;
        }
      }
      if (victim == nullptr) return;  // everything resident is pinned
      Unmap(*victim);
      stats.resident_bytes -= victim->file_bytes;
      ++stats.evictions;
    }
  }

  /// Shard index owning global row `row` (shards are sorted by
  /// first_row and contiguous).
  size_t ShardIndexOf(int64_t row) const {
    size_t lo = 0, hi = shards.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi + 1) / 2;
      if (shards[mid].first_row <= row) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  }

  void Unpin(size_t shard_index) {
    std::lock_guard<std::mutex> lock(mutex);
    Shard& shard = shards[shard_index];
    KMEANSLL_CHECK_GT(shard.pin_count, 0);
    --shard.pin_count;
    // Enforce the window as soon as a pin drops, so a streaming pass
    // never holds more than the budget plus its own pinned shards.
    EvictOverBudget();
  }
};

ShardedDataset::ShardedDataset(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
ShardedDataset::ShardedDataset(ShardedDataset&&) noexcept = default;
ShardedDataset& ShardedDataset::operator=(ShardedDataset&&) noexcept =
    default;
ShardedDataset::~ShardedDataset() = default;

Result<ShardedDataset> ShardedDataset::Open(
    const std::string& manifest_path, const ShardedDatasetOptions& options) {
  KMEANSLL_ASSIGN_OR_RETURN(ShardManifest manifest,
                            ReadShardManifest(manifest_path));
  auto impl = std::make_unique<Impl>();
  impl->options = options;

  const std::string dir = DirOf(manifest_path);
  for (const ShardInfo& info : manifest.shards) {
    Impl::Shard shard;
    shard.path = dir + info.file;
    shard.rows = info.rows;
    shard.first_row = info.first_row;
    shard.file_bytes = ShardFileBytes(info.rows, manifest.dim,
                                      manifest.has_weights,
                                      manifest.has_labels);

    // Validate the shard header and size now: a corrupt or truncated
    // shard fails Open instead of a mid-scan pin.
    std::ifstream in(shard.path, std::ios::binary);
    if (!in.is_open()) {
      return Status::IOError("cannot open shard '" + shard.path + "'");
    }
    char magic[8];
    int32_t version = 0;
    int64_t rows = 0, dim = 0;
    uint32_t flags = 0;
    in.read(magic, sizeof(magic));
    if (!in.good() || std::memcmp(magic, kShardMagic, sizeof(magic)) != 0) {
      return Status::InvalidArgument("shard '" + shard.path +
                                     "' is not a kmeansll dataset file");
    }
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    in.read(reinterpret_cast<char*>(&flags), sizeof(flags));
    if (!in.good() || version != kShardVersion) {
      return Status::InvalidArgument("unsupported shard version in '" +
                                     shard.path + "'");
    }
    uint32_t expected_flags = 0;
    if (manifest.has_weights) expected_flags |= kFlagWeights;
    if (manifest.has_labels) expected_flags |= kFlagLabels;
    if (rows != info.rows || dim != manifest.dim ||
        flags != expected_flags) {
      return Status::InvalidArgument(
          "shard '" + shard.path + "' header (rows=" + std::to_string(rows) +
          ", dim=" + std::to_string(dim) +
          ", flags=" + std::to_string(flags) +
          ") disagrees with the manifest");
    }
    int64_t actual_bytes = FileSizeOf(shard.path);
    if (actual_bytes < shard.file_bytes) {
      return Status::IOError("shard '" + shard.path + "' is truncated (" +
                             std::to_string(actual_bytes) + " bytes, need " +
                             std::to_string(shard.file_bytes) + ")");
    }
    impl->shards.push_back(std::move(shard));
  }
  impl->manifest = std::move(manifest);
  return ShardedDataset(std::move(impl));
}

int64_t ShardedDataset::n() const { return impl_->manifest.n; }
int64_t ShardedDataset::dim() const { return impl_->manifest.dim; }
bool ShardedDataset::has_weights() const {
  return impl_->manifest.has_weights;
}
bool ShardedDataset::has_labels() const {
  return impl_->manifest.has_labels;
}

int64_t ShardedDataset::num_shards() const {
  return static_cast<int64_t>(impl_->shards.size());
}

std::pair<int64_t, int64_t> ShardedDataset::ShardRows(int64_t s) const {
  const Impl::Shard& shard = impl_->shards[static_cast<size_t>(s)];
  return {shard.first_row, shard.first_row + shard.rows};
}

std::vector<std::pair<int64_t, int64_t>> ShardedDataset::ShardRanges()
    const {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ranges.reserve(impl_->shards.size());
  for (const Impl::Shard& shard : impl_->shards) {
    ranges.emplace_back(shard.first_row, shard.first_row + shard.rows);
  }
  return ranges;
}

const ShardManifest& ShardedDataset::manifest() const {
  return impl_->manifest;
}

ShardedDataset::IoStats ShardedDataset::io_stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

PinnedBlock ShardedDataset::Pin(int64_t begin, int64_t end) const {
  Impl* impl = impl_.get();
  KMEANSLL_CHECK(begin >= 0 && begin < end && end <= impl->manifest.n);

  size_t shard_index;
  const char* base;
  {
    std::lock_guard<std::mutex> lock(impl->mutex);
    shard_index = impl->ShardIndexOf(begin);
    Impl::Shard& shard = impl->shards[shard_index];
    if (shard.base == nullptr) {
      Status status = impl->Map(shard);
      // Pin has no error channel (the storage layer treats a vanished or
      // unmappable shard after a successful Open as unrecoverable).
      KMEANSLL_CHECK(status.ok());
    }
    ++shard.pin_count;
    shard.last_use = ++impl->use_tick;
    // A fresh map may have pushed residency over the window; evict
    // other, unpinned shards now.
    impl->EvictOverBudget();
    base = shard.base;
  }

  const Impl::Shard& shard = impl->shards[shard_index];
  const int64_t local_first = begin - shard.first_row;
  const int64_t local_end =
      std::min(end - shard.first_row, shard.rows);
  const int64_t d = impl->manifest.dim;

  const char* cursor = base + kShardHeaderBytes;
  const auto* points = reinterpret_cast<const double*>(cursor);
  cursor += shard.rows * d * static_cast<int64_t>(sizeof(double));
  const double* weights = nullptr;
  if (impl->manifest.has_weights) {
    weights = reinterpret_cast<const double*>(cursor);
    cursor += shard.rows * static_cast<int64_t>(sizeof(double));
  }
  const int32_t* labels = nullptr;
  if (impl->manifest.has_labels) {
    labels = reinterpret_cast<const int32_t*>(cursor);
  }

  DatasetView shard_view(ConstMatrixView(points, shard.rows, d),
                         shard.first_row, weights, labels);
  return PinnedBlock(shard_view.Slice(local_first, local_end),
                     [impl, shard_index] { impl->Unpin(shard_index); });
}

double ShardedDataset::TotalWeight() const {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->total_weight_cached) return impl_->total_weight;
  }
  double total;
  if (!impl_->manifest.has_weights) {
    total = static_cast<double>(impl_->manifest.n);
  } else {
    KahanSum sum;
    ForEachBlock(*this, 0, n(), [&](const DatasetView& v) {
      for (int64_t i = 0; i < v.rows(); ++i) sum.Add(v.Weight(i));
    });
    total = sum.Total();
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->total_weight_cached = true;
  impl_->total_weight = total;
  return total;
}

}  // namespace kmeansll::data
