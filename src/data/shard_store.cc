#include "data/shard_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#if defined(_WIN32)
#include <cstdlib>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/macros.h"
#include "common/math_util.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/trace.h"
#include "data/binary_io.h"
#include "data/model_io.h"  // for data::Crc32

namespace kmeansll::data {

namespace {

// Process-wide registry mirrors of the per-instance StatsCells: every
// StatsCells bump also bumps one of these, so a single Prometheus
// scrape sees storage-layer totals across all datasets ever opened.
// Resolved once; updates through the handles are wait-free.
struct ShardStoreMetrics {
  Counter* maps;
  Counter* evictions;
  Gauge* resident_bytes;
  Gauge* peak_resident_bytes;
  Counter* prefetch_issued;
  Counter* prefetch_completed;
  Counter* prefetch_hits;
  Counter* prefetch_wasted;
  Counter* stall_ns;
  Counter* map_retries;
  Counter* map_failures;
};

const ShardStoreMetrics& ShardMetrics() {
  static const ShardStoreMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return new ShardStoreMetrics{
        r.GetCounter("kmll_shard_maps_total",
                     "Shard mmaps published (demand plus prefetch)."),
        r.GetCounter("kmll_shard_evictions_total",
                     "Shards unmapped by the LRU resident window."),
        r.GetGauge("kmll_shard_resident_bytes",
                   "Bytes currently mapped across all shard stores."),
        r.GetGauge("kmll_shard_peak_resident_bytes",
                   "High-water mark of kmll_shard_resident_bytes."),
        r.GetCounter("kmll_shard_prefetch_issued_total",
                     "Shards enqueued by PrefetchHint."),
        r.GetCounter("kmll_shard_prefetch_completed_total",
                     "Prefetched shards fully page-warmed."),
        r.GetCounter("kmll_shard_prefetch_hits_total",
                     "Pins that found their shard prefetched."),
        r.GetCounter("kmll_shard_prefetch_wasted_total",
                     "Prefetched shards evicted before any pin."),
        r.GetCounter("kmll_shard_stall_ns_total",
                     "Nanoseconds scan threads blocked on shard I/O."),
        r.GetCounter("kmll_shard_map_retries_total",
                     "Transient map failures retried with backoff."),
        r.GetCounter("kmll_shard_map_failures_total",
                     "Shards whose demand-map retry budget was exhausted."),
    };
  }();
  return *m;
}

constexpr char kManifestMagic[8] = {'K', 'M', 'L', 'L', 'S', 'H', 'R', 'D'};
constexpr int32_t kManifestVersion = 1;

// KMLLDATA shard header (see data/binary_io.cc): magic(8) + version(4) +
// n(8) + d(8) + flags(4). Version 2 shards end with a uint32 CRC-32
// over every preceding file byte; version 1 shards (no checksum) are
// still accepted, so datasets written before the bump keep opening.
constexpr int64_t kShardHeaderBytes = 32;
constexpr char kShardMagic[8] = {'K', 'M', 'L', 'L', 'D', 'A', 'T', 'A'};
constexpr int32_t kShardVersion = 2;
constexpr int32_t kShardMinVersion = 1;
constexpr uint32_t kFlagWeights = 1u << 0;
constexpr uint32_t kFlagLabels = 1u << 1;
constexpr uint32_t kFlagPayloadCrc = 1u << 2;

/// Bytes a shard file must hold for `rows` rows of the manifest's shape.
int64_t ShardFileBytes(int64_t rows, int64_t dim, bool weights,
                       bool labels, bool payload_crc) {
  int64_t bytes = kShardHeaderBytes +
                  rows * dim * static_cast<int64_t>(sizeof(double));
  if (weights) bytes += rows * static_cast<int64_t>(sizeof(double));
  if (labels) bytes += rows * static_cast<int64_t>(sizeof(int32_t));
  if (payload_crc) bytes += static_cast<int64_t>(sizeof(uint32_t));
  return bytes;
}

/// Directory prefix of `path` including the trailing separator ("" when
/// the path has no directory component).
std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? std::string()
                                    : path.substr(0, slash + 1);
}

std::string BaseNameOf(const std::string& path) {
  size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int64_t FileSizeOf(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return -1;
  return static_cast<int64_t>(in.tellg());
}

void AppendRaw(std::string* out, const void* bytes, size_t size) {
  out->append(static_cast<const char*>(bytes), size);
}

template <typename T>
void AppendScalar(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

/// Writes the KMLLSHRD manifest file for `manifest`. Shared by
/// WriteShards and ShardWriter::Finalize so the two producers cannot
/// drift apart on the format. The manifest is the commit point of a
/// sharded dataset — nothing opens the shard files except through it —
/// so it is serialized in memory and published atomically
/// (temp+fsync+rename): an interrupted Finalize leaves either no
/// manifest (the dataset "does not exist" yet) or the previous complete
/// one, never a torn shard table.
Status WriteManifestFile(const std::string& manifest_path,
                         const ShardManifest& manifest) {
  std::string buf;
  AppendRaw(&buf, kManifestMagic, sizeof(kManifestMagic));
  int32_t version = kManifestVersion;
  uint32_t flags = 0;
  if (manifest.has_weights) flags |= kFlagWeights;
  if (manifest.has_labels) flags |= kFlagLabels;
  auto num_shards = static_cast<int32_t>(manifest.shards.size());
  AppendScalar(&buf, version);
  AppendScalar(&buf, manifest.n);
  AppendScalar(&buf, manifest.dim);
  AppendScalar(&buf, flags);
  AppendScalar(&buf, num_shards);
  for (const ShardInfo& info : manifest.shards) {
    AppendScalar(&buf, info.rows);
    AppendScalar(&buf, static_cast<int32_t>(info.file.size()));
    AppendRaw(&buf, info.file.data(), info.file.size());
  }
  return RetryTransient(RetryPolicy{}, [&] {
    return AtomicWriteFile(manifest_path, buf.data(), buf.size(),
                           "manifest.write");
  });
}

}  // namespace

Result<ShardManifest> WriteShards(const Dataset& dataset,
                                  const std::string& manifest_path,
                                  const ShardWriteOptions& options) {
  if ((options.num_shards > 0) == (options.rows_per_shard > 0)) {
    return Status::InvalidArgument(
        "exactly one of num_shards and rows_per_shard must be positive");
  }
  if (dataset.n() <= 0 || dataset.dim() <= 0) {
    return Status::InvalidArgument("cannot shard an empty dataset");
  }

  std::vector<std::pair<int64_t, int64_t>> ranges;
  if (options.num_shards > 0) {
    if (options.num_shards > dataset.n()) {
      return Status::InvalidArgument(
          "num_shards " + std::to_string(options.num_shards) +
          " exceeds row count " + std::to_string(dataset.n()));
    }
    ranges = dataset.SplitRanges(options.num_shards);
  } else {
    for (int64_t begin = 0; begin < dataset.n();
         begin += options.rows_per_shard) {
      ranges.emplace_back(begin, std::min(begin + options.rows_per_shard,
                                          dataset.n()));
    }
  }

  ShardManifest manifest;
  manifest.n = dataset.n();
  manifest.dim = dataset.dim();
  manifest.has_weights = dataset.has_weights();
  manifest.has_labels = dataset.has_labels();

  const std::string base = BaseNameOf(manifest_path);
  const std::string dir = DirOf(manifest_path);
  for (size_t s = 0; s < ranges.size(); ++s) {
    const auto& [begin, end] = ranges[s];
    ShardInfo info;
    info.file = base + ".shard" + std::to_string(s);
    info.rows = end - begin;
    info.first_row = begin;
    KMEANSLL_RETURN_NOT_OK(
        WriteBinaryRange(dataset, begin, end, dir + info.file));
    manifest.shards.push_back(std::move(info));
  }

  KMEANSLL_RETURN_NOT_OK(WriteManifestFile(manifest_path, manifest));
  return manifest;
}

Result<ShardManifest> ReadShardManifest(const std::string& manifest_path) {
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + manifest_path +
                           "' for reading");
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() ||
      std::memcmp(magic, kManifestMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + manifest_path +
                                   "' is not a kmeansll shard manifest");
  }
  int32_t version = 0;
  int32_t num_shards = 0;
  uint32_t flags = 0;
  ShardManifest manifest;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&manifest.n), sizeof(manifest.n));
  in.read(reinterpret_cast<char*>(&manifest.dim), sizeof(manifest.dim));
  in.read(reinterpret_cast<char*>(&flags), sizeof(flags));
  in.read(reinterpret_cast<char*>(&num_shards), sizeof(num_shards));
  if (!in.good() || version != kManifestVersion) {
    return Status::InvalidArgument("unsupported shard manifest version in '" +
                                   manifest_path + "'");
  }
  if (manifest.n <= 0 || manifest.dim <= 0 ||
      manifest.n > (int64_t{1} << 40) ||
      manifest.dim > (int64_t{1} << 24) || num_shards <= 0 ||
      num_shards > (1 << 24)) {
    return Status::InvalidArgument("implausible shard manifest shape in '" +
                                   manifest_path + "'");
  }
  manifest.has_weights = (flags & kFlagWeights) != 0;
  manifest.has_labels = (flags & kFlagLabels) != 0;

  int64_t next_row = 0;
  for (int32_t s = 0; s < num_shards; ++s) {
    ShardInfo info;
    int32_t len = 0;
    in.read(reinterpret_cast<char*>(&info.rows), sizeof(info.rows));
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in.good() || info.rows <= 0 || len <= 0 || len > (1 << 16)) {
      return Status::InvalidArgument("corrupt shard table in '" +
                                     manifest_path + "'");
    }
    info.file.resize(static_cast<size_t>(len));
    in.read(info.file.data(), len);
    if (!in.good()) {
      return Status::IOError("'" + manifest_path + "' is truncated");
    }
    info.first_row = next_row;
    next_row += info.rows;
    manifest.shards.push_back(std::move(info));
  }
  if (next_row != manifest.n) {
    return Status::InvalidArgument(
        "shard rows sum to " + std::to_string(next_row) + " but '" +
        manifest_path + "' declares n=" + std::to_string(manifest.n));
  }
  return manifest;
}

// ---------------------------------------------------------------------------
// ShardWriter
// ---------------------------------------------------------------------------

struct ShardWriter::Impl {
  std::string manifest_path;
  std::string dir;        // directory prefix of the manifest
  std::string base_name;  // manifest basename (shard files derive from it)
  Options options;
  ShardManifest manifest;  // grows one ShardInfo per flushed shard

  // Tail buffer: rows appended but not yet cut into a shard file.
  std::vector<double> points;
  std::vector<double> weights;
  std::vector<int32_t> labels;
  int64_t buffered_rows = 0;
  bool finalized = false;

  /// Writes the buffered rows as the next standalone KMLLDATA shard.
  Status FlushShard() {
    ShardInfo info;
    info.file =
        base_name + ".shard" + std::to_string(manifest.shards.size());
    info.rows = buffered_rows;
    info.first_row = manifest.n;

    // Serialize the whole shard in memory and publish it atomically:
    // a crash mid-flush leaves no file under the shard's name, so a
    // later writer restart cannot be confused by a torn shard (and the
    // manifest — the commit point — hasn't referenced it yet anyway).
    const std::string path = dir + info.file;
    std::string buf;
    buf.reserve(static_cast<size_t>(
        ShardFileBytes(info.rows, manifest.dim, options.has_weights,
                       options.has_labels, /*payload_crc=*/true)));
    AppendRaw(&buf, kShardMagic, sizeof(kShardMagic));
    uint32_t flags = kFlagPayloadCrc;
    if (options.has_weights) flags |= kFlagWeights;
    if (options.has_labels) flags |= kFlagLabels;
    AppendScalar(&buf, kShardVersion);
    AppendScalar(&buf, info.rows);
    AppendScalar(&buf, manifest.dim);
    AppendScalar(&buf, flags);
    AppendRaw(&buf, points.data(), points.size() * sizeof(double));
    if (options.has_weights) {
      AppendRaw(&buf, weights.data(), weights.size() * sizeof(double));
    }
    if (options.has_labels) {
      AppendRaw(&buf, labels.data(), labels.size() * sizeof(int32_t));
    }
    AppendScalar(&buf, Crc32(buf.data(), buf.size()));
    KMEANSLL_RETURN_NOT_OK(RetryTransient(RetryPolicy{}, [&] {
      return AtomicWriteFile(path, buf.data(), buf.size(), "shard.write");
    }));
    manifest.n += buffered_rows;
    manifest.shards.push_back(std::move(info));
    points.clear();
    weights.clear();
    labels.clear();
    buffered_rows = 0;
    return Status::OK();
  }
};

ShardWriter::ShardWriter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
ShardWriter::ShardWriter(ShardWriter&&) noexcept = default;
ShardWriter& ShardWriter::operator=(ShardWriter&&) noexcept = default;
ShardWriter::~ShardWriter() = default;

Result<ShardWriter> ShardWriter::Open(const std::string& manifest_path,
                                      int64_t dim,
                                      const Options& options) {
  if (dim <= 0) return Status::InvalidArgument("dim must be positive");
  if (options.rows_per_shard <= 0) {
    return Status::InvalidArgument("rows_per_shard must be positive");
  }
  auto impl = std::make_unique<Impl>();
  impl->manifest_path = manifest_path;
  impl->dir = DirOf(manifest_path);
  impl->base_name = BaseNameOf(manifest_path);
  impl->options = options;
  impl->manifest.dim = dim;
  impl->manifest.has_weights = options.has_weights;
  impl->manifest.has_labels = options.has_labels;
  return ShardWriter(std::move(impl));
}

Result<ShardWriter> ShardWriter::OpenForAppend(
    const std::string& manifest_path, int64_t dim, const Options& options) {
  KMEANSLL_ASSIGN_OR_RETURN(ShardWriter writer,
                            Open(manifest_path, dim, options));
  KMEANSLL_ASSIGN_OR_RETURN(ShardManifest existing,
                            ReadShardManifest(manifest_path));
  if (existing.dim != dim || existing.has_weights != options.has_weights ||
      existing.has_labels != options.has_labels) {
    return Status::InvalidArgument(
        "existing manifest '" + manifest_path +
        "' shape disagrees with the append request");
  }
  writer.impl_->manifest = std::move(existing);
  return writer;
}

Status ShardWriter::Append(const DatasetView& view) {
  Impl* impl = impl_.get();
  if (impl->finalized) {
    return Status::InvalidArgument("shard writer already finalized");
  }
  if (view.dim() != impl->manifest.dim) {
    return Status::InvalidArgument(
        "view dimension " + std::to_string(view.dim()) +
        " does not match writer dimension " +
        std::to_string(impl->manifest.dim));
  }
  if (view.has_weights() && !impl->options.has_weights) {
    return Status::InvalidArgument(
        "weighted view appended to a weight-less shard writer (weights "
        "would be dropped)");
  }
  if (view.has_labels() != impl->options.has_labels) {
    return Status::InvalidArgument(
        view.has_labels()
            ? "labeled view appended to a label-less shard writer"
            : "label-less view appended to a labeled shard writer");
  }

  const int64_t d = impl->manifest.dim;
  int64_t row = 0;
  while (row < view.rows()) {
    const int64_t take = std::min(
        view.rows() - row, impl->options.rows_per_shard -
                               impl->buffered_rows);
    impl->points.insert(impl->points.end(), view.Point(row),
                        view.Point(row) + take * d);
    if (impl->options.has_weights) {
      if (view.has_weights()) {
        impl->weights.insert(impl->weights.end(), view.weights() + row,
                             view.weights() + row + take);
      } else {
        impl->weights.insert(impl->weights.end(),
                             static_cast<size_t>(take), 1.0);
      }
    }
    if (impl->options.has_labels) {
      impl->labels.insert(impl->labels.end(), view.labels() + row,
                          view.labels() + row + take);
    }
    impl->buffered_rows += take;
    row += take;
    if (impl->buffered_rows == impl->options.rows_per_shard) {
      KMEANSLL_RETURN_NOT_OK(impl->FlushShard());
    }
  }
  return Status::OK();
}

Status ShardWriter::AppendRange(const DatasetSource& source, int64_t begin,
                                int64_t end) {
  // Manual pin loop rather than ForEachBlock: stop streaming (and
  // pinning) the moment an append fails.
  int64_t row = begin;
  while (row < end) {
    PinnedBlock block = source.Pin(row, end);
    KMEANSLL_RETURN_NOT_OK(Append(block.view()));
    row = block.view().end_row();
  }
  return Status::OK();
}

int64_t ShardWriter::rows_appended() const {
  return impl_->manifest.n + impl_->buffered_rows;
}

Result<ShardManifest> ShardWriter::Finalize() {
  Impl* impl = impl_.get();
  if (impl->finalized) {
    return Status::InvalidArgument("shard writer already finalized");
  }
  if (impl->buffered_rows > 0) {
    KMEANSLL_RETURN_NOT_OK(impl->FlushShard());
  }
  if (impl->manifest.n == 0) {
    return Status::InvalidArgument(
        "cannot finalize a shard writer with no rows");
  }
  KMEANSLL_RETURN_NOT_OK(
      WriteManifestFile(impl->manifest_path, impl->manifest));
  impl->finalized = true;
  return impl->manifest;
}

// ---------------------------------------------------------------------------
// ShardedDataset
// ---------------------------------------------------------------------------

struct ShardedDataset::Impl {
  struct Shard {
    std::string path;     // resolved (manifest dir + relative name)
    int64_t rows = 0;
    int64_t first_row = 0;
    int64_t file_bytes = 0;  // exact bytes the mapping covers
    bool has_crc = false;    // v2 shard with a trailing payload CRC
    bool crc_checked = false;  // payload verified at first map

    // Mutable residency state, guarded by `mutex`.
    const char* base = nullptr;  // mapping base (null = not resident)
    int64_t pin_count = 0;
    uint64_t last_use = 0;
    bool mapping = false;    // a thread is mapping this shard right now
    bool touching = false;   // prefetcher is warming pages (no unmap!)
    bool queued = false;     // sitting in the prefetch queue
    bool protected_ = false; // prefetched, not yet pinned: evict last
    bool failed = false;     // demand map retry budget exhausted
    Status fail_status;      // why (set once, with `failed`)
  };

  /// IoStats as independent atomic cells: counters bumped under `mutex`
  /// stay coherent with eviction decisions, while io_stats() snapshots
  /// each field tear-free without taking the lock (stall time in
  /// particular is recorded while the lock is NOT held).
  struct StatsCells {
    std::atomic<int64_t> maps{0};
    std::atomic<int64_t> evictions{0};
    std::atomic<int64_t> resident_bytes{0};
    std::atomic<int64_t> peak_resident_bytes{0};
    std::atomic<int64_t> prefetch_issued{0};
    std::atomic<int64_t> prefetch_completed{0};
    std::atomic<int64_t> prefetch_hits{0};
    std::atomic<int64_t> prefetch_wasted{0};
    std::atomic<int64_t> stall_nanos{0};
    std::atomic<int64_t> map_retries{0};
    std::atomic<int64_t> map_failures{0};
  };

  ShardManifest manifest;
  ShardedDatasetOptions options;
  std::vector<Shard> shards;

  mutable std::mutex mutex;
  mutable std::condition_variable map_done;     // a map finished
  mutable std::condition_variable prefetch_cv;  // queue/shutdown changed
  mutable std::deque<size_t> prefetch_queue;
  mutable std::thread prefetch_worker;  // lazily started by PrefetchHint
  mutable int64_t protected_count = 0;
  // Bytes held by outstanding prefetch work (queued shards plus mapped-
  // but-never-pinned ones); bounds how much the pipeline can inflate
  // residency ahead of the scan.
  mutable int64_t prefetch_hold_bytes = 0;
  mutable bool shutting_down = false;
  mutable uint64_t use_tick = 0;
  mutable StatsCells stats;
  mutable bool total_weight_cached = false;
  mutable double total_weight = 0.0;
  // Degraded-mode state (guarded by `mutex`): the first unrecoverable
  // shard error, and zero-filled stand-in blocks for failed shards.
  mutable Status failure;
  mutable std::map<size_t, std::unique_ptr<char[]>> fallbacks;

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutting_down = true;
      prefetch_cv.notify_all();
    }
    if (prefetch_worker.joinable()) prefetch_worker.join();
    for (Shard& shard : shards) {
      if (shard.base != nullptr) Unmap(shard);
    }
  }

  static void UnmapRaw(const char* base, int64_t file_bytes) {
#if defined(_WIN32)
    (void)file_bytes;
    std::free(const_cast<char*>(base));
#else
    ::munmap(const_cast<char*>(base), static_cast<size_t>(file_bytes));
#endif
  }

  static void Unmap(Shard& shard) {
    UnmapRaw(shard.base, shard.file_bytes);
    shard.base = nullptr;
  }

  /// Verifies a v2 shard's trailing payload CRC against its mapped
  /// bytes — one sequential read over the mapping, done at first map
  /// with `mutex` released so other shards' pins never wait on it. A
  /// mismatch is deterministic corruption, not a transient I/O blip, so
  /// it surfaces as InvalidArgument (which RetryTransient does NOT
  /// retry) and the caller unmaps: corrupt bytes are never served.
  static Status VerifyPayloadCrc(const Shard& shard, const char* base) {
    const size_t body =
        static_cast<size_t>(shard.file_bytes) - sizeof(uint32_t);
    uint32_t stored = 0;
    std::memcpy(&stored, base + body, sizeof(stored));
    uint32_t actual = Crc32(base, body);
    fault::FaultKind kind;
    if (fault::CheckKind("shard.crc", &kind) &&
        kind == fault::FaultKind::kCrcError) {
      actual ^= 0x5f3759dfu;  // simulate silent payload corruption
    }
    if (stored != actual) {
      return Status::InvalidArgument("payload CRC mismatch in shard '" +
                                     shard.path + "'");
    }
    return Status::OK();
  }

  /// Maps the file behind `shard` read-only into *out_base. Pure I/O on
  /// local data — deliberately run with `mutex` RELEASED so concurrent
  /// pins of other shards never serialize behind one shard's I/O.
  static Status MapFile(const std::string& path, int64_t file_bytes,
                        const char** out_base) {
#if defined(_WIN32)
    // Portability fallback: read the file into a heap buffer. Same view
    // semantics, no mmap (and inherently populated).
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      return Status::IOError("cannot open shard '" + path + "'");
    }
    char* buffer =
        static_cast<char*>(std::malloc(static_cast<size_t>(file_bytes)));
    if (buffer == nullptr) return Status::IOError("out of memory");
    in.read(buffer, static_cast<std::streamsize>(file_bytes));
    if (!in.good()) {
      std::free(buffer);
      return Status::IOError("shard '" + path + "' is truncated");
    }
    *out_base = buffer;
#else
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError("cannot open shard '" + path + "'");
    }
    void* mapping = ::mmap(nullptr, static_cast<size_t>(file_bytes),
                           PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (mapping == MAP_FAILED) {
      return Status::IOError("mmap of shard '" + path + "' failed");
    }
    *out_base = static_cast<const char*>(mapping);
#endif
    return Status::OK();
  }

  /// Warms a published mapping: requests readahead and faults one byte
  /// per page, off the scan threads' critical path. Reads only — a scan
  /// may already be consuming the same (read-only) mapping concurrently.
  static void TouchPages(const char* base, int64_t file_bytes) {
#if !defined(_WIN32)
    ::madvise(const_cast<char*>(base), static_cast<size_t>(file_bytes),
              MADV_WILLNEED);
    // Volatile reads: the loads have no observable use, and a plain
    // loop could be dead-code-eliminated — silently reducing prefetch
    // to the madvise hint and handing the faults back to the scan.
    const volatile char* pages = base;
    for (int64_t off = 0; off < file_bytes; off += 4096) {
      (void)pages[off];
    }
#else
    (void)base;
    (void)file_bytes;
#endif
  }

  /// Publishes a finished mapping for `shard`. Caller holds `mutex`.
  void PublishMapping(Shard& shard, const char* base) {
    shard.base = base;
    stats.maps.fetch_add(1, std::memory_order_relaxed);
    const int64_t resident =
        stats.resident_bytes.fetch_add(shard.file_bytes,
                                       std::memory_order_relaxed) +
        shard.file_bytes;
    if (resident > stats.peak_resident_bytes.load(
                       std::memory_order_relaxed)) {
      stats.peak_resident_bytes.store(resident,
                                      std::memory_order_relaxed);
    }
    const ShardStoreMetrics& m = ShardMetrics();
    m.maps->Increment();
    m.resident_bytes->Add(shard.file_bytes);
    m.peak_resident_bytes->UpdateMax(m.resident_bytes->value());
  }

  /// Ensures `shard` is resident, mapping it on demand (or waiting out a
  /// map already in flight on another thread — the prefetcher's,
  /// typically). Transient map failures are retried with backoff under
  /// options.io_retry (with `mutex` released, so other shards' pins
  /// never serialize behind the backoff). Returns OK with `mutex` held
  /// and shard.base set — or, once the retry budget is exhausted, marks
  /// the shard failed and returns the error; the caller degrades to a
  /// fallback block. All blocking is accounted to stall_nanos: this is
  /// exactly the time a scan thread lost to shard I/O.
  Status EnsureResident(std::unique_lock<std::mutex>& lock, Shard& shard) {
    using Clock = std::chrono::steady_clock;
    while (shard.base == nullptr) {
      if (shard.failed) return shard.fail_status;
      if (shard.mapping) {
        const auto start = Clock::now();
        map_done.wait(lock, [&] {
          return shard.base != nullptr || !shard.mapping;
        });
        const int64_t waited =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count();
        stats.stall_nanos.fetch_add(waited, std::memory_order_relaxed);
        ShardMetrics().stall_ns->Increment(waited);
        continue;
      }
      shard.mapping = true;
      const bool verify_crc = shard.has_crc && !shard.crc_checked;
      lock.unlock();
      const auto start = Clock::now();
      const char* base = nullptr;
      int64_t retries = 0;
      Status status;
      {
        KMEANSLL_TRACE_SPAN("shard.demand_map");
        status = RetryTransient(
            options.io_retry,
            [&]() -> Status {
              KMEANSLL_RETURN_NOT_OK(fault::Check("shard.map"));
              KMEANSLL_RETURN_NOT_OK(
                  MapFile(shard.path, shard.file_bytes, &base));
              if (verify_crc) {
                Status crc = VerifyPayloadCrc(shard, base);
                if (!crc.ok()) {
                  UnmapRaw(base, shard.file_bytes);
                  base = nullptr;
                  return crc;  // InvalidArgument: not retried, degrade
                }
              }
              return Status::OK();
            },
            &retries);
      }
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Clock::now() - start)
              .count();
      lock.lock();
      shard.mapping = false;
      if (status.ok() && verify_crc) shard.crc_checked = true;
      stats.stall_nanos.fetch_add(elapsed, std::memory_order_relaxed);
      stats.map_retries.fetch_add(retries, std::memory_order_relaxed);
      ShardMetrics().stall_ns->Increment(elapsed);
      ShardMetrics().map_retries->Increment(retries);
      if (!status.ok()) {
        // Retry budget exhausted: degrade instead of aborting. The
        // shard is marked failed so later pins don't burn the backoff
        // again, and the dataset's sticky status records the first
        // error for the driver to surface.
        shard.failed = true;
        shard.fail_status = status;
        stats.map_failures.fetch_add(1, std::memory_order_relaxed);
        ShardMetrics().map_failures->Increment();
        if (failure.ok()) failure = status;
        map_done.notify_all();
        return status;
      }
      PublishMapping(shard, base);
      map_done.notify_all();
    }
    return Status::OK();
  }

  /// Evicts least-recently-used unpinned shards while over budget.
  /// Prefetched-but-never-pinned shards are spared until no other
  /// candidate remains (the double-buffer guarantee); reclaiming one
  /// anyway counts as a wasted prefetch. Caller holds `mutex`.
  void EvictOverBudget() {
    if (options.max_resident_bytes <= 0) return;
    while (stats.resident_bytes.load(std::memory_order_relaxed) >
           options.max_resident_bytes) {
      Shard* victim = nullptr;
      bool victim_protected = false;
      for (bool consider_protected : {false, true}) {
        for (Shard& shard : shards) {
          if (shard.base == nullptr || shard.pin_count > 0 ||
              shard.mapping || shard.touching ||
              shard.protected_ != consider_protected) {
            continue;
          }
          if (victim == nullptr || shard.last_use < victim->last_use) {
            victim = &shard;
          }
        }
        if (victim != nullptr) {
          victim_protected = consider_protected;
          break;
        }
      }
      if (victim == nullptr) return;  // everything resident is in use
      if (victim_protected) {
        victim->protected_ = false;
        --protected_count;
        prefetch_hold_bytes -= victim->file_bytes;
        stats.prefetch_wasted.fetch_add(1, std::memory_order_relaxed);
        ShardMetrics().prefetch_wasted->Increment();
      }
      Unmap(*victim);
      stats.resident_bytes.fetch_sub(victim->file_bytes,
                                     std::memory_order_relaxed);
      stats.evictions.fetch_add(1, std::memory_order_relaxed);
      ShardMetrics().resident_bytes->Add(-victim->file_bytes);
      ShardMetrics().evictions->Increment();
    }
  }

  /// Background prefetcher: drains the hint queue. Each shard is mapped
  /// and PUBLISHED immediately (the map syscall is cheap), then its
  /// pages are touched with the mutex released — so a scan whose cursor
  /// outruns the warming never waits on the prefetcher: it pins the
  /// published mapping and at worst faults pages itself, exactly as it
  /// would have without prefetch. Holds `mutex` only around state
  /// transitions, never during I/O.
  void PrefetchLoop() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      prefetch_cv.wait(
          lock, [&] { return shutting_down || !prefetch_queue.empty(); });
      if (shutting_down) return;
      const size_t index = prefetch_queue.front();
      prefetch_queue.pop_front();
      Shard& shard = shards[index];
      shard.queued = false;
      // Demand beat us to it (or another map is in flight): nothing to
      // warm, and the hold transfers to nobody.
      if (shard.base != nullptr || shard.mapping) {
        prefetch_hold_bytes -= shard.file_bytes;
        continue;
      }
      shard.mapping = true;
      const bool verify_crc = shard.has_crc && !shard.crc_checked;
      lock.unlock();
      const char* base = nullptr;
      int64_t retries = 0;
      Status status;
      {
        KMEANSLL_TRACE_SPAN("shard.prefetch_map");
        status = RetryTransient(
            options.io_retry,
            [&]() -> Status {
              KMEANSLL_RETURN_NOT_OK(fault::Check("shard.prefetch"));
              KMEANSLL_RETURN_NOT_OK(
                  MapFile(shard.path, shard.file_bytes, &base));
              if (verify_crc) {
                Status crc = VerifyPayloadCrc(shard, base);
                if (!crc.ok()) {
                  UnmapRaw(base, shard.file_bytes);
                  base = nullptr;
                  return crc;
                }
              }
              return Status::OK();
            },
            &retries);
      }
      lock.lock();
      shard.mapping = false;
      if (status.ok() && verify_crc) shard.crc_checked = true;
      stats.map_retries.fetch_add(retries, std::memory_order_relaxed);
      ShardMetrics().map_retries->Increment(retries);
      if (!status.ok()) {
        // A prefetch failure must never take down the scan: leave the
        // shard unmapped (NOT failed) so the demand path gets its own
        // retry budget and is the one to surface a clean error.
        prefetch_hold_bytes -= shard.file_bytes;
        map_done.notify_all();
        continue;
      }
      PublishMapping(shard, base);
      shard.protected_ = true;
      ++protected_count;
      shard.touching = true;  // pins may proceed; eviction may not
      map_done.notify_all();
      lock.unlock();
      {
        KMEANSLL_TRACE_SPAN("shard.prefetch_warm");
        TouchPages(base, shard.file_bytes);
      }
      lock.lock();
      shard.touching = false;
      stats.prefetch_completed.fetch_add(1, std::memory_order_relaxed);
      ShardMetrics().prefetch_completed->Increment();
      EvictOverBudget();
      if (shutting_down) return;
    }
  }

  /// Shard index owning global row `row` (shards are sorted by
  /// first_row and contiguous).
  size_t ShardIndexOf(int64_t row) const {
    size_t lo = 0, hi = shards.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi + 1) / 2;
      if (shards[mid].first_row <= row) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  }

  void Unpin(size_t shard_index) {
    std::lock_guard<std::mutex> lock(mutex);
    Shard& shard = shards[shard_index];
    KMEANSLL_CHECK_GT(shard.pin_count, 0);
    --shard.pin_count;
    // Enforce the window as soon as a pin drops, so a streaming pass
    // never holds more than the budget plus its own pinned shards.
    EvictOverBudget();
  }

  /// Zero-filled stand-in block for a failed shard, laid out exactly
  /// like its file (header + points + weights + labels) so the Pin path
  /// slices it identically. Points read 0.0 and weights read 1.0 —
  /// structurally valid inputs for every kernel (no NaNs, no zero total
  /// weight) — so a degraded scan runs to completion and the driver
  /// rejects the run via status(). Allocated once per failed shard;
  /// caller holds `mutex`.
  const char* FallbackBase(size_t shard_index) {
    std::unique_ptr<char[]>& slot = fallbacks[shard_index];
    if (slot == nullptr) {
      const Shard& shard = shards[shard_index];
      slot = std::make_unique<char[]>(
          static_cast<size_t>(shard.file_bytes));  // value-init: zeros
      if (manifest.has_weights) {
        auto* weights = reinterpret_cast<double*>(
            slot.get() + kShardHeaderBytes +
            shard.rows * manifest.dim *
                static_cast<int64_t>(sizeof(double)));
        std::fill_n(weights, shard.rows, 1.0);
      }
    }
    return slot.get();
  }
};

ShardedDataset::ShardedDataset(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
ShardedDataset::ShardedDataset(ShardedDataset&&) noexcept = default;
ShardedDataset& ShardedDataset::operator=(ShardedDataset&&) noexcept =
    default;
ShardedDataset::~ShardedDataset() = default;

Result<ShardedDataset> ShardedDataset::Open(
    const std::string& manifest_path, const ShardedDatasetOptions& options) {
  KMEANSLL_ASSIGN_OR_RETURN(ShardManifest manifest,
                            ReadShardManifest(manifest_path));
  auto impl = std::make_unique<Impl>();
  impl->options = options;

  const std::string dir = DirOf(manifest_path);
  for (const ShardInfo& info : manifest.shards) {
    Impl::Shard shard;
    shard.path = dir + info.file;
    shard.rows = info.rows;
    shard.first_row = info.first_row;

    // Validate the shard header and size now: a corrupt or truncated
    // shard fails Open instead of a mid-scan pin.
    std::ifstream in(shard.path, std::ios::binary);
    if (!in.is_open()) {
      return Status::IOError("cannot open shard '" + shard.path + "'");
    }
    char magic[8];
    int32_t version = 0;
    int64_t rows = 0, dim = 0;
    uint32_t flags = 0;
    in.read(magic, sizeof(magic));
    if (!in.good() || std::memcmp(magic, kShardMagic, sizeof(magic)) != 0) {
      return Status::InvalidArgument("shard '" + shard.path +
                                     "' is not a kmeansll dataset file");
    }
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
    in.read(reinterpret_cast<char*>(&flags), sizeof(flags));
    if (!in.good() || version < kShardMinVersion ||
        version > kShardVersion) {
      return Status::InvalidArgument("unsupported shard version in '" +
                                     shard.path + "'");
    }
    shard.has_crc = version >= 2 && (flags & kFlagPayloadCrc) != 0;
    shard.file_bytes =
        ShardFileBytes(info.rows, manifest.dim, manifest.has_weights,
                       manifest.has_labels, shard.has_crc);
    uint32_t expected_flags = 0;
    if (manifest.has_weights) expected_flags |= kFlagWeights;
    if (manifest.has_labels) expected_flags |= kFlagLabels;
    // The payload-CRC bit is a per-shard property (an appended dataset
    // may mix v1 and v2 shards), not a manifest-level one.
    if (rows != info.rows || dim != manifest.dim ||
        (flags & ~kFlagPayloadCrc) != expected_flags) {
      return Status::InvalidArgument(
          "shard '" + shard.path + "' header (rows=" + std::to_string(rows) +
          ", dim=" + std::to_string(dim) +
          ", flags=" + std::to_string(flags) +
          ") disagrees with the manifest");
    }
    int64_t actual_bytes = FileSizeOf(shard.path);
    if (actual_bytes < shard.file_bytes) {
      return Status::IOError("shard '" + shard.path + "' is truncated (" +
                             std::to_string(actual_bytes) + " bytes, need " +
                             std::to_string(shard.file_bytes) + ")");
    }
    impl->shards.push_back(std::move(shard));
  }
  impl->manifest = std::move(manifest);
  return ShardedDataset(std::move(impl));
}

int64_t ShardedDataset::n() const { return impl_->manifest.n; }
int64_t ShardedDataset::dim() const { return impl_->manifest.dim; }
bool ShardedDataset::has_weights() const {
  return impl_->manifest.has_weights;
}
bool ShardedDataset::has_labels() const {
  return impl_->manifest.has_labels;
}

int64_t ShardedDataset::num_shards() const {
  return static_cast<int64_t>(impl_->shards.size());
}

std::pair<int64_t, int64_t> ShardedDataset::ShardRows(int64_t s) const {
  const Impl::Shard& shard = impl_->shards[static_cast<size_t>(s)];
  return {shard.first_row, shard.first_row + shard.rows};
}

std::vector<std::pair<int64_t, int64_t>> ShardedDataset::ShardRanges()
    const {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ranges.reserve(impl_->shards.size());
  for (const Impl::Shard& shard : impl_->shards) {
    ranges.emplace_back(shard.first_row, shard.first_row + shard.rows);
  }
  return ranges;
}

const ShardManifest& ShardedDataset::manifest() const {
  return impl_->manifest;
}

ShardedDataset::IoStats ShardedDataset::io_stats() const {
  const Impl::StatsCells& cells = impl_->stats;
  IoStats out;
  out.maps = cells.maps.load(std::memory_order_relaxed);
  out.evictions = cells.evictions.load(std::memory_order_relaxed);
  out.resident_bytes =
      cells.resident_bytes.load(std::memory_order_relaxed);
  out.peak_resident_bytes =
      cells.peak_resident_bytes.load(std::memory_order_relaxed);
  out.prefetch_issued =
      cells.prefetch_issued.load(std::memory_order_relaxed);
  out.prefetch_completed =
      cells.prefetch_completed.load(std::memory_order_relaxed);
  out.prefetch_hits = cells.prefetch_hits.load(std::memory_order_relaxed);
  out.prefetch_wasted =
      cells.prefetch_wasted.load(std::memory_order_relaxed);
  out.stall_nanos = cells.stall_nanos.load(std::memory_order_relaxed);
  out.map_retries = cells.map_retries.load(std::memory_order_relaxed);
  out.map_failures = cells.map_failures.load(std::memory_order_relaxed);
  return out;
}

void ShardedDataset::PrefetchHint(int64_t begin, int64_t end) const {
  Impl* impl = impl_.get();
  if (!impl->options.enable_prefetch) return;
  begin = std::max<int64_t>(begin, 0);
  end = std::min(end, impl->manifest.n);
  if (begin >= end) return;

  std::lock_guard<std::mutex> lock(impl->mutex);
  if (impl->shutting_down) return;
  const size_t first = impl->ShardIndexOf(begin);
  size_t last = impl->ShardIndexOf(end - 1);
  const int64_t cap = std::max<int64_t>(impl->options.max_prefetch_shards,
                                        1);
  // Examine only the first few shards of the range: the cap means
  // nothing beyond them could be enqueued anyway, and steady-state
  // hints over a warm tail (ForEachBlock hints the whole remainder
  // after every pin) must not degenerate into an O(shards) walk under
  // the mutex every Pin serializes on.
  last = std::min(last, first + static_cast<size_t>(cap));
  bool enqueued = false;
  for (size_t s = first; s <= last; ++s) {
    Impl::Shard& shard = impl->shards[s];
    if (shard.base != nullptr || shard.mapping || shard.queued) continue;
    // Bound outstanding work: shards waiting in the queue plus shards
    // the prefetcher mapped that no pin has consumed yet.
    if (static_cast<int64_t>(impl->prefetch_queue.size()) +
            impl->protected_count >=
        cap) {
      break;
    }
    // Never prefetch more than the LRU window can hold alongside a
    // concurrently pinned shard: a hint the window cannot keep would
    // only evict itself (or the shard the scan is on) before the cursor
    // arrives. A window under two shards therefore disables prefetch —
    // that degenerate configuration has no room to double-buffer.
    if (impl->options.max_resident_bytes > 0 &&
        impl->prefetch_hold_bytes + 2 * shard.file_bytes >
            impl->options.max_resident_bytes) {
      break;
    }
    shard.queued = true;
    impl->prefetch_hold_bytes += shard.file_bytes;
    impl->prefetch_queue.push_back(s);
    impl->stats.prefetch_issued.fetch_add(1, std::memory_order_relaxed);
    ShardMetrics().prefetch_issued->Increment();
    enqueued = true;
  }
  if (!enqueued) return;
  if (!impl->prefetch_worker.joinable()) {
    impl->prefetch_worker = std::thread([impl] { impl->PrefetchLoop(); });
  }
  impl->prefetch_cv.notify_one();
}

std::vector<std::pair<int64_t, int64_t>> ShardedDataset::ResidencyRanges()
    const {
  return ShardRanges();
}

int64_t ShardedDataset::ResidentUnitCapacity() const {
  const int64_t budget = impl_->options.max_resident_bytes;
  if (budget <= 0) return 0;
  int64_t largest = 0;
  for (const Impl::Shard& shard : impl_->shards) {
    largest = std::max(largest, shard.file_bytes);
  }
  return std::max<int64_t>(budget / std::max<int64_t>(largest, 1), 1);
}

PinnedBlock ShardedDataset::Pin(int64_t begin, int64_t end) const {
  Impl* impl = impl_.get();
  KMEANSLL_CHECK(begin >= 0 && begin < end && end <= impl->manifest.n);

  size_t shard_index;
  const char* base;
  bool degraded = false;
  {
    std::unique_lock<std::mutex> lock(impl->mutex);
    shard_index = impl->ShardIndexOf(begin);
    Impl::Shard& shard = impl->shards[shard_index];
    const bool was_resident = shard.base != nullptr;
    const Status resident = impl->EnsureResident(lock, shard);
    if (!resident.ok()) {
      // Degraded pin: the shard's retry budget is spent. Serve the
      // zero-filled stand-in so the scan completes; status() reports
      // the failure to the driver. No pin accounting — there is no
      // mapping to protect from eviction.
      base = impl->FallbackBase(shard_index);
      degraded = true;
    } else {
      if (shard.protected_) {
        // First pin of a prefetched shard: the demand map (and its page
        // faults) never happened on this thread. Protection ends here;
        // from now on the shard ages out by plain LRU.
        shard.protected_ = false;
        --impl->protected_count;
        impl->prefetch_hold_bytes -= shard.file_bytes;
        if (was_resident) {
          impl->stats.prefetch_hits.fetch_add(1,
                                              std::memory_order_relaxed);
          ShardMetrics().prefetch_hits->Increment();
        }
      }
      ++shard.pin_count;
      shard.last_use = ++impl->use_tick;
      // A fresh map may have pushed residency over the window; evict
      // other, unpinned shards now.
      impl->EvictOverBudget();
      base = shard.base;
    }
  }

  const Impl::Shard& shard = impl->shards[shard_index];
  const int64_t local_first = begin - shard.first_row;
  const int64_t local_end =
      std::min(end - shard.first_row, shard.rows);
  const int64_t d = impl->manifest.dim;

  const char* cursor = base + kShardHeaderBytes;
  const auto* points = reinterpret_cast<const double*>(cursor);
  cursor += shard.rows * d * static_cast<int64_t>(sizeof(double));
  const double* weights = nullptr;
  if (impl->manifest.has_weights) {
    weights = reinterpret_cast<const double*>(cursor);
    cursor += shard.rows * static_cast<int64_t>(sizeof(double));
  }
  const int32_t* labels = nullptr;
  if (impl->manifest.has_labels) {
    labels = reinterpret_cast<const int32_t*>(cursor);
  }

  DatasetView shard_view(ConstMatrixView(points, shard.rows, d),
                         shard.first_row, weights, labels);
  if (degraded) {
    // Fallback blocks are never unmapped, so there is nothing to unpin.
    return PinnedBlock(shard_view.Slice(local_first, local_end), [] {});
  }
  return PinnedBlock(shard_view.Slice(local_first, local_end),
                     [impl, shard_index] { impl->Unpin(shard_index); });
}

Status ShardedDataset::status() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->failure;
}

double ShardedDataset::TotalWeight() const {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->total_weight_cached) return impl_->total_weight;
  }
  double total;
  if (!impl_->manifest.has_weights) {
    total = static_cast<double>(impl_->manifest.n);
  } else {
    KahanSum sum;
    ForEachBlock(*this, 0, n(), [&](const DatasetView& v) {
      for (int64_t i = 0; i < v.rows(); ++i) sum.Add(v.Weight(i));
    });
    total = sum.Total();
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->total_weight_cached = true;
  impl_->total_weight = total;
  return total;
}

}  // namespace kmeansll::data
