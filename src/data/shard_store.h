// Sharded, disk-resident dataset storage — the out-of-core leg of the
// storage layer (see docs/ARCHITECTURE.md "Storage layer").
//
// A sharded dataset is a manifest file ("KMLLSHRD") plus N shard files,
// each an ordinary KMLLDATA binary (data/binary_io.h) holding a
// contiguous row range, so every shard also loads standalone with
// ReadBinary. ShardedDataset implements DatasetSource by memory-mapping
// shards on demand: Pin(begin, end) maps the shard containing `begin`
// (if not already resident), bumps its pin count, and returns a
// DatasetView straight into the mapping — no copy, no parse. An LRU
// window (max_resident_bytes) bounds how much of the data stays mapped:
// unpinned shards are evicted least-recently-used first, while pinned
// shards never evict, so concurrent chunked passes from a thread pool
// are always safe (the window may be exceeded transiently while pins
// demand it).
//
// Determinism: a pinned view exposes the bytes WriteShards wrote, which
// are the bytes the in-memory dataset held, so every consumer of the
// storage layer produces bitwise-identical results over a ShardedDataset
// and over the original Dataset (tests/shard_store_test.cc asserts this
// for k-means||, k-means++, and all three Lloyd variants at pool sizes
// null/1/4 with a window smaller than the data).

#ifndef KMEANSLL_DATA_SHARD_STORE_H_
#define KMEANSLL_DATA_SHARD_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "matrix/dataset.h"
#include "matrix/dataset_view.h"

namespace kmeansll::data {

/// One shard entry of a manifest.
struct ShardInfo {
  std::string file;      ///< shard filename, relative to the manifest
  int64_t rows = 0;      ///< row count of this shard
  int64_t first_row = 0; ///< global index of the shard's first row
};

/// Parsed manifest: dataset shape plus the shard table.
struct ShardManifest {
  int64_t n = 0;
  int64_t dim = 0;
  bool has_weights = false;
  bool has_labels = false;
  std::vector<ShardInfo> shards;
};

/// How WriteShards splits the rows. Exactly one of the two must be
/// positive: `num_shards` splits near-equally (the Dataset::SplitRanges
/// split), `rows_per_shard` caps each shard's row count (last shard may
/// be smaller).
struct ShardWriteOptions {
  int64_t num_shards = 0;
  int64_t rows_per_shard = 0;
};

/// Writes `dataset` as a manifest at `manifest_path` plus shard files
/// "<manifest_path>.shard<i>" next to it (each a standalone KMLLDATA
/// file). Returns the manifest that was written.
Result<ShardManifest> WriteShards(const Dataset& dataset,
                                  const std::string& manifest_path,
                                  const ShardWriteOptions& options);

/// Reads and validates a manifest (shape plausibility, shard table
/// consistency). Does not open the shard files; ShardedDataset::Open
/// validates those.
Result<ShardManifest> ReadShardManifest(const std::string& manifest_path);

/// Residency policy for an open ShardedDataset.
struct ShardedDatasetOptions {
  /// Maximum bytes of shard files kept memory-mapped at once; 0 means
  /// unbounded. Pinned shards never evict, so a window smaller than one
  /// shard degenerates to exactly-one-resident-at-a-time streaming.
  int64_t max_resident_bytes = 0;
};

/// DatasetSource over a sharded on-disk dataset. Thread-safe: Pin and
/// pin release may be called concurrently from pool workers. Movable,
/// not copyable.
class ShardedDataset final : public DatasetSource {
 public:
  /// Residency/IO telemetry (monotonic counters; resident is current).
  struct IoStats {
    int64_t maps = 0;             ///< shard mmap calls (includes re-maps)
    int64_t evictions = 0;        ///< shards unmapped by the LRU window
    int64_t resident_bytes = 0;   ///< bytes currently mapped
    int64_t peak_resident_bytes = 0;
  };

  /// Opens a sharded dataset: parses the manifest and validates every
  /// shard file's header (magic, version, shape, flags) and size against
  /// it up front, so corruption fails here rather than mid-scan. Mapping
  /// is lazy — no shard is mmap'd until first pinned.
  static Result<ShardedDataset> Open(const std::string& manifest_path,
                                     const ShardedDatasetOptions& options =
                                         ShardedDatasetOptions{});

  ShardedDataset(ShardedDataset&&) noexcept;
  ShardedDataset& operator=(ShardedDataset&&) noexcept;
  ShardedDataset(const ShardedDataset&) = delete;
  ShardedDataset& operator=(const ShardedDataset&) = delete;
  ~ShardedDataset() override;

  // DatasetSource:
  int64_t n() const override;
  int64_t dim() const override;
  bool has_weights() const override;
  bool has_labels() const override;
  /// Computed on first call (one streamed pass) and cached.
  double TotalWeight() const override;
  PinnedBlock Pin(int64_t begin, int64_t end) const override;

  int64_t num_shards() const;
  /// Global [begin, end) row range of shard s — e.g. to build
  /// shard-aligned MapReduce partitions (mapreduce/partition.h).
  std::pair<int64_t, int64_t> ShardRows(int64_t s) const;
  /// All shard ranges in order (convenience for MakeAlignedPartitions).
  std::vector<std::pair<int64_t, int64_t>> ShardRanges() const;

  const ShardManifest& manifest() const;
  IoStats io_stats() const;

 private:
  struct Impl;
  explicit ShardedDataset(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_SHARD_STORE_H_
