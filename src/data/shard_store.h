// Sharded, disk-resident dataset storage — the out-of-core leg of the
// storage layer (see docs/ARCHITECTURE.md "Storage layer").
//
// A sharded dataset is a manifest file ("KMLLSHRD") plus N shard files,
// each an ordinary KMLLDATA binary (data/binary_io.h) holding a
// contiguous row range, so every shard also loads standalone with
// ReadBinary. ShardedDataset implements DatasetSource by memory-mapping
// shards on demand: Pin(begin, end) maps the shard containing `begin`
// (if not already resident), bumps its pin count, and returns a
// DatasetView straight into the mapping — no copy, no parse. An LRU
// window (max_resident_bytes) bounds how much of the data stays mapped:
// unpinned shards are evicted least-recently-used first, while pinned
// shards never evict, so concurrent chunked passes from a thread pool
// are always safe (the window may be exceeded transiently while pins
// demand it).
//
// Determinism: a pinned view exposes the bytes WriteShards wrote, which
// are the bytes the in-memory dataset held, so every consumer of the
// storage layer produces bitwise-identical results over a ShardedDataset
// and over the original Dataset (tests/shard_store_test.cc asserts this
// for k-means||, k-means++, and all three Lloyd variants at pool sizes
// null/1/4 with a window smaller than the data).

#ifndef KMEANSLL_DATA_SHARD_STORE_H_
#define KMEANSLL_DATA_SHARD_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "matrix/dataset.h"
#include "matrix/dataset_view.h"
#include "matrix/matrix.h"

namespace kmeansll::data {

/// One shard entry of a manifest.
struct ShardInfo {
  std::string file;      ///< shard filename, relative to the manifest
  int64_t rows = 0;      ///< row count of this shard
  int64_t first_row = 0; ///< global index of the shard's first row
};

/// Parsed manifest: dataset shape plus the shard table.
struct ShardManifest {
  int64_t n = 0;
  int64_t dim = 0;
  bool has_weights = false;
  bool has_labels = false;
  std::vector<ShardInfo> shards;
};

/// How WriteShards splits the rows. Exactly one of the two must be
/// positive: `num_shards` splits near-equally (the Dataset::SplitRanges
/// split), `rows_per_shard` caps each shard's row count (last shard may
/// be smaller).
struct ShardWriteOptions {
  int64_t num_shards = 0;
  int64_t rows_per_shard = 0;
};

/// Writes `dataset` as a manifest at `manifest_path` plus shard files
/// "<manifest_path>.shard<i>" next to it (each a standalone KMLLDATA
/// file). Returns the manifest that was written.
Result<ShardManifest> WriteShards(const Dataset& dataset,
                                  const std::string& manifest_path,
                                  const ShardWriteOptions& options);

/// Reads and validates a manifest (shape plausibility, shard table
/// consistency). Does not open the shard files; ShardedDataset::Open
/// validates those.
Result<ShardManifest> ReadShardManifest(const std::string& manifest_path);

/// Streaming shard sink: produces a sharded dataset (manifest + shard
/// files, the format ShardedDataset::Open reads) without ever
/// materializing a full Dataset — the ingest/transform counterpart of
/// WriteShards. Open fixes the shape, Append streams any number of row
/// blocks (buffered and cut into rows_per_shard shard files as they
/// fill), Finalize flushes the tail shard and writes the manifest.
/// Movable, not copyable; abandoning a writer without Finalize leaves
/// partial shard files but no manifest, so nothing will open them.
class ShardWriter {
 public:
  struct Options {
    int64_t rows_per_shard = 0;  ///< required, > 0 (last shard may be
                                 ///< smaller)
    bool has_weights = false;
    bool has_labels = false;
  };

  /// Starts a sharded dataset at `manifest_path` with `dim` columns.
  /// Shard files are written next to the manifest as WriteShards names
  /// them ("<manifest>.shard<i>").
  static Result<ShardWriter> Open(const std::string& manifest_path,
                                  int64_t dim, const Options& options);

  /// Resumes writing into an EXISTING sharded dataset: loads the
  /// manifest at `manifest_path`, seeds the writer with its shard table,
  /// and numbers new shard files after the existing ones. Finalize then
  /// publishes a combined manifest (old shards + new) atomically — the
  /// existing dataset stays fully readable until that rename lands, so
  /// a crash mid-append leaves at most orphan ".shard<i>" files no
  /// manifest references. This is LiveDataset's seal path: compact the
  /// oplog tail onto the sealed shards without rewriting them. The
  /// manifest's shape (dim, weights, labels) must match the arguments.
  static Result<ShardWriter> OpenForAppend(const std::string& manifest_path,
                                           int64_t dim,
                                           const Options& options);

  ShardWriter(ShardWriter&&) noexcept;
  ShardWriter& operator=(ShardWriter&&) noexcept;
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;
  ~ShardWriter();

  /// Appends every row of `view` (its first_row is irrelevant; rows land
  /// after whatever was appended before). The view's dim must match.
  /// A weight-less view into a weighted writer appends weight 1.0 per
  /// row; a weighted view into a weight-less writer is an error (the
  /// weights would be silently dropped), as is any label mismatch.
  Status Append(const DatasetView& view);

  /// Convenience: appends rows [begin, end) of a source by streaming its
  /// pinned blocks through Append.
  Status AppendRange(const DatasetSource& source, int64_t begin,
                     int64_t end);

  /// Rows appended so far.
  int64_t rows_appended() const;

  /// Flushes the tail shard and writes the manifest; the writer is spent
  /// afterwards (further Append/Finalize calls fail). Fails if nothing
  /// was appended.
  Result<ShardManifest> Finalize();

 private:
  struct Impl;
  explicit ShardWriter(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Residency policy for an open ShardedDataset.
struct ShardedDatasetOptions {
  /// Maximum bytes of shard files kept memory-mapped at once; 0 means
  /// unbounded. Pinned shards never evict, so a window smaller than one
  /// shard degenerates to exactly-one-resident-at-a-time streaming.
  int64_t max_resident_bytes = 0;
  /// Honor PrefetchHint with a background prefetch thread that maps and
  /// touches hinted shards ahead of the scan cursor. Purely a timing
  /// knob: results are bitwise identical either way (hints never change
  /// the bytes a Pin returns), which tests/shard_store_test.cc asserts.
  bool enable_prefetch = true;
  /// Cap on outstanding prefetch work (shards queued plus shards mapped
  /// by the prefetcher and not yet pinned), bounding how far hints can
  /// run ahead of the scan — and therefore how much the prefetcher can
  /// inflate residency beyond the LRU window. >= 1.
  int64_t max_prefetch_shards = 2;
  /// Transient shard-map failures (a demand or prefetch mmap/open that
  /// fails) are retried with capped exponential backoff under this
  /// policy before the dataset degrades (see ShardedDataset::status()).
  RetryPolicy io_retry;
};

/// DatasetSource over a sharded on-disk dataset. Thread-safe: Pin, pin
/// release, and PrefetchHint may be called concurrently from pool
/// workers while the background prefetcher runs. Movable, not copyable.
///
/// Prefetch pipeline: PrefetchHint(begin, end) enqueues the not-yet-
/// resident shards covering the range (up to max_prefetch_shards
/// outstanding) to a background thread that maps each one — publishing
/// the mapping immediately, so a scan that catches up never waits on
/// the warming — and then faults its pages in (madvise(WILLNEED) plus
/// a page-touch pass), so by the time the scan cursor arrives the
/// shard is mapped and its pages are warm — the demand Pin neither
/// issues the map syscall nor minor-faults its way through the scan.
/// A prefetched shard is eviction-protected until its first pin
/// (double-buffered against the LRU window: the window prefers every
/// unprotected candidate first and only reclaims a never-pinned
/// prefetched shard as a last resort, counting it as wasted), so a hint
/// can never evict rows ahead of their own scan. Hints are advisory and
/// asynchronous; they change timing only, never bytes, so sharded runs
/// stay bitwise identical to in-memory runs with prefetch on or off.
class ShardedDataset final : public DatasetSource {
 public:
  /// Residency/IO telemetry. Monotonic counters except resident_bytes
  /// (current). Internally every field is a separate atomic cell, so a
  /// concurrent io_stats() snapshot never tears a field (the test suite
  /// hammers this under TSan); fields are sampled individually, so
  /// cross-field invariants may be momentarily off by one in-flight
  /// update.
  struct IoStats {
    int64_t maps = 0;             ///< shard map calls (demand + prefetch)
    int64_t evictions = 0;        ///< shards unmapped by the LRU window
    int64_t resident_bytes = 0;   ///< bytes currently mapped
    int64_t peak_resident_bytes = 0;
    int64_t prefetch_issued = 0;     ///< shards accepted into the queue
    int64_t prefetch_completed = 0;  ///< shards mapped by the prefetcher
    int64_t prefetch_hits = 0;    ///< pins that found their shard already
                                  ///< prefetched (no demand map, no wait)
    int64_t prefetch_wasted = 0;  ///< prefetched shards evicted before
                                  ///< any pin used them
    int64_t stall_nanos = 0;      ///< time scan threads spent blocked in
                                  ///< Pin on shard I/O (demand maps and
                                  ///< waits on in-flight maps)
    int64_t map_retries = 0;      ///< transient map failures retried
                                  ///< (demand + prefetch)
    int64_t map_failures = 0;     ///< shards whose map retry budget was
                                  ///< exhausted (the scan degraded; see
                                  ///< status())
  };

  /// Opens a sharded dataset: parses the manifest and validates every
  /// shard file's header (magic, version, shape, flags) and size against
  /// it up front, so corruption fails here rather than mid-scan. Mapping
  /// is lazy — no shard is mmap'd until first pinned. Version-2 shards
  /// carry a trailing payload CRC-32, verified once at the shard's
  /// first map: a mismatch degrades that shard exactly like an
  /// exhausted map-retry budget (fallback block + sticky status()),
  /// so silent payload corruption fails a scan cleanly instead of
  /// feeding garbage to the kernels.
  static Result<ShardedDataset> Open(const std::string& manifest_path,
                                     const ShardedDatasetOptions& options =
                                         ShardedDatasetOptions{});

  ShardedDataset(ShardedDataset&&) noexcept;
  ShardedDataset& operator=(ShardedDataset&&) noexcept;
  ShardedDataset(const ShardedDataset&) = delete;
  ShardedDataset& operator=(const ShardedDataset&) = delete;
  ~ShardedDataset() override;

  // DatasetSource:
  int64_t n() const override;
  int64_t dim() const override;
  bool has_weights() const override;
  bool has_labels() const override;
  /// Computed on first call (one streamed pass) and cached.
  double TotalWeight() const override;
  PinnedBlock Pin(int64_t begin, int64_t end) const override;
  /// See the class comment; no-op when options.enable_prefetch is false.
  void PrefetchHint(int64_t begin, int64_t end) const override;
  /// The shard table as residency ranges (drives MakeScanSchedule).
  std::vector<std::pair<int64_t, int64_t>> ResidencyRanges() const override;
  /// floor(max_resident_bytes / largest shard bytes), at least 1; 0 when
  /// the window is unbounded.
  int64_t ResidentUnitCapacity() const override;
  /// Sticky health of the source. OK while every pin has served real
  /// shard bytes. Once a shard exhausts its map retry budget the first
  /// such error is recorded here permanently; the failed Pin (and every
  /// later pin of that shard) serves a zero-filled fallback block so the
  /// scan completes structurally, and the driver that owns the scan
  /// checks status() at its Result boundary — a bad shard fails the
  /// *scan*, never the process.
  Status status() const override;

  int64_t num_shards() const;
  /// Global [begin, end) row range of shard s — e.g. to build
  /// shard-aligned MapReduce partitions (mapreduce/partition.h).
  std::pair<int64_t, int64_t> ShardRows(int64_t s) const;
  /// All shard ranges in order (convenience for MakeAlignedPartitions).
  std::vector<std::pair<int64_t, int64_t>> ShardRanges() const;

  const ShardManifest& manifest() const;
  IoStats io_stats() const;

 private:
  struct Impl;
  explicit ShardedDataset(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_SHARD_STORE_H_
