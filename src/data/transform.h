// Dataset transforms: normalization, shuffling, subsampling. The paper's
// §5.3 experiments run on "a 10% sample of KDDCup1999" — SampleFraction
// provides that; ShuffleRows removes generator ordering before contiguous
// partitioning.

#ifndef KMEANSLL_DATA_TRANSFORM_H_
#define KMEANSLL_DATA_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "matrix/dataset.h"
#include "rng/rng.h"

namespace kmeansll::data {

/// Per-column summary statistics.
struct ColumnStats {
  std::vector<double> mean;
  std::vector<double> stddev;  ///< population stddev
  std::vector<double> min;
  std::vector<double> max;
};

/// Computes per-column stats in one pass.
ColumnStats ComputeColumnStats(const Matrix& m);

/// (x - mean) / stddev per column; columns with stddev == 0 are centered
/// only.
Matrix Standardize(const Matrix& m, const ColumnStats& stats);

/// Maps each column to [0, 1]; constant columns become 0.
Matrix MinMaxScale(const Matrix& m, const ColumnStats& stats);

/// Uniformly permutes the rows (weights/labels follow).
Dataset ShuffleRows(const Dataset& data, rng::Rng rng);

/// Uniform sample without replacement of ceil(fraction * n) rows,
/// fraction in (0, 1].
Result<Dataset> SampleFraction(const Dataset& data, double fraction,
                               rng::Rng rng);

}  // namespace kmeansll::data

#endif  // KMEANSLL_DATA_TRANSFORM_H_
