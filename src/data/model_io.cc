#include "data/model_io.h"

#include <array>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "distance/l2.h"

namespace kmeansll::data {

namespace {

constexpr char kModelMagic[8] = {'K', 'M', 'L', 'L', 'M', 'O', 'D', 'L'};
constexpr int32_t kModelVersion = 2;
constexpr int64_t kMaxInitMethodBytes = 4096;

// Reflected CRC-32 table (IEEE 802.3 polynomial 0xEDB88320), built once.
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int b = 0; b < 8; ++b) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256> kCrcTable = BuildCrcTable();

// Appends raw bytes to the serialization buffer.
void Put(std::string* out, const void* bytes, size_t size) {
  out->append(static_cast<const char*>(bytes), size);
}

template <typename T>
void PutScalar(std::string* out, T value) {
  Put(out, &value, sizeof(T));
}

// Cursor over a fully loaded file; every read checks remaining bytes so
// truncation surfaces as a typed error instead of garbage values.
class Reader {
 public:
  Reader(const std::string& bytes, const std::string& path)
      : bytes_(bytes), path_(path) {}

  Status Read(void* dst, size_t size) {
    if (offset_ + size > bytes_.size()) {
      return Status::IOError("'" + path_ + "' is truncated");
    }
    std::memcpy(dst, bytes_.data() + offset_, size);
    offset_ += size;
    return Status::OK();
  }

  template <typename T>
  Status ReadScalar(T* value) {
    return Read(value, sizeof(T));
  }

  size_t offset() const { return offset_; }

 private:
  const std::string& bytes_;
  const std::string& path_;
  size_t offset_ = 0;
};

}  // namespace

uint32_t Crc32(const void* bytes, size_t size, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

ModelArtifact MakeModelArtifact(Matrix centers, ModelMetadata metadata) {
  ModelArtifact artifact;
  artifact.center_norms.resize(static_cast<size_t>(centers.rows()));
  for (int64_t c = 0; c < centers.rows(); ++c) {
    // SquaredNorm is the chain RowSquaredNorms uses, so the stored norms
    // are bitwise the ones every expanded-kernel consumer recomputes.
    artifact.center_norms[static_cast<size_t>(c)] =
        SquaredNorm(centers.Row(c), centers.cols());
  }
  artifact.centers = std::move(centers);
  artifact.metadata = std::move(metadata);
  return artifact;
}

Status SaveModel(const ModelArtifact& artifact, const std::string& path,
                 int64_t* out_retries) {
  const int64_t k = artifact.centers.rows();
  const int64_t d = artifact.centers.cols();
  if (k <= 0 || d <= 0) {
    return Status::InvalidArgument("model has no centers");
  }
  if (static_cast<int64_t>(artifact.center_norms.size()) != k) {
    return Status::InvalidArgument(
        "center_norms length " +
        std::to_string(artifact.center_norms.size()) +
        " does not match k=" + std::to_string(k));
  }
  const ModelMetadata& md = artifact.metadata;
  if (static_cast<int64_t>(md.init_method.size()) > kMaxInitMethodBytes) {
    return Status::InvalidArgument("init_method string too long");
  }

  // Serialize into memory first: the CRC covers every preceding byte, and
  // a single write keeps a failed save from leaving a file with a valid
  // header but missing payload.
  std::string buf;
  buf.reserve(static_cast<size_t>(128 + md.init_method.size() +
                                  (k * d + k) * 8));
  Put(&buf, kModelMagic, sizeof(kModelMagic));
  PutScalar<int32_t>(&buf, kModelVersion);
  PutScalar<int64_t>(&buf, k);
  PutScalar<int64_t>(&buf, d);
  PutScalar<uint32_t>(&buf, 0);  // flags, reserved
  PutScalar<uint64_t>(&buf, md.seed);
  PutScalar<int64_t>(&buf, md.lloyd_iterations);
  PutScalar<int64_t>(&buf, md.trained_rows);
  PutScalar<double>(&buf, md.seed_cost);
  PutScalar<double>(&buf, md.final_cost);
  PutScalar<int32_t>(&buf, static_cast<int32_t>(md.init_method.size()));
  Put(&buf, md.init_method.data(), md.init_method.size());
  Put(&buf, artifact.centers.data(),
      static_cast<size_t>(k * d) * sizeof(double));
  Put(&buf, artifact.center_norms.data(),
      static_cast<size_t>(k) * sizeof(double));
  PutScalar<uint32_t>(&buf, Crc32(buf.data(), buf.size()));

  // Crash-safe publish: the complete buffer lands under a temp name, is
  // fsynced, and is renamed over `path` — a crash at any point leaves
  // either the previous model or the new one, never a torn file.
  // Transient write failures (injected or real) are retried in place.
  int64_t retries = 0;
  Status written = RetryTransient(
      RetryPolicy{},
      [&] {
        return AtomicWriteFile(path, buf.data(), buf.size(), "model.write");
      },
      &retries);
  if (out_retries != nullptr) *out_retries += retries;
  MetricsRegistry::Global()
      .GetCounter("kmll_model_write_retries_total",
                  "Transient model-artifact write failures retried.")
      ->Increment(retries);
  return written;
}

Result<ModelArtifact> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IOError("read of '" + path + "' failed");
  }

  Reader reader(bytes, path);
  char magic[8];
  KMEANSLL_RETURN_NOT_OK(reader.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kModelMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a kmeansll model file");
  }
  int32_t version = 0;
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&version));
  if (version != kModelVersion) {
    return Status::InvalidArgument(
        "unsupported model version " + std::to_string(version) + " in '" +
        path + "' (expected " + std::to_string(kModelVersion) + ")");
  }
  int64_t k = 0, d = 0;
  uint32_t flags = 0;
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&k));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&d));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&flags));
  if (k <= 0 || d <= 0 || k > (int64_t{1} << 32) ||
      d > (int64_t{1} << 24)) {
    return Status::InvalidArgument("implausible model shape in '" + path +
                                   "'");
  }
  if (flags != 0) {
    return Status::InvalidArgument("unknown model flags in '" + path + "'");
  }
  ModelMetadata md;
  int32_t name_len = 0;
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&md.seed));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&md.lloyd_iterations));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&md.trained_rows));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&md.seed_cost));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&md.final_cost));
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&name_len));
  if (name_len < 0 || name_len > kMaxInitMethodBytes) {
    return Status::InvalidArgument("implausible metadata in '" + path +
                                   "'");
  }
  md.init_method.resize(static_cast<size_t>(name_len));
  KMEANSLL_RETURN_NOT_OK(
      reader.Read(md.init_method.data(), md.init_method.size()));

  // The declared shape fixes the exact file size; any surplus bytes are
  // as suspect as missing ones (a concatenated or overwritten file).
  const size_t payload_bytes = static_cast<size_t>(k * d + k) * 8;
  const size_t expected = reader.offset() + payload_bytes + 4;
  if (bytes.size() < expected) {
    return Status::IOError("'" + path + "' is truncated");
  }
  if (bytes.size() > expected) {
    return Status::InvalidArgument("'" + path +
                                   "' has trailing bytes after the model");
  }

  ModelArtifact artifact;
  artifact.metadata = std::move(md);
  artifact.centers = Matrix(k, d);
  KMEANSLL_RETURN_NOT_OK(reader.Read(
      artifact.centers.data(), static_cast<size_t>(k * d) * 8));
  artifact.center_norms.resize(static_cast<size_t>(k));
  KMEANSLL_RETURN_NOT_OK(reader.Read(artifact.center_norms.data(),
                                     static_cast<size_t>(k) * 8));

  uint32_t stored_crc = 0;
  KMEANSLL_RETURN_NOT_OK(reader.ReadScalar(&stored_crc));
  uint32_t actual_crc = Crc32(bytes.data(), bytes.size() - 4);
  fault::FaultKind injected;
  if (fault::CheckKind("model.read", &injected) &&
      injected == fault::FaultKind::kCrcError) {
    actual_crc ^= 0xDEADBEEFu;  // simulate bit rot caught by the checksum
  }
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("CRC mismatch in '" + path +
                                   "': the model file is corrupt");
  }

  // Semantic validation: a CRC-clean file can still have been written by
  // a buggy producer. A served model must be finite and self-consistent.
  for (int64_t c = 0; c < k; ++c) {
    const double* row = artifact.centers.Row(c);
    for (int64_t t = 0; t < d; ++t) {
      if (!std::isfinite(row[t])) {
        return Status::InvalidArgument(
            "non-finite coordinate in center " + std::to_string(c) +
            " of '" + path + "'");
      }
    }
    const double expected_norm = SquaredNorm(row, d);
    if (std::memcmp(&expected_norm,
                    &artifact.center_norms[static_cast<size_t>(c)],
                    sizeof(double)) != 0) {
      return Status::InvalidArgument(
          "stored norm of center " + std::to_string(c) + " in '" + path +
          "' does not match its coordinates");
    }
  }
  return artifact;
}

}  // namespace kmeansll::data
