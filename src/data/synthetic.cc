#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "rng/discrete.h"

namespace kmeansll::data {

namespace {

Status ValidateSizes(int64_t n, int64_t k, int64_t dim) {
  if (n <= 0) return Status::InvalidArgument("n must be positive");
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (dim <= 0) return Status::InvalidArgument("dim must be positive");
  if (n < k) {
    return Status::InvalidArgument("n=" + std::to_string(n) +
                                   " smaller than k=" + std::to_string(k));
  }
  return Status::OK();
}

}  // namespace

Result<LabeledData> GenerateGaussMixture(const GaussMixtureParams& params,
                                         rng::Rng rng) {
  KMEANSLL_RETURN_NOT_OK(ValidateSizes(params.n, params.k, params.dim));
  if (params.center_stddev <= 0 || params.cluster_stddev < 0) {
    return Status::InvalidArgument("stddev parameters must be positive");
  }
  rng::Rng center_rng = rng.Fork(rng::StreamPurpose::kDataGeneration, 0);
  rng::Rng point_rng = rng.Fork(rng::StreamPurpose::kDataGeneration, 1);

  Matrix centers(params.k, params.dim);
  for (int64_t c = 0; c < params.k; ++c) {
    double* row = centers.Row(c);
    for (int64_t j = 0; j < params.dim; ++j) {
      row[j] = center_rng.NextGaussian(0.0, params.center_stddev);
    }
  }

  // Equal-weight mixture: each point picks its component uniformly.
  Matrix points(params.n, params.dim);
  std::vector<int32_t> labels(static_cast<size_t>(params.n));
  for (int64_t i = 0; i < params.n; ++i) {
    auto c = static_cast<int64_t>(point_rng.NextBounded(params.k));
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(c);
    const double* center = centers.Row(c);
    double* row = points.Row(i);
    for (int64_t j = 0; j < params.dim; ++j) {
      row[j] = center[j] + point_rng.NextGaussian(0.0, params.cluster_stddev);
    }
  }

  KMEANSLL_ASSIGN_OR_RETURN(
      Dataset dataset, Dataset::WithLabels(std::move(points), std::move(labels)));
  return LabeledData{std::move(dataset), std::move(centers)};
}

Result<LabeledData> GenerateSpamLike(const SpamLikeParams& params,
                                     rng::Rng rng) {
  KMEANSLL_RETURN_NOT_OK(
      ValidateSizes(params.n, params.num_clusters, params.dim));
  if (params.outlier_fraction < 0 || params.outlier_fraction >= 1) {
    return Status::InvalidArgument("outlier_fraction must be in [0, 1)");
  }
  rng::Rng gen = rng.Fork(rng::StreamPurpose::kDataGeneration, 2);

  const int64_t k = params.num_clusters;
  const int64_t d = params.dim;

  // Per-feature scales: word-frequency-style features vary over a few
  // orders of magnitude (most features small, a few dominant).
  std::vector<double> feature_scale(static_cast<size_t>(d));
  for (int64_t j = 0; j < d; ++j) {
    feature_scale[static_cast<size_t>(j)] =
        std::pow(params.scale_base, gen.NextDouble(0.0, 3.0));
  }

  // Two heavy clusters (spam / ham) plus smaller satellites.
  std::vector<double> mass(static_cast<size_t>(k));
  for (int64_t c = 0; c < k; ++c) {
    mass[static_cast<size_t>(c)] = (c < 2) ? 0.3 : 0.4 / (k - 2);
  }
  auto mass_sampler = rng::AliasTable::Build(mass);
  KMEANSLL_RETURN_NOT_OK(mass_sampler.status());

  Matrix centers(k, d);
  for (int64_t c = 0; c < k; ++c) {
    double* row = centers.Row(c);
    for (int64_t j = 0; j < d; ++j) {
      // Non-negative, scale-dependent means (frequencies can't be < 0).
      row[j] = feature_scale[static_cast<size_t>(j)] *
               std::fabs(gen.NextGaussian(0.5, 0.5));
    }
  }

  Matrix points(params.n, d);
  std::vector<int32_t> labels(static_cast<size_t>(params.n));
  const int64_t num_outliers =
      static_cast<int64_t>(std::llround(params.outlier_fraction * params.n));
  for (int64_t i = 0; i < params.n; ++i) {
    double* row = points.Row(i);
    if (i < num_outliers) {
      // An outlier: extreme value on a handful of features, tiny elsewhere
      // (e.g. one message with a huge run-length feature).
      labels[static_cast<size_t>(i)] = -1;
      for (int64_t j = 0; j < d; ++j) {
        row[j] = 0.01 * gen.NextExponential(1.0);
      }
      int64_t spikes = 1 + static_cast<int64_t>(gen.NextBounded(3));
      for (int64_t s = 0; s < spikes; ++s) {
        auto j = static_cast<int64_t>(gen.NextBounded(d));
        row[j] = feature_scale[static_cast<size_t>(j)] *
                 (50.0 + gen.NextExponential(0.05));
      }
      continue;
    }
    int64_t c = mass_sampler->Sample(gen);
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(c);
    const double* center = centers.Row(c);
    for (int64_t j = 0; j < d; ++j) {
      double scale = feature_scale[static_cast<size_t>(j)];
      // Heavy-tailed within-cluster spread: Gaussian core + occasional
      // exponential excursions, truncated at zero.
      double v = center[j] + 0.3 * scale * gen.NextGaussian();
      if (gen.NextBernoulli(0.05)) v += scale * gen.NextExponential(0.5);
      row[j] = v > 0.0 ? v : 0.0;
    }
  }

  KMEANSLL_ASSIGN_OR_RETURN(
      Dataset dataset, Dataset::WithLabels(std::move(points), std::move(labels)));
  return LabeledData{std::move(dataset), std::move(centers)};
}

Result<LabeledData> GenerateKddLike(const KddLikeParams& params,
                                    rng::Rng rng) {
  KMEANSLL_RETURN_NOT_OK(
      ValidateSizes(params.n, params.num_clusters, params.dim));
  if (params.outlier_fraction < 0 || params.outlier_fraction >= 1) {
    return Status::InvalidArgument("outlier_fraction must be in [0, 1)");
  }
  if (params.scale_spread < 1) {
    return Status::InvalidArgument("scale_spread must be >= 1");
  }
  rng::Rng gen = rng.Fork(rng::StreamPurpose::kDataGeneration, 3);

  const int64_t k = params.num_clusters;
  const int64_t d = params.dim;

  // Power-law cluster masses: KDD traffic is dominated by a couple of
  // classes (normal, smurf/neptune) with a long tail of rare attacks.
  std::vector<double> mass(static_cast<size_t>(k));
  for (int64_t c = 0; c < k; ++c) {
    mass[static_cast<size_t>(c)] =
        1.0 / std::pow(static_cast<double>(c + 1), params.size_power);
  }
  auto mass_sampler = rng::AliasTable::Build(mass);
  KMEANSLL_RETURN_NOT_OK(mass_sampler.status());

  // Feature scales span `scale_spread` (bytes vs. rates vs. counts).
  std::vector<double> feature_scale(static_cast<size_t>(d));
  for (int64_t j = 0; j < d; ++j) {
    double u = static_cast<double>(j) / static_cast<double>(d - 1 > 0 ? d - 1 : 1);
    feature_scale[static_cast<size_t>(j)] =
        std::pow(params.scale_spread, u) * (0.5 + gen.NextDouble());
  }

  Matrix centers(k, d);
  for (int64_t c = 0; c < k; ++c) {
    double* row = centers.Row(c);
    for (int64_t j = 0; j < d; ++j) {
      row[j] = feature_scale[static_cast<size_t>(j)] * gen.NextGaussian(0.0, 2.0);
    }
  }

  Matrix points(params.n, d);
  std::vector<int32_t> labels(static_cast<size_t>(params.n));
  const int64_t num_outliers =
      static_cast<int64_t>(std::llround(params.outlier_fraction * params.n));
  for (int64_t i = 0; i < params.n; ++i) {
    double* row = points.Row(i);
    if (i < num_outliers) {
      labels[static_cast<size_t>(i)] = -1;
      // Extreme flows, hundreds of sigma out — KDD's DoS bursts put some
      // byte counters 3+ orders of magnitude beyond normal traffic, which
      // is what makes Random seeding catastrophically bad (Table 3).
      for (int64_t j = 0; j < d; ++j) {
        row[j] = feature_scale[static_cast<size_t>(j)] *
                 gen.NextGaussian(0.0, 300.0);
      }
      continue;
    }
    int64_t c = mass_sampler->Sample(gen);
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(c);
    const double* center = centers.Row(c);
    for (int64_t j = 0; j < d; ++j) {
      double scale = feature_scale[static_cast<size_t>(j)];
      // Tight clusters relative to center spread, mimicking the highly
      // repetitive flows within one traffic class.
      row[j] = center[j] + 0.1 * scale * gen.NextGaussian();
    }
  }

  KMEANSLL_ASSIGN_OR_RETURN(
      Dataset dataset, Dataset::WithLabels(std::move(points), std::move(labels)));
  return LabeledData{std::move(dataset), std::move(centers)};
}

Result<Dataset> GenerateUniform(int64_t n, int64_t dim, double lo, double hi,
                                rng::Rng rng) {
  KMEANSLL_RETURN_NOT_OK(ValidateSizes(n, 1, dim));
  if (!(lo < hi)) return Status::InvalidArgument("need lo < hi");
  rng::Rng gen = rng.Fork(rng::StreamPurpose::kDataGeneration, 4);
  Matrix points(n, dim);
  for (int64_t i = 0; i < n; ++i) {
    double* row = points.Row(i);
    for (int64_t j = 0; j < dim; ++j) row[j] = gen.NextDouble(lo, hi);
  }
  return Dataset(std::move(points));
}

Result<LabeledData> GenerateSeparatedClusters(int64_t k, int64_t per_cluster,
                                              int64_t dim, double separation,
                                              rng::Rng rng) {
  KMEANSLL_RETURN_NOT_OK(ValidateSizes(k * per_cluster, k, dim));
  if (separation <= 0) {
    return Status::InvalidArgument("separation must be positive");
  }
  rng::Rng gen = rng.Fork(rng::StreamPurpose::kDataGeneration, 5);

  // Centers on a coarse integer lattice scaled by `separation`: any two
  // centers are at least `separation` apart.
  Matrix centers(k, dim);
  int64_t side = 1;
  while (side * side < k && dim >= 2) ++side;
  for (int64_t c = 0; c < k; ++c) {
    double* row = centers.Row(c);
    for (int64_t j = 0; j < dim; ++j) row[j] = 0.0;
    if (dim >= 2) {
      row[0] = separation * static_cast<double>(c % side);
      row[1] = separation * static_cast<double>(c / side);
    } else {
      row[0] = separation * static_cast<double>(c);
    }
  }

  const int64_t n = k * per_cluster;
  Matrix points(n, dim);
  std::vector<int32_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int64_t c = i / per_cluster;
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(c);
    const double* center = centers.Row(c);
    double* row = points.Row(i);
    for (int64_t j = 0; j < dim; ++j) {
      row[j] = center[j] + gen.NextGaussian();
    }
  }
  KMEANSLL_ASSIGN_OR_RETURN(
      Dataset dataset, Dataset::WithLabels(std::move(points), std::move(labels)));
  return LabeledData{std::move(dataset), std::move(centers)};
}

}  // namespace kmeansll::data
