#include "data/transform.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/math_util.h"

namespace kmeansll::data {

ColumnStats ComputeColumnStats(const Matrix& m) {
  const auto d = static_cast<size_t>(m.cols());
  ColumnStats stats;
  stats.mean.assign(d, 0.0);
  stats.stddev.assign(d, 0.0);
  stats.min.assign(d, std::numeric_limits<double>::infinity());
  stats.max.assign(d, -std::numeric_limits<double>::infinity());
  if (m.rows() == 0) return stats;

  std::vector<KahanSum> sums(d), squares(d);
  for (int64_t i = 0; i < m.rows(); ++i) {
    const double* row = m.Row(i);
    for (size_t j = 0; j < d; ++j) {
      sums[j].Add(row[j]);
      stats.min[j] = std::min(stats.min[j], row[j]);
      stats.max[j] = std::max(stats.max[j], row[j]);
    }
  }
  const double n = static_cast<double>(m.rows());
  for (size_t j = 0; j < d; ++j) stats.mean[j] = sums[j].Total() / n;
  for (int64_t i = 0; i < m.rows(); ++i) {
    const double* row = m.Row(i);
    for (size_t j = 0; j < d; ++j) {
      double delta = row[j] - stats.mean[j];
      squares[j].Add(delta * delta);
    }
  }
  for (size_t j = 0; j < d; ++j) {
    stats.stddev[j] = std::sqrt(squares[j].Total() / n);
  }
  return stats;
}

Matrix Standardize(const Matrix& m, const ColumnStats& stats) {
  Matrix out(m.rows(), m.cols());
  for (int64_t i = 0; i < m.rows(); ++i) {
    const double* src = m.Row(i);
    double* dst = out.Row(i);
    for (int64_t j = 0; j < m.cols(); ++j) {
      auto ji = static_cast<size_t>(j);
      double centered = src[j] - stats.mean[ji];
      dst[j] = stats.stddev[ji] > 0.0 ? centered / stats.stddev[ji]
                                      : centered;
    }
  }
  return out;
}

Matrix MinMaxScale(const Matrix& m, const ColumnStats& stats) {
  Matrix out(m.rows(), m.cols());
  for (int64_t i = 0; i < m.rows(); ++i) {
    const double* src = m.Row(i);
    double* dst = out.Row(i);
    for (int64_t j = 0; j < m.cols(); ++j) {
      auto ji = static_cast<size_t>(j);
      double range = stats.max[ji] - stats.min[ji];
      dst[j] = range > 0.0 ? (src[j] - stats.min[ji]) / range : 0.0;
    }
  }
  return out;
}

Dataset ShuffleRows(const Dataset& data, rng::Rng rng) {
  rng::Rng gen = rng.Fork(rng::StreamPurpose::kShuffle);
  std::vector<int64_t> order(static_cast<size_t>(data.n()));
  std::iota(order.begin(), order.end(), int64_t{0});
  // Fisher–Yates with our deterministic stream.
  for (int64_t i = data.n() - 1; i > 0; --i) {
    auto j = static_cast<int64_t>(gen.NextBounded(i + 1));
    std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(j)]);
  }
  return data.Gather(order);
}

Result<Dataset> SampleFraction(const Dataset& data, double fraction,
                               rng::Rng rng) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  auto target = static_cast<int64_t>(
      std::ceil(fraction * static_cast<double>(data.n())));
  if (target >= data.n()) return data.Gather([&] {
    std::vector<int64_t> all(static_cast<size_t>(data.n()));
    std::iota(all.begin(), all.end(), int64_t{0});
    return all;
  }());

  rng::Rng gen = rng.Fork(rng::StreamPurpose::kShuffle, 1);
  // Floyd's algorithm: exactly `target` distinct indices.
  std::vector<int64_t> chosen;
  chosen.reserve(static_cast<size_t>(target));
  std::vector<bool> used(static_cast<size_t>(data.n()), false);
  for (int64_t j = data.n() - target; j < data.n(); ++j) {
    auto t = static_cast<int64_t>(gen.NextBounded(j + 1));
    if (used[static_cast<size_t>(t)]) t = j;
    used[static_cast<size_t>(t)] = true;
    chosen.push_back(t);
  }
  std::sort(chosen.begin(), chosen.end());
  return data.Gather(chosen);
}

}  // namespace kmeansll::data
