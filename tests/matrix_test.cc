// Tests for src/matrix: AlignedBuffer, Matrix, Dataset.

#include <gtest/gtest.h>
#include <cmath>

#include <cstdint>
#include <utility>
#include <vector>

#include "matrix/aligned_buffer.h"
#include "matrix/dataset.h"
#include "matrix/matrix.h"

namespace kmeansll {
namespace {

// ---------------------------------------------------------- AlignedBuffer

TEST(AlignedBufferTest, StartsEmpty) {
  AlignedBuffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBufferTest, SizedConstructionZeroInitializes) {
  AlignedBuffer b(100);
  ASSERT_EQ(b.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(b[i], 0.0);
}

TEST(AlignedBufferTest, DataIs64ByteAligned) {
  for (size_t size : {1, 7, 64, 1000}) {
    AlignedBuffer b(size);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % 64, 0u)
        << "size " << size;
  }
}

TEST(AlignedBufferTest, ResizePreservesPrefixAndZeroesSuffix) {
  AlignedBuffer b(4);
  for (size_t i = 0; i < 4; ++i) b[i] = static_cast<double>(i + 1);
  b.Resize(8);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(b[i], static_cast<double>(i + 1));
  for (size_t i = 4; i < 8; ++i) EXPECT_EQ(b[i], 0.0);
  b.Resize(2);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[1], 2.0);
  // Growing again re-zeroes the previously truncated region.
  b.Resize(4);
  EXPECT_EQ(b[2], 0.0);
}

TEST(AlignedBufferTest, AppendGrowsAmortized) {
  AlignedBuffer b;
  std::vector<double> chunk = {1.0, 2.0, 3.0};
  for (int rep = 0; rep < 100; ++rep) b.Append(chunk.data(), chunk.size());
  ASSERT_EQ(b.size(), 300u);
  for (size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(b[i], static_cast<double>(i % 3 + 1));
  }
}

TEST(AlignedBufferTest, ReserveDoesNotChangeSize) {
  AlignedBuffer b(3);
  b.Reserve(1000);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_GE(b.capacity(), 1000u);
}

TEST(AlignedBufferTest, CopySemantics) {
  AlignedBuffer a(5);
  for (size_t i = 0; i < 5; ++i) a[i] = static_cast<double>(i);
  AlignedBuffer copy(a);
  EXPECT_EQ(copy.size(), 5u);
  copy[0] = 99.0;
  EXPECT_EQ(a[0], 0.0);  // deep copy
  AlignedBuffer assigned;
  assigned = a;
  EXPECT_EQ(assigned.size(), 5u);
  EXPECT_EQ(assigned[4], 4.0);
}

TEST(AlignedBufferTest, MoveSemantics) {
  AlignedBuffer a(5);
  a[2] = 7.0;
  const double* ptr = a.data();
  AlignedBuffer moved(std::move(a));
  EXPECT_EQ(moved.data(), ptr);  // no reallocation
  EXPECT_EQ(moved[2], 7.0);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

// ----------------------------------------------------------------- Matrix

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(m.At(i, j), 0.0);
  }
}

TEST(MatrixTest, FromValuesLaysOutRowMajor) {
  Matrix m = Matrix::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.At(0, 0), 1.0);
  EXPECT_EQ(m.At(0, 2), 3.0);
  EXPECT_EQ(m.At(1, 0), 4.0);
  EXPECT_EQ(m.At(1, 2), 6.0);
  EXPECT_EQ(m.Row(1)[1], 5.0);
}

TEST(MatrixTest, AppendRowGrows) {
  Matrix m(3);
  EXPECT_TRUE(m.empty());
  std::vector<double> r1 = {1, 2, 3}, r2 = {4, 5, 6};
  m.AppendRow(r1.data());
  m.AppendRow(r2.data());
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.At(1, 2), 6.0);
}

TEST(MatrixTest, AppendRowsConcatenates) {
  Matrix a = Matrix::FromValues(1, 2, {1, 2});
  Matrix b = Matrix::FromValues(2, 2, {3, 4, 5, 6});
  a.AppendRows(b);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.At(2, 1), 6.0);
  Matrix empty(2);
  a.AppendRows(empty);
  EXPECT_EQ(a.rows(), 3);
}

TEST(MatrixTest, GatherRowsCopiesSelection) {
  Matrix m = Matrix::FromValues(4, 2, {0, 0, 1, 1, 2, 2, 3, 3});
  Matrix g = m.GatherRows({3, 1, 1});
  ASSERT_EQ(g.rows(), 3);
  EXPECT_EQ(g.At(0, 0), 3.0);
  EXPECT_EQ(g.At(1, 0), 1.0);
  EXPECT_EQ(g.At(2, 1), 1.0);
}

TEST(MatrixTest, EqualityIsElementwise) {
  Matrix a = Matrix::FromValues(2, 2, {1, 2, 3, 4});
  Matrix b = Matrix::FromValues(2, 2, {1, 2, 3, 4});
  Matrix c = Matrix::FromValues(2, 2, {1, 2, 3, 5});
  Matrix d = Matrix::FromValues(1, 4, {1, 2, 3, 4});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(MatrixTest, ZeroClearsValues) {
  Matrix m = Matrix::FromValues(2, 2, {1, 2, 3, 4});
  m.Zero();
  EXPECT_TRUE(m == Matrix(2, 2));
}

TEST(MatrixTest, RowSpanViewsAreLive) {
  Matrix m(2, 3);
  auto span = m.RowSpan(1);
  span[2] = 9.0;
  EXPECT_EQ(m.At(1, 2), 9.0);
}

// ---------------------------------------------------------------- Dataset

TEST(DatasetTest, UnweightedDefaults) {
  Dataset d(Matrix::FromValues(3, 2, {1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(d.n(), 3);
  EXPECT_EQ(d.dim(), 2);
  EXPECT_FALSE(d.has_weights());
  EXPECT_EQ(d.Weight(0), 1.0);
  EXPECT_DOUBLE_EQ(d.TotalWeight(), 3.0);
  EXPECT_FALSE(d.has_labels());
}

TEST(DatasetTest, WithWeightsValidates) {
  Matrix points = Matrix::FromValues(2, 1, {1, 2});
  EXPECT_FALSE(Dataset::WithWeights(points, {1.0}).ok());
  EXPECT_FALSE(Dataset::WithWeights(points, {1.0, -2.0}).ok());
  EXPECT_FALSE(
      Dataset::WithWeights(points, {1.0, std::nan("")}).ok());
  auto d = Dataset::WithWeights(points, {2.0, 3.0});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->has_weights());
  EXPECT_DOUBLE_EQ(d->Weight(1), 3.0);
  EXPECT_DOUBLE_EQ(d->TotalWeight(), 5.0);
}

TEST(DatasetTest, WithLabelsValidates) {
  Matrix points = Matrix::FromValues(2, 1, {1, 2});
  EXPECT_FALSE(Dataset::WithLabels(points, {0}).ok());
  auto d = Dataset::WithLabels(points, {4, -1});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->has_labels());
  EXPECT_EQ(d->labels()[1], -1);
}

TEST(DatasetTest, GatherCarriesWeightsAndLabels) {
  Matrix points = Matrix::FromValues(3, 1, {10, 20, 30});
  auto weighted = Dataset::WithWeights(points, {1.0, 2.0, 3.0});
  ASSERT_TRUE(weighted.ok());
  Dataset g = weighted->Gather({2, 0});
  EXPECT_EQ(g.n(), 2);
  EXPECT_EQ(g.Point(0)[0], 30.0);
  EXPECT_DOUBLE_EQ(g.Weight(0), 3.0);
  EXPECT_DOUBLE_EQ(g.Weight(1), 1.0);
}

TEST(DatasetTest, SplitRangesCoverExactly) {
  Dataset d(Matrix(10, 1));
  auto ranges = d.SplitRanges(3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<int64_t, int64_t>{0, 4}));
  EXPECT_EQ(ranges[1], (std::pair<int64_t, int64_t>{4, 7}));
  EXPECT_EQ(ranges[2], (std::pair<int64_t, int64_t>{7, 10}));
}

TEST(DatasetTest, SplitMorePartsThanRowsYieldsEmptyTails) {
  Dataset d(Matrix(2, 1));
  auto ranges = d.SplitRanges(5);
  ASSERT_EQ(ranges.size(), 5u);
  int64_t total = 0;
  for (auto [b, e] : ranges) total += e - b;
  EXPECT_EQ(total, 2);
}

}  // namespace
}  // namespace kmeansll
