// Tests for the zipf sampler and the YCSB-style workload generator:
// the seeded-determinism contract (bitwise replay), zipf skew sanity
// against the exact model probabilities, and mix-ratio accounting.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/rng.h"
#include "rng/zipf.h"
#include "serving/workload.h"

namespace kmeansll {
namespace {

using rng::Rng;
using rng::ZipfGenerator;
using serving::WorkloadGenerator;
using serving::WorkloadOp;
using serving::WorkloadOpType;
using serving::WorkloadSpec;

// --- ZipfGenerator -------------------------------------------------------

TEST(ZipfTest, DrawsAreInRange) {
  const ZipfGenerator zipf(100, 0.99);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const int64_t r = zipf.Next(rng);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 100);
  }
}

TEST(ZipfTest, SameSeedReplaysBitwise) {
  const ZipfGenerator zipf(1000, 0.9);
  Rng a(42), b(42);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(zipf.Next(a), zipf.Next(b)) << "draw " << i;
  }
}

TEST(ZipfTest, ItemProbabilitiesSumToOne) {
  const ZipfGenerator zipf(257, 0.8);
  double total = 0.0;
  for (int64_t r = 0; r < 257; ++r) total += zipf.ItemProbability(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Monotone decreasing in rank.
  for (int64_t r = 1; r < 257; ++r) {
    EXPECT_LT(zipf.ItemProbability(r), zipf.ItemProbability(r - 1));
  }
}

// Empirical frequencies track the exact model probabilities. Ranks 0
// and 1 are exact inversion branches, so a 200k-draw estimate is tight;
// ranks >= 2 come from the continuous-CDF approximation in the Gray
// et al. inversion, whose bias pow(..., 1/(1-theta)) amplifies at high
// theta — YCSB's ZipfianGenerator shares it — so they get a looser
// band. The head must still be hot by the model's margin.
TEST(ZipfTest, FrequenciesMatchModelProbabilities) {
  const int64_t n = 100;
  const double theta = 0.99;
  const int64_t draws = 200000;
  const ZipfGenerator zipf(n, theta);
  Rng rng(123);
  std::vector<int64_t> freq(n, 0);
  for (int64_t i = 0; i < draws; ++i) ++freq[zipf.Next(rng)];

  for (int64_t r = 0; r < 10; ++r) {
    const double expected = zipf.ItemProbability(r) * draws;
    ASSERT_GT(expected, 500.0);  // head ranks only: estimate is tight
    const double tolerance = (r < 2 ? 0.05 : 0.25) * expected;
    EXPECT_NEAR(freq[r], expected, tolerance)
        << "rank " << r << " empirical " << freq[r] << " expected "
        << expected;
  }
  // YCSB theta=0.99, n=100: the hottest rank carries ~19% of the mass.
  EXPECT_GT(freq[0], draws / 10);
  EXPECT_GT(freq[0], 5 * freq[n - 1]);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  const int64_t n = 16;
  const ZipfGenerator zipf(n, 0.0);
  for (int64_t r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(zipf.ItemProbability(r), 1.0 / n);
  }
  Rng rng(9);
  const int64_t draws = 160000;
  std::vector<int64_t> freq(n, 0);
  for (int64_t i = 0; i < draws; ++i) ++freq[zipf.Next(rng)];
  for (int64_t r = 0; r < n; ++r) {
    EXPECT_NEAR(freq[r], draws / n, 0.1 * draws / n) << "rank " << r;
  }
}

TEST(ZipfTest, SingleItemAlwaysRankZero) {
  const ZipfGenerator zipf(1, 0.9);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(rng), 0);
  EXPECT_DOUBLE_EQ(zipf.ItemProbability(0), 1.0);
}

// --- WorkloadGenerator ---------------------------------------------------

WorkloadSpec TestSpec() {
  WorkloadSpec spec;
  spec.num_models = 8;
  spec.model_theta = 0.99;
  spec.query_pool = 512;
  spec.query_theta = 0.8;
  spec.mix = {0.7, 0.2, 0.1};
  spec.seed = 20260808;
  return spec;
}

// The contract the harness leans on: the op stream is a pure function
// of (seed, stream_index), bitwise.
TEST(WorkloadTest, SameSeedAndStreamReplaysBitwise) {
  const WorkloadSpec spec = TestSpec();
  WorkloadGenerator a(spec, 3), b(spec, 3);
  const std::vector<WorkloadOp> ops = a.Take(10000);
  EXPECT_EQ(ops, b.Take(10000));

  // Take() and repeated Next() walk the same stream.
  WorkloadGenerator c(spec, 3);
  for (const WorkloadOp& op : ops) {
    const WorkloadOp got = c.Next();
    ASSERT_EQ(got, op);
  }
}

TEST(WorkloadTest, DifferentStreamsAndSeedsDiffer) {
  const WorkloadSpec spec = TestSpec();
  WorkloadGenerator base(spec, 0), stream1(spec, 1);
  WorkloadSpec reseeded = spec;
  reseeded.seed = spec.seed + 1;
  WorkloadGenerator other_seed(reseeded, 0);

  const std::vector<WorkloadOp> ops = base.Take(1000);
  EXPECT_NE(ops, stream1.Take(1000));
  EXPECT_NE(ops, other_seed.Take(1000));
}

TEST(WorkloadTest, OpsStayInBounds) {
  const WorkloadSpec spec = TestSpec();
  WorkloadGenerator gen(spec, 0);
  for (int i = 0; i < 20000; ++i) {
    const WorkloadOp op = gen.Next();
    ASSERT_GE(op.model, 0);
    ASSERT_LT(op.model, spec.num_models);
    ASSERT_GE(op.row, 0);
    ASSERT_LT(op.row, spec.query_pool);
  }
}

// Mix-ratio accounting: empirical op-type fractions track the
// normalized weights (weights need not be pre-normalized).
TEST(WorkloadTest, MixRatiosAreHonored) {
  WorkloadSpec spec = TestSpec();
  spec.mix = {6.0, 3.0, 1.0};  // 60% / 30% / 10% after normalization
  WorkloadGenerator gen(spec, 0);
  const int64_t draws = 100000;
  int64_t counts[3] = {0, 0, 0};
  for (int64_t i = 0; i < draws; ++i) {
    ++counts[static_cast<int>(gen.Next().type)];
  }
  EXPECT_NEAR(counts[0], 0.6 * draws, 0.03 * draws);
  EXPECT_NEAR(counts[1], 0.3 * draws, 0.03 * draws);
  EXPECT_NEAR(counts[2], 0.1 * draws, 0.03 * draws);
}

TEST(WorkloadTest, PureAssignMixNeverEmitsOtherOps) {
  WorkloadSpec spec = TestSpec();
  spec.mix = {1.0, 0.0, 0.0};
  WorkloadGenerator gen(spec, 0);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(gen.Next().type, WorkloadOpType::kAssignOne);
  }
}

// Model-skew flows through: the hottest model rank dominates the stream
// with frequencies tracking the zipf model probabilities.
TEST(WorkloadTest, ModelSkewMatchesZipfModel) {
  const WorkloadSpec spec = TestSpec();
  const ZipfGenerator reference(spec.num_models, spec.model_theta);
  WorkloadGenerator gen(spec, 0);
  const int64_t draws = 100000;
  std::vector<int64_t> freq(spec.num_models, 0);
  for (int64_t i = 0; i < draws; ++i) ++freq[gen.Next().model];
  for (int64_t m = 0; m < spec.num_models; ++m) {
    const double expected = reference.ItemProbability(m) * draws;
    // Loose band: the inversion's mid-rank bias (see
    // FrequenciesMatchModelProbabilities) applies here too.
    EXPECT_NEAR(freq[m], expected, 0.25 * expected + 50.0) << "model " << m;
  }
}

}  // namespace
}  // namespace kmeansll
