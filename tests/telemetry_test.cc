// Tests for the LatencyHistogram percentile telemetry: bucket-layout
// invariants, percentile accuracy against an exact sorted reference
// (within the documented 1/2^kSubBits relative bound, always
// conservative), and concurrent-recorder non-tearing. The whole suite
// runs in CI's TSan job, so the wait-free Record() path is race-checked
// there, not just logically here.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/telemetry.h"
#include "rng/rng.h"

namespace kmeansll {
namespace {

// --- Bucket layout -------------------------------------------------------

TEST(LatencyHistogramTest, LinearRegionIsExact) {
  for (int64_t v = 0; v < LatencyHistogram::kLinearMax; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketFor(v), v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(static_cast<int>(v)), v);
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndInRange) {
  int prev = -1;
  // Walk a dense set of values spanning the full range: every value's
  // bucket is in range, non-decreasing, and contains the value.
  for (int64_t v = 0; v < (int64_t{1} << 20); v += 17) {
    const int b = LatencyHistogram::BucketFor(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, LatencyHistogram::kNumBuckets);
    ASSERT_GE(b, prev);
    ASSERT_GE(LatencyHistogram::BucketUpperBound(b), v);
    prev = b;
  }
  // Powers of two up to the top of the int64 range.
  prev = -1;
  for (int shift = 0; shift < 63; ++shift) {
    const int64_t v = int64_t{1} << shift;
    const int b = LatencyHistogram::BucketFor(v);
    ASSERT_GE(b, prev);
    ASSERT_LT(b, LatencyHistogram::kNumBuckets);
    ASSERT_GE(LatencyHistogram::BucketUpperBound(b), v);
    prev = b;
  }
  EXPECT_EQ(LatencyHistogram::BucketFor(INT64_MAX),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, UpperBoundRelativeErrorIsBounded) {
  // The value a percentile reports (the bucket upper bound) overshoots
  // the true sample by at most 1/2^kSubBits of it.
  rng::Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    const int64_t v =
        static_cast<int64_t>(rng.NextBounded(uint64_t{1} << 40));
    const int64_t ub = LatencyHistogram::BucketUpperBound(
        LatencyHistogram::BucketFor(v));
    ASSERT_GE(ub, v);
    ASSERT_LE(static_cast<double>(ub - v),
              static_cast<double>(v) / LatencyHistogram::kSub + 1.0)
        << "value " << v << " upper bound " << ub;
  }
}

// --- Recording and percentiles -------------------------------------------

TEST(LatencyHistogramTest, CountsSumMaxAndClamping) {
  LatencyHistogram h;
  h.Record(5);
  h.Record(10);
  h.Record(-3);  // clamps to 0
  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.sum, 15);
  EXPECT_EQ(s.max, 10);
  EXPECT_EQ(s.buckets[LatencyHistogram::BucketFor(0)], 1);
  EXPECT_EQ(s.buckets[5], 1);
  EXPECT_EQ(s.buckets[10], 1);
  EXPECT_DOUBLE_EQ(s.MeanValue(), 5.0);
}

TEST(LatencyHistogramTest, EmptySnapshotReportsZero) {
  LatencyHistogram h;
  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.PercentileValue(50.0), 0);
  EXPECT_DOUBLE_EQ(s.MeanValue(), 0.0);
}

// Percentiles against the exact sorted reference: the reported value
// never undershoots the true order statistic and overshoots by at most
// the documented 12.5% (+1 for the integer grid).
TEST(LatencyHistogramTest, PercentilesTrackSortedReference) {
  rng::Rng rng(77);
  LatencyHistogram h;
  std::vector<int64_t> samples;
  for (int i = 0; i < 50000; ++i) {
    // Mixed regimes: a hot sub-microsecond cluster, a body, and a tail.
    int64_t v;
    const double u = rng.NextDouble();
    if (u < 0.5) {
      v = static_cast<int64_t>(rng.NextBounded(16));
    } else if (u < 0.95) {
      v = static_cast<int64_t>(100 + rng.NextBounded(10000));
    } else {
      v = static_cast<int64_t>(rng.NextBounded(uint64_t{1} << 30));
    }
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const LatencyHistogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.count, static_cast<int64_t>(samples.size()));

  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0,
                         99.9, 100.0}) {
    const auto rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size())));
    const int64_t exact = samples[rank - 1];
    const int64_t reported = s.PercentileValue(p);
    ASSERT_GE(reported, exact) << "p" << p << " undershoots";
    ASSERT_LE(static_cast<double>(reported - exact),
              static_cast<double>(exact) / LatencyHistogram::kSub + 1.0)
        << "p" << p << " exact " << exact << " reported " << reported;
  }
  EXPECT_EQ(s.max, samples.back());
}

// Four concurrent recorders, no tearing: after the join the snapshot
// accounts for every sample exactly (count, sum, max, and every
// bucket). Run under TSan in CI, this also proves Record() is
// data-race-free, which is the IoStats-pattern claim.
TEST(LatencyHistogramTest, ConcurrentRecordersDoNotTear) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  LatencyHistogram h;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &go, t] {
      rng::Rng rng(1000 + static_cast<uint64_t>(t));
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<int64_t>(rng.NextBounded(1 << 20)));
        if (i % 1024 == 0) {
          // Concurrent snapshots while recorders run: per-cell values
          // must always be plausible (no torn/negative cells).
          const LatencyHistogram::Snapshot s = h.snapshot();
          ASSERT_GE(s.count, 0);
          ASSERT_GE(s.sum, 0);
          ASSERT_GE(s.max, 0);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  // Replay the same streams serially for the exact expectation.
  int64_t want_sum = 0, want_max = 0;
  std::vector<int64_t> want_buckets(LatencyHistogram::kNumBuckets, 0);
  for (int t = 0; t < kThreads; ++t) {
    rng::Rng rng(1000 + static_cast<uint64_t>(t));
    for (int i = 0; i < kPerThread; ++i) {
      const auto v = static_cast<int64_t>(rng.NextBounded(1 << 20));
      want_sum += v;
      want_max = std::max(want_max, v);
      ++want_buckets[LatencyHistogram::BucketFor(v)];
    }
  }
  const LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(s.sum, want_sum);
  EXPECT_EQ(s.max, want_max);
  int64_t bucket_total = 0;
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    ASSERT_EQ(s.buckets[b], want_buckets[b]) << "bucket " << b;
    bucket_total += s.buckets[b];
  }
  EXPECT_EQ(bucket_total, s.count);
}

}  // namespace
}  // namespace kmeansll
