// Crash-safe continuous-ingest suite: the write-ahead oplog, the
// LiveDataset recovery/replay protocol, and the kill-point matrix
// (docs/ARCHITECTURE.md "Ingest & freshness").
//
// The contracts under test:
//   * The oplog acknowledges only CRC-whole records. Open() keeps the
//     longest valid prefix and TRUNCATES the torn tail — torn bytes are
//     never replayed as data — and a torn write poisons the log until
//     the owner reopens it.
//   * Recovery is a pure function of the surviving bytes: a run killed
//     at ANY ingest fault site ("oplog.append", "oplog.fsync",
//     "oplog.seal", "ingest.compact", the manifest rename) and then
//     reopened converges to row contents, shard files, and oplog bytes
//     BITWISE identical to an uninterrupted run's.
//   * Backpressure is a clean Unavailable, not an overflow.
//   * Readers are never blocked by Append/Seal and always see a
//     consistent prefix (this file is part of the TSan job).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/file_util.h"
#include "common/result.h"
#include "data/live_dataset.h"
#include "data/oplog.h"
#include "matrix/dataset_view.h"
#include "rng/rng.h"

namespace kmeansll {
namespace {

using data::IngestStats;
using data::LiveDataset;
using data::LiveDatasetOptions;
using data::OpLog;
using data::OpLogOptions;
using data::OpLogStats;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultRule;

#if !KMEANSLL_FAULT_INJECTION
#error "live_ingest_test requires KMEANSLL_FAULT_INJECTION=1 (the default)"
#endif

/// Every test disarms the process-wide injector on exit, pass or fail.
struct FaultGuard {
  FaultGuard() { FaultInjector::Global().Reset(); }
  ~FaultGuard() { FaultInjector::Global().Reset(); }
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "kmll_live_" + name;
}

/// Removes every file a LiveDataset rooted at `base` can leave behind,
/// so reruns of one test binary start from a clean slate.
void CleanBase(const std::string& base) {
  std::remove((base + ".oplog").c_str());
  std::remove((base + ".manifest").c_str());
  for (int i = 0; i < 64; ++i) {
    std::remove((base + ".manifest.shard" + std::to_string(i)).c_str());
  }
}

/// Deterministic coordinate for global row r, column j — dim-agnostic,
/// so expected contents are a pure function of the row index.
double RowAt(int64_t r, int64_t j) {
  return 10.0 * rng::UniformAtIndex(0x11FE, static_cast<uint64_t>(
                                                r * 131 + j)) -
         5.0;
}

std::vector<double> MakeBatch(int64_t first_row, int64_t rows,
                              int64_t dim) {
  std::vector<double> out(static_cast<size_t>(rows * dim));
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < dim; ++j) {
      out[static_cast<size_t>(i * dim + j)] = RowAt(first_row + i, j);
    }
  }
  return out;
}

std::vector<double> ExpectedRows(int64_t n, int64_t dim) {
  return MakeBatch(0, n, dim);
}

/// Gathers every row of `ds` in global order via pinned blocks — the
/// reader-side view the bitwise assertions compare.
std::vector<double> GatherRows(const DatasetSource& ds) {
  std::vector<double> out(static_cast<size_t>(ds.n() * ds.dim()));
  if (ds.n() == 0) return out;
  ForEachBlock(ds, 0, ds.n(), [&](const DatasetView& v) {
    for (int64_t i = 0; i < v.rows(); ++i) {
      const double* p = v.Point(i);
      std::copy(p, p + v.dim(),
                out.begin() + static_cast<size_t>(
                                  (v.first_row() + i) * v.dim()));
    }
  });
  return out;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------
// OpLog unit contracts.
// ---------------------------------------------------------------------

struct ReplayedRecord {
  int64_t first_row = 0;
  std::vector<double> points;
  std::vector<double> weights;
};

std::vector<ReplayedRecord> ReplayAll(const OpLog& log,
                                      int64_t min_first_row = 0) {
  std::vector<ReplayedRecord> out;
  Status st = log.Replay(
      min_first_row,
      [&](int64_t first_row, int64_t rows, const double* points,
          const double* weights) {
        ReplayedRecord rec;
        rec.first_row = first_row;
        rec.points.assign(points, points + rows * log.dim());
        if (weights != nullptr) {
          rec.weights.assign(weights, weights + rows);
        }
        out.push_back(std::move(rec));
        return Status::OK();
      });
  EXPECT_TRUE(st.ok()) << st.message();
  return out;
}

TEST(OpLogTest, RoundTripReplayBitwise) {
  FaultGuard guard;
  const std::string path = TempPath("oplog_roundtrip");
  std::remove(path.c_str());
  OpLogOptions options;
  options.has_weights = true;

  Result<OpLog> created = OpLog::Create(path, /*dim=*/3, options);
  ASSERT_TRUE(created.ok()) << created.status().message();
  OpLog log = std::move(created).ValueOrDie();

  // Three records with distinct shapes: (first_row, rows) =
  // (0,2), (2,3), (5,4).
  struct Batch {
    int64_t first_row;
    int64_t rows;
  };
  const Batch batches[] = {{0, 2}, {2, 3}, {5, 4}};
  std::vector<std::vector<double>> points;
  std::vector<std::vector<double>> weights;
  for (const Batch& b : batches) {
    points.push_back(MakeBatch(b.first_row, b.rows, 3));
    std::vector<double> w(static_cast<size_t>(b.rows));
    for (int64_t i = 0; i < b.rows; ++i) w[i] = 0.5 + b.first_row + i;
    weights.push_back(std::move(w));
    ASSERT_TRUE(log.Append(b.first_row, b.rows, points.back().data(),
                           weights.back().data())
                    .ok());
  }
  ASSERT_TRUE(log.Sync().ok());

  OpLogStats stats = log.stats();
  EXPECT_EQ(stats.records_appended, 3);
  EXPECT_EQ(stats.rows_appended, 9);
  EXPECT_GE(stats.syncs, 1);
  EXPECT_GT(log.tail_bytes(), 0);

  std::vector<ReplayedRecord> replayed = ReplayAll(log);
  ASSERT_EQ(replayed.size(), 3u);
  for (size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].first_row, batches[i].first_row);
    EXPECT_TRUE(replayed[i].points == points[i]) << "record " << i;
    EXPECT_TRUE(replayed[i].weights == weights[i]) << "record " << i;
  }

  // Record-level min_first_row filter: records starting before the
  // cutoff are skipped whole (LiveDataset does the row-wise split).
  std::vector<ReplayedRecord> tail = ReplayAll(log, /*min_first_row=*/2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].first_row, 2);
  EXPECT_EQ(tail[1].first_row, 5);
}

TEST(OpLogTest, TornTailTruncatedOnOpen) {
  FaultGuard guard;
  const std::string path = TempPath("oplog_torn_tail");
  std::remove(path.c_str());
  OpLogOptions options;  // no weights

  {
    Result<OpLog> created = OpLog::Create(path, /*dim=*/3, options);
    ASSERT_TRUE(created.ok());
    OpLog log = std::move(created).ValueOrDie();
    for (int64_t b = 0; b < 3; ++b) {
      std::vector<double> batch = MakeBatch(b * 2, 2, 3);
      ASSERT_TRUE(log.Append(b * 2, 2, batch.data(), nullptr).ok());
    }
    ASSERT_TRUE(log.Sync().ok());
  }  // closed

  // Simulate a crash mid-append: garbage bytes past the last record.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[11] = "torn\xff\xfe\xfd\xfc\xfb\xfa";
    ASSERT_EQ(std::fwrite(garbage, 1, 11, f), 11u);
    std::fclose(f);
  }

  {
    Result<OpLog> reopened = OpLog::Open(path, /*dim=*/3, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().message();
    OpLog log = std::move(reopened).ValueOrDie();
    OpLogStats stats = log.stats();
    EXPECT_EQ(stats.recovered_records, 3);
    EXPECT_EQ(stats.recovered_rows, 6);
    EXPECT_EQ(stats.torn_bytes, 11);
    EXPECT_EQ(ReplayAll(log).size(), 3u);
  }

  // The truncation is durable: a second open finds nothing torn.
  {
    Result<OpLog> again = OpLog::Open(path, /*dim=*/3, options);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.ValueUnsafe().stats().torn_bytes, 0);
  }

  // A corrupt byte INSIDE the last record invalidates its CRC: the
  // whole record is the torn tail (frame = 8 header + 16 body-fixed +
  // 2*3*8 points = 72 bytes), never partially replayed.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  {
    Result<OpLog> reopened = OpLog::Open(path, /*dim=*/3, options);
    ASSERT_TRUE(reopened.ok());
    OpLog log = std::move(reopened).ValueOrDie();
    OpLogStats stats = log.stats();
    EXPECT_EQ(stats.recovered_records, 2);
    EXPECT_EQ(stats.recovered_rows, 4);
    EXPECT_EQ(stats.torn_bytes, 72);
    std::vector<ReplayedRecord> replayed = ReplayAll(log);
    ASSERT_EQ(replayed.size(), 2u);
    EXPECT_TRUE(replayed[1].points == MakeBatch(2, 2, 3));
  }
}

TEST(OpLogTest, CompactKeepsStraddlingRecord) {
  FaultGuard guard;
  const std::string path = TempPath("oplog_compact");
  std::remove(path.c_str());
  Result<OpLog> created = OpLog::Create(path, /*dim=*/3, OpLogOptions{});
  ASSERT_TRUE(created.ok());
  OpLog log = std::move(created).ValueOrDie();

  std::vector<double> a = MakeBatch(0, 4, 3);
  std::vector<double> b = MakeBatch(4, 4, 3);
  ASSERT_TRUE(log.Append(0, 4, a.data(), nullptr).ok());
  ASSERT_TRUE(log.Append(4, 4, b.data(), nullptr).ok());
  ASSERT_TRUE(log.Sync().ok());
  const int64_t both = log.tail_bytes();

  // Seal frontier at row 6: record A (rows 0-3) is fully sealed and
  // dropped; record B (rows 4-7) straddles and must survive WHOLE.
  ASSERT_TRUE(log.Compact(6).ok());
  EXPECT_LT(log.tail_bytes(), both);
  std::vector<ReplayedRecord> replayed = ReplayAll(log);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].first_row, 4);
  EXPECT_TRUE(replayed[0].points == b);

  // Frontier at 8 covers everything: the log drains to its header.
  ASSERT_TRUE(log.Compact(8).ok());
  EXPECT_EQ(log.tail_bytes(), 0);
  EXPECT_EQ(ReplayAll(log).size(), 0u);

  // The log still accepts appends after GC.
  std::vector<double> c = MakeBatch(8, 2, 3);
  ASSERT_TRUE(log.Append(8, 2, c.data(), nullptr).ok());
  ASSERT_TRUE(log.Sync().ok());
  std::vector<ReplayedRecord> after = ReplayAll(log);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].first_row, 8);
}

TEST(OpLogTest, TornWritePoisonsUntilReopen) {
  FaultGuard guard;
  const std::string path = TempPath("oplog_poison");
  std::remove(path.c_str());
  Result<OpLog> created = OpLog::Create(path, /*dim=*/3, OpLogOptions{});
  ASSERT_TRUE(created.ok());
  OpLog log = std::move(created).ValueOrDie();

  std::vector<double> first = MakeBatch(0, 2, 3);
  ASSERT_TRUE(log.Append(0, 2, first.data(), nullptr).ok());
  ASSERT_TRUE(log.Sync().ok());

  // Call ordinals count from arming: this is armed-call #1.
  FaultInjector::Global().Arm(
      "oplog.append",
      FaultRule{.kind = FaultKind::kTornWrite, .nth_call = 1});
  std::vector<double> second = MakeBatch(2, 2, 3);
  Status torn = log.Append(2, 2, second.data(), nullptr);
  ASSERT_FALSE(torn.ok());

  // Poisoned: the sticky error repeats on every write-side call.
  EXPECT_FALSE(log.status().ok());
  EXPECT_EQ(log.Append(2, 2, second.data(), nullptr).message(),
            torn.message());
  EXPECT_EQ(log.Sync().message(), torn.message());
  FaultInjector::Global().Reset();

  // Reopen recovers exactly the whole records; the torn prefix of the
  // second record is truncated, never replayed.
  {
    OpLog dead = std::move(log);
  }
  Result<OpLog> reopened = OpLog::Open(path, /*dim=*/3, OpLogOptions{});
  ASSERT_TRUE(reopened.ok());
  OpLog recovered = std::move(reopened).ValueOrDie();
  OpLogStats stats = recovered.stats();
  EXPECT_EQ(stats.recovered_records, 1);
  EXPECT_GT(stats.torn_bytes, 0);
  std::vector<ReplayedRecord> replayed = ReplayAll(recovered);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_TRUE(replayed[0].points == first);
}

// ---------------------------------------------------------------------
// LiveDataset: append/seal/recover round trips.
// ---------------------------------------------------------------------

constexpr int64_t kDim = 3;

LiveDatasetOptions SmallLiveOptions() {
  LiveDatasetOptions options;
  options.rows_per_shard = 8;
  options.oplog.group_commit_records = 2;
  return options;
}

TEST(LiveDatasetTest, AppendSealReopenBitwise) {
  FaultGuard guard;
  const std::string base = TempPath("live_roundtrip");
  CleanBase(base);
  LiveDatasetOptions options = SmallLiveOptions();

  {
    Result<LiveDataset> opened =
        LiveDataset::Open(base, kDim, /*has_weights=*/false, options);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    LiveDataset live = std::move(opened).ValueOrDie();
    EXPECT_EQ(live.n(), 0);

    for (int64_t b = 0; b < 5; ++b) {
      std::vector<double> batch = MakeBatch(b * 5, 5, kDim);
      ASSERT_TRUE(live.Append(batch.data(), 5).ok());
    }
    EXPECT_EQ(live.n(), 25);
    EXPECT_EQ(live.sealed_rows(), 0);
    EXPECT_EQ(live.unsealed_rows(), 25);
    EXPECT_TRUE(GatherRows(live) == ExpectedRows(25, kDim));

    // Seal cuts only FULL shards: 25 rows → 3 shards of 8, 1 row stays.
    ASSERT_TRUE(live.Seal().ok());
    EXPECT_EQ(live.sealed_rows(), 24);
    EXPECT_EQ(live.unsealed_rows(), 1);
    EXPECT_EQ(live.n(), 25);
    EXPECT_TRUE(GatherRows(live) == ExpectedRows(25, kDim));

    IngestStats stats = live.ingest_stats();
    EXPECT_EQ(stats.appended_batches, 5);
    EXPECT_EQ(stats.appended_rows, 25);
    EXPECT_EQ(stats.seals, 1);
    EXPECT_EQ(stats.sealed_rows, 24);
  }  // closed

  // Reopen: the sealed shards come from the manifest, the 1-row tail
  // replays from the oplog past the sealed frontier.
  Result<LiveDataset> reopened =
      LiveDataset::Open(base, kDim, /*has_weights=*/false, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  LiveDataset live = std::move(reopened).ValueOrDie();
  EXPECT_EQ(live.n(), 25);
  EXPECT_EQ(live.sealed_rows(), 24);
  EXPECT_EQ(live.unsealed_rows(), 1);
  EXPECT_EQ(live.ingest_stats().recovered_rows, 1);
  EXPECT_TRUE(GatherRows(live) == ExpectedRows(25, kDim));

  // The dataset keeps ingesting where it left off.
  std::vector<double> more = MakeBatch(25, 5, kDim);
  ASSERT_TRUE(live.Append(more.data(), 5).ok());
  EXPECT_EQ(live.n(), 30);
  EXPECT_TRUE(GatherRows(live) == ExpectedRows(30, kDim));
}

TEST(LiveDatasetTest, RecoversEverythingWithoutSeal) {
  FaultGuard guard;
  const std::string base = TempPath("live_noseal");
  CleanBase(base);
  LiveDatasetOptions options = SmallLiveOptions();

  {
    Result<LiveDataset> opened =
        LiveDataset::Open(base, kDim, /*has_weights=*/false, options);
    ASSERT_TRUE(opened.ok());
    LiveDataset live = std::move(opened).ValueOrDie();
    for (int64_t b = 0; b < 4; ++b) {
      std::vector<double> batch = MakeBatch(b * 5, 5, kDim);
      ASSERT_TRUE(live.Append(batch.data(), 5).ok());
    }
    ASSERT_TRUE(live.SyncLog().ok());
  }  // crash before any seal: no manifest exists

  EXPECT_FALSE(FileExists(base + ".manifest"));
  Result<LiveDataset> reopened =
      LiveDataset::Open(base, kDim, /*has_weights=*/false, options);
  ASSERT_TRUE(reopened.ok());
  LiveDataset live = std::move(reopened).ValueOrDie();
  EXPECT_EQ(live.n(), 20);
  EXPECT_EQ(live.sealed_rows(), 0);
  EXPECT_EQ(live.ingest_stats().recovered_rows, 20);
  EXPECT_TRUE(GatherRows(live) == ExpectedRows(20, kDim));
}

TEST(LiveDatasetTest, WeightedRowsRoundTrip) {
  FaultGuard guard;
  const std::string base = TempPath("live_weighted");
  CleanBase(base);
  LiveDatasetOptions options = SmallLiveOptions();

  std::vector<double> weights(20);
  for (int64_t i = 0; i < 20; ++i) {
    weights[static_cast<size_t>(i)] = 1.0 + 0.25 * static_cast<double>(i);
  }
  {
    Result<LiveDataset> opened =
        LiveDataset::Open(base, kDim, /*has_weights=*/true, options);
    ASSERT_TRUE(opened.ok());
    LiveDataset live = std::move(opened).ValueOrDie();
    for (int64_t b = 0; b < 4; ++b) {
      std::vector<double> batch = MakeBatch(b * 5, 5, kDim);
      ASSERT_TRUE(
          live.Append(batch.data(), 5, weights.data() + b * 5).ok());
    }
    ASSERT_TRUE(live.Seal().ok());  // 16 sealed + 4 tail rows
    ASSERT_TRUE(live.SyncLog().ok());
  }

  Result<LiveDataset> reopened =
      LiveDataset::Open(base, kDim, /*has_weights=*/true, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  LiveDataset live = std::move(reopened).ValueOrDie();
  ASSERT_TRUE(live.has_weights());
  ASSERT_EQ(live.n(), 20);
  EXPECT_TRUE(GatherRows(live) == ExpectedRows(20, kDim));
  std::vector<double> got_weights(20);
  ForEachBlock(live, 0, live.n(), [&](const DatasetView& v) {
    for (int64_t i = 0; i < v.rows(); ++i) {
      got_weights[static_cast<size_t>(v.first_row() + i)] = v.Weight(i);
    }
  });
  EXPECT_TRUE(got_weights == weights);
}

TEST(LiveDatasetTest, BackpressureRejectsWhenTailFull) {
  FaultGuard guard;
  const std::string base = TempPath("live_backpressure");
  CleanBase(base);
  LiveDatasetOptions options;
  options.rows_per_shard = 4;
  options.max_unsealed_rows = 8;

  Result<LiveDataset> opened =
      LiveDataset::Open(base, kDim, /*has_weights=*/false, options);
  ASSERT_TRUE(opened.ok());
  LiveDataset live = std::move(opened).ValueOrDie();

  std::vector<double> batch = MakeBatch(0, 8, kDim);
  ASSERT_TRUE(live.Append(batch.data(), 8).ok());
  std::vector<double> one = MakeBatch(8, 1, kDim);
  Status rejected = live.Append(one.data(), 1);
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.message().find("unsealed tail is full"),
            std::string::npos);
  EXPECT_EQ(live.n(), 8);
  EXPECT_EQ(live.ingest_stats().backpressure_rejections, 1);
  // Backpressure is not an error state: the dataset stays healthy.
  EXPECT_TRUE(live.status().ok());

  // Seal drains the tail (8 rows → 2 full shards) and appends resume.
  ASSERT_TRUE(live.Seal().ok());
  EXPECT_EQ(live.unsealed_rows(), 0);
  ASSERT_TRUE(live.Append(one.data(), 1).ok());
  EXPECT_EQ(live.n(), 9);
  EXPECT_TRUE(GatherRows(live) == ExpectedRows(9, kDim));
}

TEST(LiveDatasetTest, TornAppendIsInvisibleAndRecoverable) {
  FaultGuard guard;
  const std::string base = TempPath("live_torn_append");
  CleanBase(base);
  LiveDatasetOptions options = SmallLiveOptions();

  {
    Result<LiveDataset> opened =
        LiveDataset::Open(base, kDim, /*has_weights=*/false, options);
    ASSERT_TRUE(opened.ok());
    LiveDataset live = std::move(opened).ValueOrDie();
    std::vector<double> first = MakeBatch(0, 5, kDim);
    ASSERT_TRUE(live.Append(first.data(), 5).ok());

    FaultInjector::Global().Arm(
        "oplog.append",
        FaultRule{.kind = FaultKind::kTornWrite, .nth_call = 1});
    std::vector<double> second = MakeBatch(5, 5, kDim);
    ASSERT_FALSE(live.Append(second.data(), 5).ok());
    FaultInjector::Global().Reset();

    // Log-before-apply: the torn batch never became visible, and the
    // dataset is now sticky-failed for writes (reads still serve).
    EXPECT_EQ(live.n(), 5);
    EXPECT_FALSE(live.status().ok());
    EXPECT_FALSE(live.Append(second.data(), 5).ok());
    EXPECT_TRUE(GatherRows(live) == ExpectedRows(5, kDim));
  }

  Result<LiveDataset> reopened =
      LiveDataset::Open(base, kDim, /*has_weights=*/false, options);
  ASSERT_TRUE(reopened.ok());
  LiveDataset live = std::move(reopened).ValueOrDie();
  EXPECT_TRUE(live.status().ok());
  EXPECT_EQ(live.n(), 5);
  EXPECT_GT(live.ingest_stats().torn_bytes, 0);
  EXPECT_TRUE(GatherRows(live) == ExpectedRows(5, kDim));

  // The truncated log accepts the batch again.
  std::vector<double> second = MakeBatch(5, 5, kDim);
  ASSERT_TRUE(live.Append(second.data(), 5).ok());
  EXPECT_TRUE(GatherRows(live) == ExpectedRows(10, kDim));
}

// ---------------------------------------------------------------------
// Kill-point matrix: a run killed at any fault site converges bitwise.
// ---------------------------------------------------------------------

constexpr int64_t kBatchRows = 5;
constexpr int kBatches = 12;  // 60 rows → 7 shards of 8 + 4 tail rows

/// The deterministic producer: appends batches [*next, kBatches),
/// sealing after every 3rd batch, then one final Seal so every run —
/// crashed or not — ends at the same seal frontier. Returns the first
/// error (the "crash").
Status DriveFrom(LiveDataset* live, int* next) {
  while (*next < kBatches) {
    const int i = *next;
    std::vector<double> batch =
        MakeBatch(static_cast<int64_t>(i) * kBatchRows, kBatchRows, kDim);
    Status st = live->Append(batch.data(), kBatchRows);
    if (st.IsUnavailable()) {
      // Backpressure (a crash can skip a scheduled seal, letting the
      // tail fill): drain and re-send — the documented contract.
      KMEANSLL_RETURN_NOT_OK(live->Seal());
      st = live->Append(batch.data(), kBatchRows);
    }
    KMEANSLL_RETURN_NOT_OK(st);
    *next = i + 1;
    if (i % 3 == 2) KMEANSLL_RETURN_NOT_OK(live->Seal());
  }
  return live->Seal();
}

struct RunResult {
  std::vector<double> rows;
  int64_t sealed = 0;
  int64_t unsealed = 0;
  std::vector<std::string> shard_bytes;
  std::string oplog_bytes;
};

/// Runs the producer to completion. Any mid-run error simulates a
/// crash: drop the LiveDataset, disarm the injector, reopen (recovery),
/// and resume — the next batch index is derived from the RECOVERED row
/// count, exactly as a restarted ingest process would derive it.
Result<RunResult> RunIngest(const std::string& base, int* crashes) {
  LiveDatasetOptions options = SmallLiveOptions();
  Result<LiveDataset> opened =
      LiveDataset::Open(base, kDim, /*has_weights=*/false, options);
  KMEANSLL_RETURN_NOT_OK(opened.status());
  std::optional<LiveDataset> live(std::move(opened).ValueOrDie());

  int next = 0;
  for (int attempt = 0;; ++attempt) {
    Status st = DriveFrom(&*live, &next);
    if (st.ok()) break;
    if (attempt >= 8) return st;  // not converging: surface the error
    if (crashes != nullptr) ++*crashes;
    FaultInjector::Global().Reset();
    live.reset();  // crash: close files, drop all in-memory state
    Result<LiveDataset> reopened =
        LiveDataset::Open(base, kDim, /*has_weights=*/false, options);
    KMEANSLL_RETURN_NOT_OK(reopened.status());
    live.emplace(std::move(reopened).ValueOrDie());
    next = static_cast<int>(live->n() / kBatchRows);
  }

  RunResult out;
  out.rows = GatherRows(*live);
  out.sealed = live->sealed_rows();
  out.unsealed = live->unsealed_rows();
  live.reset();  // flush + close before reading raw file bytes
  for (int s = 0; FileExists(base + ".manifest.shard" +
                             std::to_string(s));
       ++s) {
    out.shard_bytes.push_back(
        ReadFileBytes(base + ".manifest.shard" + std::to_string(s)));
  }
  out.oplog_bytes = ReadFileBytes(base + ".oplog");
  return out;
}

TEST(LiveIngestKillMatrixTest, RecoveryConvergesBitwise) {
  FaultGuard guard;
  const std::string baseline_base = TempPath("kill_baseline");
  CleanBase(baseline_base);
  Result<RunResult> baseline_run = RunIngest(baseline_base, nullptr);
  ASSERT_TRUE(baseline_run.ok()) << baseline_run.status().message();
  RunResult baseline = std::move(baseline_run).ValueOrDie();
  ASSERT_EQ(baseline.sealed, 56);
  ASSERT_EQ(baseline.unsealed, 4);
  ASSERT_EQ(baseline.shard_bytes.size(), 7u);
  ASSERT_TRUE(baseline.rows == ExpectedRows(60, kDim));

  struct KillCase {
    const char* name;
    const char* site;
    FaultKind kind;
    uint64_t nth_call;
  };
  const KillCase cases[] = {
      // Append dies before any byte lands: the batch is simply re-sent.
      {"append_writefail", "oplog.append", FaultKind::kWriteFail, 3},
      // Append dies mid-record: recovery truncates the torn tail.
      {"append_torn", "oplog.append", FaultKind::kTornWrite, 4},
      // fsync fails: durability unknown, the log poisons itself.
      {"fsync_fail", "oplog.fsync", FaultKind::kWriteFail, 2},
      // Killed entering a seal: nothing was cut, the seal re-runs.
      {"seal_entry", "oplog.seal", FaultKind::kWriteFail, 2},
      // Killed between shard writes: orphan shard files get rewritten
      // with identical bytes, the manifest never saw them.
      {"compact_mid_shard", "ingest.compact", FaultKind::kWriteFail, 2},
      // Killed at the seal's commit point (the manifest rename).
      {"manifest_rename", "manifest.write.rename", FaultKind::kWriteFail,
       1},
  };

  for (const KillCase& c : cases) {
    SCOPED_TRACE(c.name);
    FaultInjector::Global().Reset();
    const std::string base = TempPath(std::string("kill_") + c.name);
    CleanBase(base);
    FaultInjector::Global().Arm(
        c.site, FaultRule{.kind = c.kind, .nth_call = c.nth_call,
                          .max_triggers = 1});
    int crashes = 0;
    Result<RunResult> run = RunIngest(base, &crashes);
    ASSERT_TRUE(run.ok()) << run.status().message();
    // The fault fired: either the producer crashed on it, or an inner
    // retry layer absorbed it (counters survive because RunIngest only
    // resets the injector on the crash path).
    EXPECT_TRUE(crashes > 0 ||
                FaultInjector::Global().triggered_count() > 0);

    RunResult got = std::move(run).ValueOrDie();
    EXPECT_EQ(got.sealed, baseline.sealed);
    EXPECT_EQ(got.unsealed, baseline.unsealed);
    EXPECT_TRUE(got.rows == baseline.rows)
        << "recovered row contents diverged from the uninterrupted run";
    ASSERT_EQ(got.shard_bytes.size(), baseline.shard_bytes.size());
    for (size_t s = 0; s < got.shard_bytes.size(); ++s) {
      EXPECT_TRUE(got.shard_bytes[s] == baseline.shard_bytes[s])
          << "shard " << s << " bytes diverged";
    }
    EXPECT_TRUE(got.oplog_bytes == baseline.oplog_bytes)
        << "compacted oplog bytes diverged";
  }
}

TEST(LiveIngestKillMatrixTest, SeededRandomKillsConverge) {
  FaultGuard guard;
  const std::string baseline_base = TempPath("stress_baseline");
  CleanBase(baseline_base);
  Result<RunResult> baseline_run = RunIngest(baseline_base, nullptr);
  ASSERT_TRUE(baseline_run.ok());
  RunResult baseline = std::move(baseline_run).ValueOrDie();

  struct Site {
    const char* site;
    FaultKind kind;
  };
  const Site sites[] = {
      {"oplog.append", FaultKind::kWriteFail},
      {"oplog.append", FaultKind::kTornWrite},
      {"oplog.fsync", FaultKind::kWriteFail},
      {"oplog.seal", FaultKind::kWriteFail},
      {"ingest.compact", FaultKind::kWriteFail},
  };
  std::mt19937_64 rng(0xD15EA5E);  // fixed seed: the run is replayable
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    FaultInjector::Global().Reset();
    const std::string base =
        TempPath("stress_round" + std::to_string(round));
    CleanBase(base);
    const Site& site = sites[rng() % (sizeof(sites) / sizeof(sites[0]))];
    const uint64_t nth = 1 + rng() % 5;
    FaultInjector::Global().Arm(
        site.site,
        FaultRule{.kind = site.kind, .nth_call = nth, .max_triggers = 1});
    int crashes = 0;
    Result<RunResult> run = RunIngest(base, &crashes);
    ASSERT_TRUE(run.ok()) << site.site << " nth=" << nth << ": "
                          << run.status().message();
    RunResult got = std::move(run).ValueOrDie();
    EXPECT_TRUE(got.rows == baseline.rows)
        << site.site << " nth=" << nth;
    EXPECT_EQ(got.sealed, baseline.sealed);
    ASSERT_EQ(got.shard_bytes.size(), baseline.shard_bytes.size());
    for (size_t s = 0; s < got.shard_bytes.size(); ++s) {
      EXPECT_TRUE(got.shard_bytes[s] == baseline.shard_bytes[s]);
    }
  }
}

// ---------------------------------------------------------------------
// Readers are never blocked: concurrent scans during append/seal see a
// consistent prefix. (This test carries the TSan coverage for the
// RCU-style tail/seal swap.)
// ---------------------------------------------------------------------

TEST(LiveIngestConcurrencyTest, ReadersSeeConsistentPrefixDuringIngest) {
  FaultGuard guard;
  const std::string base = TempPath("live_concurrent");
  CleanBase(base);
  LiveDatasetOptions options;
  options.rows_per_shard = 8;
  options.oplog.group_commit_records = 4;
  options.max_unsealed_rows = 1 << 20;

  Result<LiveDataset> opened =
      LiveDataset::Open(base, kDim, /*has_weights=*/false, options);
  ASSERT_TRUE(opened.ok());
  LiveDataset live = std::move(opened).ValueOrDie();

  constexpr int kWriterBatches = 30;
  constexpr int64_t kRows = 4;
  std::atomic<bool> done{false};
  std::atomic<int64_t> bad_rows{0};

  std::thread writer([&] {
    for (int b = 0; b < kWriterBatches; ++b) {
      std::vector<double> batch =
          MakeBatch(static_cast<int64_t>(b) * kRows, kRows, kDim);
      Status st = live.Append(batch.data(), kRows);
      if (!st.ok()) break;
      if ((b + 1) % 5 == 0) {
        if (!live.Seal().ok()) break;
      }
    }
    (void)live.Seal();
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const int64_t total = live.n();  // snapshot, then scan [0, total)
        if (total == 0) continue;
        ForEachBlock(live, 0, total, [&](const DatasetView& v) {
          for (int64_t i = 0; i < v.rows(); ++i) {
            const int64_t g = v.first_row() + i;
            const double* p = v.Point(i);
            for (int64_t j = 0; j < kDim; ++j) {
              if (p[j] != RowAt(g, j)) {
                bad_rows.fetch_add(1, std::memory_order_relaxed);
                return;
              }
            }
          }
        });
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(bad_rows.load(), 0)
      << "a concurrent scan observed a row that was never acknowledged";
  EXPECT_EQ(live.n(), kWriterBatches * kRows);
  EXPECT_TRUE(live.status().ok());
  EXPECT_TRUE(GatherRows(live) == ExpectedRows(kWriterBatches * kRows, kDim));
}

}  // namespace
}  // namespace kmeansll
